// Ablation: the two R'-sampling strategies of Section 6.4.
//
// By-entity sampling (all tuples of a subset of the input entities)
// cannot create false negatives — every kept entity carries its
// valid-predicate tuples — but floods mining with false positives.
// Uniform per-entity sampling keeps every entity partially, trading
// false positives for possible false negatives that the relaxed
// coverage ratio mitigates. This bench quantifies the trade on the
// augmented TPC-H relation: candidate predicates produced, executions
// to first valid, and discovery rate, per strategy.

#include <cstdio>

#include "harness.h"

namespace paleo {
namespace bench {
namespace {

struct StrategyStats {
  double predicates = 0;
  double executions = 0;
  double found_pct = 0;
};

int Run() {
  Env env;
  PrintHeader("Ablation: by-entity vs. uniform per-entity sampling "
              "(augmented TPC-H, max(A), |P|=2, 30%)");
  Table table = BuildAugmentedTpch(env);
  Paleo paleo(&table, PaleoOptions{});
  auto workload = MakeCellWorkload(table, QueryFamily::kMaxA,
                                   /*predicate_size=*/2, /*k=*/10,
                                   env.queries_per_cell, env.seed + 400);

  auto run_strategy = [&](bool by_entity) {
    StrategyStats stats;
    int n = 0, found = 0;
    for (size_t i = 0; i < workload.size(); ++i) {
      const TopKList& list = workload[i].list;
      uint64_t seed = env.seed + 71 * i;
      StatusOr<std::vector<RowId>> sample =
          by_entity ? Sampler::ByEntity(paleo.index(),
                                        list.DistinctEntities(), 0.30, seed)
                    : Sampler::UniformPerEntity(paleo.index(),
                                                list.DistinctEntities(),
                                                0.30, seed);
      PALEO_CHECK(sample.ok());
      PaleoOptions options = paleo.options();
      options.validation_strategy = ValidationStrategy::kSmart;
      options.stop_at_first_valid = true;
      options.max_query_executions = env.max_executions;
      options.max_predicate_size = 2;
      // By-entity samples keep complete entities, so full coverage of
      // the *kept* entities is the right bar; the run still treats R''
      // as a sample for the suitability model.
      RunRequest request;
      request.input = &list;
      request.sample_rows = &*sample;
      request.sample_fraction = 0.30;
      request.coverage_ratio_override = by_entity ? 0.30 : -1.0;
      request.options_override = &options;
      auto report = paleo.Run(request);
      PALEO_CHECK(report.ok());
      stats.predicates += static_cast<double>(report->candidate_predicates);
      if (report->found()) {
        ++found;
        stats.executions +=
            static_cast<double>(report->valid[0].executions_at_discovery);
      }
      ++n;
    }
    if (n > 0) stats.predicates /= n;
    if (found > 0) stats.executions /= found;
    stats.found_pct = n > 0 ? 100.0 * found / n : 0;
    return stats;
  };

  StrategyStats uniform = run_strategy(false);
  StrategyStats by_entity = run_strategy(true);
  std::printf("%-24s %14s %14s %10s\n", "strategy", "#predicates",
              "executions", "found");
  std::printf("%-24s %14.1f %14.1f %9.0f%%\n", "uniform per-entity",
              uniform.predicates, uniform.executions, uniform.found_pct);
  std::printf("%-24s %14.1f %14.1f %9.0f%%\n", "by-entity",
              by_entity.predicates, by_entity.executions,
              by_entity.found_pct);
  std::printf(
      "\nExpected (Section 6.4): by-entity mines more candidate "
      "predicates (false\npositives from fully kept entities) but "
      "cannot lose the valid predicate for\nkept entities; uniform "
      "keeps all entities but risks false negatives.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace paleo

int main() { return paleo::bench::Run(); }
