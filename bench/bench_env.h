// Shared environment knobs and helpers for the experiment binaries.
//
// Every bench honors:
//   PALEO_SF               scale factor of the generated relations
//                          (default 0.01; the paper runs SF 1)
//   PALEO_QUERIES_PER_CELL queries per experiment cell (default 3)
//   PALEO_SEED             master seed (default 42)
//   PALEO_AUG_MEAN         mean clones/entity for the sampling
//                          experiments (default 200, as in the paper)
//   PALEO_MAX_EXECUTIONS   cap on candidate-query executions per run
//                          (default 2500; 0 = unlimited)
//
// Experiment outputs print the same rows/series as the paper's tables
// and figures; absolute numbers differ with scale, the shapes are the
// point (see EXPERIMENTS.md).

#ifndef PALEO_BENCH_BENCH_ENV_H_
#define PALEO_BENCH_BENCH_ENV_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.h"
#include "datagen/augment.h"
#include "datagen/ssb_gen.h"
#include "datagen/tpch_gen.h"
#include "storage/table.h"

namespace paleo {
namespace bench {

inline double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::strtod(v, nullptr);
}

inline int64_t EnvInt(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::strtoll(v, nullptr, 10);
}

struct Env {
  double scale_factor = EnvDouble("PALEO_SF", 0.01);
  int queries_per_cell =
      static_cast<int>(EnvInt("PALEO_QUERIES_PER_CELL", 3));
  uint64_t seed = static_cast<uint64_t>(EnvInt("PALEO_SEED", 42));
  // Paper value: 200 clones/entity. Smaller values starve the sampling
  // experiments — with too few clones a selective predicate's matching
  // tuples rarely survive the sample, discovery collapses, and every
  // failed search burns the full execution budget.
  double augment_mean = EnvDouble("PALEO_AUG_MEAN", 200.0);
  int64_t max_executions = EnvInt("PALEO_MAX_EXECUTIONS", 2500);
};

inline Table BuildTpch(const Env& env) {
  TpchGenOptions options;
  options.scale_factor = env.scale_factor;
  options.seed = env.seed;
  auto table = TpchGen::Generate(options);
  PALEO_CHECK(table.ok()) << table.status().ToString();
  return *std::move(table);
}

inline Table BuildSsb(const Env& env) {
  SsbGenOptions options;
  options.scale_factor = env.scale_factor;
  options.seed = env.seed + 1;
  auto table = SsbGen::Generate(options);
  PALEO_CHECK(table.ok()) << table.status().ToString();
  return *std::move(table);
}

/// The sampling experiments' relation: TPC-H augmented with per-entity
/// clones (paper Section 8.1; clone count N(PALEO_AUG_MEAN, mean/4)).
inline Table BuildAugmentedTpch(const Env& env) {
  Table base = BuildTpch(env);
  AugmentOptions options;
  options.clones_mean = env.augment_mean;
  options.clones_stddev = env.augment_mean / 4.0;
  options.seed = env.seed + 7;
  auto augmented = Augment(base, options);
  PALEO_CHECK(augmented.ok()) << augmented.status().ToString();
  return *std::move(augmented);
}

inline double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================\n");
}

}  // namespace bench
}  // namespace paleo

#endif  // PALEO_BENCH_BENCH_ENV_H_
