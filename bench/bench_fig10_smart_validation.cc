// Figure 10: number of query executions until the first valid query
// with a 30% sample of R' (augmented TPC-H): smart (Algorithm 3) vs.
// ranked vs. the expected unordered baseline, for max(A) and sum(A+B).

#include <cstdio>

#include "harness.h"

namespace paleo {
namespace bench {
namespace {

int Run() {
  Env env;
  PrintHeader("Figure 10: smart vs. ranked vs. expected, 30% sample "
              "(augmented TPC-H)");
  Table table = BuildAugmentedTpch(env);
  Paleo paleo(&table, PaleoOptions{});

  for (QueryFamily family : {QueryFamily::kMaxA, QueryFamily::kSumAB}) {
    std::printf("\n%s\n", QueryFamilyToString(family));
    std::printf("%6s %10s %10s %12s %12s\n", "|P|", "smart", "ranked",
                "expected", "#candidates");
    for (int p = 1; p <= 3; ++p) {
      auto workload = MakeCellWorkload(table, family, p, /*k=*/10,
                                       env.queries_per_cell,
                                       env.seed + 13 * p);
      std::vector<double> smart, ranked, expected, cands;
      for (size_t i = 0; i < workload.size(); ++i) {
        const TopKList& list = workload[i].list;
        // #valid is a property of (R, L), measured once on the full R'.
        QueryEval full =
            EvaluateFull(&paleo, list, ValidationStrategy::kRanked,
                         /*count_all_valid=*/true, env.max_executions, p);
        uint64_t sample_seed = env.seed + 31 * i + 5;
        QueryEval s = EvaluateSampled(&paleo, list, 0.30, sample_seed,
                                      ValidationStrategy::kSmart,
                                      env.max_executions, p);
        QueryEval r = EvaluateSampled(&paleo, list, 0.30, sample_seed,
                                      ValidationStrategy::kRanked,
                                      env.max_executions, p);
        if (!s.found || !r.found || full.valid_queries <= 0) continue;
        smart.push_back(static_cast<double>(s.executions_to_first_valid));
        ranked.push_back(static_cast<double>(r.executions_to_first_valid));
        cands.push_back(static_cast<double>(r.candidate_queries));
        expected.push_back(static_cast<double>(r.candidate_queries) /
                           static_cast<double>(full.valid_queries));
      }
      std::printf("%6d %10.1f %10.1f %12.1f %12.1f   (n=%zu)\n", p,
                  Mean(smart), Mean(ranked), Mean(expected), Mean(cands),
                  smart.size());
    }
  }
  std::printf(
      "\nExpected shape (paper): smart <= ranked << expected, with the "
      "largest\nfactors for sum(A+B).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace paleo

int main() { return paleo::bench::Run(); }
