// Figure 11: number of candidate predicates vs. sample size for
// max(A) queries on the augmented TPC-H relation, (a) by |P| and
// (b) by k. The coverage-ratio schedule (stricter with larger samples)
// drives the counts down as the sample grows.

#include <cstdio>

#include "harness.h"

namespace paleo {
namespace bench {
namespace {

double AvgPredicatesSampled(Paleo* paleo,
                            const std::vector<WorkloadQuery>& wl,
                            double fraction, const Env& env,
                            int max_predicate_size) {
  std::vector<double> counts;
  for (size_t i = 0; i < wl.size(); ++i) {
    QueryEval eval = EvaluateSampled(paleo, wl[i].list, fraction,
                                     env.seed + 53 * i,
                                     ValidationStrategy::kRanked,
                                     /*max_executions=*/1,
                                     max_predicate_size);
    counts.push_back(static_cast<double>(eval.candidate_predicates));
  }
  return Mean(counts);
}

double AvgPredicatesFull(Paleo* paleo,
                         const std::vector<WorkloadQuery>& wl,
                         int max_predicate_size) {
  std::vector<double> counts;
  for (const WorkloadQuery& wq : wl) {
    QueryEval eval = EvaluateFull(paleo, wq.list,
                                  ValidationStrategy::kRanked, false,
                                  /*max_executions=*/1,
                                  max_predicate_size);
    counts.push_back(static_cast<double>(eval.candidate_predicates));
  }
  return Mean(counts);
}

int Run() {
  Env env;
  PrintHeader("Figure 11: candidate predicates vs. sample size "
              "(augmented TPC-H, max(A))");
  Table table = BuildAugmentedTpch(env);
  Paleo paleo(&table, PaleoOptions{});

  std::printf("\n(a) by predicate size (k = 10)\n");
  std::printf("%10s %8s %8s %8s\n", "sample %", "|P|=1", "|P|=2", "|P|=3");
  std::vector<std::vector<WorkloadQuery>> by_p;
  for (int p = 1; p <= 3; ++p) {
    by_p.push_back(MakeCellWorkload(table, QueryFamily::kMaxA, p, 10,
                                    env.queries_per_cell,
                                    env.seed + 7 * p));
  }
  for (double pct : {5.0, 10.0, 20.0, 30.0, 100.0}) {
    std::printf("%10.0f", pct);
    for (int p = 1; p <= 3; ++p) {
      double avg =
          pct >= 100.0
              ? AvgPredicatesFull(&paleo, by_p[static_cast<size_t>(p - 1)],
                                  p)
              : AvgPredicatesSampled(&paleo,
                                     by_p[static_cast<size_t>(p - 1)],
                                     pct / 100.0, env, p);
      std::printf(" %8.1f", avg);
    }
    std::printf("\n");
  }

  std::printf("\n(b) by input list size (|P| = 2)\n");
  std::printf("%10s %8s %8s %8s %8s %8s\n", "sample %", "k=5", "k=10",
              "k=20", "k=50", "k=100");
  std::vector<std::vector<WorkloadQuery>> by_k;
  const int ks[] = {5, 10, 20, 50, 100};
  for (int k : ks) {
    by_k.push_back(MakeCellWorkload(table, QueryFamily::kMaxA, 2, k,
                                    env.queries_per_cell,
                                    env.seed + 11 * k));
  }
  for (double pct : {5.0, 10.0, 20.0, 30.0, 100.0}) {
    std::printf("%10.0f", pct);
    for (size_t i = 0; i < by_k.size(); ++i) {
      double avg = pct >= 100.0
                       ? AvgPredicatesFull(&paleo, by_k[i], 2)
                       : AvgPredicatesSampled(&paleo, by_k[i],
                                              pct / 100.0, env, 2);
      std::printf(" %8.1f", avg);
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape (paper): counts fall as the sample grows (the "
      "coverage\nratio tightens: 0.5/0.6/0.7/0.8/1.0) and as k "
      "grows.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace paleo

int main() { return paleo::bench::Run(); }
