// Figure 5: number of query executions until the first valid query,
// with all tuples of R' available, on the TPC-H-like relation —
// ranked validation vs. the expected unordered baseline
// (#candidates / #valid), for max(A) and sum(A+B), |P| in {1,2,3}.

#include <cstdio>

#include "harness.h"

namespace paleo {
namespace bench {
namespace {

void RunDataset(const char* name, const Table& table, const Env& env) {
  Paleo paleo(&table, PaleoOptions{});
  for (QueryFamily family : {QueryFamily::kMaxA, QueryFamily::kSumAB}) {
    std::printf("\n[%s] %s\n", name, QueryFamilyToString(family));
    std::printf("%6s %18s %10s %12s %8s\n", "|P|", "ranked-validation",
                "expected", "#candidates", "#valid");
    for (int p = 1; p <= 3; ++p) {
      auto workload = MakeCellWorkload(table, family, p, /*k=*/10,
                                       env.queries_per_cell,
                                       env.seed + static_cast<uint64_t>(p));
      std::vector<double> ranked, expected, cands, valids;
      for (const WorkloadQuery& wq : workload) {
        QueryEval eval =
            EvaluateFull(&paleo, wq.list, ValidationStrategy::kRanked,
                         /*count_all_valid=*/true, env.max_executions,
                         /*max_predicate_size=*/p);
        if (!eval.found) continue;  // should not happen with full R'
        ranked.push_back(
            static_cast<double>(eval.executions_to_first_valid));
        cands.push_back(static_cast<double>(eval.candidate_queries));
        valids.push_back(static_cast<double>(eval.valid_queries));
        expected.push_back(static_cast<double>(eval.candidate_queries) /
                           static_cast<double>(eval.valid_queries));
      }
      std::printf("%6d %18.2f %10.2f %12.1f %8.1f   (n=%zu)\n", p,
                  Mean(ranked), Mean(expected), Mean(cands), Mean(valids),
                  ranked.size());
    }
  }
}

int Run() {
  Env env;
  PrintHeader("Figure 5: executions until first valid query, full R' "
              "(TPC-H)");
  Table tpch = BuildTpch(env);
  RunDataset("TPC-H", tpch, env);
  std::printf(
      "\nExpected shape (paper): ranked needs ~1-2 executions for most "
      "lists and\nbeats 'expected'; the gap grows with |P|.\n");
  std::vector<AblationCell> cells;
  RunThresholdAblation(tpch, "TPC-H", env, &cells);
  WriteAblationJson("fig5_threshold_ablation_tpch", cells);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace paleo

int main() { return paleo::bench::Run(); }
