// Figure 6: same experiment as Figure 5 on the SSB-like relation.

#include <cstdio>

#include "harness.h"

namespace paleo {
namespace bench {
namespace {

int Run() {
  Env env;
  PrintHeader("Figure 6: executions until first valid query, full R' "
              "(SSB)");
  Table ssb = BuildSsb(env);
  Paleo paleo(&ssb, PaleoOptions{});
  for (QueryFamily family : {QueryFamily::kMaxA, QueryFamily::kSumAB}) {
    std::printf("\n[SSB] %s\n", QueryFamilyToString(family));
    std::printf("%6s %18s %10s %12s %8s\n", "|P|", "ranked-validation",
                "expected", "#candidates", "#valid");
    for (int p = 1; p <= 3; ++p) {
      auto workload = MakeCellWorkload(ssb, family, p, /*k=*/10,
                                       env.queries_per_cell,
                                       env.seed + 100 +
                                           static_cast<uint64_t>(p));
      std::vector<double> ranked, expected, cands, valids;
      for (const WorkloadQuery& wq : workload) {
        QueryEval eval =
            EvaluateFull(&paleo, wq.list, ValidationStrategy::kRanked,
                         /*count_all_valid=*/true, env.max_executions,
                         /*max_predicate_size=*/p);
        if (!eval.found) continue;
        ranked.push_back(
            static_cast<double>(eval.executions_to_first_valid));
        cands.push_back(static_cast<double>(eval.candidate_queries));
        valids.push_back(static_cast<double>(eval.valid_queries));
        expected.push_back(static_cast<double>(eval.candidate_queries) /
                           static_cast<double>(eval.valid_queries));
      }
      std::printf("%6d %18.2f %10.2f %12.1f %8.1f   (n=%zu)\n", p,
                  Mean(ranked), Mean(expected), Mean(cands), Mean(valids),
                  ranked.size());
    }
  }
  std::vector<AblationCell> cells;
  RunThresholdAblation(ssb, "SSB", env, &cells);
  WriteAblationJson("fig6_threshold_ablation_ssb", cells);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace paleo

int main() { return paleo::bench::Run(); }
