// Figure 7: running time of the three pipeline steps (1: find
// predicates, 2: find ranking criteria, 3: candidate query validation)
// for max(A) and sum(A+B) queries, on both datasets. The headline
// shape: step 3 dominates, and SSB's steps 1-2 cost more than TPC-H's
// because R' is much larger.

#include <cstdio>

#include "harness.h"

namespace paleo {
namespace bench {
namespace {

void RunDataset(const char* name, const Table& table, const Env& env,
                uint64_t seed_base) {
  // Scan-based validation, matching the paper's PostgreSQL cost profile
  // (no secondary indexes on dimensions). The index-assisted ablation
  // lives in bench_micro_executor.
  PaleoOptions options;
  options.use_dimension_index = false;
  Paleo paleo(&table, options);
  std::printf("\n[%s]%34s %12s %12s %12s\n", name, "", "Step 1 (ms)",
              "Step 2 (ms)", "Step 3 (ms)");
  for (QueryFamily family : {QueryFamily::kMaxA, QueryFamily::kSumAB}) {
    std::vector<double> s1, s2, s3;
    for (int p = 1; p <= 3; ++p) {
      auto workload = MakeCellWorkload(table, family, p, /*k=*/10,
                                       env.queries_per_cell,
                                       seed_base + static_cast<uint64_t>(p));
      for (const WorkloadQuery& wq : workload) {
        QueryEval eval =
            EvaluateFull(&paleo, wq.list, ValidationStrategy::kSmart,
                         /*count_all_valid=*/false, env.max_executions,
                         /*max_predicate_size=*/p);
        s1.push_back(eval.timings.find_predicates_ms);
        s2.push_back(eval.timings.find_ranking_ms);
        s3.push_back(eval.timings.validation_ms);
      }
    }
    std::printf("%-40s %12.3f %12.3f %12.3f\n",
                QueryFamilyToString(family), Mean(s1), Mean(s2), Mean(s3));
  }
}

int Run() {
  Env env;
  PrintHeader("Figure 7: running times by step");
  Table tpch = BuildTpch(env);
  RunDataset("TPC-H", tpch, env, env.seed);
  Table ssb = BuildSsb(env);
  RunDataset("SSB", ssb, env, env.seed + 100);
  std::printf(
      "\nExpected shape (paper): step 3 >> steps 1-2 (orders of "
      "magnitude on TPC-H);\nSSB steps 1-2 cost more than TPC-H's "
      "because R' is ~10x larger.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace paleo

int main() { return paleo::bench::Run(); }
