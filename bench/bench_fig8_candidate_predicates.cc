// Figure 8: number of candidate predicates created, (a) by predicate
// size |P| and (b) by input list length k, for max(A) queries on both
// datasets.

#include <cstdio>

#include "harness.h"

namespace paleo {
namespace bench {
namespace {

double AvgPredicates(Paleo* paleo, const std::vector<WorkloadQuery>& wl,
                     int max_predicate_size) {
  std::vector<double> counts;
  for (const WorkloadQuery& wq : wl) {
    // Candidate predicates depend only on steps 1; skip validation cost
    // by capping executions at 1.
    QueryEval eval = EvaluateFull(paleo, wq.list,
                                  ValidationStrategy::kRanked,
                                  /*count_all_valid=*/false,
                                  /*max_executions=*/1,
                                  max_predicate_size);
    counts.push_back(static_cast<double>(eval.candidate_predicates));
  }
  return Mean(counts);
}

int Run() {
  Env env;
  PrintHeader("Figure 8: number of candidate predicates, max(A)");
  Table tpch = BuildTpch(env);
  Table ssb = BuildSsb(env);
  Paleo paleo_tpch(&tpch, PaleoOptions{});
  Paleo paleo_ssb(&ssb, PaleoOptions{});

  std::printf("\n(a) by predicate size (k = 10)\n");
  std::printf("%6s %12s %12s\n", "|P|", "TPC-H", "SSB");
  for (int p = 1; p <= 3; ++p) {
    double t = AvgPredicates(
        &paleo_tpch,
        MakeCellWorkload(tpch, QueryFamily::kMaxA, p, 10,
                         env.queries_per_cell, env.seed + p),
        p);
    double s = AvgPredicates(
        &paleo_ssb,
        MakeCellWorkload(ssb, QueryFamily::kMaxA, p, 10,
                         env.queries_per_cell, env.seed + 100 + p),
        p);
    std::printf("%6d %12.1f %12.1f\n", p, t, s);
  }

  std::printf("\n(b) by input list size (averaged over |P| in {1,2,3})\n");
  std::printf("%6s %12s %12s\n", "k", "TPC-H", "SSB");
  for (int k : {5, 10, 20, 50, 100}) {
    std::vector<double> t_all, s_all;
    for (int p = 1; p <= 3; ++p) {
      t_all.push_back(AvgPredicates(
          &paleo_tpch,
          MakeCellWorkload(tpch, QueryFamily::kMaxA, p, k,
                           env.queries_per_cell,
                           env.seed + static_cast<uint64_t>(31 * k + p)),
          p));
      s_all.push_back(AvgPredicates(
          &paleo_ssb,
          MakeCellWorkload(ssb, QueryFamily::kMaxA, p, k,
                           env.queries_per_cell,
                           env.seed +
                               static_cast<uint64_t>(1000 + 31 * k + p)),
          p));
    }
    std::printf("%6d %12.1f %12.1f\n", k, Mean(t_all), Mean(s_all));
  }
  std::printf(
      "\nExpected shape (paper): counts grow with |P|, shrink with k, "
      "and SSB\nyields far more candidates than TPC-H.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace paleo

int main() { return paleo::bench::Run(); }
