// Figure 9: percentage of input lists for which a valid query is
// discovered, by sample size, for sum(A+B) queries with |P| in
// {1,2,3}, on the augmented TPC-H relation. Single-column queries are
// also reported as a control (the paper finds them at every sample
// size).

#include <cstdio>

#include "harness.h"

namespace paleo {
namespace bench {
namespace {

double DiscoveryRate(Paleo* paleo, const std::vector<WorkloadQuery>& wl,
                     double fraction, const Env& env,
                     int max_predicate_size) {
  if (wl.empty()) return 0.0;
  int found = 0, total = 0;
  for (size_t i = 0; i < wl.size(); ++i) {
    // The paper repeats each sampled experiment three times and reports
    // the median; we average over three sampling seeds.
    for (uint64_t rep = 0; rep < 3; ++rep) {
      QueryEval eval = EvaluateSampled(
          paleo, wl[i].list, fraction, env.seed + 977 * i + rep,
          ValidationStrategy::kSmart, env.max_executions,
          max_predicate_size);
      found += eval.found ? 1 : 0;
      ++total;
    }
  }
  return 100.0 * static_cast<double>(found) / static_cast<double>(total);
}

int Run() {
  Env env;
  PrintHeader("Figure 9: valid query discovery rate vs. sample size "
              "(augmented TPC-H, sum(A+B))");
  Table table = BuildAugmentedTpch(env);
  Paleo paleo(&table, PaleoOptions{});

  std::printf("\nsum(A+B):\n%10s %8s %8s %8s\n", "sample %", "|P|=1",
              "|P|=2", "|P|=3");
  std::vector<std::vector<WorkloadQuery>> workloads;
  for (int p = 1; p <= 3; ++p) {
    workloads.push_back(MakeCellWorkload(table, QueryFamily::kSumAB, p, 10,
                                         env.queries_per_cell,
                                         env.seed + 3 * p));
  }
  for (double pct : {5.0, 10.0, 20.0, 30.0, 100.0}) {
    std::printf("%10.0f", pct);
    for (int p = 1; p <= 3; ++p) {
      std::printf(" %7.0f%%",
                  DiscoveryRate(&paleo, workloads[static_cast<size_t>(p - 1)],
                                pct / 100.0, env, p));
    }
    std::printf("\n");
  }

  std::printf("\ncontrol, max(A) (paper: 100%% at every sample size):\n");
  std::printf("%10s %8s\n", "sample %", "|P|=2");
  auto control = MakeCellWorkload(table, QueryFamily::kMaxA, 2, 10,
                                  env.queries_per_cell, env.seed + 77);
  for (double pct : {5.0, 10.0, 20.0, 30.0}) {
    std::printf("%10.0f %7.0f%%\n", pct,
                DiscoveryRate(&paleo, control, pct / 100.0, env, 2));
  }
  std::printf(
      "\nExpected shape (paper): discovery improves with sample size "
      "and degrades\nwith |P|; 100%% at sample >= 20%% for |P| <= 2.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace paleo

int main() { return paleo::bench::Run(); }
