// Live-table ingestion microbenchmarks (PR "epoch-versioned
// TableCatalog"): what a published snapshot costs and what ingestion
// does to serving latency.
//
//   BM_IngestPublish_Incremental  batch append -> next snapshot via
//                                 the incremental stats/index path
//   BM_IngestPublish_FullRebuild  same batch, full per-snapshot
//                                 rebuilds (incremental off)
//   BM_ServeStatic                one discovery run on a quiescent
//                                 catalog (the serving baseline)
//   BM_ServeWhileIngesting        the same run with a background
//                                 writer publishing snapshots the
//                                 whole time
//
// The ServeStatic/ServeWhileIngesting pair is the before/after
// recorded in BENCH_pr7.json by bench/run_benchmarks.sh: serving reads
// pin a snapshot and never contend with the writer beyond one briefly
// held publish lock, so the ratio must stay within noise
// (acceptance: <= 20%).

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "bench_env.h"
#include "catalog/ingestor.h"
#include "catalog/table_catalog.h"
#include "paleo/paleo.h"
#include "workload/workload.h"

namespace paleo {
namespace {

const Table& SharedTpch() {
  static Table table = [] {
    bench::Env env;
    env.scale_factor = std::min(env.scale_factor, 0.01);
    return bench::BuildTpch(env);
  }();
  return table;
}

/// The reverse-engineering input the serving benchmarks replay: the
/// first non-empty generated workload query.
const TopKList& ServingInput() {
  static TopKList input = [] {
    WorkloadOptions wl;
    wl.families = {QueryFamily::kMaxA};
    wl.predicate_sizes = {1};
    wl.ks = {10};
    wl.queries_per_config = 4;
    auto workload = WorkloadGen::Generate(SharedTpch(), wl);
    PALEO_CHECK(workload.ok()) << workload.status().ToString();
    for (WorkloadQuery& wq : *workload) {
      if (!wq.list.empty()) return std::move(wq.list);
    }
    PALEO_CHECK(false) << "no non-empty workload query at this SF";
    return TopKList();
  }();
  return input;
}

std::vector<std::vector<Value>> SampleBatch(const Table& table, size_t first,
                                            size_t n) {
  std::vector<std::vector<Value>> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const RowId r = static_cast<RowId>((first + i) % table.num_rows());
    std::vector<Value> row;
    row.reserve(static_cast<size_t>(table.num_columns()));
    for (int c = 0; c < table.num_columns(); ++c) {
      row.push_back(table.GetValue(r, c));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

/// One iteration = one batch appended and published. The catalog is
/// rebuilt (outside the timed region) once it grows past 2x the base
/// relation, so DeepCopy cost stays representative of a steady-state
/// live table instead of compounding across iterations.
void IngestPublish(benchmark::State& state, bool incremental) {
  const Table& base = SharedTpch();
  const size_t batch_rows = static_cast<size_t>(state.range(0));
  auto batch = SampleBatch(base, 0, batch_rows);

  IngestorOptions options;
  options.incremental = incremental;
  std::shared_ptr<TableCatalog> catalog;
  std::unique_ptr<Ingestor> ingestor;
  auto reset = [&] {
    catalog = std::make_shared<TableCatalog>(Table(base), PaleoOptions{});
    ingestor = std::make_unique<Ingestor>(catalog.get(), options);
  };
  reset();

  for (auto _ : state) {
    if (catalog->Current()->num_rows() > 2 * base.num_rows()) {
      state.PauseTiming();
      reset();
      state.ResumeTiming();
    }
    Status status = ingestor->Append(batch);
    PALEO_CHECK(status.ok()) << status.ToString();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch_rows));
  state.counters["published_versions"] = static_cast<double>(
      ingestor->stats().batches);
}

void BM_IngestPublish_Incremental(benchmark::State& state) {
  IngestPublish(state, /*incremental=*/true);
}
BENCHMARK(BM_IngestPublish_Incremental)->Arg(64)->Arg(512);

void BM_IngestPublish_FullRebuild(benchmark::State& state) {
  IngestPublish(state, /*incremental=*/false);
}
BENCHMARK(BM_IngestPublish_FullRebuild)->Arg(64)->Arg(512);

/// One iteration = one full reverse-engineering run against the
/// pinned current snapshot (exactly what a DiscoveryService worker
/// does per session).
void ServeLoop(benchmark::State& state, bool ingesting) {
  const Table& base = SharedTpch();
  auto catalog = std::make_shared<TableCatalog>(Table(base), PaleoOptions{});
  const TopKList& input = ServingInput();

  std::atomic<bool> stop{false};
  std::thread writer;
  if (ingesting) {
    writer = std::thread([&] {
      Ingestor ingestor(catalog.get());
      size_t cursor = 0;
      // Self-pacing: sleep ~8x the last publish duration, i.e. the
      // writer holds a ~1/9 duty cycle whatever the machine. Two
      // biases to keep out of the comparison: unbounded growth (the
      // pair must compare contention, not serving over a larger
      // relation — hence the 10% cap) and writer CPU monopolization
      // on small machines (a saturating writer on a single core
      // measures timesharing, not the publication protocol).
      const size_t max_rows = base.num_rows() + base.num_rows() / 10;
      auto pause = std::chrono::milliseconds(2);
      while (!stop.load(std::memory_order_relaxed)) {
        if (catalog->Current()->num_rows() < max_rows) {
          const auto start = std::chrono::steady_clock::now();
          Status status = ingestor.Append(SampleBatch(base, cursor, 64));
          PALEO_CHECK(status.ok()) << status.ToString();
          cursor += 64;
          pause = std::max(
              std::chrono::milliseconds(2),
              std::chrono::duration_cast<std::chrono::milliseconds>(
                  8 * (std::chrono::steady_clock::now() - start)));
        }
        std::this_thread::sleep_for(pause);
      }
    });
  }

  int64_t runs = 0;
  for (auto _ : state) {
    auto snapshot = catalog->Current();
    RunRequest request;
    request.input = &input;
    auto report = snapshot->engine().Run(request);
    PALEO_CHECK(report.ok()) << report.status().ToString();
    benchmark::DoNotOptimize(report->executed_queries);
    ++runs;
  }
  if (ingesting) {
    stop.store(true, std::memory_order_relaxed);
    writer.join();
    state.counters["versions_published"] =
        static_cast<double>(catalog->CurrentVersion() - 1);
  }
  state.SetItemsProcessed(runs);
}

void BM_ServeStatic(benchmark::State& state) {
  ServeLoop(state, /*ingesting=*/false);
}
BENCHMARK(BM_ServeStatic)->Unit(benchmark::kMillisecond);

void BM_ServeWhileIngesting(benchmark::State& state) {
  ServeLoop(state, /*ingesting=*/true);
}
BENCHMARK(BM_ServeWhileIngesting)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace paleo
