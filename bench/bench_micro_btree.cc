// Microbenchmarks for the B+ tree substrate: inserts, point lookups,
// range scans, and EntityIndex construction.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "datagen/traffic_gen.h"
#include "index/bplus_tree.h"
#include "index/entity_index.h"

namespace paleo {
namespace {

void BM_BTreeInsertSequential(benchmark::State& state) {
  const int64_t n = state.range(0);
  for (auto _ : state) {
    BPlusTree<int64_t, int64_t> tree;
    for (int64_t i = 0; i < n; ++i) tree.Insert(i, i);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BTreeInsertSequential)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BTreeInsertRandom(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<int64_t> keys;
  Rng rng(7);
  for (int64_t i = 0; i < n; ++i) {
    keys.push_back(static_cast<int64_t>(rng.Next()));
  }
  for (auto _ : state) {
    BPlusTree<int64_t, int64_t> tree;
    for (int64_t k : keys) tree.Insert(k, k);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BTreeInsertRandom)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BTreeLookup(benchmark::State& state) {
  const int64_t n = state.range(0);
  BPlusTree<int64_t, int64_t> tree;
  Rng rng(11);
  std::vector<int64_t> keys;
  for (int64_t i = 0; i < n; ++i) {
    int64_t k = static_cast<int64_t>(rng.Next() % (2 * n));
    keys.push_back(k);
    tree.Insert(k, i);
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Find(keys[i % keys.size()]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeLookup)->Arg(10000)->Arg(100000);

void BM_BTreeScan(benchmark::State& state) {
  const int64_t n = state.range(0);
  BPlusTree<int64_t, int64_t> tree;
  for (int64_t i = 0; i < n; ++i) tree.Insert(i, i);
  for (auto _ : state) {
    int64_t sum = 0;
    tree.Scan(0, n, [&](int64_t, int64_t v) {
      sum += v;
      return true;
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BTreeScan)->Arg(10000)->Arg(100000);

void BM_EntityIndexBuild(benchmark::State& state) {
  TrafficGenOptions options;
  options.num_customers = static_cast<int>(state.range(0));
  options.months_per_customer = 8;
  auto table = TrafficGen::Generate(options);
  for (auto _ : state) {
    EntityIndex index = EntityIndex::Build(*table);
    benchmark::DoNotOptimize(index.num_entities());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(table->num_rows()));
}
BENCHMARK(BM_EntityIndexBuild)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace paleo
