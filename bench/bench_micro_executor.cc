// Microbenchmarks for the query executor: full-scan filtering, grouped
// aggregation, and R'-restricted evaluation (the ablation behind
// DESIGN.md's "columnar R'" decision — aggregating a tuple-set slice
// versus scanning the base relation).

#include <benchmark/benchmark.h>

#include "bench_env.h"
#include "engine/executor.h"
#include "index/entity_index.h"

namespace paleo {
namespace {

const Table& SharedTpch() {
  static Table table = [] {
    bench::Env env;
    env.scale_factor = std::min(env.scale_factor, 0.01);
    return bench::BuildTpch(env);
  }();
  return table;
}

TopKQuery ExampleQuery(const Table& table, AggFn agg) {
  const Schema& schema = table.schema();
  TopKQuery q;
  q.predicate = Predicate::Atom(schema.FieldIndex("s_region"),
                                Value::String("ASIA"));
  q.expr = RankExpr::Column(schema.FieldIndex("o_totalprice"));
  q.agg = agg;
  q.k = 10;
  return q;
}

void BM_ExecutorFullScanMax(benchmark::State& state) {
  const Table& table = SharedTpch();
  Executor ex;
  TopKQuery q = ExampleQuery(table, AggFn::kMax);
  for (auto _ : state) {
    auto result = ex.Execute(table, q, ExecContext{});
    benchmark::DoNotOptimize(result.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(table.num_rows()));
}
BENCHMARK(BM_ExecutorFullScanMax);

void BM_ExecutorFullScanSumTwoColumns(benchmark::State& state) {
  const Table& table = SharedTpch();
  const Schema& schema = table.schema();
  Executor ex;
  TopKQuery q = ExampleQuery(table, AggFn::kSum);
  q.expr = RankExpr::Add(schema.FieldIndex("ps_supplycost"),
                         schema.FieldIndex("ps_availqty"));
  for (auto _ : state) {
    auto result = ex.Execute(table, q, ExecContext{});
    benchmark::DoNotOptimize(result.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(table.num_rows()));
}
BENCHMARK(BM_ExecutorFullScanSumTwoColumns);

void BM_ExecutorOnRPrimeSlice(benchmark::State& state) {
  // Evaluating a criterion over the in-memory R' slice: the cheap
  // operation PALEO performs hundreds of times per input list.
  const Table& table = SharedTpch();
  EntityIndex index = EntityIndex::Build(table);
  // ~10 entities' worth of rows.
  std::vector<std::string> entities;
  const StringDictionary& dict = *table.entity_column().dict();
  for (uint32_t c = 0; c < 10 && c < dict.size(); ++c) {
    entities.push_back(dict.Get(c));
  }
  std::vector<RowId> rows = index.LookupAll(entities);
  Table slice = table.Gather(rows);
  Executor ex;
  TopKQuery q = ExampleQuery(table, AggFn::kSum);
  q.predicate = Predicate();
  for (auto _ : state) {
    auto result = ex.Execute(slice, q, ExecContext{});
    benchmark::DoNotOptimize(result.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(slice.num_rows()));
}
BENCHMARK(BM_ExecutorOnRPrimeSlice);

void BM_CountMatching(benchmark::State& state) {
  const Table& table = SharedTpch();
  const Schema& schema = table.schema();
  Executor ex;
  Predicate p({{schema.FieldIndex("s_region"), Value::String("ASIA")},
               {schema.FieldIndex("l_shipmode"), Value::String("TRUCK")}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ex.CountMatching(table, p, ExecContext{}));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(table.num_rows()));
}
BENCHMARK(BM_CountMatching);

}  // namespace
}  // namespace paleo
