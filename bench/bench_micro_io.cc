// Microbenchmarks for relation persistence: CSV vs. the binary format,
// serialize and parse, plus the CRC cost.

#include <benchmark/benchmark.h>

#include "bench_env.h"
#include "io/binary_io.h"
#include "io/table_io.h"

namespace paleo {
namespace {

const Table& SharedTable() {
  static Table table = [] {
    bench::Env env;
    env.scale_factor = std::min(env.scale_factor, 0.005);
    return bench::BuildTpch(env);
  }();
  return table;
}

void BM_CsvSerialize(benchmark::State& state) {
  const Table& table = SharedTable();
  for (auto _ : state) {
    benchmark::DoNotOptimize(TableIo::ToCsv(table));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(table.num_rows()));
}
BENCHMARK(BM_CsvSerialize);

void BM_CsvParse(benchmark::State& state) {
  std::string csv = TableIo::ToCsv(SharedTable());
  for (auto _ : state) {
    auto table = TableIo::FromCsv(csv);
    benchmark::DoNotOptimize(table.ok());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(csv.size()));
}
BENCHMARK(BM_CsvParse);

void BM_BinarySerialize(benchmark::State& state) {
  const Table& table = SharedTable();
  for (auto _ : state) {
    benchmark::DoNotOptimize(BinaryIo::Serialize(table));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(table.num_rows()));
}
BENCHMARK(BM_BinarySerialize);

void BM_BinaryParse(benchmark::State& state) {
  std::string bytes = BinaryIo::Serialize(SharedTable());
  for (auto _ : state) {
    auto table = BinaryIo::Deserialize(bytes);
    benchmark::DoNotOptimize(table.ok());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes.size()));
}
BENCHMARK(BM_BinaryParse);

void BM_Crc32(benchmark::State& state) {
  std::string bytes = BinaryIo::Serialize(SharedTable());
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32(bytes.data(), bytes.size()));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes.size()));
}
BENCHMARK(BM_Crc32);

}  // namespace
}  // namespace paleo
