// Microbenchmarks for the predicate miner plus the tuple-set grouping
// ablation: evaluating ranking criteria once per distinct tuple set
// versus once per predicate (DESIGN.md Section 4.1 decision).

#include <benchmark/benchmark.h>

#include "bench_env.h"
#include "harness.h"
#include "paleo/predicate_miner.h"
#include "paleo/ranking_finder.h"

namespace paleo {
namespace {

struct MinerFixture {
  Table table;
  EntityIndex index;
  StatsCatalog catalog;
  TopKList list;
  RPrime rprime;

  static const MinerFixture& Get() {
    static MinerFixture* fixture = [] {
      bench::Env env;
      env.scale_factor = std::min(env.scale_factor, 0.01);
      Table table = bench::BuildTpch(env);
      EntityIndex index = EntityIndex::Build(table);
      StatsCatalog catalog = StatsCatalog::Build(table);
      auto workload = bench::MakeCellWorkload(
          table, QueryFamily::kMaxA, /*predicate_size=*/2, /*k=*/10,
          /*count=*/1, env.seed);
      PALEO_CHECK(!workload.empty());
      TopKList list = workload[0].list;
      auto rprime = RPrime::Build(table, index, list);
      PALEO_CHECK(rprime.ok());
      return new MinerFixture{std::move(table), std::move(index),
                              std::move(catalog), std::move(list),
                              *std::move(rprime)};
    }();
    return *fixture;
  }
};

void BM_MinePredicates(benchmark::State& state) {
  const MinerFixture& f = MinerFixture::Get();
  PaleoOptions options;
  options.max_predicate_size = static_cast<int>(state.range(0));
  PredicateMiner miner(f.rprime, options);
  for (auto _ : state) {
    auto result = miner.Mine();
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_MinePredicates)->Arg(1)->Arg(2)->Arg(3);

void BM_RankingPerTupleSet_Grouped(benchmark::State& state) {
  // The shipped design: each distinct tuple set is evaluated once.
  const MinerFixture& f = MinerFixture::Get();
  PaleoOptions options;
  PredicateMiner miner(f.rprime, options);
  auto mining = miner.Mine();
  PALEO_CHECK(mining.ok());
  RankingFinder finder(f.rprime, &f.catalog, options);
  for (auto _ : state) {
    auto rankings = finder.Find(mining->groups, f.list, true);
    benchmark::DoNotOptimize(rankings.ok());
  }
  state.counters["tuple_sets"] =
      static_cast<double>(mining->groups.size());
  state.counters["predicates"] =
      static_cast<double>(mining->predicates.size());
}
BENCHMARK(BM_RankingPerTupleSet_Grouped);

void BM_RankingPerTupleSet_Ungrouped(benchmark::State& state) {
  // Ablation: pretend every predicate has its own tuple set (no
  // Section 4.1 grouping), multiplying criterion evaluations.
  const MinerFixture& f = MinerFixture::Get();
  PaleoOptions options;
  PredicateMiner miner(f.rprime, options);
  auto mining = miner.Mine();
  PALEO_CHECK(mining.ok());
  // One synthetic group per predicate.
  std::vector<PredicateGroup> ungrouped;
  for (const MinedPredicate& p : mining->predicates) {
    ungrouped.push_back(
        mining->groups[static_cast<size_t>(p.group_id)]);
  }
  RankingFinder finder(f.rprime, &f.catalog, options);
  for (auto _ : state) {
    auto rankings = finder.Find(ungrouped, f.list, true);
    benchmark::DoNotOptimize(rankings.ok());
  }
  state.counters["tuple_sets"] = static_cast<double>(ungrouped.size());
}
BENCHMARK(BM_RankingPerTupleSet_Ungrouped);

void BM_TupleSetIntersection(benchmark::State& state) {
  // Sorted-vector intersection at miner-realistic sizes.
  const int64_t n = state.range(0);
  TupleSet a, b;
  Rng rng(3);
  for (int64_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.5)) a.push_back(static_cast<RowId>(i));
    if (rng.Bernoulli(0.3)) b.push_back(static_cast<RowId>(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntersectSorted(a, b));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(a.size() + b.size()));
}
BENCHMARK(BM_TupleSetIntersection)->Arg(1000)->Arg(100000);

void BM_TupleSetIntersectionSkewed(benchmark::State& state) {
  // Galloping path: |a| << |b|.
  const int64_t n = state.range(0);
  TupleSet a, b;
  for (int64_t i = 0; i < n; ++i) b.push_back(static_cast<RowId>(i));
  for (int64_t i = 0; i < n; i += 997) a.push_back(static_cast<RowId>(i));
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntersectSorted(a, b));
  }
}
BENCHMARK(BM_TupleSetIntersectionSkewed)->Arg(100000);

}  // namespace
}  // namespace paleo
