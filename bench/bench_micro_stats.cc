// Microbenchmarks for the statistics substrate and the ranking
// identification ablation (stats-guided Figure 4 walk vs. pure R'
// fallback).

#include <benchmark/benchmark.h>

#include "bench_env.h"
#include "harness.h"
#include "paleo/predicate_miner.h"
#include "paleo/ranking_finder.h"
#include "stats/distance.h"

namespace paleo {
namespace {

struct StatsFixture {
  Table table;
  EntityIndex index;
  StatsCatalog catalog;
  TopKList list;
  RPrime rprime;
  MiningResult mining;

  static const StatsFixture& Get() {
    static StatsFixture* fixture = [] {
      bench::Env env;
      env.scale_factor = std::min(env.scale_factor, 0.01);
      Table table = bench::BuildTpch(env);
      EntityIndex index = EntityIndex::Build(table);
      StatsCatalog catalog = StatsCatalog::Build(table);
      auto workload = bench::MakeCellWorkload(
          table, QueryFamily::kMaxA, /*predicate_size=*/2, /*k=*/10,
          /*count=*/1, env.seed);
      PALEO_CHECK(!workload.empty());
      TopKList list = workload[0].list;
      auto rprime = RPrime::Build(table, index, list);
      PALEO_CHECK(rprime.ok());
      PaleoOptions options;
      PredicateMiner miner(*rprime, options);
      auto mining = miner.Mine();
      PALEO_CHECK(mining.ok());
      return new StatsFixture{std::move(table),    std::move(index),
                              std::move(catalog),  std::move(list),
                              *std::move(rprime),  *std::move(mining)};
    }();
    return *fixture;
  }
};

void BM_HistogramBuild(benchmark::State& state) {
  const StatsFixture& f = StatsFixture::Get();
  int col = f.table.schema().measure_indices()[0];
  for (auto _ : state) {
    Histogram h = Histogram::Build(f.table.column(col), 1000);
    benchmark::DoNotOptimize(h.total_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.table.num_rows()));
}
BENCHMARK(BM_HistogramBuild);

void BM_HistogramSample(benchmark::State& state) {
  const StatsFixture& f = StatsFixture::Get();
  int col = f.table.schema().measure_indices()[0];
  Histogram h = Histogram::Build(f.table.column(col), 1000);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.Sample(&rng, 100));
  }
}
BENCHMARK(BM_HistogramSample);

void BM_TopEntityListBuild(benchmark::State& state) {
  const StatsFixture& f = StatsFixture::Get();
  int col = f.table.schema().measure_indices()[0];
  for (auto _ : state) {
    TopEntityList top = TopEntityList::Build(f.table, col, 1000);
    benchmark::DoNotOptimize(top.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.table.num_rows()));
}
BENCHMARK(BM_TopEntityListBuild);

void BM_CatalogBuild(benchmark::State& state) {
  const StatsFixture& f = StatsFixture::Get();
  for (auto _ : state) {
    StatsCatalog catalog = StatsCatalog::Build(f.table);
    benchmark::DoNotOptimize(catalog.table_rows());
  }
}
BENCHMARK(BM_CatalogBuild);

void BM_RankingStatsGuided(benchmark::State& state) {
  // The shipped Figure 4 walk: top-entity lists and histograms narrow
  // the candidate columns before touching R'.
  const StatsFixture& f = StatsFixture::Get();
  PaleoOptions options;
  RankingFinder finder(f.rprime, &f.catalog, options);
  for (auto _ : state) {
    auto rankings = finder.Find(f.mining.groups, f.list, true);
    benchmark::DoNotOptimize(rankings.ok());
  }
}
BENCHMARK(BM_RankingStatsGuided);

void BM_RankingFallbackOnly(benchmark::State& state) {
  // Ablation: no catalog — every criterion validated over R' directly.
  const StatsFixture& f = StatsFixture::Get();
  PaleoOptions options;
  RankingFinder finder(f.rprime, nullptr, options);
  for (auto _ : state) {
    auto rankings = finder.Find(f.mining.groups, f.list, true);
    benchmark::DoNotOptimize(rankings.ok());
  }
}
BENCHMARK(BM_RankingFallbackOnly);

void BM_KendallTau(benchmark::State& state) {
  std::vector<std::string> a, b;
  for (int i = 0; i < 100; ++i) {
    a.push_back("e" + std::to_string(i));
    b.push_back("e" + std::to_string(100 - i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(KendallTauTopK(a, b, 0.5));
  }
}
BENCHMARK(BM_KendallTau);

void BM_EarthMoversDistance(benchmark::State& state) {
  const StatsFixture& f = StatsFixture::Get();
  const auto& measures = f.table.schema().measure_indices();
  Histogram a = Histogram::Build(f.table.column(measures[0]), 1000);
  Histogram b = Histogram::Build(f.table.column(measures[1]), 1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EarthMoversDistance(a, b));
  }
}
BENCHMARK(BM_EarthMoversDistance);

}  // namespace
}  // namespace paleo
