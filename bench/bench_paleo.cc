// End-to-end pipeline benchmark under the observability layer's three
// states: off (null handles), metrics registry attached, and metrics
// plus span tracing. The obs-off variant is the baseline every other
// number is judged against — the nullable-handle convention promises
// that disabled instrumentation costs one well-predicted branch per
// would-be event, so obs_off must sit within noise of the pre-obs
// pipeline and the metrics variant within a couple percent of obs_off.
//
// Also measures the raw per-event cost of the disabled and enabled
// handle paths in isolation (BM_DisabledEventCost / BM_EnabledEventCost)
// — nanoseconds against the pipeline's microsecond-scale work items.
//
// bench/run_benchmarks.sh runs this binary with --benchmark_out to
// produce the machine-readable BENCH_pr3.json checked in at the repo
// root.

#include <benchmark/benchmark.h>

#include "bench_env.h"
#include "obs/metrics.h"
#include "paleo/paleo.h"
#include "paleo/pipeline_metrics.h"
#include "workload/workload.h"

namespace paleo {
namespace {

/// One shared relation + engine + hidden query; built once. Scale is
/// capped so an iteration stays in the low milliseconds — we are
/// measuring instrumentation overhead, not TPC-H.
struct Fixture {
  Table table;
  Paleo paleo;
  TopKList list;

  Fixture(Table t, TopKList l)
      : table(std::move(t)),
        paleo(&table, PaleoOptions{}),
        list(std::move(l)) {}
};

Fixture& SharedFixture() {
  static Fixture* fixture = [] {
    bench::Env env;
    env.scale_factor = std::min(env.scale_factor, 0.003);
    Table table = bench::BuildTpch(env);
    WorkloadOptions wl;
    wl.families = {QueryFamily::kMaxA};
    wl.predicate_sizes = {2};
    wl.ks = {10};
    wl.queries_per_config = 1;
    auto workload = WorkloadGen::Generate(table, wl);
    PALEO_CHECK(workload.ok() && !workload->empty());
    TopKList list = (*workload)[0].list;
    return new Fixture(std::move(table), std::move(list));
  }();
  return *fixture;
}

void RunOnce(benchmark::State& state, obs::MetricsRegistry* registry,
             bool collect_trace) {
  Fixture& f = SharedFixture();
  int64_t executed = 0;
  for (auto _ : state) {
    RunRequest request;
    request.input = &f.list;
    request.metrics = registry;
    request.collect_trace = collect_trace;
    auto report = f.paleo.Run(request);
    PALEO_CHECK(report.ok() && report->found());
    executed += report->executed_queries;
    benchmark::DoNotOptimize(report->executed_queries);
  }
  state.SetItemsProcessed(executed);
}

void BM_ReverseEngineer_ObsOff(benchmark::State& state) {
  RunOnce(state, nullptr, false);
}
BENCHMARK(BM_ReverseEngineer_ObsOff)->Unit(benchmark::kMillisecond);

void BM_ReverseEngineer_Metrics(benchmark::State& state) {
  obs::MetricsRegistry registry;
  RunOnce(state, &registry, false);
}
BENCHMARK(BM_ReverseEngineer_Metrics)->Unit(benchmark::kMillisecond);

void BM_ReverseEngineer_MetricsAndTrace(benchmark::State& state) {
  obs::MetricsRegistry registry;
  RunOnce(state, &registry, true);
}
BENCHMARK(BM_ReverseEngineer_MetricsAndTrace)
    ->Unit(benchmark::kMillisecond);

/// The disabled path in isolation: one counter event plus one
/// histogram event through null handles.
void BM_DisabledEventCost(benchmark::State& state) {
  PipelineMetrics metrics = PipelineMetrics::Bind(nullptr);
  for (auto _ : state) {
    obs::Inc(metrics.candidates_executed);
    obs::Observe(metrics.run_ms, 1.0);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_DisabledEventCost);

/// The enabled path: same two events against live instruments.
void BM_EnabledEventCost(benchmark::State& state) {
  obs::MetricsRegistry registry;
  PipelineMetrics metrics = PipelineMetrics::Bind(&registry);
  for (auto _ : state) {
    obs::Inc(metrics.candidates_executed);
    obs::Observe(metrics.run_ms, 1.0);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_EnabledEventCost);

}  // namespace
}  // namespace paleo
