// Microbenchmarks for chunked storage and morsel-parallel scans (PR
// "chunked columnar storage + zone maps + morsel scans"): single
// candidate-query full scans over TPC-H at PALEO_SF, sequential vs
// morsel-parallel at increasing scan_threads, plus a zone-map ablation
// over a clustered table where per-chunk min/max actually refutes.
//
//   FullScan_Sequential     one vectorized scan on the calling thread
//   FullScan_Parallel/N     same scan, chunks claimed by N pool workers
//   SelectiveScan_NoSkip    selective scan, zone maps ignored
//   SelectiveScan_ZoneSkip  selective scan, refuted chunks skipped
//
// The Sequential/Parallel pair is the before/after recorded in
// BENCH_pr8.json by bench/run_benchmarks.sh (BENCH_BIN=
// bench_scan_parallel). Parallel speedups need real cores; the
// chunks_skipped counter is reported either way. PALEO_CHUNK_ROWS
// (default 8192) sizes chunks so even small PALEO_SF tables decompose
// into enough morsels to scale.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>

#include "bench_env.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "engine/exec_context.h"
#include "engine/executor.h"

namespace paleo {
namespace {

size_t ChunkRows() {
  return static_cast<size_t>(bench::EnvInt("PALEO_CHUNK_ROWS", 8192));
}

const Table& SharedTpch() {
  static Table table = [] {
    bench::Env env;
    Table t = bench::BuildTpch(env);
    t.SetChunkRows(ChunkRows());
    return t;
  }();
  return table;
}

/// An unselective aggregation query: every chunk survives zone
/// refutation, so wall-clock measures pure scan throughput.
TopKQuery ScanQuery(const Table& table) {
  TopKQuery q;
  q.expr = RankExpr::Column(table.schema().FieldIndex("o_totalprice"));
  q.agg = AggFn::kSum;
  q.k = 10;
  return q;
}

void BM_FullScan_Sequential(benchmark::State& state) {
  const Table& table = SharedTpch();
  const TopKQuery q = ScanQuery(table);
  Executor ex;
  for (auto _ : state) {
    auto result = ex.Execute(table, q, ExecContext{});
    benchmark::DoNotOptimize(result.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(table.num_rows()));
  state.counters["chunks"] = static_cast<double>(table.num_chunks());
}
BENCHMARK(BM_FullScan_Sequential);

void BM_FullScan_Parallel(benchmark::State& state) {
  const Table& table = SharedTpch();
  const TopKQuery q = ScanQuery(table);
  const int threads = static_cast<int>(state.range(0));
  ThreadPool pool(static_cast<size_t>(threads));
  Executor ex;
  for (auto _ : state) {
    auto result = ex.Execute(
        table, q, ExecContext{.pool = &pool, .scan_threads = threads});
    benchmark::DoNotOptimize(result.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(table.num_rows()));
  state.counters["chunks"] = static_cast<double>(table.num_chunks());
}
BENCHMARK(BM_FullScan_Parallel)->Arg(2)->Arg(4)->Arg(8);

/// Clustered table for the zone-map ablation: rows arrive in ascending
/// `day` order (the natural layout of ingested time-series), so a
/// narrow day range refutes almost every chunk from its min/max alone.
const Table& SharedClustered() {
  static Table table = [] {
    bench::Env env;
    const size_t rows = std::max<size_t>(
        65536, static_cast<size_t>(1e6 * env.scale_factor));
    auto schema = Schema::Make({
        {"entity", DataType::kString, FieldRole::kEntity},
        {"day", DataType::kInt64, FieldRole::kDimension},
        {"value", DataType::kDouble, FieldRole::kMeasure},
    });
    PALEO_CHECK(schema.ok()) << "clustered schema";
    Table t(*schema, ChunkRows());
    Rng rng(env.seed);
    const int64_t days = 512;
    for (size_t r = 0; r < rows; ++r) {
      const int64_t day =
          static_cast<int64_t>(r * static_cast<size_t>(days) / rows);
      PALEO_CHECK(
          t.AppendRow({Value::String("e" + std::to_string(rng.Uniform(64))),
                       Value::Int64(day),
                       Value::Double(rng.UniformDouble(0.0, 1000.0))})
              .ok())
          << "clustered append";
    }
    return t;
  }();
  return table;
}

TopKQuery SelectiveQuery(const Table& table) {
  TopKQuery q;
  const int day = table.schema().FieldIndex("day");
  // ~1/64 of the day range: with clustered chunks nearly every chunk's
  // [min, max] misses the window entirely.
  q.predicate = Predicate({AtomicPredicate::Range(day, Value::Int64(256),
                                                  Value::Int64(263))});
  q.expr = RankExpr::Column(table.schema().FieldIndex("value"));
  q.agg = AggFn::kSum;
  q.k = 10;
  return q;
}

void RunSelective(benchmark::State& state, bool zone_skip) {
  const Table& table = SharedClustered();
  const TopKQuery q = SelectiveQuery(table);
  Executor ex;
  for (auto _ : state) {
    auto result = ex.Execute(
        table, q, ExecContext{.zone_map_skipping = zone_skip});
    benchmark::DoNotOptimize(result.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(table.num_rows()));
  state.counters["chunks_skipped"] = static_cast<double>(
      ex.stats().chunks_skipped.load(std::memory_order_relaxed) /
      std::max<int64_t>(1, state.iterations()));
  state.counters["chunks"] = static_cast<double>(table.num_chunks());
}

void BM_SelectiveScan_NoSkip(benchmark::State& state) {
  RunSelective(state, /*zone_skip=*/false);
}
BENCHMARK(BM_SelectiveScan_NoSkip);

void BM_SelectiveScan_ZoneSkip(benchmark::State& state) {
  RunSelective(state, /*zone_skip=*/true);
}
BENCHMARK(BM_SelectiveScan_ZoneSkip);

}  // namespace
}  // namespace paleo
