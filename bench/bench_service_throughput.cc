// Serving throughput: requests/second and latency percentiles of the
// DiscoveryService at 1, 4, and hardware-concurrency workers, over the
// Table 6 example workload (closed-loop clients, one outstanding
// request each).
//
// Every finished report is checked against the single-threaded
// baseline (identical first valid query and identical committed
// execution count) — concurrency must never change answers.
//
// Scaling caveat: worker counts beyond the machine's core count cannot
// speed anything up. The binary prints hardware_concurrency; the
// expected ~linear speedup at 4 workers (sessions are read-only and
// share nothing mutable) only materializes on >= 4 real cores.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_env.h"
#include "catalog/table_catalog.h"
#include "engine/topk_list.h"
#include "paleo/paleo.h"
#include "service/discovery_service.h"
#include "workload/workload.h"

namespace paleo {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

struct Reference {
  std::string first_valid_sql;
  int64_t executed_queries = 0;
};

struct RunResult {
  double elapsed_s = 0.0;
  std::vector<double> latencies_ms;
  int64_t mismatches = 0;
  int64_t failures = 0;
};

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

/// Closed loop: `num_clients` threads, each submitting its share of
/// `total_requests` one at a time and waiting for completion.
RunResult DriveService(const Table& table,
                       const std::vector<WorkloadQuery>& workload,
                       const std::vector<Reference>& references,
                       int num_workers, int num_clients,
                       int total_requests) {
  DiscoveryServiceOptions service_options;
  service_options.num_workers = num_workers;
  service_options.queue_capacity =
      static_cast<size_t>(total_requests);  // never shed in this bench
  DiscoveryService service(
      std::make_shared<TableCatalog>(Table(table), PaleoOptions{}),
      service_options);

  RunResult result;
  std::vector<std::vector<double>> per_client_latencies(
      static_cast<size_t>(num_clients));
  std::atomic<int64_t> mismatches{0};
  std::atomic<int64_t> failures{0};
  std::atomic<int> next_request{0};

  Clock::time_point start = Clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      for (;;) {
        int r = next_request.fetch_add(1);
        if (r >= total_requests) break;
        const size_t wi = static_cast<size_t>(r) % workload.size();
        Clock::time_point submitted = Clock::now();
        ServiceRequest request;
        request.input = workload[wi].list;
        auto session = service.Submit(std::move(request));
        if (!session.ok()) {
          failures.fetch_add(1);
          continue;
        }
        SessionState state = (*session)->Wait();
        per_client_latencies[static_cast<size_t>(c)].push_back(
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      submitted)
                .count());
        const ReverseEngineerReport* report = (*session)->report();
        if (state != SessionState::kDone || report == nullptr ||
            !report->found()) {
          failures.fetch_add(1);
          continue;
        }
        const Reference& ref = references[wi];
        if (report->valid[0].query.ToSql(table.schema()) !=
                ref.first_valid_sql ||
            report->executed_queries != ref.executed_queries) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  result.elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  for (auto& lat : per_client_latencies) {
    result.latencies_ms.insert(result.latencies_ms.end(), lat.begin(),
                               lat.end());
  }
  std::sort(result.latencies_ms.begin(), result.latencies_ms.end());
  result.mismatches = mismatches.load();
  result.failures = failures.load();
  return result;
}

int Run() {
  Env env;
  PrintHeader("Serving throughput: DiscoveryService over Table 6 workload");
  Table tpch = BuildTpch(env);

  auto examples = WorkloadGen::PaperExamples(tpch, /*ssb=*/false, /*k=*/10);
  PALEO_CHECK(examples.ok()) << examples.status().ToString();

  // At small PALEO_SF the most selective Table 6 predicates can leave
  // an empty result list — drop those (the selectivity, not the list,
  // is the scale-dependent quantity; see bench_table6_queries).
  std::vector<WorkloadQuery> usable;
  Paleo paleo(&tpch, PaleoOptions{});
  std::vector<Reference> references;
  for (WorkloadQuery& wq : *examples) {
    if (wq.list.empty()) {
      std::printf("skipping %s: empty list at SF %.4f\n", wq.name.c_str(),
                  env.scale_factor);
      continue;
    }
    RunRequest reference_request;
    reference_request.input = &wq.list;
    auto report = paleo.Run(reference_request);
    PALEO_CHECK(report.ok()) << report.status().ToString();
    PALEO_CHECK(report->found()) << wq.name;
    Reference ref;
    ref.first_valid_sql = report->valid[0].query.ToSql(tpch.schema());
    ref.executed_queries = report->executed_queries;
    references.push_back(ref);
    usable.push_back(std::move(wq));
  }
  PALEO_CHECK(!usable.empty()) << "no usable workload at this SF";
  auto workload = &usable;

  const int hw = ThreadPool::DefaultNumThreads();
  const int total_requests =
      std::max(32, env.queries_per_cell * 16);
  std::printf("relation rows      : %zu\n", tpch.num_rows());
  std::printf("workload queries   : %zu (cycled to %d requests/config)\n",
              workload->size(), total_requests);
  std::printf("hardware threads   : %d%s\n\n", hw,
              hw < 4 ? "  [NOTE: <4 cores; multi-worker speedup is "
                       "not observable on this machine]"
                     : "");

  std::vector<int> worker_counts;
  for (int w : {1, 4, hw}) {
    if (std::find(worker_counts.begin(), worker_counts.end(), w) ==
        worker_counts.end()) {
      worker_counts.push_back(w);
    }
  }

  std::printf("%-8s %-8s %10s %10s %10s %9s %10s\n", "workers", "clients",
              "req/s", "p50 ms", "p99 ms", "speedup", "identical");
  double base_rps = 0.0;
  for (int workers : worker_counts) {
    const int clients = std::max(2 * workers, 4);
    RunResult r = DriveService(tpch, *workload, references, workers,
                               clients, total_requests);
    PALEO_CHECK(r.failures == 0) << r.failures << " requests failed";
    const double rps =
        static_cast<double>(total_requests) / r.elapsed_s;
    if (base_rps == 0.0) base_rps = rps;
    std::printf("%-8d %-8d %10.2f %10.3f %10.3f %8.2fx %10s\n", workers,
                clients, rps, Percentile(r.latencies_ms, 0.50),
                Percentile(r.latencies_ms, 0.99), rps / base_rps,
                r.mismatches == 0 ? "yes" : "NO");
    PALEO_CHECK(r.mismatches == 0)
        << r.mismatches << " reports diverged from single-threaded run";
  }
  std::printf(
      "\nAll reports identical to the single-threaded baseline.\n"
      "Sessions share one immutable Table/EntityIndex/StatsCatalog;\n"
      "throughput scales with workers up to the physical core count.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace paleo

int main() { return paleo::bench::Run(); }
