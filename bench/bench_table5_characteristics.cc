// Table 5: characteristics of the denormalized relation R for TPC-H
// and SSB — tuple count, entity count, textual / non-key numerical
// column counts, and tuples-per-entity statistics.

#include <cstdio>

#include "bench_env.h"
#include "common/string_util.h"
#include "index/entity_index.h"

namespace paleo {
namespace bench {
namespace {

struct Characteristics {
  int64_t tuples;
  int64_t entities;
  int textual;
  int numerical;
  double avg_per_entity;
  int64_t max_per_entity;
};

Characteristics Measure(const Table& table) {
  EntityIndex index = EntityIndex::Build(table);
  Characteristics c;
  c.tuples = static_cast<int64_t>(table.num_rows());
  c.entities = static_cast<int64_t>(index.num_entities());
  c.textual = table.schema().num_textual_columns();
  c.numerical = table.schema().num_measure_columns();
  c.avg_per_entity = index.AvgPostingLength();
  c.max_per_entity = static_cast<int64_t>(index.MaxPostingLength());
  return c;
}

int Run() {
  Env env;
  PrintHeader("Table 5: Table R characteristics (PALEO_SF=" +
              std::to_string(env.scale_factor) + ")");
  Table tpch = BuildTpch(env);
  Table ssb = BuildSsb(env);
  Characteristics a = Measure(tpch);
  Characteristics b = Measure(ssb);

  std::printf("%-32s %14s %14s\n", "", "TPC-H", "SSB");
  std::printf("%-32s %14s %14s\n", "# Tuples",
              WithThousands(a.tuples).c_str(),
              WithThousands(b.tuples).c_str());
  std::printf("%-32s %14s %14s\n", "# Entities",
              WithThousands(a.entities).c_str(),
              WithThousands(b.entities).c_str());
  std::printf("%-32s %14d %14d\n", "# Textual columns", a.textual,
              b.textual);
  std::printf("%-32s %14d %14d\n", "# Non-key numerical columns",
              a.numerical, b.numerical);
  std::printf("%-32s %14.0f %14.0f\n", "# Avg tuples per entity",
              a.avg_per_entity, b.avg_per_entity);
  std::printf("%-32s %14s %14s\n", "Highest # tuples per entity",
              WithThousands(a.max_per_entity).c_str(),
              WithThousands(b.max_per_entity).c_str());
  std::printf(
      "\nPaper (SF 1): 5,313,609 / 6,001,171 tuples; 171,753 / 20,000 "
      "entities;\n27 / 28 textual; 13 / 20 numerical; 31 / 300 avg; "
      "187 / 579 max.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace paleo

int main() { return paleo::bench::Run(); }
