// Table 6: the example queries and their measured selectivities, over
// this repo's TPC-H-like and SSB-like relations.

#include <cstdio>

#include "bench_env.h"
#include "workload/workload.h"

namespace paleo {
namespace bench {
namespace {

void Report(const Table& table, bool ssb) {
  auto examples = WorkloadGen::PaperExamples(table, ssb, /*k=*/5);
  PALEO_CHECK(examples.ok()) << examples.status().ToString();
  for (const WorkloadQuery& wq : *examples) {
    std::printf("%-44s sel. %.6f  (|L| = %zu)\n", wq.name.c_str(),
                wq.selectivity, wq.list.size());
    std::printf("  %s\n", wq.query.ToSql(table.schema()).c_str());
  }
}

int Run() {
  Env env;
  PrintHeader("Table 6: example queries and their selectivity");
  Table tpch = BuildTpch(env);
  Report(tpch, /*ssb=*/false);
  Table ssb = BuildSsb(env);
  Report(ssb, /*ssb=*/true);
  std::printf(
      "\nPaper selectivities (SF 1): 0.001, 0.0001 (TPC-H); 0.002, "
      "0.00003 (SSB).\nAt small PALEO_SF very selective predicates may "
      "yield |L| < k; the\nselectivity column is the comparable "
      "quantity.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace paleo

int main() { return paleo::bench::Run(); }
