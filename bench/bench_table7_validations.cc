// Table 7: number of candidate query validations until the first
// valid query — smart vs. ranked — plus #candidates and #valid, by
// sample size and predicate size, for max(A) and sum(A+B) queries on
// the augmented TPC-H relation.

#include <cstdio>

#include "harness.h"

namespace paleo {
namespace bench {
namespace {

int Run() {
  Env env;
  PrintHeader("Table 7: candidate query validations by sample and "
              "predicate size (augmented TPC-H)");
  Table table = BuildAugmentedTpch(env);
  Paleo paleo(&table, PaleoOptions{});

  for (QueryFamily family : {QueryFamily::kMaxA, QueryFamily::kSumAB}) {
    std::printf("\nselect Ae, %s\n", QueryFamilyToString(family));
    std::printf("%4s %9s %8s %8s %12s %8s %6s\n", "|P|", "sample%",
                "smart", "ranked", "#candidates", "#valid", "n");
    for (int p = 1; p <= 3; ++p) {
      auto workload = MakeCellWorkload(table, family, p, /*k=*/10,
                                       env.queries_per_cell,
                                       env.seed + 17 * p);
      for (double pct : {5.0, 10.0, 20.0, 30.0, 100.0}) {
        std::vector<double> smart, ranked, cands, valids;
        for (size_t i = 0; i < workload.size(); ++i) {
          const TopKList& list = workload[i].list;
          if (pct >= 100.0) {
            QueryEval full =
                EvaluateFull(&paleo, list, ValidationStrategy::kRanked,
                             /*count_all_valid=*/true,
                             env.max_executions, p);
            QueryEval s =
                EvaluateFull(&paleo, list, ValidationStrategy::kSmart,
                             /*count_all_valid=*/false,
                             env.max_executions, p);
            if (!full.found) continue;
            smart.push_back(
                static_cast<double>(s.executions_to_first_valid));
            ranked.push_back(
                static_cast<double>(full.executions_to_first_valid));
            cands.push_back(static_cast<double>(full.candidate_queries));
            valids.push_back(static_cast<double>(full.valid_queries));
            continue;
          }
          uint64_t sample_seed = env.seed + 131 * i + 3;
          QueryEval s = EvaluateSampled(&paleo, list, pct / 100.0,
                                        sample_seed,
                                        ValidationStrategy::kSmart,
                                        env.max_executions, p);
          QueryEval r = EvaluateSampled(&paleo, list, pct / 100.0,
                                        sample_seed,
                                        ValidationStrategy::kRanked,
                                        env.max_executions, p);
          if (!s.found || !r.found) continue;
          smart.push_back(
              static_cast<double>(s.executions_to_first_valid));
          ranked.push_back(
              static_cast<double>(r.executions_to_first_valid));
          cands.push_back(static_cast<double>(r.candidate_queries));
        }
        if (valids.empty()) {
          std::printf("%4d %9.0f %8.1f %8.1f %12.1f %8s %6zu\n", p, pct,
                      Mean(smart), Mean(ranked), Mean(cands), "-",
                      smart.size());
        } else {
          std::printf("%4d %9.0f %8.1f %8.1f %12.1f %8.1f %6zu\n", p, pct,
                      Mean(smart), Mean(ranked), Mean(cands),
                      Mean(valids), smart.size());
        }
      }
    }
  }
  std::printf(
      "\nExpected shape (paper): fewer validations with larger samples; "
      "more with\nlarger |P|; smart <= ranked, with the biggest gaps at "
      "small samples and\nfor sum(A+B); #candidates shrinks as the "
      "sample grows.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace paleo

int main() { return paleo::bench::Run(); }
