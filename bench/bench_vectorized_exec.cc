// Microbenchmarks for the vectorized execution layer (PR "vectorized
// kernels + atom-selection cache"): one iteration replays a
// validation-shaped workload — a set of candidate queries whose
// conjunctions are built from a small shared pool of predicate atoms,
// exactly the shape apriori mining produces — through three executor
// configurations:
//
//   Scalar            row-at-a-time BoundPredicate::Matches scan
//   Vectorized        per-atom selection kernels + word-wise AND
//   VectorizedCached  kernels + per-run AtomSelectionCache (each atom
//                     scanned once per run, then bitmap AND only)
//
// The Scalar/VectorizedCached pair is the before/after recorded in
// BENCH_pr5.json by bench/run_benchmarks.sh.

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_env.h"
#include "engine/atom_cache.h"
#include "engine/executor.h"

namespace paleo {
namespace {

const Table& SharedTpch() {
  static Table table = [] {
    bench::Env env;
    env.scale_factor = std::min(env.scale_factor, 0.01);
    return bench::BuildTpch(env);
  }();
  return table;
}

/// Atom pool drawn from actual table contents (one frequent-ish value
/// per dimension column), so selections are non-trivial.
std::vector<AtomicPredicate> AtomPool(const Table& table) {
  const char* columns[] = {"c_mktsegment", "c_region",     "o_orderpriority",
                           "o_orderstatus", "l_shipmode",  "l_returnflag",
                           "l_linestatus",  "o_quarter"};
  std::vector<AtomicPredicate> pool;
  for (const char* name : columns) {
    const int col = table.schema().FieldIndex(name);
    if (col < 0) continue;
    const Column& c = table.column(col);
    pool.emplace_back(col, Value::String(c.dict()->Get(c.CodeAt(0))));
  }
  return pool;
}

/// The candidate set of a validation run: every single atom, plus
/// distinct-column pairs and triples from the pool — heavy atom reuse,
/// as in apriori level-wise mining.
std::vector<TopKQuery> CandidateSet(const Table& table) {
  const std::vector<AtomicPredicate> pool = AtomPool(table);
  const int measure = table.schema().FieldIndex("o_totalprice");
  std::vector<TopKQuery> candidates;
  auto add = [&](std::vector<AtomicPredicate> atoms) {
    TopKQuery q;
    q.predicate = Predicate(std::move(atoms));
    q.expr = RankExpr::Column(measure);
    q.agg = AggFn::kMax;
    q.k = 10;
    candidates.push_back(std::move(q));
  };
  for (const AtomicPredicate& a : pool) add({a});
  for (size_t i = 0; i < pool.size(); ++i) {
    for (size_t j = i + 1; j < pool.size() && j < i + 3; ++j) {
      add({pool[i], pool[j]});
      if (j + 1 < pool.size()) add({pool[i], pool[j], pool[j + 1]});
    }
  }
  return candidates;
}

enum class Mode { kScalar, kVectorized, kVectorizedCached };

void RunCandidates(benchmark::State& state, Mode mode) {
  const Table& table = SharedTpch();
  const std::vector<TopKQuery> candidates = CandidateSet(table);
  Executor ex;
  ex.SetVectorized(mode != Mode::kScalar);
  for (auto _ : state) {
    // One validation run: a fresh cache shared across its candidates.
    AtomSelectionCache cache(static_cast<size_t>(32) << 20);
    AtomSelectionCache* cache_ptr =
        mode == Mode::kVectorizedCached ? &cache : nullptr;
    for (const TopKQuery& q : candidates) {
      auto result = ex.Execute(table, q, ExecContext{.cache = cache_ptr});
      benchmark::DoNotOptimize(result.ok());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(candidates.size()) *
                          static_cast<int64_t>(table.num_rows()));
}

void BM_RepeatedCandidates_Scalar(benchmark::State& state) {
  RunCandidates(state, Mode::kScalar);
}
BENCHMARK(BM_RepeatedCandidates_Scalar);

void BM_RepeatedCandidates_Vectorized(benchmark::State& state) {
  RunCandidates(state, Mode::kVectorized);
}
BENCHMARK(BM_RepeatedCandidates_Vectorized);

void BM_RepeatedCandidates_VectorizedCached(benchmark::State& state) {
  RunCandidates(state, Mode::kVectorizedCached);
}
BENCHMARK(BM_RepeatedCandidates_VectorizedCached);

void RunCounts(benchmark::State& state, Mode mode) {
  const Table& table = SharedTpch();
  const std::vector<TopKQuery> candidates = CandidateSet(table);
  Executor ex;
  ex.SetVectorized(mode != Mode::kScalar);
  for (auto _ : state) {
    AtomSelectionCache cache(static_cast<size_t>(32) << 20);
    AtomSelectionCache* cache_ptr =
        mode == Mode::kVectorizedCached ? &cache : nullptr;
    size_t total = 0;
    for (const TopKQuery& q : candidates) {
      total += ex.CountMatching(table, q.predicate, ExecContext{.cache = cache_ptr});
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(candidates.size()) *
                          static_cast<int64_t>(table.num_rows()));
}

void BM_CountMatching_Scalar(benchmark::State& state) {
  RunCounts(state, Mode::kScalar);
}
BENCHMARK(BM_CountMatching_Scalar);

void BM_CountMatching_Vectorized(benchmark::State& state) {
  RunCounts(state, Mode::kVectorized);
}
BENCHMARK(BM_CountMatching_Vectorized);

void BM_CountMatching_VectorizedCached(benchmark::State& state) {
  RunCounts(state, Mode::kVectorizedCached);
}
BENCHMARK(BM_CountMatching_VectorizedCached);

}  // namespace
}  // namespace paleo
