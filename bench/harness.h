// Experiment harness utilities shared by the figure benches: evaluate
// one input list under the different validation regimes and aggregate
// per-cell statistics.

#ifndef PALEO_BENCH_HARNESS_H_
#define PALEO_BENCH_HARNESS_H_

#include <optional>
#include <vector>

#include "bench_env.h"
#include "paleo/paleo.h"
#include "workload/workload.h"

namespace paleo {
namespace bench {

/// \brief Everything the figure benches need from one reverse-
/// engineering run of one input list.
struct QueryEval {
  bool found = false;
  int64_t executions_to_first_valid = 0;
  int64_t candidate_queries = 0;
  int64_t candidate_predicates = 0;
  int64_t tuple_sets = 0;
  /// Number of valid queries among the candidates (only measured when
  /// `count_all_valid` was requested — the paper reports it only for
  /// complete R').
  int64_t valid_queries = -1;
  StepTimings timings;
};

/// Runs PALEO over the full R' for `input`.
///
/// `max_predicate_size` caps the apriori search at the experiment
/// cell's |P|, the paper's protocol (its per-|P| candidate counts are
/// only consistent with size-capped mining).
///
/// With `count_all_valid`, validation enumerates all candidates with
/// ranked order, yielding both the #valid denominator of the paper's
/// "expected" baseline and the ranked executions-to-first-valid (the
/// position of the first valid query is the same whether or not we
/// stop there).
inline QueryEval EvaluateFull(Paleo* paleo, const TopKList& input,
                              ValidationStrategy strategy,
                              bool count_all_valid,
                              int64_t max_executions,
                              int max_predicate_size = 3) {
  PaleoOptions options = paleo->options();
  options.max_predicate_size = max_predicate_size;
  options.include_empty_predicate = false;  // match the paper's counts
  options.validation_strategy = strategy;
  options.stop_at_first_valid = !count_all_valid;
  options.max_query_executions = count_all_valid ? 0 : max_executions;
  RunRequest request;
  request.input = &input;
  request.options_override = &options;
  request.executor = paleo->executor();
  auto report = paleo->Run(request);
  PALEO_CHECK(report.ok()) << report.status().ToString();

  QueryEval eval;
  eval.found = report->found();
  eval.executions_to_first_valid =
      report->found() ? report->valid.front().executions_at_discovery : 0;
  eval.candidate_queries = report->candidate_queries;
  eval.candidate_predicates = report->candidate_predicates;
  eval.tuple_sets = report->tuple_sets;
  if (count_all_valid) {
    eval.valid_queries = static_cast<int64_t>(report->valid.size());
  }
  eval.timings = report->timings;
  return eval;
}

/// Runs PALEO on a uniform-per-entity sample of R'.
inline QueryEval EvaluateSampled(Paleo* paleo, const TopKList& input,
                                 double sample_fraction, uint64_t seed,
                                 ValidationStrategy strategy,
                                 int64_t max_executions,
                                 int max_predicate_size = 3) {
  PaleoOptions options = paleo->options();
  options.max_predicate_size = max_predicate_size;
  options.include_empty_predicate = false;  // match the paper's counts
  options.validation_strategy = strategy;
  options.stop_at_first_valid = true;
  options.max_query_executions = max_executions;

  auto sample = Sampler::UniformPerEntity(
      paleo->index(), input.DistinctEntities(), sample_fraction, seed);
  PALEO_CHECK(sample.ok()) << sample.status().ToString();
  RunRequest request;
  request.input = &input;
  request.sample_rows = &*sample;
  request.sample_fraction = sample_fraction;
  request.options_override = &options;
  request.executor = paleo->executor();
  auto report = paleo->Run(request);
  PALEO_CHECK(report.ok()) << report.status().ToString();

  QueryEval eval;
  eval.found = report->found();
  eval.executions_to_first_valid =
      report->found() ? report->valid.front().executions_at_discovery : 0;
  eval.candidate_queries = report->candidate_queries;
  eval.candidate_predicates = report->candidate_predicates;
  eval.tuple_sets = report->tuple_sets;
  eval.timings = report->timings;
  return eval;
}

/// Generates the per-cell workload used throughout the figures.
inline std::vector<WorkloadQuery> MakeCellWorkload(
    const Table& table, QueryFamily family, int predicate_size, int k,
    int count, uint64_t seed) {
  WorkloadOptions options;
  options.families = {family};
  options.predicate_sizes = {predicate_size};
  options.ks = {k};
  options.queries_per_config = count;
  options.seed = seed;
  auto workload = WorkloadGen::Generate(table, options);
  PALEO_CHECK(workload.ok()) << workload.status().ToString();
  return *std::move(workload);
}

}  // namespace bench
}  // namespace paleo

#endif  // PALEO_BENCH_HARNESS_H_
