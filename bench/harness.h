// Experiment harness utilities shared by the figure benches: evaluate
// one input list under the different validation regimes and aggregate
// per-cell statistics.

#ifndef PALEO_BENCH_HARNESS_H_
#define PALEO_BENCH_HARNESS_H_

#include <optional>
#include <vector>

#include "bench_env.h"
#include "paleo/paleo.h"
#include "workload/workload.h"

namespace paleo {
namespace bench {

/// \brief Everything the figure benches need from one reverse-
/// engineering run of one input list.
struct QueryEval {
  bool found = false;
  int64_t executions_to_first_valid = 0;
  int64_t candidate_queries = 0;
  int64_t candidate_predicates = 0;
  int64_t tuple_sets = 0;
  /// Number of valid queries among the candidates (only measured when
  /// `count_all_valid` was requested — the paper reports it only for
  /// complete R').
  int64_t valid_queries = -1;
  StepTimings timings;
};

/// Runs PALEO over the full R' for `input`.
///
/// `max_predicate_size` caps the apriori search at the experiment
/// cell's |P|, the paper's protocol (its per-|P| candidate counts are
/// only consistent with size-capped mining).
///
/// With `count_all_valid`, validation enumerates all candidates with
/// ranked order, yielding both the #valid denominator of the paper's
/// "expected" baseline and the ranked executions-to-first-valid (the
/// position of the first valid query is the same whether or not we
/// stop there).
inline QueryEval EvaluateFull(Paleo* paleo, const TopKList& input,
                              ValidationStrategy strategy,
                              bool count_all_valid,
                              int64_t max_executions,
                              int max_predicate_size = 3) {
  PaleoOptions options = paleo->options();
  options.max_predicate_size = max_predicate_size;
  options.include_empty_predicate = false;  // match the paper's counts
  options.validation_strategy = strategy;
  options.stop_at_first_valid = !count_all_valid;
  options.max_query_executions = count_all_valid ? 0 : max_executions;
  RunRequest request;
  request.input = &input;
  request.options_override = &options;
  request.executor = paleo->executor();
  auto report = paleo->Run(request);
  PALEO_CHECK(report.ok()) << report.status().ToString();

  QueryEval eval;
  eval.found = report->found();
  eval.executions_to_first_valid =
      report->found() ? report->valid.front().executions_at_discovery : 0;
  eval.candidate_queries = report->candidate_queries;
  eval.candidate_predicates = report->candidate_predicates;
  eval.tuple_sets = report->tuple_sets;
  if (count_all_valid) {
    eval.valid_queries = static_cast<int64_t>(report->valid.size());
  }
  eval.timings = report->timings;
  return eval;
}

/// Runs PALEO on a uniform-per-entity sample of R'.
inline QueryEval EvaluateSampled(Paleo* paleo, const TopKList& input,
                                 double sample_fraction, uint64_t seed,
                                 ValidationStrategy strategy,
                                 int64_t max_executions,
                                 int max_predicate_size = 3) {
  PaleoOptions options = paleo->options();
  options.max_predicate_size = max_predicate_size;
  options.include_empty_predicate = false;  // match the paper's counts
  options.validation_strategy = strategy;
  options.stop_at_first_valid = true;
  options.max_query_executions = max_executions;

  auto sample = Sampler::UniformPerEntity(
      paleo->index(), input.DistinctEntities(), sample_fraction, seed);
  PALEO_CHECK(sample.ok()) << sample.status().ToString();
  RunRequest request;
  request.input = &input;
  request.sample_rows = &*sample;
  request.sample_fraction = sample_fraction;
  request.options_override = &options;
  request.executor = paleo->executor();
  auto report = paleo->Run(request);
  PALEO_CHECK(report.ok()) << report.status().ToString();

  QueryEval eval;
  eval.found = report->found();
  eval.executions_to_first_valid =
      report->found() ? report->valid.front().executions_at_discovery : 0;
  eval.candidate_queries = report->candidate_queries;
  eval.candidate_predicates = report->candidate_predicates;
  eval.tuple_sets = report->tuple_sets;
  eval.timings = report->timings;
  return eval;
}

/// Generates the per-cell workload used throughout the figures.
inline std::vector<WorkloadQuery> MakeCellWorkload(
    const Table& table, QueryFamily family, int predicate_size, int k,
    int count, uint64_t seed) {
  WorkloadOptions options;
  options.families = {family};
  options.predicate_sizes = {predicate_size};
  options.ks = {k};
  options.queries_per_config = count;
  options.seed = seed;
  auto workload = WorkloadGen::Generate(table, options);
  PALEO_CHECK(workload.ok()) << workload.status().ToString();
  return *std::move(workload);
}

// ---- Threshold-pruning + shared-aggregation ablation --------------------

/// \brief One (family, |P|) cell of the ablation: validation wall-clock
/// with threshold pruning + aggregate sharing off vs on, plus the
/// pruner's side counters. Both configurations validate the identical
/// candidate schedule (refuted executions count as executions), so the
/// wall-clock ratio isolates the optimization.
struct AblationCell {
  std::string dataset;
  std::string family;
  int predicate_size = 0;
  int k = 0;
  int64_t valid = 0;
  double validation_ms_off = 0.0;
  double validation_ms_prune = 0.0;
  double validation_ms_share = 0.0;
  double validation_ms_on = 0.0;
  int64_t executions = 0;
  int64_t refuted_early = 0;
  int64_t rows_saved = 0;
  double speedup() const {
    return validation_ms_on > 0.0 ? validation_ms_off / validation_ms_on
                                  : 0.0;
  }
};

/// Runs one executions-dominated validation: ranked strategy, every
/// candidate enumerated (stop_at_first_valid off), scan-based (the
/// ablation Paleo instance is built without the dimension index), with
/// the pruning and sharing knobs set independently.
inline ReverseEngineerReport RunScanValidation(const Paleo& paleo,
                                               const TopKList& input,
                                               bool pruning, bool sharing,
                                               int max_predicate_size) {
  PaleoOptions options = paleo.options();
  options.max_predicate_size = max_predicate_size;
  options.include_empty_predicate = false;
  options.validation_strategy = ValidationStrategy::kRanked;
  options.stop_at_first_valid = false;
  options.threshold_pruning = pruning;
  options.share_aggregates = sharing;
  RunRequest request;
  request.input = &input;
  request.options_override = &options;
  // Private per-request executor: honors the instance's index-off
  // configuration and keeps the two configurations' stats separate.
  auto report = paleo.Run(request);
  PALEO_CHECK(report.ok()) << report.status().ToString();
  return *std::move(report);
}

/// The executions-dominated ablation over one relation: scan-based
/// validation on a finely chunked copy (2048-row chunks, so both the
/// chunk-granular abort and the per-chunk partials cache engage), full
/// candidate enumeration, knobs off vs on. Asserts the two
/// configurations validate the identical candidate set.
inline void RunThresholdAblation(const Table& base, const char* dataset,
                                 const Env& env,
                                 std::vector<AblationCell>* cells) {
  Table chunked = base.DeepCopy();
  chunked.SetChunkRows(2048);
  PaleoOptions options;
  options.use_dimension_index = false;
  // The extended criteria search (min/count) widens each group's
  // candidate set — the population where pruning refutes the wrong
  // criteria cheaply and the partials tier serves every aggregate over
  // one (conjunction, expression) pair from a single cached scan.
  options.enable_min_count = true;
  Paleo paleo(&chunked, options);

  std::printf("\n[%s] threshold pruning + shared aggregation ablation "
              "(scan-based, all candidates)\n", dataset);
  std::printf("%8s %4s %4s %10s %10s %10s %10s %8s %6s %6s %8s %12s\n",
              "family", "|P|", "k", "off-ms", "prune-ms", "share-ms",
              "both-ms", "speedup", "execs", "valid", "refuted",
              "rows-saved");
  for (QueryFamily family : {QueryFamily::kMaxA, QueryFamily::kSumAB}) {
    for (int p = 1; p <= 2; ++p) {
      for (int k : {10, 50}) {
        auto workload = MakeCellWorkload(chunked, family, p, k,
                                         env.queries_per_cell,
                                         env.seed + 500 +
                                             static_cast<uint64_t>(p));
        AblationCell cell;
        cell.dataset = dataset;
        cell.family = QueryFamilyToString(family);
        cell.predicate_size = p;
        cell.k = k;
        for (const WorkloadQuery& wq : workload) {
          ReverseEngineerReport off =
              RunScanValidation(paleo, wq.list, false, false, p);
          ReverseEngineerReport prune =
              RunScanValidation(paleo, wq.list, true, false, p);
          ReverseEngineerReport share =
              RunScanValidation(paleo, wq.list, false, true, p);
          ReverseEngineerReport on =
              RunScanValidation(paleo, wq.list, true, true, p);
          // The soundness contract, asserted where the numbers are
          // made: identical valid sets and identical execution
          // schedules.
          PALEO_CHECK(off.valid.size() == on.valid.size());
          PALEO_CHECK(off.executed_queries == on.executed_queries);
          PALEO_CHECK(off.valid.size() == prune.valid.size());
          PALEO_CHECK(off.valid.size() == share.valid.size());
          cell.validation_ms_off += off.timings.validation_ms;
          cell.validation_ms_prune += prune.timings.validation_ms;
          cell.validation_ms_share += share.timings.validation_ms;
          cell.validation_ms_on += on.timings.validation_ms;
          cell.executions += on.executed_queries;
          cell.valid += static_cast<int64_t>(on.valid.size());
          cell.refuted_early += on.executions_aborted_early;
          cell.rows_saved += on.rows_saved;
        }
        std::printf("%8s %4d %4d %10.1f %10.1f %10.1f %10.1f %7.1fx "
                    "%6lld %6lld %8lld %12lld\n",
                    cell.family.c_str(), p, k, cell.validation_ms_off,
                    cell.validation_ms_prune, cell.validation_ms_share,
                    cell.validation_ms_on, cell.speedup(),
                    static_cast<long long>(cell.executions),
                    static_cast<long long>(cell.valid),
                    static_cast<long long>(cell.refuted_early),
                    static_cast<long long>(cell.rows_saved));
        cells->push_back(std::move(cell));
      }
    }
  }
}

/// Writes the ablation cells as JSON to $PALEO_JSON_OUT (no-op when the
/// variable is unset) for bench/run_benchmarks.sh and the BENCH_*.json
/// artifacts.
inline void WriteAblationJson(const char* experiment,
                              const std::vector<AblationCell>& cells) {
  const char* path = std::getenv("PALEO_JSON_OUT");
  if (path == nullptr) return;
  FILE* f = std::fopen(path, "w");
  PALEO_CHECK(f != nullptr) << "cannot open " << path;
  std::fprintf(f, "{\n  \"experiment\": \"%s\",\n  \"cells\": [\n",
               experiment);
  for (size_t i = 0; i < cells.size(); ++i) {
    const AblationCell& c = cells[i];
    std::fprintf(
        f,
        "    {\"dataset\": \"%s\", \"family\": \"%s\", "
        "\"predicate_size\": %d, \"k\": %d, "
        "\"validation_ms_off\": %.3f, "
        "\"validation_ms_prune\": %.3f, \"validation_ms_share\": %.3f, "
        "\"validation_ms_on\": %.3f, \"speedup\": %.3f, "
        "\"executions\": %lld, \"valid\": %lld, "
        "\"refuted_early\": %lld, \"rows_saved\": %lld}%s\n",
        c.dataset.c_str(), c.family.c_str(), c.predicate_size, c.k,
        c.validation_ms_off, c.validation_ms_prune, c.validation_ms_share,
        c.validation_ms_on, c.speedup(),
        static_cast<long long>(c.executions),
        static_cast<long long>(c.valid),
        static_cast<long long>(c.refuted_early),
        static_cast<long long>(c.rows_saved),
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace bench
}  // namespace paleo

#endif  // PALEO_BENCH_HARNESS_H_
