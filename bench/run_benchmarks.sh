#!/usr/bin/env bash
# Runs the observability benchmark (bench_paleo) and writes its
# machine-readable results as google-benchmark JSON, then prints the
# relative overhead of the metrics / metrics+trace variants against the
# obs-off baseline.
#
#   bench/run_benchmarks.sh [output.json]
#
# Environment:
#   BUILD_DIR      cmake build tree (default: build)
#   BENCH_ARGS     extra google-benchmark flags, e.g.
#                  "--benchmark_repetitions=5"
#   PALEO_SF etc.  forwarded to the bench fixture (see bench_env.h)
set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build}"
OUT="${1:-BENCH_pr3.json}"
BIN="${BUILD_DIR}/bench/bench_paleo"

if [[ ! -x "${BIN}" ]]; then
  echo "error: ${BIN} not built (cmake --build ${BUILD_DIR} --target bench_paleo)" >&2
  exit 1
fi

"${BIN}" \
  --benchmark_out="${OUT}" \
  --benchmark_out_format=json \
  ${BENCH_ARGS:-}

echo
echo "wrote ${OUT}"

# Overhead summary relative to the obs-off baseline (best-effort; the
# JSON itself is the artifact).
if command -v python3 >/dev/null 2>&1; then
  python3 - "${OUT}" <<'EOF'
import json, sys

from statistics import median

with open(sys.argv[1]) as f:
    data = json.load(f)
times = {}
for b in data["benchmarks"]:
    if b.get("run_type", "iteration") == "iteration":
        times.setdefault(b["name"], []).append(b["real_time"])
base = times.get("BM_ReverseEngineer_ObsOff")
if base:
    for name in ("BM_ReverseEngineer_Metrics",
                 "BM_ReverseEngineer_MetricsAndTrace"):
        if name in times:
            pct = (median(times[name]) / median(base) - 1.0) * 100.0
            print(f"{name}: {pct:+.2f}% vs obs-off baseline (medians)")
EOF
fi
