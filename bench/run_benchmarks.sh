#!/usr/bin/env bash
# Runs a google-benchmark binary and writes its machine-readable results
# as JSON, then prints a comparison summary appropriate for the binary:
#   bench_paleo           -> obs overhead vs the obs-off baseline
#   bench_vectorized_exec -> scalar vs vectorized(+cache) speedups
#   bench_scan_parallel   -> sequential vs morsel-parallel full scans
#                            + zone-map skip ablation
#   bench_ingest          -> serving-while-ingesting vs static serving
#                            (<= 20% acceptance) + publish latencies
#   bench_fig5_* / bench_fig6_*
#                         -> threshold-pruning + shared-aggregation
#                            ablation (off vs on validation wall-clock;
#                            these are figure binaries, not
#                            google-benchmark — JSON comes from the
#                            binary's own PALEO_JSON_OUT writer)
#
#   bench/run_benchmarks.sh [output.json]
#
# Environment:
#   BUILD_DIR      cmake build tree (default: build)
#   BENCH_BIN      benchmark binary name (default: bench_paleo)
#   BENCH_ARGS     extra google-benchmark flags, e.g.
#                  "--benchmark_repetitions=5"
#   PALEO_SF etc.  forwarded to the bench fixture (see bench_env.h)
set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build}"
BENCH_BIN="${BENCH_BIN:-bench_paleo}"
OUT="${1:-BENCH_pr3.json}"
BIN="${BUILD_DIR}/bench/${BENCH_BIN}"

if [[ ! -x "${BIN}" ]]; then
  echo "error: ${BIN} not built (cmake --build ${BUILD_DIR} --target ${BENCH_BIN})" >&2
  exit 1
fi

# Figure binaries (plain mains, no google-benchmark flags): the fig5 /
# fig6 ablation writes its own JSON via PALEO_JSON_OUT; summarize that.
case "${BENCH_BIN}" in
  bench_fig5_*|bench_fig6_*)
    PALEO_JSON_OUT="${OUT}" "${BIN}"
    if command -v python3 >/dev/null 2>&1; then
      python3 - "${OUT}" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    data = json.load(f)
cells = data.get("cells", [])
for c in cells:
    print(f"{c['dataset']} {c['family']} |P|={c['predicate_size']}: "
          f"{c['speedup']:.2f}x validation speedup "
          f"({c['validation_ms_off']:.1f} ms -> "
          f"{c['validation_ms_on']:.1f} ms, "
          f"refuted {c['refuted_early']}, "
          f"rows saved {c['rows_saved']})")
if cells:
    best = max(c["speedup"] for c in cells)
    verdict = "OK (>= 5x)" if best >= 5.0 else "BELOW BAR (< 5x)"
    print(f"best cell: {best:.2f}x - {verdict}")
EOF
    fi
    exit 0
    ;;
esac

"${BIN}" \
  --benchmark_out="${OUT}" \
  --benchmark_out_format=json \
  ${BENCH_ARGS:-}

echo
echo "wrote ${OUT}"

# Comparison summary (best-effort; the JSON itself is the artifact).
if command -v python3 >/dev/null 2>&1; then
  python3 - "${OUT}" <<'EOF'
import json, sys

from statistics import median

with open(sys.argv[1]) as f:
    data = json.load(f)
times = {}
for b in data["benchmarks"]:
    if b.get("run_type", "iteration") == "iteration":
        times.setdefault(b["name"], []).append(b["real_time"])

base = times.get("BM_ReverseEngineer_ObsOff")
if base:
    for name in ("BM_ReverseEngineer_Metrics",
                 "BM_ReverseEngineer_MetricsAndTrace"):
        if name in times:
            pct = (median(times[name]) / median(base) - 1.0) * 100.0
            print(f"{name}: {pct:+.2f}% vs obs-off baseline (medians)")

for family in ("BM_RepeatedCandidates", "BM_CountMatching"):
    scalar = times.get(f"{family}_Scalar")
    if not scalar:
        continue
    for variant in ("Vectorized", "VectorizedCached"):
        name = f"{family}_{variant}"
        if name in times:
            speedup = median(scalar) / median(times[name])
            print(f"{name}: {speedup:.2f}x vs {family}_Scalar (medians)")

scan_seq = times.get("BM_FullScan_Sequential")
if scan_seq:
    for name in sorted(times):
        if name.startswith("BM_FullScan_Parallel"):
            speedup = median(scan_seq) / median(times[name])
            print(f"{name}: {speedup:.2f}x vs BM_FullScan_Sequential "
                  f"(medians)")
noskip = times.get("BM_SelectiveScan_NoSkip")
skip = times.get("BM_SelectiveScan_ZoneSkip")
if noskip and skip:
    speedup = median(noskip) / median(skip)
    print(f"BM_SelectiveScan_ZoneSkip: {speedup:.2f}x vs "
          f"BM_SelectiveScan_NoSkip (medians)")

static_serve = times.get("BM_ServeStatic")
live_serve = times.get("BM_ServeWhileIngesting")
if static_serve and live_serve:
    ratio = (median(live_serve) / median(static_serve) - 1.0) * 100.0
    verdict = "OK (<= 20%)" if ratio <= 20.0 else "REGRESSION (> 20%)"
    print(f"BM_ServeWhileIngesting: {ratio:+.2f}% vs BM_ServeStatic "
          f"(medians) - {verdict}")
for name, runs in sorted(times.items()):
    if name.startswith("BM_IngestPublish_"):
        print(f"{name}: publish latency median "
              f"{median(runs) / 1e6:.3f} ms")
EOF
fi
