// Command-line PALEO: reverse engineer top-k queries from files.
//
//   paleo_cli <relation.csv> <topk_list.csv> [options]
//
// The relation is either CSV with the self-describing header of
// io/table_io.h ("name:STRING:ENTITY,state:STRING:DIM,...") or the
// binary format of io/binary_io.h (detected by magic); the list is
// "entity,value" rows (optional header). Options:
//
//   --all            enumerate all valid queries (default: stop at the
//                    first one)
//   --partial        accept approximate matches (Section 3.3)
//   --max-pred N     cap conjunction size (default 3)
//   --budget N       cap candidate-query executions per validation pass
//                    (default unlimited; stops silently, paper's knob)
//   --timeout-ms N   wall-clock deadline for the whole run; on expiry
//                    prints the queries validated in time plus the best
//                    unvalidated candidates as near misses
//   --max-executions N
//                    governed cap on executions across all validation
//                    passes; like --timeout-ms, degrades gracefully
//                    with near misses instead of stopping silently
//   --sep C          field separator for both files (default ',')
//   --execute SQL    skip reverse engineering: run the given template
//                    query over the relation and print its result list
//                    (the second positional argument is then optional)
//   --verbose        print a step-by-step explanation of the run
//   --trace-out F    record a structured span trace of the run and
//                    write it as JSON to file F ('-' for stdout)
//
// Exit status: 0 on success (valid queries found, or --execute ran),
// 1 when no valid query was found or any input failed to load/parse
// (the reason goes to stderr), 2 on usage errors.
//
// Examples (after `cmake --build build`):
//   ./build/examples/paleo_cli relation.csv list.csv --all
//   ./build/examples/paleo_cli relation.csv --execute "SELECT name,
//       max(minutes) FROM R WHERE state = 'CA' GROUP BY name ORDER BY
//       max(minutes) DESC LIMIT 5" (one line)

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "engine/sql_parser.h"
#include "paleo/explain.h"
#include "io/binary_io.h"
#include "io/table_io.h"
#include "paleo/paleo.h"

namespace {

/// Loads a relation in either format: the binary magic selects
/// BinaryIo, anything else parses as CSV.
paleo::StatusOr<paleo::Table> LoadRelation(const std::string& path,
                                           char sep) {
  std::ifstream probe(path, std::ios::binary);
  char magic[4] = {0, 0, 0, 0};
  probe.read(magic, 4);
  if (probe.gcount() == 4 && std::memcmp(magic, "PALB", 4) == 0) {
    return paleo::BinaryIo::ReadFile(path);
  }
  return paleo::TableIo::ReadCsvFile(path, sep);
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <relation.csv> [<topk_list.csv>] [--all] "
               "[--partial] [--max-pred N] [--budget N] [--timeout-ms N] "
               "[--max-executions N] [--sep C] [--execute SQL] "
               "[--verbose] [--trace-out FILE]\n",
               argv0);
  return 2;
}

/// Strict integer flag parsing: rejects trailing garbage and negatives
/// instead of silently reading 0 like atoi would.
bool ParseInt64Flag(const char* flag, const char* text, int64_t* out) {
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0' || v < 0) {
    std::fprintf(stderr, "%s: expected a non-negative integer, got '%s'\n",
                 flag, text);
    return false;
  }
  *out = static_cast<int64_t>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace paleo;
  if (argc < 2) return Usage(argv[0]);
  const char* relation_path = argv[1];
  const char* list_path = nullptr;
  const char* execute_sql = nullptr;
  int first_flag = 2;
  if (argc >= 3 && argv[2][0] != '-') {
    list_path = argv[2];
    first_flag = 3;
  }

  PaleoOptions options;
  char sep = ',';
  bool verbose = false;
  const char* trace_out = nullptr;
  for (int i = first_flag; i < argc; ++i) {
    if (std::strcmp(argv[i], "--execute") == 0 && i + 1 < argc) {
      execute_sql = argv[++i];
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--all") == 0) {
      options.stop_at_first_valid = false;
    } else if (std::strcmp(argv[i], "--partial") == 0) {
      options.match_mode = MatchMode::kPartial;
    } else if (std::strcmp(argv[i], "--max-pred") == 0 && i + 1 < argc) {
      int64_t v = 0;
      if (!ParseInt64Flag("--max-pred", argv[++i], &v)) return 2;
      options.max_predicate_size = static_cast<int>(v);
    } else if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc) {
      if (!ParseInt64Flag("--budget", argv[++i],
                          &options.max_query_executions)) {
        return 2;
      }
    } else if (std::strcmp(argv[i], "--timeout-ms") == 0 && i + 1 < argc) {
      if (!ParseInt64Flag("--timeout-ms", argv[++i],
                          &options.deadline_ms)) {
        return 2;
      }
    } else if (std::strcmp(argv[i], "--max-executions") == 0 &&
               i + 1 < argc) {
      if (!ParseInt64Flag("--max-executions", argv[++i],
                          &options.max_validation_executions)) {
        return 2;
      }
    } else if (std::strcmp(argv[i], "--sep") == 0 && i + 1 < argc) {
      sep = argv[++i][0];
    } else {
      return Usage(argv[0]);
    }
  }

  auto table = LoadRelation(relation_path, sep);
  if (!table.ok()) {
    std::fprintf(stderr, "failed to load relation: %s\n",
                 table.status().ToString().c_str());
    return 1;
  }

  if (execute_sql != nullptr) {
    auto query = ParseTopKQuery(execute_sql, table->schema());
    if (!query.ok()) {
      std::fprintf(stderr, "parse error: %s\n",
                   query.status().ToString().c_str());
      return 1;
    }
    Executor executor;
    auto result = executor.Execute(*table, *query, ExecContext{});
    if (!result.ok()) {
      std::fprintf(stderr, "execution error: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", result->ToCsv(sep).c_str());
    return 0;
  }

  if (list_path == nullptr) return Usage(argv[0]);
  std::ifstream list_in(list_path, std::ios::binary);
  if (!list_in) {
    std::fprintf(stderr, "cannot open %s\n", list_path);
    return 1;
  }
  std::ostringstream list_buffer;
  list_buffer << list_in.rdbuf();
  if (list_in.bad()) {
    std::fprintf(stderr, "error reading %s\n", list_path);
    return 1;
  }
  auto input = TopKList::FromCsv(list_buffer.str(), sep);
  if (!input.ok()) {
    std::fprintf(stderr, "failed to parse top-k list: %s\n",
                 input.status().ToString().c_str());
    return 1;
  }

  std::fprintf(stderr, "relation: %zu rows, %u entities; input: top-%zu\n",
               table->num_rows(), table->NumEntities(), input->size());

  Paleo paleo(&*table, options);
  RunRequest request;
  request.input = &*input;
  request.keep_candidates = verbose;
  request.collect_trace = trace_out != nullptr || verbose;
  auto report = paleo.Run(request);
  if (!report.ok()) {
    std::fprintf(stderr, "PALEO failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  if (verbose) {
    std::fprintf(stderr, "%s",
                 ExplainReport(*report, table->schema()).c_str());
  }
  if (trace_out != nullptr && report->trace != nullptr) {
    std::string json = report->trace->ToJson();
    if (std::strcmp(trace_out, "-") == 0) {
      std::printf("%s\n", json.c_str());
    } else {
      std::ofstream out(trace_out, std::ios::binary);
      out << json << '\n';
      if (!out) {
        std::fprintf(stderr, "cannot write trace to %s\n", trace_out);
        return 1;
      }
    }
  }
  std::fprintf(stderr,
               "%lld candidate predicates, %lld tuple sets, %lld candidate "
               "queries, %lld executions\n",
               static_cast<long long>(report->candidate_predicates),
               static_cast<long long>(report->tuple_sets),
               static_cast<long long>(report->candidate_queries),
               static_cast<long long>(report->executed_queries));
  if (report->termination != TerminationReason::kCompleted) {
    std::fprintf(stderr, "stopped early: %s\n",
                 TerminationReasonToString(report->termination));
    for (const CandidateQuery& cq : report->near_misses) {
      std::fprintf(stderr, "near miss (unvalidated, s=%.3f): %s\n",
                   cq.suitability,
                   cq.query.ToSql(table->schema()).c_str());
    }
  }
  if (!report->found()) {
    std::printf("no valid query found\n");
    return 1;
  }
  for (const ValidQuery& vq : report->valid) {
    std::printf("%s\n", vq.query.ToSql(table->schema()).c_str());
  }
  return 0;
}
