// PALEO as a server: the DiscoveryService driven by N concurrent
// clients over a workload of top-k lists.
//
//   paleo_server_cli <relation.csv> <workload.txt> [options]
//
// The relation loads like paleo_cli's (CSV with the self-describing
// header of io/table_io.h, or binary_io format detected by magic).
// The workload file names one top-k list CSV ("entity,value" rows)
// per line; blank lines and lines starting with '#' are ignored, and
// relative paths resolve against the current directory.
//
// Options:
//   --threads N      service worker threads (default: hardware
//                    concurrency); also used for intra-request
//                    parallel validation when > 1
//   --clients N      concurrent closed-loop clients (default 4); each
//                    submits its next request as soon as the previous
//                    one finishes
//   --repeat N       passes over the workload per client (default 1)
//   --queue N        admission-queue capacity (default 64); beyond it
//                    Submit sheds with RESOURCE_EXHAUSTED and the
//                    client retries after a short backoff
//   --deadline-ms N  per-request deadline, anchored at admission
//                    (default: none)
//   --sep C          field separator for both file kinds (default ',')
//   --quiet          summary only, no per-request lines
//   --metrics-every N
//                    dump the service's metrics registry (Prometheus
//                    text format) to stderr every N seconds while the
//                    run is in flight, plus a final dump at the end
//   --ingest-every N
//                    live-table mode: every N milliseconds a background
//                    writer appends a batch of rows (sampled from the
//                    current snapshot) through the catalog's Ingestor,
//                    publishing a new snapshot each time. In-flight
//                    requests keep serving the version they pinned at
//                    admission. 0 (default) serves a static table.
//   --ingest-batch N rows per ingested batch (default 256)
//
// Exit status: 0 when every request reached a terminal state and none
// failed, 1 on load errors or failed sessions, 2 on usage errors.
//
// Example (after `cmake --build build`):
//   ./build/examples/paleo_server_cli relation.csv workload.txt
//       --threads 8 --clients 16 --deadline-ms 2000
//       --ingest-every 50 --ingest-batch 512   (one line)

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "catalog/ingestor.h"
#include "catalog/table_catalog.h"
#include "common/random.h"
#include "io/binary_io.h"
#include "io/table_io.h"
#include "service/discovery_service.h"

namespace {

paleo::StatusOr<paleo::Table> LoadRelation(const std::string& path,
                                           char sep) {
  std::ifstream probe(path, std::ios::binary);
  char magic[4] = {0, 0, 0, 0};
  probe.read(magic, 4);
  if (probe.gcount() == 4 && std::memcmp(magic, "PALB", 4) == 0) {
    return paleo::BinaryIo::ReadFile(path);
  }
  return paleo::TableIo::ReadCsvFile(path, sep);
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <relation.csv> <workload.txt> [--threads N] "
               "[--clients N] [--repeat N] [--queue N] [--deadline-ms N] "
               "[--sep C] [--quiet] [--metrics-every N] "
               "[--ingest-every N] [--ingest-batch N]\n",
               argv0);
  return 2;
}

bool ParseInt64Flag(const char* flag, const char* text, int64_t* out) {
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0' || v < 0) {
    std::fprintf(stderr, "%s: expected a non-negative integer, got '%s'\n",
                 flag, text);
    return false;
  }
  *out = static_cast<int64_t>(v);
  return true;
}

struct NamedList {
  std::string name;
  paleo::TopKList list;
};

// The service attaches "retry-after-ms=<N>" (its load-aware backoff
// hint) to the ResourceExhausted shed message; honor it when present.
int64_t ParseRetryAfterMs(const std::string& message, int64_t fallback) {
  const char kKey[] = "retry-after-ms=";
  size_t pos = message.find(kKey);
  if (pos == std::string::npos) return fallback;
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(message.c_str() + pos + sizeof(kKey) - 1,
                             &end, 10);
  if (errno != 0 || v <= 0) return fallback;
  return static_cast<int64_t>(v);
}

double PercentileMs(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  size_t idx =
      static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace paleo;
  if (argc < 3) return Usage(argv[0]);
  const char* relation_path = argv[1];
  const char* workload_path = argv[2];

  int64_t threads = 0;  // 0 = hardware concurrency
  int64_t clients = 4;
  int64_t repeat = 1;
  int64_t queue_capacity = 64;
  int64_t deadline_ms = 0;
  int64_t metrics_every_s = 0;
  int64_t ingest_every_ms = 0;
  int64_t ingest_batch = 256;
  char sep = ',';
  bool quiet = false;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      if (!ParseInt64Flag("--threads", argv[++i], &threads)) return 2;
    } else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      if (!ParseInt64Flag("--clients", argv[++i], &clients)) return 2;
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      if (!ParseInt64Flag("--repeat", argv[++i], &repeat)) return 2;
    } else if (std::strcmp(argv[i], "--queue") == 0 && i + 1 < argc) {
      if (!ParseInt64Flag("--queue", argv[++i], &queue_capacity)) return 2;
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      if (!ParseInt64Flag("--deadline-ms", argv[++i], &deadline_ms)) {
        return 2;
      }
    } else if (std::strcmp(argv[i], "--sep") == 0 && i + 1 < argc) {
      sep = argv[++i][0];
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(argv[i], "--metrics-every") == 0 &&
               i + 1 < argc) {
      if (!ParseInt64Flag("--metrics-every", argv[++i], &metrics_every_s)) {
        return 2;
      }
    } else if (std::strcmp(argv[i], "--ingest-every") == 0 &&
               i + 1 < argc) {
      if (!ParseInt64Flag("--ingest-every", argv[++i], &ingest_every_ms)) {
        return 2;
      }
    } else if (std::strcmp(argv[i], "--ingest-batch") == 0 &&
               i + 1 < argc) {
      if (!ParseInt64Flag("--ingest-batch", argv[++i], &ingest_batch)) {
        return 2;
      }
    } else {
      return Usage(argv[0]);
    }
  }
  if (clients < 1) clients = 1;
  if (repeat < 1) repeat = 1;
  if (queue_capacity < 1) queue_capacity = 1;
  if (ingest_batch < 1) ingest_batch = 1;

  auto table = LoadRelation(relation_path, sep);
  if (!table.ok()) {
    std::fprintf(stderr, "failed to load relation: %s\n",
                 table.status().ToString().c_str());
    return 1;
  }

  // Workload: one top-k list file per line.
  std::ifstream workload_in(workload_path);
  if (!workload_in) {
    std::fprintf(stderr, "cannot open %s\n", workload_path);
    return 1;
  }
  std::vector<NamedList> workload;
  std::string line;
  while (std::getline(workload_in, line)) {
    // Trim whitespace; skip blanks and comments.
    size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos || line[begin] == '#') continue;
    size_t end = line.find_last_not_of(" \t\r");
    std::string path = line.substr(begin, end - begin + 1);
    std::ifstream list_in(path, std::ios::binary);
    if (!list_in) {
      std::fprintf(stderr, "cannot open list file %s\n", path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << list_in.rdbuf();
    auto list = TopKList::FromCsv(buffer.str(), sep);
    if (!list.ok()) {
      std::fprintf(stderr, "failed to parse %s: %s\n", path.c_str(),
                   list.status().ToString().c_str());
      return 1;
    }
    workload.push_back(NamedList{path, *std::move(list)});
  }
  if (workload.empty()) {
    std::fprintf(stderr, "%s lists no top-k files\n", workload_path);
    return 1;
  }

  PaleoOptions paleo_options;
  paleo_options.num_threads = static_cast<int>(
      threads > 0 ? threads : ThreadPool::DefaultNumThreads());
  DiscoveryServiceOptions service_options;
  service_options.num_workers = static_cast<int>(threads);
  service_options.queue_capacity = static_cast<size_t>(queue_capacity);
  service_options.default_deadline_ms = deadline_ms;
  // The catalog owns the snapshot chain; it is built from a copy of
  // the loaded table (shared dictionaries — the loaded table is only
  // read for schema/row counts below, never appended) so the ingest
  // writer can grow the served relation independently. The registry
  // (paleo_ingest_* / paleo_snapshot_* series) is declared first: it
  // must outlive the catalog and every pinned snapshot.
  obs::MetricsRegistry ingest_registry;
  auto catalog = std::make_shared<TableCatalog>(Table(*table), paleo_options,
                                                &ingest_registry);
  DiscoveryService service(catalog, service_options);

  std::fprintf(stderr,
               "relation: %zu rows, %u entities; %zu workload lists; "
               "%d workers, %lld clients x %lld passes%s\n",
               table->num_rows(), table->NumEntities(), workload.size(),
               service.num_workers(), static_cast<long long>(clients),
               static_cast<long long>(repeat),
               ingest_every_ms > 0 ? "; live ingestion ON" : "");

  const int total_requests =
      static_cast<int>(clients * repeat) *
      static_cast<int>(workload.size());
  std::atomic<int> next_request{0};
  std::atomic<int64_t> failed{0};
  std::mutex print_mutex;
  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(clients));

  // Periodic metrics reporter: wakes every --metrics-every seconds
  // (or immediately at shutdown) and dumps the registry to stderr.
  std::mutex reporter_mutex;
  std::condition_variable reporter_cv;
  bool reporter_stop = false;
  std::thread reporter;
  if (metrics_every_s > 0) {
    reporter = std::thread([&] {
      std::unique_lock<std::mutex> lock(reporter_mutex);
      while (!reporter_cv.wait_for(lock,
                                   std::chrono::seconds(metrics_every_s),
                                   [&] { return reporter_stop; })) {
        std::string text = service.metrics().RenderText();
        text += ingest_registry.RenderText();
        std::fprintf(stderr, "# ---- metrics ----\n%s", text.c_str());
      }
    });
  }

  // Live-table writer: every --ingest-every ms, append a batch of rows
  // sampled from the snapshot current at that moment. Each batch
  // publishes a new snapshot; requests admitted before it keep serving
  // the version they pinned.
  Ingestor ingestor(catalog.get());
  std::mutex ingest_mutex;
  std::condition_variable ingest_cv;
  bool ingest_stop = false;
  std::thread ingest_writer;
  if (ingest_every_ms > 0) {
    ingest_writer = std::thread([&] {
      Rng rng(0xC0FFEEULL);
      std::unique_lock<std::mutex> lock(ingest_mutex);
      while (!ingest_cv.wait_for(lock,
                                 std::chrono::milliseconds(ingest_every_ms),
                                 [&] { return ingest_stop; })) {
        auto snapshot = catalog->Current();
        const Table& current = snapshot->table();
        std::vector<std::vector<Value>> batch;
        batch.reserve(static_cast<size_t>(ingest_batch));
        for (int64_t i = 0; i < ingest_batch; ++i) {
          const RowId r = static_cast<RowId>(
              rng.Uniform(static_cast<uint64_t>(current.num_rows())));
          std::vector<Value> row;
          row.reserve(static_cast<size_t>(current.num_columns()));
          for (int col = 0; col < current.num_columns(); ++col) {
            row.push_back(current.GetValue(r, col));
          }
          batch.push_back(std::move(row));
        }
        Status appended = ingestor.Append(batch);
        if (!appended.ok()) {
          std::fprintf(stderr, "ingest batch failed: %s\n",
                       appended.ToString().c_str());
        }
      }
    });
  }

  using WallClock = std::chrono::steady_clock;
  WallClock::time_point start = WallClock::now();
  std::vector<std::thread> client_threads;
  for (int64_t c = 0; c < clients; ++c) {
    client_threads.emplace_back([&, c] {
      for (;;) {
        int r = next_request.fetch_add(1);
        if (r >= total_requests) break;
        const NamedList& item =
            workload[static_cast<size_t>(r) % workload.size()];
        WallClock::time_point submitted = WallClock::now();
        auto make_request = [&item]() {
          ServiceRequest request;
          request.input = item.list;
          return request;
        };
        StatusOr<std::shared_ptr<Session>> session =
            service.Submit(make_request());
        while (!session.ok() &&
               session.status().IsResourceExhausted()) {
          // Shed at admission: back off for as long as the service's
          // retry-after hint suggests, then retry (closed-loop client).
          int64_t backoff_ms =
              ParseRetryAfterMs(session.status().message(), 5);
          if (!quiet) {
            std::lock_guard<std::mutex> lock(print_mutex);
            std::printf("[client %2lld] %-32s shed; retrying in %lld ms\n",
                        static_cast<long long>(c), item.name.c_str(),
                        static_cast<long long>(backoff_ms));
          }
          std::this_thread::sleep_for(
              std::chrono::milliseconds(backoff_ms));
          session = service.Submit(make_request());
        }
        if (!session.ok()) {
          failed.fetch_add(1);
          continue;
        }
        SessionState state = (*session)->Wait();
        double ms = std::chrono::duration<double, std::milli>(
                        WallClock::now() - submitted)
                        .count();
        latencies[static_cast<size_t>(c)].push_back(ms);
        const ReverseEngineerReport* report = (*session)->report();
        if (state == SessionState::kFailed) failed.fetch_add(1);
        if (!quiet) {
          std::lock_guard<std::mutex> lock(print_mutex);
          std::printf("[client %2lld] %-32s %-9s %8.2f ms  %s\n",
                      static_cast<long long>(c), item.name.c_str(),
                      SessionStateToString(state), ms,
                      report != nullptr && report->found()
                          ? report->valid[0]
                                .query.ToSql(table->schema())
                                .c_str()
                          : "(no valid query)");
        }
      }
    });
  }
  for (auto& t : client_threads) t.join();
  double elapsed_s =
      std::chrono::duration<double>(WallClock::now() - start).count();
  if (ingest_writer.joinable()) {
    {
      std::lock_guard<std::mutex> lock(ingest_mutex);
      ingest_stop = true;
    }
    ingest_cv.notify_all();
    ingest_writer.join();
    auto ingest_stats = ingestor.stats();
    std::fprintf(stderr,
                 "ingested %llu batches (%llu rows, %llu incremental, "
                 "%llu failed); snapshot v%llu with %zu rows\n",
                 static_cast<unsigned long long>(ingest_stats.batches),
                 static_cast<unsigned long long>(ingest_stats.rows),
                 static_cast<unsigned long long>(
                     ingest_stats.incremental_builds),
                 static_cast<unsigned long long>(
                     ingest_stats.failed_batches),
                 static_cast<unsigned long long>(catalog->CurrentVersion()),
                 catalog->Current()->num_rows());
  }
  if (reporter.joinable()) {
    {
      std::lock_guard<std::mutex> lock(reporter_mutex);
      reporter_stop = true;
    }
    reporter_cv.notify_all();
    reporter.join();
    std::fprintf(stderr, "# ---- final metrics ----\n%s%s",
                 service.metrics().RenderText().c_str(),
                 ingest_registry.RenderText().c_str());
  }

  std::vector<double> all;
  for (auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  std::sort(all.begin(), all.end());
  auto stats = service.stats();
  std::fprintf(stderr,
               "\n%d requests in %.2fs (%.2f req/s)  p50 %.2f ms  "
               "p99 %.2f ms\n"
               "done %lld  failed %lld  cancelled %lld  expired %lld  "
               "shed(retried) %lld\n",
               total_requests, elapsed_s,
               static_cast<double>(total_requests) / elapsed_s,
               PercentileMs(all, 0.50), PercentileMs(all, 0.99),
               static_cast<long long>(stats.done),
               static_cast<long long>(stats.failed),
               static_cast<long long>(stats.cancelled),
               static_cast<long long>(stats.expired),
               static_cast<long long>(stats.shed));
  return failed.load() == 0 ? 0 : 1;
}
