// Partial-match reverse engineering (paper Section 3.3): the input
// list was produced by an *older* version of the database, so no query
// reproduces it exactly over today's relation. PALEO accepts queries
// whose result is similar to the input (entity Jaccard + bounded value
// distance) and ranks rank-similarity with Fagin-style measures.
//
//   ./build/examples/partial_match

#include <cstdio>

#include "datagen/augment.h"
#include "datagen/traffic_gen.h"
#include "paleo/paleo.h"
#include "stats/distance.h"

int main() {
  using namespace paleo;

  // Yesterday's relation generates the input list...
  TrafficGenOptions gen;
  gen.num_customers = 150;
  gen.months_per_customer = 8;
  auto yesterday = TrafficGen::Generate(gen);
  if (!yesterday.ok()) {
    std::fprintf(stderr, "%s\n", yesterday.status().ToString().c_str());
    return 1;
  }
  const Schema& schema = yesterday->schema();
  TopKQuery original;
  original.predicate =
      Predicate::Atom(schema.FieldIndex("plan"), Value::String("XL"));
  original.expr = RankExpr::Column(schema.FieldIndex("data_mb"));
  original.agg = AggFn::kSum;
  original.k = 10;
  Executor ex;
  auto input = ex.Execute(*yesterday, original, ExecContext{});
  if (!input.ok()) return 1;
  std::printf("Original query (not known to PALEO):\n  %s\n\n",
              original.ToSql(schema).c_str());
  std::printf("Input list (from yesterday's data):\n%s\n",
              input->ToString().c_str());

  // ...but PALEO only has today's relation, where some rows changed.
  PerturbOptions drift;
  drift.row_change_probability = 0.05;
  auto today = PerturbDimensions(*yesterday, drift);
  if (!today.ok()) return 1;

  // Exact matching fails on the drifted data.
  PaleoOptions exact;
  Paleo strict(&*today, exact);
  RunRequest strict_request;
  strict_request.input = &*input;
  auto strict_report = strict.Run(strict_request);
  std::printf("Exact matching on today's data: %s\n\n",
              strict_report.ok() && strict_report->found()
                  ? "found (data drift did not affect this list)"
                  : "no exact query found, as expected");

  // Partial matching accepts near misses.
  PaleoOptions partial;
  partial.match_mode = MatchMode::kPartial;
  partial.partial_min_entity_jaccard = 0.5;
  partial.partial_max_value_distance = 0.25;
  // Treat R' as untrusted (sample semantics) so candidates are scored,
  // not filtered, exactly as Section 3.3 prescribes.
  Paleo relaxed(&*today, partial);
  std::vector<RowId> all_rows(today->num_rows());
  for (size_t r = 0; r < today->num_rows(); ++r) {
    all_rows[r] = static_cast<RowId>(r);
  }
  RunRequest relaxed_request;
  relaxed_request.input = &*input;
  relaxed_request.sample_rows = &all_rows;
  relaxed_request.sample_fraction = 1.0;
  relaxed_request.coverage_ratio_override = 0.8;
  auto report = relaxed.Run(relaxed_request);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  if (!report->found()) {
    std::printf("No partially matching query found.\n");
    return 1;
  }
  const TopKQuery& found = report->valid[0].query;
  std::printf("Partial-match query found after %lld executions:\n  %s\n\n",
              static_cast<long long>(report->executed_queries),
              found.ToSql(schema).c_str());

  auto result = ex.Execute(*today, found, ExecContext{});
  if (result.ok()) {
    std::printf("Its result over today's data:\n%s\n",
                result->ToString().c_str());
    std::printf("Similarity to the input list:\n");
    std::printf("  entity Jaccard      %.3f\n",
                result->EntityJaccard(*input));
    std::printf("  norm. footrule      %.3f\n",
                NormalizedFootrule(result->Entities(), input->Entities()));
    std::printf("  norm. Kendall tau   %.3f\n",
                NormalizedKendallTau(result->Entities(),
                                     input->Entities()));
    std::printf("  norm. L1 (values)   %.3f\n",
                NormalizedL1(result->Values(), input->Values()));
  }
  return 0;
}
