// Quickstart: the paper's introduction example end to end.
//
// Builds the telecom Traffic relation of Table 1, takes the top-5 list
// of Table 2 as input, and asks PALEO which SQL queries generate it.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "datagen/traffic_gen.h"
#include "paleo/paleo.h"

int main() {
  using namespace paleo;

  // 1. The base relation R (Table 1 of the paper).
  auto table = TrafficGen::PaperExample();
  if (!table.ok()) {
    std::fprintf(stderr, "generator failed: %s\n",
                 table.status().ToString().c_str());
    return 1;
  }
  std::printf("Base relation R (%zu rows):\n%s\n", table->num_rows(),
              table->ToString(8).c_str());

  // 2. The input top-k list L (Table 2 of the paper). Note: no column
  //    names, no hint which column produced the numbers.
  TopKList input;
  input.Append("Lara Ellis", 784);
  input.Append("Jane O'Neal", 699);
  input.Append("John Smith", 654);
  input.Append("Richard Fox", 596);
  input.Append("Jack Stiles", 586);
  std::printf("Input list L:\n%s\n", input.ToString().c_str());

  // 3. Reverse engineer. Construction builds the B+ tree entity index
  //    and the statistics catalog; Run(RunRequest) executes the
  //    three-step pipeline for one request.
  Paleo paleo(&*table, PaleoOptions{});
  RunRequest request;
  request.input = &input;
  auto report = paleo.Run(request);
  if (!report.ok()) {
    std::fprintf(stderr, "PALEO failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  if (!report->found()) {
    std::printf("No query found that generates L over R.\n");
    return 1;
  }
  std::printf("Found a valid query after %lld candidate executions:\n\n",
              static_cast<long long>(report->executed_queries));
  std::printf("  %s\n\n",
              report->valid[0].query.ToSql(table->schema()).c_str());
  std::printf(
      "Pipeline stats: %lld candidate predicates, %lld tuple sets, "
      "%lld candidate queries\n",
      static_cast<long long>(report->candidate_predicates),
      static_cast<long long>(report->tuple_sets),
      static_cast<long long>(report->candidate_queries));
  std::printf("Step times: %.2f ms / %.2f ms / %.2f ms (find "
              "predicates / find ranking / validate)\n",
              report->timings.find_predicates_ms,
              report->timings.find_ranking_ms,
              report->timings.validation_ms);
  return 0;
}
