// Working on samples of R' (paper Section 6.4), demonstrated on the
// SSB-like relation whose entities have ~300 tuples each.
//
// A hidden max(A) query produces the input list; PALEO then runs on
// 5%..100% uniform per-entity samples of R'. The demo prints how the
// candidate predicate count, the suitability model, and the number of
// validations react to the sample size.
//
//   PALEO_SF=0.005 ./build/examples/ssb_sampling

#include <cstdio>
#include <cstdlib>

#include "datagen/ssb_gen.h"
#include "paleo/paleo.h"
#include "workload/workload.h"

int main() {
  using namespace paleo;

  const char* sf_env = std::getenv("PALEO_SF");
  SsbGenOptions gen;
  gen.scale_factor =
      sf_env != nullptr ? std::strtod(sf_env, nullptr) : 0.005;
  std::printf("Generating SSB-like relation (SF %.3f)...\n",
              gen.scale_factor);
  auto table = SsbGen::Generate(gen);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  std::printf("R: %zu rows, %u entities (~%.0f tuples/entity)\n\n",
              table->num_rows(), table->NumEntities(),
              static_cast<double>(table->num_rows()) /
                  table->NumEntities());

  WorkloadOptions wl;
  wl.families = {QueryFamily::kMaxA};
  wl.predicate_sizes = {2};
  wl.ks = {10};
  wl.queries_per_config = 1;
  auto workload = WorkloadGen::Generate(*table, wl);
  if (!workload.ok() || workload->empty()) {
    std::fprintf(stderr, "workload generation failed\n");
    return 1;
  }
  const WorkloadQuery& hidden = (*workload)[0];
  std::printf("Hidden query: %s\n\n",
              hidden.query.ToSql(table->schema()).c_str());

  Paleo paleo(&*table, PaleoOptions{});
  std::printf("%10s %12s %12s %12s %8s\n", "sample %", "#predicates",
              "#candidates", "executions", "found");
  for (double pct : {5.0, 10.0, 20.0, 30.0, 100.0}) {
    if (pct >= 100.0) {
      RunRequest request;
      request.input = &hidden.list;
      auto report = paleo.Run(request);
      if (!report.ok()) continue;
      std::printf("%10.0f %12lld %12lld %12lld %8s\n", pct,
                  static_cast<long long>(report->candidate_predicates),
                  static_cast<long long>(report->candidate_queries),
                  static_cast<long long>(report->executed_queries),
                  report->found() ? "yes" : "no");
      continue;
    }
    auto sample = Sampler::UniformPerEntity(
        paleo.index(), hidden.list.DistinctEntities(), pct / 100.0, 1234);
    if (!sample.ok()) continue;
    RunRequest request;
    request.input = &hidden.list;
    request.sample_rows = &*sample;
    request.sample_fraction = pct / 100.0;
    auto report = paleo.Run(request);
    if (!report.ok()) continue;
    std::printf("%10.0f %12lld %12lld %12lld %8s\n", pct,
                static_cast<long long>(report->candidate_predicates),
                static_cast<long long>(report->candidate_queries),
                static_cast<long long>(report->executed_queries),
                report->found() ? "yes" : "no");
  }
  std::printf(
      "\nNote how the relaxed coverage ratio admits more candidate\n"
      "predicates at small samples, and the suitability ordering still\n"
      "finds the valid query after few executions.\n");
  return 0;
}
