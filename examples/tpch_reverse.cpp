// Reverse engineering analytics queries on the TPC-H-like relation.
//
// Hides a handful of template queries (including the paper's Table 6
// example), executes each to obtain its top-k list, then hands only
// the list to PALEO and reports what it recovers and how many
// candidate query executions it needed.
//
//   PALEO_SF=0.01 ./build/examples/tpch_reverse

#include <cstdio>
#include <cstdlib>

#include "datagen/tpch_gen.h"
#include "paleo/paleo.h"
#include "workload/workload.h"

int main() {
  using namespace paleo;

  const char* sf_env = std::getenv("PALEO_SF");
  TpchGenOptions gen;
  gen.scale_factor = sf_env != nullptr ? std::strtod(sf_env, nullptr)
                                       : 0.01;
  std::printf("Generating TPC-H-like relation (SF %.3f)...\n",
              gen.scale_factor);
  auto table = TpchGen::Generate(gen);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  std::printf("R: %zu rows, %u entities, %d columns\n\n",
              table->num_rows(), table->NumEntities(),
              table->num_columns());

  // Hidden queries: the Table 6 example plus generated ones of several
  // shapes.
  std::vector<WorkloadQuery> hidden;
  auto paper = WorkloadGen::PaperExamples(*table, /*ssb=*/false, 5);
  if (paper.ok()) {
    for (WorkloadQuery& wq : *paper) {
      if (wq.list.size() == 5) hidden.push_back(std::move(wq));
    }
  }
  WorkloadOptions wl;
  wl.families = {QueryFamily::kMaxA, QueryFamily::kAvgA,
                 QueryFamily::kSumAB};
  wl.predicate_sizes = {1, 2};
  wl.ks = {10};
  wl.queries_per_config = 1;
  auto generated = WorkloadGen::Generate(*table, wl);
  if (generated.ok()) {
    for (WorkloadQuery& wq : *generated) hidden.push_back(std::move(wq));
  }

  Paleo paleo(&*table, PaleoOptions{});
  int recovered = 0;
  for (const WorkloadQuery& wq : hidden) {
    std::printf("--- %s\n", wq.name.c_str());
    std::printf("hidden:    %s\n",
                wq.query.ToSql(table->schema()).c_str());
    RunRequest request;
    request.input = &wq.list;
    auto report = paleo.Run(request);
    if (!report.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   report.status().ToString().c_str());
      continue;
    }
    if (!report->found()) {
      std::printf("recovered: (none)\n\n");
      continue;
    }
    ++recovered;
    std::printf("recovered: %s\n",
                report->valid[0].query.ToSql(table->schema()).c_str());
    std::printf("           after %lld executions, %lld candidates\n\n",
                static_cast<long long>(report->executed_queries),
                static_cast<long long>(report->candidate_queries));
  }
  std::printf("Recovered %d / %zu hidden queries.\n", recovered,
              hidden.size());
  return recovered == static_cast<int>(hidden.size()) ? 0 : 1;
}
