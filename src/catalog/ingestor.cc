#include "catalog/ingestor.h"

#include <utility>

namespace paleo {

Ingestor::Ingestor(TableCatalog* catalog, IngestorOptions options)
    : catalog_(catalog), options_(options) {}

// relaxed: every counter below is an independent event tally; readers
// (stats()) take a point-in-time sample and tolerate torn cross-counter
// snapshots — nothing orders other memory through them.
Status Ingestor::Append(std::span<const std::vector<Value>> rows) {
  std::shared_ptr<obs::Trace> trace;
  if (options_.collect_trace) trace = std::make_shared<obs::Trace>();
  TableCatalog::IngestOutcome outcome;
  Status status =
      catalog_->Ingest(rows, options_.incremental, trace.get(), &outcome);
  if (!status.ok()) {
    failed_batches_.fetch_add(1, std::memory_order_relaxed);
    return status;
  }
  batches_.fetch_add(1, std::memory_order_relaxed);
  rows_.fetch_add(outcome.rows, std::memory_order_relaxed);
  if (outcome.incremental) {
    incremental_builds_.fetch_add(1, std::memory_order_relaxed);
  }
  full_rebuilds_.fetch_add(static_cast<uint64_t>(outcome.full_rebuilds),
                           std::memory_order_relaxed);
  if (trace != nullptr) {
    MutexLock lock(trace_mutex_);
    last_trace_ = std::move(trace);
  }
  return Status::OK();
}

Ingestor::Stats Ingestor::stats() const {
  // relaxed: point-in-time sample of independent tallies (see Append).
  Stats s;
  s.batches = batches_.load(std::memory_order_relaxed);
  s.rows = rows_.load(std::memory_order_relaxed);
  s.incremental_builds = incremental_builds_.load(std::memory_order_relaxed);
  s.full_rebuilds = full_rebuilds_.load(std::memory_order_relaxed);
  s.failed_batches = failed_batches_.load(std::memory_order_relaxed);
  return s;
}

std::shared_ptr<const obs::Trace> Ingestor::last_trace() const {
  MutexLock lock(trace_mutex_);
  return last_trace_;
}

}  // namespace paleo
