// The write side of a live table: accepts appended row batches and
// turns each into the catalog's next published snapshot.
//
// The Ingestor is a thin stateful handle over TableCatalog::Ingest —
// it owns the ingestion policy (incremental vs. full rebuilds, trace
// collection) and the running tallies, while the catalog owns the
// serialization and the publication protocol. Multiple Ingestors over
// one catalog are allowed (their batches interleave, each one
// atomically); one Ingestor used from multiple threads is allowed too.

#ifndef PALEO_CATALOG_INGESTOR_H_
#define PALEO_CATALOG_INGESTOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "catalog/table_catalog.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/trace.h"
#include "types/value.h"

namespace paleo {

struct IngestorOptions {
  /// Extend the previous snapshot's stats and indexes from the delta
  /// (the fast path). Off forces a full rebuild per batch — the same
  /// results, paid for with publish latency; the catalog also falls
  /// back to full rebuilds on its own under simulated memory pressure.
  bool incremental = true;

  /// Collect a span tree per batch (see last_trace()).
  bool collect_trace = false;
};

/// \brief Feeds row batches into a TableCatalog.
///
/// Thread-safe: Append may be called from any thread; batches are
/// serialized by the catalog. The stats tallies are atomics.
class Ingestor {
 public:
  /// `catalog` must outlive this object.
  Ingestor(TableCatalog* catalog, IngestorOptions options = {});

  Ingestor(const Ingestor&) = delete;
  Ingestor& operator=(const Ingestor&) = delete;

  /// Appends one batch as one new snapshot version: validates every
  /// row up front, builds the next snapshot off the current one, and
  /// publishes it. All-or-nothing — on any error (a type mismatch in
  /// any row, an injected catalog.ingest.* fault) the published
  /// snapshot is unchanged and the error is returned.
  Status Append(std::span<const std::vector<Value>> rows);

  /// Convenience overload for a single row.
  Status AppendRow(const std::vector<Value>& row) {
    return Append(std::span<const std::vector<Value>>(&row, 1));
  }

  /// Running tallies across all Append calls (atomic reads; a batch is
  /// counted when its Append returns).
  struct Stats {
    uint64_t batches = 0;
    uint64_t rows = 0;
    uint64_t incremental_builds = 0;
    uint64_t full_rebuilds = 0;
    uint64_t failed_batches = 0;
  };
  Stats stats() const;

  /// The span tree of the most recent successful Append (null until
  /// one succeeds, or when collect_trace is off).
  std::shared_ptr<const obs::Trace> last_trace() const;

 private:
  TableCatalog* const catalog_;
  const IngestorOptions options_;

  // relaxed: independent event tallies bumped by concurrent Append
  // calls and sampled by stats(); no ordering contract.
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> rows_{0};
  std::atomic<uint64_t> incremental_builds_{0};
  std::atomic<uint64_t> full_rebuilds_{0};
  std::atomic<uint64_t> failed_batches_{0};

  mutable Mutex trace_mutex_;
  std::shared_ptr<const obs::Trace> last_trace_ GUARDED_BY(trace_mutex_);
};

}  // namespace paleo

#endif  // PALEO_CATALOG_INGESTOR_H_
