#include "catalog/table_catalog.h"

#include <optional>
#include <utility>

#include "common/fault_points.h"
#include "common/timer.h"

namespace paleo {

TableSnapshot::TableSnapshot(Key, Table table, uint64_t version,
                             PaleoOptions options, EntityIndex index,
                             StatsCatalog stats,
                             std::unique_ptr<DimensionIndex> dimension_index)
    : table_(std::move(table)),
      version_(version),
      engine_(std::make_unique<Paleo>(&table_, std::move(options),
                                      std::move(index), std::move(stats),
                                      std::move(dimension_index))) {}

TableSnapshot::~TableSnapshot() {
  // The last pin just dropped: this version is retired for good.
  obs::Add(live_gauge_, -1);
  obs::Inc(retired_total_);
}

TableCatalog::TableCatalog(Table base, PaleoOptions options,
                           obs::MetricsRegistry* metrics)
    : options_(std::move(options)),
      metrics_(metrics),
      catalog_metrics_(BindMetrics()) {
  EntityIndex index = EntityIndex::Build(base);
  StatsCatalog stats = StatsCatalog::Build(base, StatsOptions());
  std::unique_ptr<DimensionIndex> dimension_index;
  if (options_.use_dimension_index) {
    dimension_index =
        std::make_unique<DimensionIndex>(DimensionIndex::Build(base));
  }
  MutexLock lock(publish_mutex_);
  current_ = MakeSnapshot(std::move(base), /*version=*/1, std::move(index),
                          std::move(stats), std::move(dimension_index));
  obs::Set(catalog_metrics_.version, 1);
}

TableCatalog::CatalogMetrics TableCatalog::BindMetrics() {
  CatalogMetrics m;
  if (metrics_ == nullptr) return m;
  m.batches = metrics_->FindOrCreateCounter(
      "paleo_ingest_batches_total", "Row batches published as snapshots.");
  m.rows = metrics_->FindOrCreateCounter(
      "paleo_ingest_rows_total", "Rows ingested across batches.");
  m.full_rebuilds = metrics_->FindOrCreateCounter(
      "paleo_ingest_full_rebuilds_total",
      "Upfront structures rebuilt from scratch instead of extended "
      "incrementally (histogram range growth, degradation, or "
      "incremental mode off).");
  m.publish_ms = metrics_->FindOrCreateHistogram(
      "paleo_ingest_publish_ms",
      "Milliseconds from batch acceptance to snapshot publication.");
  m.version = metrics_->FindOrCreateGauge(
      "paleo_snapshot_version", "Version of the published snapshot.");
  m.live = metrics_->FindOrCreateGauge(
      "paleo_snapshot_live",
      "Snapshots alive: the published one plus retired versions still "
      "pinned by in-flight sessions.");
  m.retired = metrics_->FindOrCreateCounter(
      "paleo_snapshot_retired_total",
      "Snapshots whose last pin dropped (fully reclaimed versions).");
  return m;
}

CatalogOptions TableCatalog::StatsOptions() {
  CatalogOptions options;
  // Every snapshot keeps the delta state so the NEXT ingest can extend
  // it; without this, the first incremental build would have nothing
  // to fold into.
  options.keep_delta_state = true;
  return options;
}

std::shared_ptr<const TableSnapshot> TableCatalog::MakeSnapshot(
    Table table, uint64_t version, EntityIndex index, StatsCatalog stats,
    std::unique_ptr<DimensionIndex> dimension_index) {
  // Re-chunk to the configured scan granularity before freezing the
  // version. A no-op when the layout already matches — incremental
  // ingests inherit it through DeepCopy, so only the first snapshot
  // (or an options change) pays the rebuild.
  if (options_.chunk_rows > 0) table.SetChunkRows(options_.chunk_rows);
  auto snapshot = std::make_shared<TableSnapshot>(
      TableSnapshot::Key(), std::move(table), version, options_,
      std::move(index), std::move(stats), std::move(dimension_index));
  snapshot->live_gauge_ = catalog_metrics_.live;
  snapshot->retired_total_ = catalog_metrics_.retired;
  obs::Add(catalog_metrics_.live, 1);
  return snapshot;
}

Status TableCatalog::Ingest(std::span<const std::vector<Value>> rows,
                            bool allow_incremental, obs::Trace* trace,
                            IngestOutcome* outcome) {
  // Chaos hook: admission-side ingest failures (batch validation,
  // journal I/O) before any build work happens.
  FaultResult validate_fault = PALEO_FAULT_POINT("catalog.ingest.validate");
  if (validate_fault.error()) return validate_fault.status;

  MutexLock lock(ingest_mutex_);
  std::shared_ptr<const TableSnapshot> prev = Current();
  obs::ScopedSpan ingest_span(trace, "ingest");
  ingest_span.AddAttr("rows", static_cast<int64_t>(rows.size()));
  ingest_span.AddAttr("prev_version",
                      static_cast<int64_t>(prev->version()));
  Timer publish_timer;

  // Copy-on-write: clone the table AND its dictionaries so readers of
  // prev keep a frozen view no matter what the append does, then
  // append the batch (validated all-or-nothing, one epoch bump).
  std::optional<Table> next_table;
  {
    obs::ScopedSpan span(trace, "copy", ingest_span.id());
    next_table.emplace(prev->table().DeepCopy());
  }
  {
    obs::ScopedSpan span(trace, "append", ingest_span.id());
    PALEO_RETURN_NOT_OK(next_table->AppendRows(rows));
  }
  const size_t old_rows = prev->table().num_rows();

  // Chaos hook: a simulated allocation failure downgrades this batch
  // to full rebuilds — graceful degradation, identical results.
  bool incremental = allow_incremental;
  FaultResult pressure =
      PALEO_FAULT_POINT("catalog.ingest.incremental-alloc");
  if (pressure.alloc_failure()) incremental = false;

  int full_rebuilds = 0;
  std::optional<StatsCatalog> stats;
  std::optional<EntityIndex> index;
  std::unique_ptr<DimensionIndex> dimension_index;
  {
    obs::ScopedSpan span(trace, "stats", ingest_span.id());
    if (incremental) {
      auto extended = StatsCatalog::BuildIncremental(
          prev->engine().catalog(), *next_table, &full_rebuilds);
      if (extended.ok()) {
        stats.emplace(std::move(*extended));
      } else {
        incremental = false;  // prev lacked delta state: rebuild all
      }
    }
    if (!stats.has_value()) {
      stats.emplace(StatsCatalog::Build(*next_table, StatsOptions()));
      ++full_rebuilds;
    }
  }
  {
    obs::ScopedSpan span(trace, "index", ingest_span.id());
    if (incremental) {
      index.emplace(EntityIndex::BuildIncremental(prev->engine().index(),
                                                  *next_table, old_rows));
    } else {
      index.emplace(EntityIndex::Build(*next_table));
      ++full_rebuilds;
    }
    if (options_.use_dimension_index) {
      const DimensionIndex* prev_dim = prev->engine().dimension_index();
      if (incremental && prev_dim != nullptr) {
        dimension_index = std::make_unique<DimensionIndex>(
            DimensionIndex::BuildIncremental(*prev_dim, *next_table,
                                             old_rows));
      } else {
        dimension_index = std::make_unique<DimensionIndex>(
            DimensionIndex::Build(*next_table));
      }
    }
  }

  // Chaos hook: a lost build (engine construction, snapshot
  // allocation). An error here aborts the batch with the published
  // snapshot untouched — the ingest contract under faults.
  FaultResult build_fault = PALEO_FAULT_POINT("catalog.ingest.build");
  if (build_fault.error()) return build_fault.status;

  const uint64_t version = next_version_++;
  std::shared_ptr<const TableSnapshot> next =
      MakeSnapshot(*std::move(next_table), version, std::move(*index),
                   std::move(*stats), std::move(dimension_index));
  ingest_span.AddAttr("version", static_cast<int64_t>(version));
  ingest_span.AddAttr("incremental", static_cast<int64_t>(incremental));

  // Chaos hook: delays here hold a fully built snapshot unpublished,
  // widening the window the snapshot-isolation suite races against;
  // errors abort with the (versioned but never published) snapshot
  // reclaimed immediately.
  FaultResult publish_fault = PALEO_FAULT_POINT("catalog.ingest.publish");
  if (publish_fault.error()) return publish_fault.status;

  {
    obs::ScopedSpan span(trace, "publish", ingest_span.id());
    // The RCU hand-over-hand: readers pinned to prev keep it alive
    // (so the ref dropped here never destroys a snapshot under the
    // lock); every Current() after this swap sees the new version.
    MutexLock publish_lock(publish_mutex_);
    current_ = next;
  }
  obs::Inc(catalog_metrics_.batches);
  obs::Inc(catalog_metrics_.rows, static_cast<int64_t>(rows.size()));
  obs::Inc(catalog_metrics_.full_rebuilds, full_rebuilds);
  obs::Observe(catalog_metrics_.publish_ms, publish_timer.ElapsedMillis());
  obs::Set(catalog_metrics_.version, static_cast<int64_t>(version));
  if (outcome != nullptr) {
    outcome->rows = rows.size();
    outcome->incremental = incremental;
    outcome->full_rebuilds = full_rebuilds;
    outcome->published_version = version;
  }
  return Status::OK();
}

}  // namespace paleo
