// Live tables: an epoch-versioned chain of immutable snapshots with
// RCU-style publication.
//
// The engine is immutable-after-build by design — every structure
// PALEO computes upfront (entity B+ tree, statistics catalog,
// dimension postings) is built against one frozen table. A TableCatalog
// lifts that design to a table that GROWS: each version of the relation
// is frozen into a TableSnapshot (table + the upfront structures +
// a ready Paleo engine, all stamped with the table's epoch), and the
// catalog publishes the latest snapshot through one mutex-guarded
// shared_ptr hand-off — the read-copy-update shape:
//
//   readers   Current() — a brief lock to copy the published pointer,
//             then use the snapshot with no further synchronization
//             for as long as they hold the shared_ptr (the discovery
//             service pins one per admitted session, so an in-flight
//             run is byte-identical to a run on a frozen copy),
//   writer    Ingest (via Ingestor) — serialized on ingest_mutex_;
//             deep-copies the current table (cloning dictionaries, so
//             no reader-visible state is ever mutated), appends the
//             batch, extends stats and indexes incrementally from the
//             delta, and swaps in the new snapshot,
//   reclaim   the previous snapshot dies when its last pin drops — no
//             grace period machinery needed beyond shared_ptr.
//
// (Why a mutex and not std::atomic<shared_ptr>? libstdc++'s _Sp_atomic
// guards its pointer with an embedded lock bit that ThreadSanitizer
// cannot see through — every store/load pair reports as a race. The
// hand-off is two pointer copies under a never-held-long lock; the
// cost is not measurable in bench_ingest.)
//
// Thread-safe: Current() from any thread; ingestion from any thread,
// serialized internally. A snapshot itself is immutable and safely
// shared (the same contract as a standalone Paleo).
//
// The optional MetricsRegistry (which must outlive the catalog AND
// every pinned snapshot) receives the paleo_ingest_* / paleo_snapshot_*
// series.

#ifndef PALEO_CATALOG_TABLE_CATALOG_H_
#define PALEO_CATALOG_TABLE_CATALOG_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "index/dimension_index.h"
#include "index/entity_index.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "paleo/options.h"
#include "paleo/paleo.h"
#include "stats/catalog.h"
#include "storage/table.h"

namespace paleo {

class TableCatalog;

/// \brief One immutable version of the base relation plus everything
/// PALEO computes upfront from it, ready to serve.
///
/// Thread-safe: all accessors are const over immutable state; any
/// number of threads may run discoveries against engine()
/// concurrently. Snapshots are created only by a TableCatalog and
/// handed out as shared_ptr<const TableSnapshot>; holding one pins
/// this version alive regardless of how far the catalog advances.
class TableSnapshot {
 public:
  /// Pass-key: makes the constructor callable by std::make_shared but
  /// only constructible through the owning TableCatalog.
  class Key {
   private:
    friend class TableCatalog;
    Key() = default;
  };

  TableSnapshot(Key, Table table, uint64_t version, PaleoOptions options,
                EntityIndex index, StatsCatalog stats,
                std::unique_ptr<DimensionIndex> dimension_index);
  ~TableSnapshot();

  TableSnapshot(const TableSnapshot&) = delete;
  TableSnapshot& operator=(const TableSnapshot&) = delete;

  const Table& table() const { return table_; }
  /// The table's content stamp (see Table::epoch) — what epoch-keyed
  /// caches key on, so stale versions age out of them naturally.
  uint64_t epoch() const { return table_.epoch(); }
  /// 1-based position in the catalog's version chain (v1 = the base
  /// relation the catalog was constructed with). Monotonically
  /// increasing across publishes; gaps are possible when an ingest
  /// batch was aborted by an injected fault after versioning.
  uint64_t version() const { return version_; }
  size_t num_rows() const { return table_.num_rows(); }
  /// The engine bound to this frozen version.
  const Paleo& engine() const { return *engine_; }

 private:
  friend class TableCatalog;

  Table table_;
  const uint64_t version_;
  std::unique_ptr<Paleo> engine_;  // bound to &table_
  // Retirement accounting (set by the owning catalog; nullable).
  obs::Gauge* live_gauge_ = nullptr;
  obs::Counter* retired_total_ = nullptr;
};

/// \brief Owner of the snapshot chain: builds version 1 from the base
/// table, accepts new versions from the Ingestor, and publishes the
/// current snapshot for pinning.
///
/// Thread-safe (see file comment). Non-copyable; typically owned by a
/// shared_ptr shared between the serving side (DiscoveryService) and
/// the ingestion side (Ingestor).
class TableCatalog {
 public:
  /// Freezes `base` as snapshot version 1 (same upfront cost as one
  /// Paleo construction, plus the ingest delta state). `options` are
  /// the engine options every snapshot's Paleo is built with; they
  /// also serve as the discovery service's default per-request
  /// options. `metrics`, when non-null, must outlive the catalog and
  /// every pinned snapshot.
  TableCatalog(Table base, PaleoOptions options,
               obs::MetricsRegistry* metrics = nullptr);

  TableCatalog(const TableCatalog&) = delete;
  TableCatalog& operator=(const TableCatalog&) = delete;

  /// Pins the current snapshot: a pointer copy under a briefly held
  /// lock. The returned snapshot never changes; call again to observe
  /// later versions.
  std::shared_ptr<const TableSnapshot> Current() const {
    MutexLock lock(publish_mutex_);
    return current_;
  }

  /// Version of the currently published snapshot.
  uint64_t CurrentVersion() const { return Current()->version(); }

  const PaleoOptions& options() const { return options_; }
  obs::MetricsRegistry* metrics() const { return metrics_; }

 private:
  friend class Ingestor;

  /// What one successful ingest did (Ingestor bookkeeping).
  struct IngestOutcome {
    size_t rows = 0;
    bool incremental = false;
    int full_rebuilds = 0;
    uint64_t published_version = 0;
  };

  /// Registry handles resolved once at construction (all null without
  /// a registry).
  struct CatalogMetrics {
    obs::Counter* batches = nullptr;
    obs::Counter* rows = nullptr;
    obs::Counter* full_rebuilds = nullptr;
    obs::Histogram* publish_ms = nullptr;
    obs::Gauge* version = nullptr;
    obs::Gauge* live = nullptr;
    obs::Counter* retired = nullptr;
  };
  CatalogMetrics BindMetrics();

  /// The catalog's stats options: delta state always on, so every
  /// snapshot can be extended incrementally.
  static CatalogOptions StatsOptions();

  /// Builds the next version off the current snapshot and publishes
  /// it; serialized on ingest_mutex_. An error return leaves the
  /// published snapshot untouched.
  Status Ingest(std::span<const std::vector<Value>> rows,
                bool allow_incremental, obs::Trace* trace,
                IngestOutcome* outcome);

  /// Wraps the pieces into a snapshot with retirement accounting.
  std::shared_ptr<const TableSnapshot> MakeSnapshot(
      Table table, uint64_t version, EntityIndex index, StatsCatalog stats,
      std::unique_ptr<DimensionIndex> dimension_index);

  const PaleoOptions options_;
  obs::MetricsRegistry* const metrics_;
  const CatalogMetrics catalog_metrics_;

  /// Serializes snapshot builds (single writer at a time). Readers
  /// never take it: they only touch publish_mutex_ below. Ingest holds
  /// it while publishing (and while reading Current), so the global
  /// order is ingest before publish — declared here so both clang's
  /// -Wthread-safety and paleo_analyze's lock-order pass enforce it.
  Mutex ingest_mutex_ ACQUIRED_BEFORE(publish_mutex_);
  uint64_t next_version_ GUARDED_BY(ingest_mutex_) = 2;

  /// Guards only the published-pointer hand-off: readers hold it for
  /// one shared_ptr copy, the writer for one swap. Never held across
  /// build work or a discovery run.
  mutable Mutex publish_mutex_;
  std::shared_ptr<const TableSnapshot> current_ GUARDED_BY(publish_mutex_);
};

}  // namespace paleo

#endif  // PALEO_CATALOG_TABLE_CATALOG_H_
