#include "common/crc32.h"

#include <array>

namespace paleo {

namespace {

const std::array<uint32_t, 256>& Crc32Table() {
  static const auto kTable = [] {
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      table[i] = c;
    }
    return table;
  }();
  return kTable;
}

}  // namespace

uint32_t Crc32Init() { return 0xFFFFFFFFu; }

uint32_t Crc32Update(uint32_t crc, const void* data, size_t size) {
  const auto& table = Crc32Table();
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc;
}

uint32_t Crc32Finish(uint32_t crc) { return crc ^ 0xFFFFFFFFu; }

uint32_t Crc32(const void* data, size_t size) {
  return Crc32Finish(Crc32Update(Crc32Init(), data, size));
}

}  // namespace paleo
