// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320).
//
// Shared by the binary table format's trailing checksum and by any
// subsystem that wants cheap corruption detection. The incremental API
// lets callers checksum streamed or scattered buffers without
// concatenating them:
//
//   uint32_t crc = Crc32Init();
//   crc = Crc32Update(crc, a.data(), a.size());
//   crc = Crc32Update(crc, b.data(), b.size());
//   uint32_t digest = Crc32Finish(crc);

#ifndef PALEO_COMMON_CRC32_H_
#define PALEO_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace paleo {

/// Starts an incremental CRC-32 computation.
uint32_t Crc32Init();

/// Folds `size` bytes into a running CRC started with Crc32Init().
uint32_t Crc32Update(uint32_t crc, const void* data, size_t size);

/// Finalizes a running CRC into the standard digest.
uint32_t Crc32Finish(uint32_t crc);

/// One-shot CRC-32 of a byte range.
uint32_t Crc32(const void* data, size_t size);

}  // namespace paleo

#endif  // PALEO_COMMON_CRC32_H_
