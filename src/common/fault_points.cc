#include "common/fault_points.h"

#include <chrono>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/mutex.h"
#include "common/random.h"
#include "common/thread_annotations.h"

namespace paleo {

namespace {

/// One armed fault point: its spec plus the mutable trigger state.
struct ArmedPoint {
  explicit ArmedPoint(FaultSpec s) : spec(std::move(s)), rng(spec.seed) {}

  FaultSpec spec;
  Rng rng;
  int64_t hits = 0;
  int64_t fires = 0;
};

}  // namespace

struct FaultPoints::Registry {
  Mutex mutex;
  std::unordered_map<std::string, ArmedPoint> points GUARDED_BY(mutex);
};

std::atomic<int> FaultPoints::armed_count_{0};
std::atomic<int64_t> FaultPoints::total_injected_{0};
std::atomic<obs::Counter*> FaultPoints::injected_metric_{nullptr};

FaultPoints::Registry& FaultPoints::GetRegistry() {
  // Meyers singleton: every thread that can hit a fault point is owned
  // by an object destroyed before static teardown (thread pools join
  // in their owners' destructors), so the registry outlives all users.
  static Registry registry;
  return registry;
}

FaultResult FaultPoints::Hit(const char* name) {
  FaultSpec spec;
  {
    Registry& registry = GetRegistry();
    MutexLock lock(registry.mutex);
    auto it = registry.points.find(name);
    if (it == registry.points.end()) return FaultResult{};
    ArmedPoint& point = it->second;
    ++point.hits;
    if (point.spec.max_fires >= 0 && point.fires >= point.spec.max_fires) {
      return FaultResult{};
    }
    const bool fire =
        (point.spec.at_hit > 0 && point.hits == point.spec.at_hit) ||
        (point.spec.probability > 0.0 &&
         point.rng.Bernoulli(point.spec.probability));
    if (!fire) return FaultResult{};
    ++point.fires;
    spec = point.spec;
  }
  // relaxed: pure tally; the metric pointer load below is the acquire
  // that pairs with AttachMetric's release store.
  total_injected_.fetch_add(1, std::memory_order_relaxed);
  obs::Inc(injected_metric_.load(std::memory_order_acquire));

  FaultResult result;
  result.action = spec.action;
  switch (spec.action) {
    case FaultAction::kStatusError:
      result.status =
          Status(spec.code, spec.message.empty()
                                ? std::string("injected fault at ") + name
                                : spec.message);
      break;
    case FaultAction::kDelay:
      if (spec.delay_micros > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(spec.delay_micros));
      }
      break;
    case FaultAction::kSpuriousWakeup:
    case FaultAction::kAllocFailure:
    case FaultAction::kNone:
      break;  // the site interprets the action
  }
  return result;
}

// relaxed: armed_count_ is a hint for the disarmed fast path
// (AnyArmed); the registry map itself is guarded by registry.mutex, and
// a stale hint only costs one extra Hit() that finds nothing armed.
void FaultPoints::Arm(const std::string& name, FaultSpec spec) {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mutex);
  auto it = registry.points.find(name);
  if (it != registry.points.end()) {
    // Re-arm: replace the spec and reset the trigger state.
    registry.points.erase(it);
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  registry.points.emplace(name, ArmedPoint(std::move(spec)));
  armed_count_.fetch_add(1, std::memory_order_relaxed);
}

void FaultPoints::Disarm(const std::string& name) {
  // relaxed: advisory fast-path hint; see Arm.
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mutex);
  if (registry.points.erase(name) > 0) {
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultPoints::DisarmAll() {
  // relaxed: advisory fast-path hint; see Arm.
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mutex);
  armed_count_.fetch_sub(static_cast<int>(registry.points.size()),
                         std::memory_order_relaxed);
  registry.points.clear();
}

FaultPoints::PointStats FaultPoints::StatsFor(const std::string& name) {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mutex);
  auto it = registry.points.find(name);
  if (it == registry.points.end()) return PointStats{};
  return PointStats{it->second.hits, it->second.fires};
}

void FaultPoints::AttachMetric(obs::Counter* counter) {
  injected_metric_.store(counter, std::memory_order_release);
}

void FaultPoints::DetachMetric(obs::Counter* counter) {
  obs::Counter* expected = counter;
  injected_metric_.compare_exchange_strong(expected, nullptr,
                                           std::memory_order_acq_rel);
}

}  // namespace paleo
