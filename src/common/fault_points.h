// Process-wide, seed-driven fault points for chaos testing.
//
// A fault point is a named hook compiled into a production code path:
//
//   FaultResult fault = PALEO_FAULT_POINT("subsystem.stage.hook");
//   if (fault.error()) return fault.status;
//
// Disarmed — the production state — a fault point costs ONE relaxed
// atomic load and a predictable branch: no lock, no map lookup, no
// allocation. Tests arm points by name with a FaultSpec describing
// WHAT to inject (a Status error, an artificial delay, a spurious
// wakeup, or a simulated allocation failure) and WHEN (exactly at the
// Nth hit, with seeded probability per hit, or both, optionally capped
// by max_fires). Probability draws come from an Rng seeded by the
// spec, so any failing chaos iteration replays from its seed alone.
//
// Site contract: every fault-point name appears at EXACTLY ONE site in
// src/ and is dotted kebab-case (tools/paleo_lint.py `fault-points`
// rule). A site honors the action kinds that make sense for it — a
// void site cannot surface a Status and simply ignores an error-action
// firing (the firing still counts in stats and metrics). Delays are
// applied inside Hit() itself, so every site transparently supports
// them.
//
// Thread-safe: Arm/Disarm/Hit/StatsFor may be called from any thread.
// The registry mutex is a leaf lock (Hit acquires nothing else), so
// fault points may sit inside arbitrary critical sections without
// creating lock-order cycles.

#ifndef PALEO_COMMON_FAULT_POINTS_H_
#define PALEO_COMMON_FAULT_POINTS_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "obs/metrics.h"

namespace paleo {

/// \brief What an armed fault point injects when it fires.
enum class FaultAction : int {
  kNone = 0,
  /// The site surfaces `FaultSpec::code` as a Status error.
  kStatusError = 1,
  /// Hit() sleeps for `FaultSpec::delay_micros` before returning.
  kDelay = 2,
  /// Condition-wait sites skip one wait and re-check their predicate,
  /// exactly as a spurious hardware wakeup would.
  kSpuriousWakeup = 3,
  /// Allocation sites behave as if the allocation failed and take
  /// their degradation path.
  kAllocFailure = 4,
};

/// \brief What to inject and when. Armed per fault-point name.
struct FaultSpec {
  FaultAction action = FaultAction::kStatusError;

  /// kStatusError: the injected code and message (empty message =
  /// synthesized from the point name).
  StatusCode code = StatusCode::kInternal;
  std::string message;

  /// kDelay: how long Hit() sleeps when the point fires.
  int64_t delay_micros = 1000;

  /// Fire exactly at this 1-based hit count. 0 disables the trigger.
  int64_t at_hit = 0;
  /// Fire each hit with this probability (seeded draw). 0 disables.
  double probability = 0.0;
  /// Seeds the probability draws; same seed => same firing pattern.
  uint64_t seed = 0;
  /// Total fires allowed before the point goes quiet; -1 = unlimited.
  int64_t max_fires = -1;
};

/// \brief What a fault-point hit injected (kNone when disarmed or the
/// trigger did not fire). Sites honor the members relevant to them.
struct FaultResult {
  FaultAction action = FaultAction::kNone;
  /// Set for kStatusError firings; OK otherwise.
  Status status;

  bool fired() const { return action != FaultAction::kNone; }
  bool error() const { return action == FaultAction::kStatusError; }
  bool spurious_wakeup() const {
    return action == FaultAction::kSpuriousWakeup;
  }
  bool alloc_failure() const {
    return action == FaultAction::kAllocFailure;
  }
};

/// \brief The process-wide registry of armed fault points.
///
/// All static: fault points are compiled into shared library code, so
/// there is exactly one arming surface per process. Thread-safe (see
/// file comment).
class FaultPoints {
 public:
  /// Per-point counters since arming (reset by re-Arm / Disarm).
  struct PointStats {
    int64_t hits = 0;
    int64_t fires = 0;
  };

  /// True when at least one fault point is armed anywhere. The macro's
  /// fast path: one relaxed atomic load. relaxed: a stale answer only
  /// defers or wastes one registry probe; the registry mutex is the
  /// real synchronization.
  static bool AnyArmed() {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  /// Evaluates the armed spec for `name` (if any) against its trigger
  /// and returns what fired. Called via PALEO_FAULT_POINT, not
  /// directly, so the disarmed fast path stays a single load.
  static FaultResult Hit(const char* name);

  /// Arms (or re-arms, resetting counters) the named point.
  static void Arm(const std::string& name, FaultSpec spec);
  static void Disarm(const std::string& name);
  static void DisarmAll();

  /// Counters for an armed point; zeros when not armed.
  static PointStats StatsFor(const std::string& name);

  /// Process-lifetime count of fired injections, across all points.
  /// relaxed: pure tally, sampled by tests at quiescence.
  static int64_t TotalInjected() {
    return total_injected_.load(std::memory_order_relaxed);
  }

  /// Mirrors every firing into `counter` (a registry-backed
  /// paleo_faults_injected_total). Last attach wins; DetachMetric only
  /// clears when `counter` is still the attached one, so overlapping
  /// attachers cannot dangle each other. The attacher must keep the
  /// counter alive until after DetachMetric returns and every thread
  /// that can hit a fault point has quiesced.
  static void AttachMetric(obs::Counter* counter);
  static void DetachMetric(obs::Counter* counter);

 private:
  struct Registry;
  static Registry& GetRegistry();

  // atomic: armed_count_ is the lock-free fast-path hint,
  // total_injected_ a pure tally, and injected_metric_ a
  // release/acquire-published pointer (AttachMetric stores release,
  // the firing path loads acquire).
  static std::atomic<int> armed_count_;
  static std::atomic<int64_t> total_injected_;
  static std::atomic<obs::Counter*> injected_metric_;
};

/// The fault-point site macro: one relaxed atomic load when nothing is
/// armed process-wide, a registry lookup only under active chaos.
#define PALEO_FAULT_POINT(point_name)          \
  (::paleo::FaultPoints::AnyArmed()            \
       ? ::paleo::FaultPoints::Hit(point_name) \
       : ::paleo::FaultResult{})

}  // namespace paleo

#endif  // PALEO_COMMON_FAULT_POINTS_H_
