#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"

namespace paleo {

namespace {

LogLevel InitialLevel() {
  const char* env = std::getenv("PALEO_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  std::string v = ToLower(env);
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warning" || v == "warn") return LogLevel::kWarning;
  if (v == "error") return LogLevel::kError;
  return LogLevel::kInfo;
}

std::atomic<int>& LevelRef() {
  // atomic: the level is read on every log call and may be flipped by
  // any thread; plain int would be a data race, ordering is irrelevant.
  static std::atomic<int> level{static_cast<int>(InitialLevel())};
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(LevelRef().load()); }

void SetLogLevel(LogLevel level) {
  LevelRef().store(static_cast<int>(level));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel()), level_(level) {
  if (enabled_) {
    // Keep only the basename to avoid noisy absolute paths.
    const char* base = file;
    for (const char* p = file; *p; ++p)
      if (*p == '/') base = p + 1;
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

void CheckFailed(const char* condition, const char* file, int line,
                 const std::string& msg) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s %s\n", file, line,
               condition, msg.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace paleo
