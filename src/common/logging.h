// Minimal leveled logging plus CHECK macros, in the spirit of
// glog/Arrow's util/logging.h but with no global configuration beyond a
// runtime level threshold.

#ifndef PALEO_COMMON_LOGGING_H_
#define PALEO_COMMON_LOGGING_H_

#include <sstream>
#include <string>

#include "common/status.h"

namespace paleo {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Default: kInfo,
/// overridable with the PALEO_LOG_LEVEL environment variable
/// (debug|info|warning|error), read once at first use.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

/// Prints the failed condition and message to stderr, then aborts.
[[noreturn]] void CheckFailed(const char* condition, const char* file,
                              int line, const std::string& msg);

class CheckMessage {
 public:
  CheckMessage(const char* condition, const char* file, int line)
      : condition_(condition), file_(file), line_(line) {}
  [[noreturn]] ~CheckMessage() {
    CheckFailed(condition_, file_, line_, stream_.str());
  }

  template <typename T>
  CheckMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  const char* condition_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace paleo

#define PALEO_LOG(level)                                          \
  ::paleo::internal::LogMessage(::paleo::LogLevel::k##level,      \
                                __FILE__, __LINE__)

/// Fatal assertion on logic errors inside the library (not for user
/// input validation — that path returns Status).
#define PALEO_CHECK(cond)                                               \
  if (cond) {                                                           \
  } else                                                                \
    ::paleo::internal::CheckMessage(#cond, __FILE__, __LINE__)

#define PALEO_CHECK_OK(expr)                                     \
  do {                                                           \
    ::paleo::Status _st = (expr);                                \
    PALEO_CHECK(_st.ok()) << _st.ToString();                     \
  } while (false)

#ifdef NDEBUG
#define PALEO_DCHECK(cond) \
  if (true) {              \
  } else                   \
    ::paleo::internal::CheckMessage(#cond, __FILE__, __LINE__)
#else
#define PALEO_DCHECK(cond) PALEO_CHECK(cond)
#endif

#endif  // PALEO_COMMON_LOGGING_H_
