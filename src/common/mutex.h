// Annotated synchronization primitives: thin wrappers over std::mutex,
// std::shared_mutex, and std::condition_variable that carry the Clang
// thread-safety capability attributes (common/thread_annotations.h).
//
// The standard library types compile fine but are INVISIBLE to the
// compile-time analysis (libstdc++ ships them without capability
// attributes), so concurrent code in this repo uses these wrappers
// instead — tools/paleo_lint.py rejects raw std::mutex members outside
// this file. The wrappers add no state and no indirection: every method
// is a one-line inline forward, so the generated code is identical to
// using the std types directly.
//
// Condition waits keep std::condition_variable underneath (not
// condition_variable_any) via the adopt_lock trick: CondVar::Wait is
// annotated REQUIRES(mu) — from the analysis' point of view the lock is
// held across the wait, which is exactly the invariant callers rely on.
//
// Usage:
//   Mutex mutex_;
//   std::deque<Task> queue_ GUARDED_BY(mutex_);
//   CondVar ready_;
//   ...
//   MutexLock lock(mutex_);
//   while (queue_.empty()) ready_.Wait(mutex_);

#ifndef PALEO_COMMON_MUTEX_H_
#define PALEO_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace paleo {

/// \brief Exclusive mutex carrying the "mutex" capability.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief Reader/writer mutex carrying the "shared_mutex" capability.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// \brief RAII exclusive lock (std::lock_guard with annotations).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// \brief RAII exclusive lock over a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// \brief RAII shared (reader) lock over a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() RELEASE() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// \brief Condition variable bound to paleo::Mutex at each wait.
///
/// Waits are annotated REQUIRES(mu): callers hold the mutex across the
/// call, and guarded state they re-check afterwards is still seen as
/// protected by the analysis. Spurious wakeups happen exactly as with
/// the std type — always wait in a predicate loop.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits, and reacquires it.
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Wait with a deadline; false when the deadline passed (the mutex is
  /// reacquired either way).
  bool WaitUntil(Mutex& mu,
                 std::chrono::steady_clock::time_point deadline)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace paleo

#endif  // PALEO_COMMON_MUTEX_H_
