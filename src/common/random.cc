#include "common/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

namespace paleo {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& w : s_) w = SplitMix64(&sm);
  // Guard against the (astronomically unlikely) all-zero state, which is
  // the one fixed point of xoshiro256**.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  assert(n > 0);
  // Rejection sampling over the largest multiple of n below 2^64.
  const uint64_t threshold = -n % n;  // == (2^64 - n) mod n
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  // Box-Muller; u1 strictly positive to keep log() finite.
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t n,
                                                    uint32_t count) {
  assert(count <= n);
  // Floyd's algorithm: O(count) expected insertions.
  std::vector<uint32_t> picked;
  picked.reserve(count);
  for (uint32_t j = n - count; j < n; ++j) {
    uint32_t t = static_cast<uint32_t>(Uniform(j + 1));
    if (std::find(picked.begin(), picked.end(), t) != picked.end()) {
      picked.push_back(j);
    } else {
      picked.push_back(t);
    }
  }
  std::sort(picked.begin(), picked.end());
  return picked;
}

Rng Rng::Fork(uint64_t stream_id) {
  // Mix the child stream id with fresh parent output.
  uint64_t seed = Next() ^ (stream_id * 0xD1B54A32D192ED03ULL);
  return Rng(seed);
}

}  // namespace paleo
