// Deterministic pseudo-random number generation.
//
// All data generators, samplers, and histogram-sampling code in this
// repository draw from Rng, a from-scratch xoshiro256** generator seeded
// explicitly. Experiments are therefore reproducible bit-for-bit across
// runs and platforms; std::mt19937 and std::uniform_*_distribution are
// deliberately avoided because their outputs are not portable.

#ifndef PALEO_COMMON_RANDOM_H_
#define PALEO_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace paleo {

/// \brief SplitMix64 step; used to expand seeds and as a standalone
/// cheap stateless hash-like generator.
uint64_t SplitMix64(uint64_t* state);

/// \brief Deterministic xoshiro256** PRNG with convenience samplers.
class Rng {
 public:
  /// Seeds the four-word state by running SplitMix64 on `seed`.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, n). n must be > 0. Uses rejection sampling,
  /// so the result is exactly uniform.
  uint64_t Uniform(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double NextGaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Bernoulli trial with probability p of returning true.
  bool Bernoulli(double p);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(Uniform(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples `count` distinct indices from [0, n) uniformly without
  /// replacement (Floyd's algorithm); result is sorted ascending.
  /// Requires count <= n.
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t count);

  /// Derives an independent child generator; children with distinct
  /// stream ids are decorrelated from each other and the parent.
  Rng Fork(uint64_t stream_id);

 private:
  uint64_t s_[4];
};

}  // namespace paleo

#endif  // PALEO_COMMON_RANDOM_H_
