#include "common/run_budget.h"

#include <limits>

namespace paleo {

const char* TerminationReasonToString(TerminationReason reason) {
  switch (reason) {
    case TerminationReason::kCompleted:
      return "completed";
    case TerminationReason::kDeadline:
      return "deadline";
    case TerminationReason::kExecutionBudget:
      return "execution budget";
    case TerminationReason::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

void RunBudget::Tighten(const RunBudget& other) {
  if (other.has_deadline_ &&
      (!has_deadline_ || other.deadline_ < deadline_)) {
    has_deadline_ = true;
    deadline_ = other.deadline_;
  }
  if (other.max_executions_ > 0 &&
      (max_executions_ == 0 || other.max_executions_ < max_executions_)) {
    max_executions_ = other.max_executions_;
  }
  if (cancel_ == nullptr) cancel_ = other.cancel_;
}

double RunBudget::RemainingMillis() const {
  if (!has_deadline_) return std::numeric_limits<double>::max();
  return std::chrono::duration<double, std::milli>(deadline_ - Clock::now())
      .count();
}

}  // namespace paleo
