// Resource governance for long-running pipeline work.
//
// A RunBudget bounds one reverse-engineering run by three independent
// limits, any of which may be absent:
//
//   - a wall-clock deadline (steady_clock, immune to clock jumps),
//   - a cap on candidate-query executions, and
//   - a cooperative CancellationToken an external thread may trip.
//
// The budget is observed, never enforced preemptively: pipeline stages
// poll it at bounded intervals (BudgetGate amortizes the clock read
// over `stride` iterations) and wind down gracefully when it is
// exhausted, returning whatever results they have produced so far.
// Exhaustion is therefore a degradation, not an error — the reason is
// carried out-of-band as a TerminationReason.

#ifndef PALEO_COMMON_RUN_BUDGET_H_
#define PALEO_COMMON_RUN_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace paleo {

/// \brief Why a governed run stopped.
enum class TerminationReason : int {
  /// Ran to natural completion; results are exhaustive.
  kCompleted = 0,
  /// The wall-clock deadline passed mid-run.
  kDeadline = 1,
  /// The candidate-query execution cap was reached.
  kExecutionBudget = 2,
  /// The CancellationToken was tripped.
  kCancelled = 3,
};

/// "completed", "deadline", "execution budget", or "cancelled".
const char* TerminationReasonToString(TerminationReason reason);

/// \brief Cooperative cancellation flag, safe to trip from any thread
/// while a run polls it. The token must outlive every RunBudget that
/// references it.
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  // relaxed: cancellation is a level-triggered advisory flag polled by
  // the budget gate; a poll that misses the flag by one stride just
  // stops one gate-check later. No data is published through it.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  /// Re-arms the token for another run.
  void Reset() { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  // relaxed: see the flag contract on Cancel() above.
  std::atomic<bool> cancelled_{false};
};

/// \brief One run's resource limits. Default-constructed budgets are
/// unlimited and never exhaust, so `const RunBudget*` parameters accept
/// nullptr and an all-default budget interchangeably.
class RunBudget {
 public:
  using Clock = std::chrono::steady_clock;

  RunBudget() = default;

  static RunBudget Unlimited() { return RunBudget(); }

  /// Sets the deadline to now + `ms`. Non-positive `ms` clears it.
  void SetDeadlineAfterMillis(int64_t ms) {
    has_deadline_ = ms > 0;
    if (has_deadline_) {
      deadline_ = Clock::now() + std::chrono::milliseconds(ms);
    }
  }
  /// Caps candidate-query executions; 0 or negative means unlimited.
  void set_max_executions(int64_t n) { max_executions_ = n > 0 ? n : 0; }
  /// Attaches a cancellation token (not owned; may be nullptr).
  void set_cancellation_token(const CancellationToken* token) {
    cancel_ = token;
  }

  bool has_deadline() const { return has_deadline_; }
  int64_t max_executions() const { return max_executions_; }

  /// True when no limit is configured (the common fast path: callers
  /// holding such a budget skip polling entirely).
  bool IsUnlimited() const {
    return !has_deadline_ && max_executions_ == 0 && cancel_ == nullptr;
  }

  /// Tightens this budget to the intersection with `other`: the earlier
  /// deadline, the smaller execution cap, and either token (this
  /// budget's token wins if both are set).
  void Tighten(const RunBudget& other);

  /// Polls every limit. `executions_used` is the pipeline-wide
  /// candidate-query execution count so far (pass 0 from stages that do
  /// not execute queries). Cancellation is reported first, then the
  /// deadline, then the execution cap, so a cancelled run never
  /// masquerades as a timeout.
  TerminationReason Check(int64_t executions_used = 0) const {
    if (cancel_ != nullptr && cancel_->cancelled()) {
      return TerminationReason::kCancelled;
    }
    if (has_deadline_ && Clock::now() >= deadline_) {
      return TerminationReason::kDeadline;
    }
    if (max_executions_ > 0 && executions_used >= max_executions_) {
      return TerminationReason::kExecutionBudget;
    }
    return TerminationReason::kCompleted;
  }

  bool Exhausted(int64_t executions_used = 0) const {
    return Check(executions_used) != TerminationReason::kCompleted;
  }

  /// Milliseconds until the deadline (negative once past); a large
  /// positive value when no deadline is set.
  double RemainingMillis() const;

 private:
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
  int64_t max_executions_ = 0;
  const CancellationToken* cancel_ = nullptr;
};

/// \brief Amortized budget poll for tight loops.
///
/// Tick() consults the budget once every `stride` calls (and on the
/// first), so a scan loop pays one branch and one counter increment per
/// iteration instead of a clock read. Once exhausted the gate latches:
/// every later Tick() reports the same reason without re-polling.
class BudgetGate {
 public:
  /// `budget` may be nullptr (the gate then never trips). A null or
  /// unlimited budget short-circuits Tick() to a single comparison.
  explicit BudgetGate(const RunBudget* budget, uint32_t stride = 1024)
      : budget_(budget != nullptr && !budget->IsUnlimited() ? budget
                                                           : nullptr),
        stride_(stride == 0 ? 1 : stride) {}

  /// Returns kCompleted while the budget holds, the terminal reason
  /// once it does not.
  TerminationReason Tick(int64_t executions_used = 0) {
    if (budget_ == nullptr) return TerminationReason::kCompleted;
    if (reason_ != TerminationReason::kCompleted) return reason_;
    if (count_++ % stride_ != 0) return TerminationReason::kCompleted;
    reason_ = budget_->Check(executions_used);
    return reason_;
  }

  /// Last polled reason (kCompleted until the gate trips).
  TerminationReason reason() const { return reason_; }
  bool exhausted() const {
    return reason_ != TerminationReason::kCompleted;
  }

 private:
  const RunBudget* budget_;
  uint32_t stride_;
  uint32_t count_ = 0;
  TerminationReason reason_ = TerminationReason::kCompleted;
};

}  // namespace paleo

#endif  // PALEO_COMMON_RUN_BUDGET_H_
