#include "common/status.h"

namespace paleo {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kTypeError:
      return "Type error";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kIoError:
      return "IO error";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kQueryRefuted:
      return "Query refuted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace paleo
