// Status / StatusOr error model, in the style of Apache Arrow and RocksDB.
//
// Library code never throws across public API boundaries: fallible
// operations return a Status (or a StatusOr<T> when they also produce a
// value). Callers either handle the error or propagate it with the
// PALEO_RETURN_NOT_OK / PALEO_ASSIGN_OR_RETURN macros.

#ifndef PALEO_COMMON_STATUS_H_
#define PALEO_COMMON_STATUS_H_

#include <cassert>
#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace paleo {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kTypeError = 5,
  kUnsupported = 6,
  kInternal = 7,
  kIoError = 8,
  kCancelled = 9,
  kResourceExhausted = 10,
  kQueryRefuted = 11,
};

/// \brief Returns a human-readable name for a status code ("OK",
/// "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus, for errors, a
/// message. The OK status carries no allocation and is cheap to copy.
///
/// The class is [[nodiscard]]: any expression producing a Status by
/// value must be checked, propagated (PALEO_RETURN_NOT_OK), or
/// explicitly discarded with a `(void)` cast carrying a reason comment
/// (enforced tree-wide by -Werror=unused-result plus the
/// tools/paleo_analyze.py status-discard pass).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string msg)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_shared<State>(State{code, std::move(msg)})) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  /// Work interrupted by a RunBudget (deadline, execution cap, or
  /// cooperative cancellation). Governed callers treat this as a
  /// wind-down signal, not a failure.
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  /// A bounded resource (admission queue, session table) is full and
  /// the request was shed rather than queued. Retryable by the caller
  /// after backoff.
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  /// A candidate-query execution was aborted mid-scan because its
  /// threshold bounds (engine/threshold_monitor.h) proved the result
  /// cannot equal the target list. NOT a failure: the validator treats
  /// it exactly as an executed-and-rejected candidate. Only executions
  /// given an ExecContext::threshold can produce it.
  static Status QueryRefuted(std::string msg) {
    return Status(StatusCode::kQueryRefuted, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const {
    return state_ == nullptr ? StatusCode::kOk : state_->code;
  }
  /// Error message; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ == nullptr ? kEmpty : state_->msg;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsUnsupported() const { return code() == StatusCode::kUnsupported; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsQueryRefuted() const {
    return code() == StatusCode::kQueryRefuted;
  }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  // Shared so Status copies are cheap; nullptr encodes OK.
  std::shared_ptr<const State> state_;
};

/// \brief Either a value of type T or an error Status. Never holds both.
/// [[nodiscard]] for the same reason as Status: dropping one silently
/// drops the error it may carry.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Error state. `status` must not be OK.
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : rep_(std::move(status)) {
    assert(!std::get<Status>(rep_).ok() &&
           "StatusOr constructed from OK status without a value");
  }
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : rep_(std::move(value)) {}

  bool ok() const { return std::holds_alternative<T>(rep_); }

  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(rep_);
  }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(rep_) : std::move(fallback);
  }

 private:
  std::variant<Status, T> rep_;
};

}  // namespace paleo

/// Propagates a non-OK Status to the caller.
#define PALEO_RETURN_NOT_OK(expr)        \
  do {                                   \
    ::paleo::Status _st = (expr);        \
    if (!_st.ok()) return _st;           \
  } while (false)

#define PALEO_CONCAT_IMPL(x, y) x##y
#define PALEO_CONCAT(x, y) PALEO_CONCAT_IMPL(x, y)

/// Evaluates a StatusOr expression; on error propagates the Status,
/// otherwise assigns the value to `lhs` (which may be a declaration).
#define PALEO_ASSIGN_OR_RETURN(lhs, expr)                     \
  PALEO_ASSIGN_OR_RETURN_IMPL(                                \
      PALEO_CONCAT(_statusor_, __LINE__), lhs, expr)

#define PALEO_ASSIGN_OR_RETURN_IMPL(var, lhs, expr) \
  auto var = (expr);                                \
  if (!var.ok()) return var.status();               \
  lhs = std::move(var).value()

#endif  // PALEO_COMMON_STATUS_H_
