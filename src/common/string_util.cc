#include "common/string_util.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace paleo {

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' ||
                   s[b] == '\r'))
    ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' ||
                   s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out)
    if (c >= 'A' && c <= 'Z') c += 'a' - 'A';
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out)
    if (c >= 'a' && c <= 'z') c -= 'a' - 'A';
  return out;
}

std::string FormatDouble(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  // %.17g round-trips but is noisy; try shorter forms first.
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    double back = std::strtod(buf, nullptr);
    if (back == v || !std::isfinite(v)) break;
  }
  return buf;
}

std::string WithThousands(int64_t n) {
  char digits[32];
  bool neg = n < 0;
  uint64_t u = neg ? (~static_cast<uint64_t>(n) + 1) : static_cast<uint64_t>(n);
  std::snprintf(digits, sizeof(digits), "%llu",
                static_cast<unsigned long long>(u));
  std::string raw = digits;
  std::string out;
  size_t n_digits = raw.size();
  for (size_t i = 0; i < n_digits; ++i) {
    if (i != 0 && (n_digits - i) % 3 == 0) out += ',';
    out += raw[i];
  }
  return neg ? "-" + out : out;
}

std::string SqlQuote(std::string_view s) {
  std::string out = "'";
  for (char c : s) {
    out += c;
    if (c == '\'') out += '\'';
  }
  out += '\'';
  return out;
}

}  // namespace paleo
