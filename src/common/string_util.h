// Small string helpers shared across modules.

#ifndef PALEO_COMMON_STRING_UTIL_H_
#define PALEO_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace paleo {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits on a single-character separator; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

/// Formats a double the way the engine renders values in SQL text and
/// result listings: integral values without a decimal point, otherwise
/// shortest round-trip representation.
std::string FormatDouble(double v);

/// Renders n with thousands separators ("5313609" -> "5,313,609"), as in
/// the paper's Table 5.
std::string WithThousands(int64_t n);

/// SQL string literal with single quotes doubled ('O''Neal').
std::string SqlQuote(std::string_view s);

}  // namespace paleo

#endif  // PALEO_COMMON_STRING_UTIL_H_
