// Clang thread-safety annotation macros (no-ops off clang).
//
// These wrap the attributes behind Clang's `-Wthread-safety` analysis
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), which checks
// lock discipline at COMPILE TIME: every field that names its guarding
// capability with GUARDED_BY is rejected when read or written without
// that capability held, and every function that declares REQUIRES /
// ACQUIRE / RELEASE has its callers checked against the declaration.
//
// House conventions (enforced by tools/paleo_lint.py, checked by the
// PALEO_ANALYZE CMake lane, documented in DESIGN.md "Static analysis"):
//
//   - Concurrent code uses the annotated wrappers in common/mutex.h
//     (paleo::Mutex / SharedMutex / MutexLock / CondVar), never raw
//     std::mutex members — the std types carry no capability
//     attributes with libstdc++, so the analysis cannot see them.
//   - Every Mutex member is accompanied by at least one GUARDED_BY
//     field: a mutex that guards nothing is either dead or hiding an
//     undeclared invariant.
//   - Private helpers that run under a caller's lock declare
//     REQUIRES(mutex_) instead of re-locking.
//
// On GCC (which has no thread-safety analysis) and on Clang builds
// without the attribute, every macro expands to nothing, so annotated
// headers compile identically everywhere.

#ifndef PALEO_COMMON_THREAD_ANNOTATIONS_H_
#define PALEO_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define PALEO_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define PALEO_THREAD_ANNOTATION_(x)  // no-op off clang
#endif

/// Marks a class as a capability (a lockable resource) named `x` in
/// diagnostics, e.g. class CAPABILITY("mutex") Mutex { ... };
#define CAPABILITY(x) PALEO_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability (e.g. MutexLock).
#define SCOPED_CAPABILITY PALEO_THREAD_ANNOTATION_(scoped_lockable)

/// Declares that the field it annotates is protected by capability `x`:
/// reads require `x` held (shared or exclusive), writes require it held
/// exclusively.
#define GUARDED_BY(x) PALEO_THREAD_ANNOTATION_(guarded_by(x))

/// Like GUARDED_BY, for the data a pointer/smart-pointer field points
/// to (the pointer itself is unguarded).
#define PT_GUARDED_BY(x) PALEO_THREAD_ANNOTATION_(pt_guarded_by(x))

/// The annotated function must be called with the listed capabilities
/// held exclusively; it neither acquires nor releases them.
#define REQUIRES(...) \
  PALEO_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Shared (reader) flavor of REQUIRES.
#define REQUIRES_SHARED(...) \
  PALEO_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// The annotated function acquires the listed capabilities exclusively
/// and returns with them held.
#define ACQUIRE(...) \
  PALEO_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Shared (reader) flavor of ACQUIRE.
#define ACQUIRE_SHARED(...) \
  PALEO_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// The annotated function releases the listed capabilities (exclusive
/// or shared), which must be held on entry.
#define RELEASE(...) \
  PALEO_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Shared (reader) flavor of RELEASE.
#define RELEASE_SHARED(...) \
  PALEO_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// The annotated function acquires the capability only when it returns
/// the given value (e.g. TRY_ACQUIRE(true) for try_lock).
#define TRY_ACQUIRE(...) \
  PALEO_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// The listed capabilities must NOT be held when the annotated function
/// is called (deadlock prevention for self-locking functions).
#define EXCLUDES(...) PALEO_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// The annotated function returns a reference to the named capability
/// (e.g. an accessor exposing the guarding mutex).
#define RETURN_CAPABILITY(x) PALEO_THREAD_ANNOTATION_(lock_returned(x))

/// Asserts (at runtime, from the analysis' point of view) that the
/// capability is held — an escape hatch for code the analysis cannot
/// follow.
#define ASSERT_CAPABILITY(x) \
  PALEO_THREAD_ANNOTATION_(assert_capability(x))

/// Turns the analysis off for one function. Use sparingly and leave a
/// comment saying why the analysis cannot follow the code.
#define NO_THREAD_SAFETY_ANALYSIS \
  PALEO_THREAD_ANNOTATION_(no_thread_safety_analysis)

/// Declares the global acquisition ORDER between two mutexes: the
/// annotated mutex is always taken before (resp. after) the listed
/// ones. Clang's analysis checks the order at -Wthread-safety-beta;
/// tools/paleo_analyze.py's lock-order pass reads the same annotations
/// as authoritative edges in its cross-file acquisition graph, so an
/// annotation that contradicts observed nesting shows up as a cycle.
#define ACQUIRED_BEFORE(...) \
  PALEO_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))

/// See ACQUIRED_BEFORE; this is the mirrored direction.
#define ACQUIRED_AFTER(...) \
  PALEO_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

#endif  // PALEO_COMMON_THREAD_ANNOTATIONS_H_
