#include "common/thread_pool.h"

#include <algorithm>

#include "common/fault_points.h"

namespace paleo {

namespace {

// Identifies the pool worker running on this thread (nullptr outside
// any pool), so Submit from inside a task lands on the submitting
// worker's own deque.
thread_local ThreadPool* tl_pool = nullptr;
thread_local size_t tl_worker = 0;

}  // namespace

int ThreadPool::DefaultNumThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (int i = 0; i < n; ++i) {
    workers_[static_cast<size_t>(i)]->thread =
        std::thread([this, i]() { WorkerLoop(static_cast<size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(global_mutex_);
    stop_ = true;
  }
  wake_.NotifyAll();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  // Tasks submitted while the destructor was already joining (a
  // documented misuse, but futures must never break): run them inline.
  Task task;
  while (PopTask(&task)) task.run();
}

void ThreadPool::Push(Task task) {
  // Chaos hook: an armed delay here widens submit/teardown races; the
  // push itself cannot fail, so error actions only count as injected.
  (void)PALEO_FAULT_POINT("thread-pool.submit.push");
  if (tl_pool == this) {
    Worker& own = *workers_[tl_worker];
    {
      MutexLock lock(own.mutex);
      own.deque.push_back(std::move(task));
    }
    pending_.fetch_add(1, std::memory_order_release);
  } else {
    MutexLock lock(global_mutex_);
    // Insert before the first queued task that should run later:
    // lower priority, or equal priority submitted later (seq is
    // monotonic, so equal-priority inserts always land at the end).
    auto pos = std::find_if(global_.begin(), global_.end(),
                            [&](const Task& queued) {
                              return queued.priority < task.priority;
                            });
    global_.insert(pos, std::move(task));
    pending_.fetch_add(1, std::memory_order_release);
  }
  // Notify under the mutex so a worker between its predicate check and
  // its sleep cannot miss the wakeup.
  {
    MutexLock lock(global_mutex_);
  }
  wake_.NotifyOne();
}

bool ThreadPool::PopTask(Task* out) {
  // Own deque first (LIFO), when called from a worker of this pool.
  if (tl_pool == this) {
    Worker& own = *workers_[tl_worker];
    MutexLock lock(own.mutex);
    if (!own.deque.empty()) {
      *out = std::move(own.deque.back());
      own.deque.pop_back();
      // relaxed: decrement under the owning queue's mutex; the count is
      // a wakeup hint only (see pending_ in the header).
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  // Global queue next: highest priority, FIFO within a priority.
  {
    MutexLock lock(global_mutex_);
    if (!global_.empty()) {
      *out = std::move(global_.front());
      global_.pop_front();
      // relaxed: decrement under the owning queue's mutex; the count is
      // a wakeup hint only (see pending_ in the header).
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  // Steal sweep: oldest task (FIFO) from any other worker.
  for (size_t i = 0; i < workers_.size(); ++i) {
    if (tl_pool == this && i == tl_worker) continue;
    Worker& victim = *workers_[i];
    MutexLock lock(victim.mutex);
    if (!victim.deque.empty()) {
      *out = std::move(victim.deque.front());
      victim.deque.pop_front();
      // relaxed: decrement under the owning queue's mutex; the count is
      // a wakeup hint only (see pending_ in the header).
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

bool ThreadPool::RunPendingTask() {
  Task task;
  if (!PopTask(&task)) return false;
  task.run();
  return true;
}

void ThreadPool::WorkerLoop(size_t index) {
  tl_pool = this;
  tl_worker = index;
  for (;;) {
    Task task;
    if (PopTask(&task)) {
      task.run();
      continue;
    }
    MutexLock lock(global_mutex_);
    while (!stop_ && pending_.load(std::memory_order_acquire) <= 0) {
      // Chaos hook: skip one wait, re-checking the predicate exactly
      // as a spurious hardware wakeup would force us to.
      if (PALEO_FAULT_POINT("thread-pool.worker.wait").spurious_wakeup()) {
        continue;
      }
      wake_.Wait(global_mutex_);
    }
    if (stop_ && pending_.load(std::memory_order_acquire) <= 0) break;
  }
  tl_pool = nullptr;
}

size_t ThreadPool::QueueDepth() const {
  // relaxed: monitoring sample; momentarily stale depth is fine.
  int64_t n = pending_.load(std::memory_order_relaxed);
  return n > 0 ? static_cast<size_t>(n) : 0;
}

}  // namespace paleo
