// Work-stealing thread pool: the execution substrate of the serving
// layer (src/service/) and of intra-request parallel validation.
//
// Design:
//  * N worker threads. Tasks submitted from outside the pool enter a
//    global queue ordered by (priority desc, submission order asc);
//    tasks submitted from a worker thread are pushed onto that worker's
//    own deque (LIFO for the owner — better locality for fork-join
//    subtasks) and may be stolen FIFO by idle workers, the classic
//    Blumofe/Leiserson discipline.
//  * Submit() returns a std::future for the callable's result, so
//    callers compose with the standard library.
//  * Cooperative cancellation reuses the pipeline's CancellationToken:
//    a task submitted with a token is *skipped* if the token is already
//    tripped when a worker picks it up — the callable is not invoked
//    and the future is fulfilled with a value-initialized result (the
//    callable's result type must then be void or default-
//    constructible). A task that already started is never interrupted;
//    it observes the token itself, like every governed pipeline stage.
//  * WaitHelping() blocks on a future while executing queued tasks on
//    the calling thread, so a task may fan out subtasks into the same
//    pool and join them without risking scheduler deadlock (the waiter
//    donates itself as a worker).
//
// The pool never throws across Submit boundaries; callables that return
// Status/StatusOr carry their errors in the future's value, matching
// the library-wide error model.

#ifndef PALEO_COMMON_THREAD_POOL_H_
#define PALEO_COMMON_THREAD_POOL_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/run_budget.h"
#include "common/thread_annotations.h"

namespace paleo {

/// \brief Fixed-size work-stealing thread pool.
///
/// Thread-safe: Submit / RunPendingTask / WaitHelping may be called
/// from any thread, including pool workers. Destruction drains every
/// queued task (futures are never broken); trip the tasks' cancellation
/// tokens first for a fast shutdown.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// permits 0 for "unknown").
  static int DefaultNumThreads();

  /// Schedules `fn` and returns a future for its result.
  ///
  /// `priority`: higher-priority tasks leave the global queue first;
  /// equal priorities run in submission order. Locally queued subtasks
  /// (submitted from a worker) ignore priority — they run LIFO on the
  /// owner and are stolen FIFO.
  ///
  /// `cancel` (optional, not owned, must outlive the task): if tripped
  /// before the task starts, the callable is skipped and the future is
  /// fulfilled with a value-initialized result.
  template <typename Fn,
            typename R = std::invoke_result_t<std::decay_t<Fn>>>
  std::future<R> Submit(Fn&& fn, int priority = 0,
                        const CancellationToken* cancel = nullptr) {
    static_assert(std::is_void_v<R> || std::is_default_constructible_v<R>,
                  "skippable tasks need a default-constructible result");
    auto task = std::make_shared<std::packaged_task<R()>>(
        [f = std::forward<Fn>(fn), cancel]() mutable -> R {
          if (cancel != nullptr && cancel->cancelled()) {
            if constexpr (std::is_void_v<R>) {
              return;
            } else {
              return R{};
            }
          }
          return f();
        });
    std::future<R> future = task->get_future();
    Push(Task{[task]() { (*task)(); }, priority, NextSeq()});
    return future;
  }

  /// Runs one queued task on the calling thread, if any is available
  /// (own deque first for workers, then the global queue, then a steal
  /// sweep). Returns false when nothing was runnable.
  bool RunPendingTask();

  /// Blocks until `future` is ready, running queued tasks meanwhile.
  /// Safe to call from worker threads (this is what makes nested
  /// fork-join on a single pool deadlock-free).
  template <typename T>
  void WaitHelping(const std::future<T>& future) {
    using namespace std::chrono_literals;
    while (future.wait_for(0s) != std::future_status::ready) {
      if (!RunPendingTask()) {
        // Nothing runnable anywhere: the future's producer is mid-task
        // on another thread. Back off briefly instead of spinning hot.
        if (future.wait_for(200us) == std::future_status::ready) return;
      }
    }
  }

  /// Tasks currently queued (global + all local deques); approximate,
  /// for introspection and tests.
  size_t QueueDepth() const;

 private:
  struct Task {
    std::function<void()> run;
    int priority = 0;
    uint64_t seq = 0;  // global submission order, ties FIFO
  };

  struct Worker {
    mutable Mutex mutex;
    // Owner pops back (LIFO), thieves pop front (FIFO).
    std::deque<Task> deque GUARDED_BY(mutex);
    std::thread thread;
  };

  // relaxed: seq_ only breaks priority ties; tasks racing to submit
  // have no order to preserve, each just needs a distinct number.
  uint64_t NextSeq() {
    return seq_.fetch_add(1, std::memory_order_relaxed);
  }
  void Push(Task task);
  void WorkerLoop(size_t index);
  /// Pops per the calling context's discipline; false when empty.
  bool PopTask(Task* out);

  std::vector<std::unique_ptr<Worker>> workers_;
  mutable Mutex global_mutex_;
  // Global injection queue, kept sorted by (priority desc, seq asc).
  // A flat deque beats std::priority_queue here: submission order is
  // the common case (single priority), making pushes O(1) amortized.
  std::deque<Task> global_ GUARDED_BY(global_mutex_);
  CondVar wake_;
  // atomic: seq_ is a tie-break ticket (see NextSeq).
  std::atomic<uint64_t> seq_{0};
  // Total tasks queued anywhere; lets sleeping workers avoid a full
  // steal sweep on every wakeup. Atomic, not guarded: read in wait
  // predicates without the deque mutexes held. atomic: Push publishes
  // with release, the wait predicate loads acquire; pop-side
  // decrements are relaxed under the queue mutex.
  std::atomic<int64_t> pending_{0};
  bool stop_ GUARDED_BY(global_mutex_) = false;
};

}  // namespace paleo

#endif  // PALEO_COMMON_THREAD_POOL_H_
