// Wall-clock stopwatch used by the experiment harness (Figure 7 step
// timings) and the examples.

#ifndef PALEO_COMMON_TIMER_H_
#define PALEO_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace paleo {

/// \brief Monotonic stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace paleo

#endif  // PALEO_COMMON_TIMER_H_
