#include "datagen/augment.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/random.h"

namespace paleo {

StatusOr<Table> Augment(const Table& table, const AugmentOptions& options) {
  if (options.clones_stddev < 0.0) {
    return Status::InvalidArgument("clones_stddev must be non-negative");
  }
  Rng rng(options.seed);
  const Schema& schema = table.schema();
  const Column& entities = table.entity_column();

  // Bucket rows by entity code.
  std::vector<std::vector<RowId>> rows_of(entities.dict()->size());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    rows_of[entities.CodeAt(static_cast<RowId>(r))].push_back(
        static_cast<RowId>(r));
  }

  // The output starts as a gather of all original rows (sharing
  // dictionaries), then clones are appended column-wise.
  std::vector<RowId> all_rows(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r)
    all_rows[r] = static_cast<RowId>(r);
  Table out = table.Gather(all_rows);

  std::vector<int> measure_cols = schema.measure_indices();
  std::vector<bool> is_measure(static_cast<size_t>(schema.num_fields()),
                               false);
  for (int m : measure_cols) is_measure[static_cast<size_t>(m)] = true;

  for (const std::vector<RowId>& entity_rows : rows_of) {
    if (entity_rows.empty()) continue;
    int n = static_cast<int>(
        std::lround(rng.Gaussian(options.clones_mean, options.clones_stddev)));
    n = std::max(0, n);
    for (int i = 0; i < n; ++i) {
      RowId src = entity_rows[static_cast<size_t>(
          rng.Uniform(entity_rows.size()))];
      for (int c = 0; c < schema.num_fields(); ++c) {
        const Column& in_col = table.column(c);
        Column* out_col = out.mutable_column(c);
        if (!is_measure[static_cast<size_t>(c)]) {
          switch (in_col.type()) {
            case DataType::kString:
              out_col->AppendCode(in_col.CodeAt(src));
              break;
            case DataType::kInt64:
              out_col->AppendInt64(in_col.Int64At(src));
              break;
            case DataType::kDouble:
              out_col->AppendDouble(in_col.DoubleAt(src));
              break;
          }
          continue;
        }
        // Perturb measures: v' = v + v * |m|, m ~ N(0.5, 0.5).
        double m = std::abs(rng.Gaussian(0.5, 0.5));
        double v = in_col.NumericAt(src);
        double perturbed = v + v * m;
        if (in_col.type() == DataType::kInt64) {
          out_col->AppendInt64(static_cast<int64_t>(std::llround(perturbed)));
        } else {
          out_col->AppendDouble(std::round(perturbed * 100.0) / 100.0);
        }
      }
    }
  }
  PALEO_RETURN_NOT_OK(out.CheckConsistent());
  return out;
}

StatusOr<Table> PerturbDimensions(const Table& table,
                                  const PerturbOptions& options) {
  if (options.row_change_probability < 0.0 ||
      options.row_change_probability > 1.0) {
    return Status::InvalidArgument(
        "row_change_probability must be within [0, 1]");
  }
  Rng rng(options.seed);
  const Schema& schema = table.schema();
  const std::vector<int>& dims = schema.dimension_indices();

  std::vector<RowId> all_rows(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r)
    all_rows[r] = static_cast<RowId>(r);
  Table out = table.Gather(all_rows);
  if (dims.empty()) return out;

  // Value pools per dimension column, drawn from the data itself.
  for (size_t r = 0; r < out.num_rows(); ++r) {
    if (!rng.Bernoulli(options.row_change_probability)) continue;
    int dim = dims[static_cast<size_t>(rng.Uniform(dims.size()))];
    Column* col = out.mutable_column(dim);
    RowId donor =
        static_cast<RowId>(rng.Uniform(static_cast<uint64_t>(out.num_rows())));
    switch (col->type()) {
      case DataType::kString:
        col->SetCode(static_cast<RowId>(r), col->CodeAt(donor));
        break;
      case DataType::kInt64:
        col->SetInt64(static_cast<RowId>(r), col->Int64At(donor));
        break;
      case DataType::kDouble:
        col->SetDouble(static_cast<RowId>(r), col->DoubleAt(donor));
        break;
    }
  }
  // The Set* writers above bypass the append path: re-stamp the epoch
  // and rebuild zone maps so chunk skipping never consults summaries of
  // the pre-perturbation values.
  PALEO_RETURN_NOT_OK(out.CheckConsistent());
  return out;
}

}  // namespace paleo
