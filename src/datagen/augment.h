// Data augmentation for the sampling experiments (paper Section 8.1)
// and simulation of "variations of R" (Section 6).
//
// The paper's TPC-H instance has too few tuples per entity for
// meaningful sampling, so it is augmented: clones of existing tuples
// are added with identical textual values and numeric values perturbed
// as v' = v + v * |m|, m ~ N(0.5, 0.5), with the clone count drawn
// from N(200, 50). Augment() applies that rule per entity (adding
// n clones of randomly chosen tuples of the entity), which keeps the
// output size linear in the number of entities.

#ifndef PALEO_DATAGEN_AUGMENT_H_
#define PALEO_DATAGEN_AUGMENT_H_

#include <cstdint>

#include "common/status.h"
#include "storage/table.h"

namespace paleo {

/// \brief Options for clone-based augmentation.
struct AugmentOptions {
  /// Mean / stddev of the per-entity clone count (paper: 200 / 50).
  double clones_mean = 200.0;
  double clones_stddev = 50.0;
  uint64_t seed = 99;
};

/// \brief Options for dimension perturbation (simulating updates to R).
struct PerturbOptions {
  /// Probability that a given row gets one dimension value rewritten.
  double row_change_probability = 0.1;
  uint64_t seed = 17;
};

/// Returns a new table containing all rows of `table` plus, per entity,
/// n ~ N(clones_mean, clones_stddev) clones (n clamped to >= 0) of
/// uniformly chosen rows of that entity. Clones copy every non-measure
/// column and perturb each measure as v' = v + v * |m|, m ~ N(0.5,0.5)
/// (integer measures are rounded).
StatusOr<Table> Augment(const Table& table, const AugmentOptions& options);

/// Returns a copy of `table` where each row, with the configured
/// probability, has one randomly chosen dimension column rewritten to
/// another value drawn from that column's value domain. Models the
/// paper's changed-data scenario (inserts/updates/deletes between the
/// input list's creation and the reverse-engineering run).
StatusOr<Table> PerturbDimensions(const Table& table,
                                  const PerturbOptions& options);

}  // namespace paleo

#endif  // PALEO_DATAGEN_AUGMENT_H_
