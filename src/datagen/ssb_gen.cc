#include "datagen/ssb_gen.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "datagen/text_pool.h"

namespace paleo {

namespace {

struct Customer {
  std::string name;
  int nation;
  std::string city;
  std::string phone_cc;
  int segment;
  double acctbal;
};

struct Part {
  int mfgr;      // 1..5
  int category;  // 1..5 within mfgr
  int brand;     // 1..40 within category
  int color;
  int type;
  int container;
  int64_t size;  // 1..50
  double retailprice;
};

struct Supplier {
  std::string name;
  int nation;
  std::string city;
  std::string phone_cc;
  double acctbal;
};

int64_t DateKey(int year, int month, int day) {
  return static_cast<int64_t>(year) * 10000 + month * 100 + day;
}

const char* SeasonOf(int month) {  // month 1..12
  static const char* kBySeason[] = {"Winter", "Spring", "Summer", "Fall"};
  if (month == 12 || month <= 2) return kBySeason[0];
  if (month <= 5) return kBySeason[1];
  if (month <= 8) return kBySeason[2];
  return kBySeason[3];
}

}  // namespace

int SsbGen::NumCustomers(double sf) {
  return std::max(40, static_cast<int>(std::lround(20000.0 * sf)));
}
int SsbGen::NumParts(double sf) {
  // SSB part cardinality grows sub-linearly (200k * (1 + log2(sf))); a
  // linear ramp with a floor is close enough at small scales.
  return std::max(100, static_cast<int>(std::lround(200000.0 * sf)));
}
int SsbGen::NumSuppliers(double sf) {
  // The supplier domain is NOT scaled down with sf: tuples-per-entity
  // stays ~300 at every scale (that ratio is SSB's salient property),
  // so shrinking the supplier pool would make every supplier cover
  // every input entity and blow up candidate-predicate mining in a way
  // SF-1 never does. 2000 suppliers matches SSB SF 1.
  return std::max(2000, static_cast<int>(std::lround(2000.0 * sf)));
}

Schema SsbGen::MakeSchema() {
  auto schema = Schema::Make({
      // Entity.
      {"c_name", DataType::kString, FieldRole::kEntity},
      // 28 textual dimension columns.
      {"c_city", DataType::kString, FieldRole::kDimension},
      {"c_nation", DataType::kString, FieldRole::kDimension},
      {"c_region", DataType::kString, FieldRole::kDimension},
      {"c_mktsegment", DataType::kString, FieldRole::kDimension},
      {"c_phone_cc", DataType::kString, FieldRole::kDimension},
      {"s_name", DataType::kString, FieldRole::kDimension},
      {"s_city", DataType::kString, FieldRole::kDimension},
      {"s_nation", DataType::kString, FieldRole::kDimension},
      {"s_region", DataType::kString, FieldRole::kDimension},
      {"s_phone_cc", DataType::kString, FieldRole::kDimension},
      {"p_mfgr", DataType::kString, FieldRole::kDimension},
      {"p_category", DataType::kString, FieldRole::kDimension},
      {"p_brand1", DataType::kString, FieldRole::kDimension},
      {"p_color", DataType::kString, FieldRole::kDimension},
      {"p_type", DataType::kString, FieldRole::kDimension},
      {"p_container", DataType::kString, FieldRole::kDimension},
      {"d_month", DataType::kString, FieldRole::kDimension},
      {"d_dayofweek", DataType::kString, FieldRole::kDimension},
      {"d_season", DataType::kString, FieldRole::kDimension},
      {"d_yearmonth", DataType::kString, FieldRole::kDimension},
      {"d_holidayfl", DataType::kString, FieldRole::kDimension},
      {"d_weekdayfl", DataType::kString, FieldRole::kDimension},
      {"d_lastdayinweekfl", DataType::kString, FieldRole::kDimension},
      {"lo_orderpriority", DataType::kString, FieldRole::kDimension},
      {"lo_shipmode", DataType::kString, FieldRole::kDimension},
      {"lo_status", DataType::kString, FieldRole::kDimension},
      {"c_acct_band", DataType::kString, FieldRole::kDimension},
      {"s_acct_band", DataType::kString, FieldRole::kDimension},
      // Int dimension: minable as an equality predicate (d_year = 1995).
      {"d_year", DataType::kInt64, FieldRole::kDimension},
      // 20 non-key numeric measure columns.
      {"lo_quantity", DataType::kInt64, FieldRole::kMeasure},
      {"lo_extendedprice", DataType::kDouble, FieldRole::kMeasure},
      {"lo_ordtotalprice", DataType::kDouble, FieldRole::kMeasure},
      {"lo_discount", DataType::kDouble, FieldRole::kMeasure},
      {"lo_revenue", DataType::kDouble, FieldRole::kMeasure},
      {"lo_supplycost", DataType::kDouble, FieldRole::kMeasure},
      {"lo_tax", DataType::kDouble, FieldRole::kMeasure},
      {"lo_profit", DataType::kDouble, FieldRole::kMeasure},
      {"lo_charge", DataType::kDouble, FieldRole::kMeasure},
      {"lo_discamount", DataType::kDouble, FieldRole::kMeasure},
      {"lo_margin", DataType::kDouble, FieldRole::kMeasure},
      {"p_size", DataType::kInt64, FieldRole::kMeasure},
      {"p_retailprice", DataType::kDouble, FieldRole::kMeasure},
      {"s_acctbal", DataType::kDouble, FieldRole::kMeasure},
      {"c_acctbal", DataType::kDouble, FieldRole::kMeasure},
      {"d_daynuminyear", DataType::kInt64, FieldRole::kMeasure},
      {"d_weeknuminyear", DataType::kInt64, FieldRole::kMeasure},
      {"d_daynuminmonth", DataType::kInt64, FieldRole::kMeasure},
      {"lo_shiplag", DataType::kInt64, FieldRole::kMeasure},
      {"lo_commitlag", DataType::kInt64, FieldRole::kMeasure},
      // 10 key/date columns.
      {"lo_orderkey", DataType::kInt64, FieldRole::kKey},
      {"lo_linenumber", DataType::kInt64, FieldRole::kKey},
      {"lo_custkey", DataType::kInt64, FieldRole::kKey},
      {"lo_suppkey", DataType::kInt64, FieldRole::kKey},
      {"lo_partkey", DataType::kInt64, FieldRole::kKey},
      {"lo_orderdate", DataType::kInt64, FieldRole::kKey},
      {"lo_commitdate", DataType::kInt64, FieldRole::kKey},
      {"d_datekey", DataType::kInt64, FieldRole::kKey},
      {"s_suppkey", DataType::kInt64, FieldRole::kKey},
      {"p_partkey", DataType::kInt64, FieldRole::kKey},
  });
  PALEO_CHECK(schema.ok()) << schema.status().ToString();
  return *schema;
}

StatusOr<Table> SsbGen::Generate(const SsbGenOptions& options) {
  if (options.scale_factor <= 0.0) {
    return Status::InvalidArgument("scale_factor must be positive");
  }
  Rng rng(options.seed);
  const int num_customers = NumCustomers(options.scale_factor);
  const int num_parts = NumParts(options.scale_factor);
  const int num_suppliers = NumSuppliers(options.scale_factor);

  const auto& nations = TextPool::Nations();
  const auto& regions = TextPool::Regions();
  const auto& nation_region = TextPool::NationRegion();
  const auto& segments = TextPool::MarketSegments();
  const auto& priorities = TextPool::OrderPriorities();
  const auto& ship_modes = TextPool::ShipModes();
  const auto& part_types = TextPool::PartTypes();
  const auto& containers = TextPool::Containers();
  const auto& colors = TextPool::Colors();
  const auto& months = TextPool::Months();
  const auto& weekdays = TextPool::Weekdays();
  const char* kStatuses[] = {"DELIVERED", "SHIPPED", "PACKED", "PENDING"};

  auto acct_band = [](double acctbal) {
    int band = static_cast<int>(std::floor((acctbal + 1000.0) / 1100.0));
    return "B" + std::to_string(std::clamp(band, 0, 9));
  };

  std::vector<Customer> customers;
  customers.reserve(static_cast<size_t>(num_customers));
  for (int i = 0; i < num_customers; ++i) {
    Customer c;
    c.name = TextPool::CustomerName(i + 1);
    c.nation = static_cast<int>(rng.Uniform(nations.size()));
    c.city = TextPool::CityName(c.nation, static_cast<int>(rng.Uniform(10)));
    c.phone_cc = std::to_string(10 + c.nation);
    c.segment = static_cast<int>(rng.Uniform(segments.size()));
    c.acctbal = std::round(rng.UniformDouble(-999.99, 9999.99) * 100.0) / 100.0;
    customers.push_back(std::move(c));
  }
  std::vector<Part> parts;
  parts.reserve(static_cast<size_t>(num_parts));
  for (int i = 0; i < num_parts; ++i) {
    Part p;
    p.mfgr = 1 + static_cast<int>(rng.Uniform(5));
    p.category = 1 + static_cast<int>(rng.Uniform(5));
    p.brand = 1 + static_cast<int>(rng.Uniform(40));
    p.color = static_cast<int>(rng.Uniform(colors.size()));
    p.type = static_cast<int>(rng.Uniform(part_types.size()));
    p.container = static_cast<int>(rng.Uniform(containers.size()));
    p.size = 1 + static_cast<int64_t>(rng.Uniform(50));
    p.retailprice =
        std::round(rng.UniformDouble(900.0, 2100.0) * 100.0) / 100.0;
    parts.push_back(p);
  }
  std::vector<Supplier> suppliers;
  suppliers.reserve(static_cast<size_t>(num_suppliers));
  for (int i = 0; i < num_suppliers; ++i) {
    Supplier s;
    s.name = TextPool::SupplierName(i + 1);
    s.nation = static_cast<int>(rng.Uniform(nations.size()));
    s.city = TextPool::CityName(s.nation, static_cast<int>(rng.Uniform(10)));
    s.phone_cc = std::to_string(10 + s.nation);
    s.acctbal = std::round(rng.UniformDouble(-999.99, 9999.99) * 100.0) / 100.0;
    suppliers.push_back(std::move(s));
  }

  Table table(MakeSchema());
  const Schema& schema = table.schema();
  auto col = [&](const char* name) {
    int idx = schema.FieldIndex(name);
    PALEO_CHECK(idx >= 0) << name;
    return table.mutable_column(idx);
  };

  Column* c_name = col("c_name");
  Column* c_city = col("c_city");
  Column* c_nation = col("c_nation");
  Column* c_region = col("c_region");
  Column* c_mktsegment = col("c_mktsegment");
  Column* c_phone_cc = col("c_phone_cc");
  Column* s_name = col("s_name");
  Column* s_city = col("s_city");
  Column* s_nation = col("s_nation");
  Column* s_region = col("s_region");
  Column* s_phone_cc = col("s_phone_cc");
  Column* p_mfgr = col("p_mfgr");
  Column* p_category = col("p_category");
  Column* p_brand1 = col("p_brand1");
  Column* p_color = col("p_color");
  Column* p_type = col("p_type");
  Column* p_container = col("p_container");
  Column* d_month = col("d_month");
  Column* d_dayofweek = col("d_dayofweek");
  Column* d_season = col("d_season");
  Column* d_yearmonth = col("d_yearmonth");
  Column* d_holidayfl = col("d_holidayfl");
  Column* d_weekdayfl = col("d_weekdayfl");
  Column* d_lastdayinweekfl = col("d_lastdayinweekfl");
  Column* lo_orderpriority = col("lo_orderpriority");
  Column* lo_shipmode = col("lo_shipmode");
  Column* lo_status = col("lo_status");
  Column* c_acct_band = col("c_acct_band");
  Column* s_acct_band = col("s_acct_band");
  Column* d_year = col("d_year");
  Column* lo_quantity = col("lo_quantity");
  Column* lo_extendedprice = col("lo_extendedprice");
  Column* lo_ordtotalprice = col("lo_ordtotalprice");
  Column* lo_discount = col("lo_discount");
  Column* lo_revenue = col("lo_revenue");
  Column* lo_supplycost = col("lo_supplycost");
  Column* lo_tax = col("lo_tax");
  Column* lo_profit = col("lo_profit");
  Column* lo_charge = col("lo_charge");
  Column* lo_discamount = col("lo_discamount");
  Column* lo_margin = col("lo_margin");
  Column* p_size = col("p_size");
  Column* p_retailprice = col("p_retailprice");
  Column* s_acctbal = col("s_acctbal");
  Column* c_acctbal = col("c_acctbal");
  Column* d_daynuminyear = col("d_daynuminyear");
  Column* d_weeknuminyear = col("d_weeknuminyear");
  Column* d_daynuminmonth = col("d_daynuminmonth");
  Column* lo_shiplag = col("lo_shiplag");
  Column* lo_commitlag = col("lo_commitlag");
  Column* lo_orderkey = col("lo_orderkey");
  Column* lo_linenumber = col("lo_linenumber");
  Column* lo_custkey = col("lo_custkey");
  Column* lo_suppkey = col("lo_suppkey");
  Column* lo_partkey = col("lo_partkey");
  Column* lo_orderdate = col("lo_orderdate");
  Column* lo_commitdate = col("lo_commitdate");
  Column* d_datekey = col("d_datekey");
  Column* s_suppkey = col("s_suppkey");
  Column* p_partkey = col("p_partkey");

  int64_t next_orderkey = 1;
  for (int ci = 0; ci < num_customers; ++ci) {
    const Customer& cust = customers[static_cast<size_t>(ci)];
    // ~75 orders x ~4 lines = ~300 tuples per entity, as at SSB SF 1.
    int n_orders = 55 + static_cast<int>(rng.Uniform(41));  // 55..95
    for (int oi = 0; oi < n_orders; ++oi) {
      int64_t orderkey = next_orderkey++;
      int year = 1992 + static_cast<int>(rng.Uniform(7));
      int mon = 1 + static_cast<int>(rng.Uniform(12));
      int day = 1 + static_cast<int>(rng.Uniform(28));
      int64_t datekey = DateKey(year, mon, day);
      int weekday = static_cast<int>(datekey % 7);
      int priority = static_cast<int>(rng.Uniform(priorities.size()));
      double ordtotal =
          std::round(rng.UniformDouble(1000.0, 400000.0) * 100.0) / 100.0;
      int n_items = 1 + static_cast<int>(rng.Uniform(7));
      for (int li = 0; li < n_items; ++li) {
        int pi = static_cast<int>(
            rng.Uniform(static_cast<uint64_t>(num_parts)));
        int si = static_cast<int>(
            rng.Uniform(static_cast<uint64_t>(num_suppliers)));
        const Part& part = parts[static_cast<size_t>(pi)];
        const Supplier& supp = suppliers[static_cast<size_t>(si)];

        int64_t quantity = 1 + static_cast<int64_t>(rng.Uniform(50));
        double extendedprice =
            std::round(static_cast<double>(quantity) * part.retailprice *
                       100.0) /
            100.0;
        double discount = static_cast<double>(rng.Uniform(11)) / 100.0;
        double tax = static_cast<double>(rng.Uniform(9)) / 100.0;
        double revenue =
            std::round(extendedprice * (1.0 - discount) * 100.0) / 100.0;
        double supplycost =
            std::round(0.6 * part.retailprice *
                       rng.UniformDouble(0.8, 1.2) * 100.0) /
            100.0;
        double profit = std::round(
                            (revenue - supplycost *
                                           static_cast<double>(quantity)) *
                            100.0) /
                        100.0;
        int64_t shiplag = 1 + static_cast<int64_t>(rng.Uniform(120));
        int64_t commitlag = 1 + static_cast<int64_t>(rng.Uniform(90));

        c_name->AppendString(cust.name);
        c_city->AppendString(cust.city);
        c_nation->AppendString(nations[static_cast<size_t>(cust.nation)]);
        c_region->AppendString(
            regions[static_cast<size_t>(
                nation_region[static_cast<size_t>(cust.nation)])]);
        c_mktsegment->AppendString(
            segments[static_cast<size_t>(cust.segment)]);
        c_phone_cc->AppendString(cust.phone_cc);
        s_name->AppendString(supp.name);
        s_city->AppendString(supp.city);
        s_nation->AppendString(nations[static_cast<size_t>(supp.nation)]);
        s_region->AppendString(
            regions[static_cast<size_t>(
                nation_region[static_cast<size_t>(supp.nation)])]);
        s_phone_cc->AppendString(supp.phone_cc);
        p_mfgr->AppendString(TextPool::SsbMfgr(part.mfgr));
        p_category->AppendString(TextPool::SsbCategory(part.mfgr,
                                                       part.category));
        p_brand1->AppendString(
            TextPool::SsbBrand(part.mfgr, part.category, part.brand));
        p_color->AppendString(colors[static_cast<size_t>(part.color)]);
        p_type->AppendString(part_types[static_cast<size_t>(part.type)]);
        p_container->AppendString(
            containers[static_cast<size_t>(part.container)]);
        d_month->AppendString(months[static_cast<size_t>(mon - 1)]);
        d_dayofweek->AppendString(weekdays[static_cast<size_t>(weekday)]);
        d_season->AppendString(SeasonOf(mon));
        d_yearmonth->AppendString(
            months[static_cast<size_t>(mon - 1)].substr(0, 3) +
            std::to_string(year));
        d_holidayfl->AppendString((day == 1 || day == 25) ? "1" : "0");
        d_weekdayfl->AppendString(weekday < 5 ? "1" : "0");
        d_lastdayinweekfl->AppendString(weekday == 6 ? "1" : "0");
        lo_orderpriority->AppendString(
            priorities[static_cast<size_t>(priority)]);
        lo_shipmode->AppendString(
            ship_modes[static_cast<size_t>(rng.Uniform(ship_modes.size()))]);
        lo_status->AppendString(
            kStatuses[static_cast<size_t>(rng.Uniform(4))]);
        c_acct_band->AppendString(acct_band(cust.acctbal));
        s_acct_band->AppendString(acct_band(supp.acctbal));
        d_year->AppendInt64(year);
        lo_quantity->AppendInt64(quantity);
        lo_extendedprice->AppendDouble(extendedprice);
        lo_ordtotalprice->AppendDouble(ordtotal);
        lo_discount->AppendDouble(discount);
        lo_revenue->AppendDouble(revenue);
        lo_supplycost->AppendDouble(supplycost);
        lo_tax->AppendDouble(tax);
        lo_profit->AppendDouble(profit);
        lo_charge->AppendDouble(
            std::round(extendedprice * (1.0 + tax) * 100.0) / 100.0);
        lo_discamount->AppendDouble(
            std::round(extendedprice * discount * 100.0) / 100.0);
        lo_margin->AppendDouble(
            std::round((part.retailprice - supplycost) *
                       static_cast<double>(quantity) * 100.0) /
            100.0);
        p_size->AppendInt64(part.size);
        p_retailprice->AppendDouble(part.retailprice);
        s_acctbal->AppendDouble(supp.acctbal);
        c_acctbal->AppendDouble(cust.acctbal);
        d_daynuminyear->AppendInt64((mon - 1) * 28 + day);
        d_weeknuminyear->AppendInt64(((mon - 1) * 28 + day) / 7 + 1);
        d_daynuminmonth->AppendInt64(day);
        lo_shiplag->AppendInt64(shiplag);
        lo_commitlag->AppendInt64(commitlag);
        lo_orderkey->AppendInt64(orderkey);
        lo_linenumber->AppendInt64(li + 1);
        lo_custkey->AppendInt64(ci + 1);
        lo_suppkey->AppendInt64(si + 1);
        lo_partkey->AppendInt64(pi + 1);
        lo_orderdate->AppendInt64(datekey);
        lo_commitdate->AppendInt64(
            DateKey(year, mon, std::min(28, day + 3)));
        d_datekey->AppendInt64(datekey);
        s_suppkey->AppendInt64(si + 1);
        p_partkey->AppendInt64(pi + 1);
      }
    }
  }
  PALEO_RETURN_NOT_OK(table.CheckConsistent());
  return table;
}

}  // namespace paleo
