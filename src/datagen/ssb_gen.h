// SSB-like (Star Schema Benchmark) denormalized single-relation
// generator.
//
// The paper joins lineorder with its customer, supplier, part, and
// date dimensions into one 60-column relation (28 textual, 20 non-key
// numeric) with c_name as the entity column. SSB's salient property
// versus TPC-H — many more tuples per entity (avg 300, max 579 at
// SF 1) — is reproduced by the default sizing: ~75 orders per customer
// with ~4 lines each. d_year is generated as an Int64 *dimension*
// column, so predicates like d_year = 1995 (Table 6) are minable.

#ifndef PALEO_DATAGEN_SSB_GEN_H_
#define PALEO_DATAGEN_SSB_GEN_H_

#include <cstdint>

#include "common/status.h"
#include "storage/table.h"

namespace paleo {

/// \brief Generator options for the SSB-like relation.
struct SsbGenOptions {
  double scale_factor = 0.01;
  uint64_t seed = 43;
};

/// \brief Generates the denormalized SSB-like relation.
class SsbGen {
 public:
  /// The 60-column schema (1 entity + 28 textual dims + 1 int dim
  /// (d_year) + 20 measures + 10 keys).
  static Schema MakeSchema();

  static StatusOr<Table> Generate(const SsbGenOptions& options);

  static int NumCustomers(double sf);
  static int NumParts(double sf);
  static int NumSuppliers(double sf);
};

}  // namespace paleo

#endif  // PALEO_DATAGEN_SSB_GEN_H_
