#include "datagen/text_pool.h"

#include <cstdio>

namespace paleo {

const std::vector<std::string>& TextPool::Nations() {
  static const std::vector<std::string> kNations = {
      "ALGERIA",    "ARGENTINA",  "BRAZIL",     "CANADA",
      "EGYPT",      "ETHIOPIA",   "FRANCE",     "GERMANY",
      "INDIA",      "INDONESIA",  "IRAN",       "IRAQ",
      "JAPAN",      "JORDAN",     "KENYA",      "MOROCCO",
      "MOZAMBIQUE", "PERU",       "CHINA",      "ROMANIA",
      "SAUDI ARABIA", "VIETNAM",  "RUSSIA",     "UNITED KINGDOM",
      "UNITED STATES"};
  return kNations;
}

const std::vector<std::string>& TextPool::Regions() {
  static const std::vector<std::string> kRegions = {
      "AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"};
  return kRegions;
}

const std::vector<int>& TextPool::NationRegion() {
  // Region of each nation, aligned with Nations() (TPC-H nation.tbl).
  static const std::vector<int> kRegionOf = {
      0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2,
      4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1};
  return kRegionOf;
}

const std::vector<std::string>& TextPool::MarketSegments() {
  static const std::vector<std::string> kSegments = {
      "AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"};
  return kSegments;
}

const std::vector<std::string>& TextPool::OrderPriorities() {
  static const std::vector<std::string> kPriorities = {
      "1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"};
  return kPriorities;
}

const std::vector<std::string>& TextPool::OrderStatuses() {
  static const std::vector<std::string> kStatuses = {"F", "O", "P"};
  return kStatuses;
}

const std::vector<std::string>& TextPool::ShipModes() {
  static const std::vector<std::string> kModes = {
      "REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"};
  return kModes;
}

const std::vector<std::string>& TextPool::ShipInstructions() {
  static const std::vector<std::string> kInstructions = {
      "DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"};
  return kInstructions;
}

const std::vector<std::string>& TextPool::ReturnFlags() {
  static const std::vector<std::string> kFlags = {"R", "A", "N"};
  return kFlags;
}

const std::vector<std::string>& TextPool::LineStatuses() {
  static const std::vector<std::string> kStatuses = {"O", "F"};
  return kStatuses;
}

const std::vector<std::string>& TextPool::PartTypes() {
  static const std::vector<std::string> kTypes = [] {
    const char* syl1[] = {"STANDARD", "SMALL", "MEDIUM", "LARGE",
                          "ECONOMY", "PROMO"};
    const char* syl2[] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                          "BRUSHED"};
    const char* syl3[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
    std::vector<std::string> types;
    types.reserve(150);
    for (const char* a : syl1)
      for (const char* b : syl2)
        for (const char* c : syl3)
          types.push_back(std::string(a) + " " + b + " " + c);
    return types;
  }();
  return kTypes;
}

const std::vector<std::string>& TextPool::Containers() {
  static const std::vector<std::string> kContainers = [] {
    const char* syl1[] = {"SM", "LG", "MED", "JUMBO", "WRAP"};
    const char* syl2[] = {"CASE", "BOX",  "BAG", "JAR",
                          "PKG",  "PACK", "CAN", "DRUM"};
    std::vector<std::string> containers;
    containers.reserve(40);
    for (const char* a : syl1)
      for (const char* b : syl2)
        containers.push_back(std::string(a) + " " + b);
    return containers;
  }();
  return kContainers;
}

const std::vector<std::string>& TextPool::Manufacturers() {
  static const std::vector<std::string> kMfgrs = [] {
    std::vector<std::string> v;
    for (int i = 1; i <= 5; ++i)
      v.push_back("Manufacturer#" + std::to_string(i));
    return v;
  }();
  return kMfgrs;
}

const std::vector<std::string>& TextPool::Brands() {
  static const std::vector<std::string> kBrands = [] {
    std::vector<std::string> v;
    for (int i = 1; i <= 5; ++i)
      for (int j = 1; j <= 5; ++j)
        v.push_back("Brand#" + std::to_string(i) + std::to_string(j));
    return v;
  }();
  return kBrands;
}

const std::vector<std::string>& TextPool::Colors() {
  static const std::vector<std::string> kColors = {
      "almond",     "antique",    "aquamarine", "azure",      "beige",
      "bisque",     "black",      "blanched",   "blue",       "blush",
      "brown",      "burlywood",  "burnished",  "chartreuse", "chiffon",
      "chocolate",  "coral",      "cornflower", "cornsilk",   "cream",
      "cyan",       "dark",       "deep",       "dim",        "dodger",
      "drab",       "firebrick",  "floral",     "forest",     "frosted",
      "gainsboro",  "ghost",      "goldenrod",  "green",      "grey",
      "honeydew",   "hot",        "indian",     "ivory",      "khaki",
      "lace",       "lavender",   "lawn",       "lemon",      "light",
      "lime",       "linen",      "magenta",    "maroon",     "medium",
      "metallic",   "midnight",   "mint",       "misty",      "moccasin",
      "navajo",     "navy",       "olive",      "orange",     "orchid",
      "pale",       "papaya",     "peach",      "peru",       "pink",
      "plum",       "powder",     "puff",       "purple",     "red",
      "rose",       "rosy",       "royal",      "saddle",     "salmon",
      "sandy",      "seashell",   "sienna",     "sky",        "slate",
      "smoke",      "snow",       "spring",     "steel",      "tan",
      "thistle",    "tomato",     "turquoise",  "violet",     "wheat",
      "white",      "yellow",     "ghostly",    "opaque"};
  return kColors;
}

const std::vector<std::string>& TextPool::Months() {
  static const std::vector<std::string> kMonths = {
      "January",   "February", "March",    "April",
      "May",       "June",     "July",     "August",
      "September", "October",  "November", "December"};
  return kMonths;
}

const std::vector<std::string>& TextPool::Weekdays() {
  static const std::vector<std::string> kDays = {
      "Monday", "Tuesday",  "Wednesday", "Thursday",
      "Friday", "Saturday", "Sunday"};
  return kDays;
}

const std::vector<std::string>& TextPool::Seasons() {
  static const std::vector<std::string> kSeasons = {"Winter", "Spring",
                                                    "Summer", "Fall"};
  return kSeasons;
}

std::string TextPool::CustomerName(int i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "Customer#%09d", i);
  return buf;
}

std::string TextPool::SupplierName(int i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "Supplier#%09d", i);
  return buf;
}

std::string TextPool::ClerkName(int i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "Clerk#%09d", i);
  return buf;
}

std::string TextPool::CityName(int nation_index, int city_index) {
  // SSB style: first 9 characters of the nation plus a digit.
  std::string nation = Nations()[static_cast<size_t>(nation_index)];
  if (nation.size() > 9) nation.resize(9);
  return nation + std::to_string(city_index);
}

std::string TextPool::SsbMfgr(int m) { return "MFGR#" + std::to_string(m); }

std::string TextPool::SsbCategory(int m, int c) {
  return "MFGR#" + std::to_string(m) + std::to_string(c);
}

std::string TextPool::SsbBrand(int m, int c, int b) {
  // b in [1, 40] -> two digits appended to the category.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "MFGR#%d%d%02d", m, c, b);
  return buf;
}

}  // namespace paleo
