// Shared categorical value pools for the TPC-H-like and SSB-like
// generators: nation/region geography, part type vocabularies, priority
// classes, and so on. Values mirror the official dbgen vocabularies so
// that example queries from the paper (p_type = 'MEDIUM POLISHED
// STEEL', n_name = 'JAPAN', s_region = 'ASIA', p_brand = 'MFGR#2221',
// ...) are expressible verbatim.

#ifndef PALEO_DATAGEN_TEXT_POOL_H_
#define PALEO_DATAGEN_TEXT_POOL_H_

#include <string>
#include <vector>

namespace paleo {

/// \brief Static categorical vocabularies.
class TextPool {
 public:
  /// The 25 TPC-H nations, index-aligned with NationRegion().
  static const std::vector<std::string>& Nations();
  /// The 5 TPC-H regions.
  static const std::vector<std::string>& Regions();
  /// Region index of each nation (parallel to Nations()).
  static const std::vector<int>& NationRegion();

  /// 5 market segments.
  static const std::vector<std::string>& MarketSegments();
  /// 5 order priorities ("1-URGENT" .. "5-LOW").
  static const std::vector<std::string>& OrderPriorities();
  /// 3 order statuses.
  static const std::vector<std::string>& OrderStatuses();
  /// 7 ship modes.
  static const std::vector<std::string>& ShipModes();
  /// 4 ship instructions.
  static const std::vector<std::string>& ShipInstructions();
  /// 3 return flags.
  static const std::vector<std::string>& ReturnFlags();
  /// 2 line statuses.
  static const std::vector<std::string>& LineStatuses();

  /// 150 part types ("STANDARD ANODIZED TIN", ..., includes "MEDIUM
  /// POLISHED STEEL").
  static const std::vector<std::string>& PartTypes();
  /// 40 containers ("SM CASE", ..., includes "JUMBO BAG").
  static const std::vector<std::string>& Containers();
  /// 5 manufacturers ("Manufacturer#1" ..).
  static const std::vector<std::string>& Manufacturers();
  /// 25 TPC-H brands ("Brand#11" .. "Brand#55").
  static const std::vector<std::string>& Brands();

  /// 94 SSB part colors.
  static const std::vector<std::string>& Colors();
  /// 12 month names.
  static const std::vector<std::string>& Months();
  /// 7 day-of-week names.
  static const std::vector<std::string>& Weekdays();
  /// 4 seasons.
  static const std::vector<std::string>& Seasons();

  /// "Customer#000000017"-style zero-padded names.
  static std::string CustomerName(int i);
  static std::string SupplierName(int i);
  static std::string ClerkName(int i);
  /// "<nation><i % cities_per_nation>" city naming ("UNITED ST4"-style
  /// truncation as in SSB).
  static std::string CityName(int nation_index, int city_index);

  /// SSB hierarchy: "MFGR#<m>" (5), "MFGR#<m><c>" (25),
  /// "MFGR#<m><c><b1><b2>" (1000).
  static std::string SsbMfgr(int m);
  static std::string SsbCategory(int m, int c);
  static std::string SsbBrand(int m, int c, int b);
};

}  // namespace paleo

#endif  // PALEO_DATAGEN_TEXT_POOL_H_
