#include "datagen/tpch_gen.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "datagen/text_pool.h"

namespace paleo {

namespace {

/// Pre-drawn attributes of one customer.
struct Customer {
  std::string name;
  int nation;
  std::string city;
  std::string phone_cc;
  int segment;
  double acctbal;
};

/// Pre-drawn attributes of one part.
struct Part {
  int mfgr;       // 1..5
  int brand;      // index into Brands()
  int type;       // index into PartTypes()
  int container;  // index into Containers()
  int64_t size;   // 1..50
  double retailprice;
};

/// Pre-drawn attributes of one supplier.
struct Supplier {
  std::string name;
  int nation;
  std::string city;
  std::string phone_cc;
  double acctbal;
};

std::string AcctBand(double acctbal) {
  // Ten bands over [-1000, 10000).
  int band = static_cast<int>(std::floor((acctbal + 1000.0) / 1100.0));
  return "B" + std::to_string(std::clamp(band, 0, 9));
}

int64_t DateKey(int year, int month, int day) {
  return static_cast<int64_t>(year) * 10000 + month * 100 + day;
}

std::string Quarter(int month) {  // month 1..12
  return "Q" + std::to_string((month - 1) / 3 + 1);
}

/// Deterministic partsupp attribute: depends only on (part, supplier).
uint64_t PartSuppHash(int part, int supp) {
  uint64_t state = (static_cast<uint64_t>(part) << 32) ^
                   static_cast<uint64_t>(supp) ^ 0x5851F42D4C957F2DULL;
  return SplitMix64(&state);
}

}  // namespace

int TpchGen::NumCustomers(double sf) {
  return std::max(50, static_cast<int>(std::lround(150000.0 * sf)));
}
int TpchGen::NumParts(double sf) {
  return std::max(100, static_cast<int>(std::lround(200000.0 * sf)));
}
int TpchGen::NumSuppliers(double sf) {
  return std::max(25, static_cast<int>(std::lround(10000.0 * sf)));
}

Schema TpchGen::MakeSchema() {
  auto schema = Schema::Make({
      // Entity.
      {"c_name", DataType::kString, FieldRole::kEntity},
      // 27 textual dimension columns.
      {"c_mktsegment", DataType::kString, FieldRole::kDimension},
      {"c_nation", DataType::kString, FieldRole::kDimension},
      {"c_region", DataType::kString, FieldRole::kDimension},
      {"c_city", DataType::kString, FieldRole::kDimension},
      {"c_phone_cc", DataType::kString, FieldRole::kDimension},
      {"c_acct_band", DataType::kString, FieldRole::kDimension},
      {"o_orderpriority", DataType::kString, FieldRole::kDimension},
      {"o_orderstatus", DataType::kString, FieldRole::kDimension},
      {"o_clerk", DataType::kString, FieldRole::kDimension},
      {"o_quarter", DataType::kString, FieldRole::kDimension},
      {"o_month", DataType::kString, FieldRole::kDimension},
      {"l_shipmode", DataType::kString, FieldRole::kDimension},
      {"l_shipinstruct", DataType::kString, FieldRole::kDimension},
      {"l_returnflag", DataType::kString, FieldRole::kDimension},
      {"l_linestatus", DataType::kString, FieldRole::kDimension},
      {"l_ship_quarter", DataType::kString, FieldRole::kDimension},
      {"l_ship_month", DataType::kString, FieldRole::kDimension},
      {"p_mfgr", DataType::kString, FieldRole::kDimension},
      {"p_brand", DataType::kString, FieldRole::kDimension},
      {"p_type", DataType::kString, FieldRole::kDimension},
      {"p_container", DataType::kString, FieldRole::kDimension},
      {"p_size_band", DataType::kString, FieldRole::kDimension},
      {"s_name", DataType::kString, FieldRole::kDimension},
      {"s_nation", DataType::kString, FieldRole::kDimension},
      {"s_region", DataType::kString, FieldRole::kDimension},
      {"s_city", DataType::kString, FieldRole::kDimension},
      {"s_acct_band", DataType::kString, FieldRole::kDimension},
      // 13 non-key numeric measure columns.
      {"c_acctbal", DataType::kDouble, FieldRole::kMeasure},
      {"s_acctbal", DataType::kDouble, FieldRole::kMeasure},
      {"o_totalprice", DataType::kDouble, FieldRole::kMeasure},
      {"l_quantity", DataType::kInt64, FieldRole::kMeasure},
      {"l_extendedprice", DataType::kDouble, FieldRole::kMeasure},
      {"l_discount", DataType::kDouble, FieldRole::kMeasure},
      {"l_tax", DataType::kDouble, FieldRole::kMeasure},
      {"l_revenue", DataType::kDouble, FieldRole::kMeasure},
      {"ps_availqty", DataType::kInt64, FieldRole::kMeasure},
      {"ps_supplycost", DataType::kDouble, FieldRole::kMeasure},
      {"p_retailprice", DataType::kDouble, FieldRole::kMeasure},
      {"p_size", DataType::kInt64, FieldRole::kMeasure},
      {"l_supplycharge", DataType::kDouble, FieldRole::kMeasure},
      // 16 key/date columns (excluded from predicates and ranking).
      {"c_custkey", DataType::kInt64, FieldRole::kKey},
      {"o_orderkey", DataType::kInt64, FieldRole::kKey},
      {"o_orderdate", DataType::kInt64, FieldRole::kKey},
      {"l_linenumber", DataType::kInt64, FieldRole::kKey},
      {"l_partkey", DataType::kInt64, FieldRole::kKey},
      {"l_suppkey", DataType::kInt64, FieldRole::kKey},
      {"l_shipdate", DataType::kInt64, FieldRole::kKey},
      {"l_commitdate", DataType::kInt64, FieldRole::kKey},
      {"l_receiptdate", DataType::kInt64, FieldRole::kKey},
      {"p_partkey", DataType::kInt64, FieldRole::kKey},
      {"ps_partkey", DataType::kInt64, FieldRole::kKey},
      {"ps_suppkey", DataType::kInt64, FieldRole::kKey},
      {"s_suppkey", DataType::kInt64, FieldRole::kKey},
      {"c_nationkey", DataType::kInt64, FieldRole::kKey},
      {"s_nationkey", DataType::kInt64, FieldRole::kKey},
      {"o_shippriority", DataType::kInt64, FieldRole::kKey},
  });
  PALEO_CHECK(schema.ok()) << schema.status().ToString();
  return *schema;
}

StatusOr<Table> TpchGen::Generate(const TpchGenOptions& options) {
  if (options.scale_factor <= 0.0) {
    return Status::InvalidArgument("scale_factor must be positive");
  }
  Rng rng(options.seed);
  const int num_customers = NumCustomers(options.scale_factor);
  const int num_parts = NumParts(options.scale_factor);
  const int num_suppliers = NumSuppliers(options.scale_factor);
  // Like the SSB supplier pool, the clerk domain keeps its SF-1 size:
  // tuples-per-entity does not shrink with sf, so a scaled-down clerk
  // pool would create covering clerk predicates that SF 1 never has.
  const int num_clerks = std::max(
      1000, static_cast<int>(std::lround(1000.0 * options.scale_factor)));

  const auto& nations = TextPool::Nations();
  const auto& regions = TextPool::Regions();
  const auto& nation_region = TextPool::NationRegion();
  const auto& segments = TextPool::MarketSegments();
  const auto& priorities = TextPool::OrderPriorities();
  const auto& statuses = TextPool::OrderStatuses();
  const auto& ship_modes = TextPool::ShipModes();
  const auto& ship_instructions = TextPool::ShipInstructions();
  const auto& return_flags = TextPool::ReturnFlags();
  const auto& line_statuses = TextPool::LineStatuses();
  const auto& part_types = TextPool::PartTypes();
  const auto& containers = TextPool::Containers();
  const auto& mfgrs = TextPool::Manufacturers();
  const auto& brands = TextPool::Brands();
  const auto& months = TextPool::Months();

  // Dimension entities.
  std::vector<Customer> customers;
  customers.reserve(static_cast<size_t>(num_customers));
  for (int i = 0; i < num_customers; ++i) {
    Customer c;
    c.name = TextPool::CustomerName(i + 1);
    c.nation = static_cast<int>(rng.Uniform(nations.size()));
    c.city = TextPool::CityName(c.nation, static_cast<int>(rng.Uniform(10)));
    c.phone_cc = std::to_string(10 + c.nation);
    c.segment = static_cast<int>(rng.Uniform(segments.size()));
    c.acctbal = std::round(rng.UniformDouble(-999.99, 9999.99) * 100.0) / 100.0;
    customers.push_back(std::move(c));
  }
  std::vector<Part> parts;
  parts.reserve(static_cast<size_t>(num_parts));
  for (int i = 0; i < num_parts; ++i) {
    Part p;
    p.mfgr = 1 + static_cast<int>(rng.Uniform(5));
    // Brand within the manufacturer family, as in dbgen.
    p.brand = (p.mfgr - 1) * 5 + static_cast<int>(rng.Uniform(5));
    p.type = static_cast<int>(rng.Uniform(part_types.size()));
    p.container = static_cast<int>(rng.Uniform(containers.size()));
    p.size = 1 + static_cast<int64_t>(rng.Uniform(50));
    p.retailprice =
        std::round(rng.UniformDouble(900.0, 2100.0) * 100.0) / 100.0;
    parts.push_back(p);
  }
  std::vector<Supplier> suppliers;
  suppliers.reserve(static_cast<size_t>(num_suppliers));
  for (int i = 0; i < num_suppliers; ++i) {
    Supplier s;
    s.name = TextPool::SupplierName(i + 1);
    s.nation = static_cast<int>(rng.Uniform(nations.size()));
    s.city = TextPool::CityName(s.nation, static_cast<int>(rng.Uniform(10)));
    s.phone_cc = std::to_string(10 + s.nation);
    s.acctbal = std::round(rng.UniformDouble(-999.99, 9999.99) * 100.0) / 100.0;
    suppliers.push_back(std::move(s));
  }

  Table table(MakeSchema());
  const Schema& schema = table.schema();
  auto col = [&](const char* name) {
    int idx = schema.FieldIndex(name);
    PALEO_CHECK(idx >= 0) << name;
    return table.mutable_column(idx);
  };

  Column* c_name = col("c_name");
  Column* c_mktsegment = col("c_mktsegment");
  Column* c_nation = col("c_nation");
  Column* c_region = col("c_region");
  Column* c_city = col("c_city");
  Column* c_phone_cc = col("c_phone_cc");
  Column* c_acct_band = col("c_acct_band");
  Column* o_orderpriority = col("o_orderpriority");
  Column* o_orderstatus = col("o_orderstatus");
  Column* o_clerk = col("o_clerk");
  Column* o_quarter = col("o_quarter");
  Column* o_month = col("o_month");
  Column* l_shipmode = col("l_shipmode");
  Column* l_shipinstruct = col("l_shipinstruct");
  Column* l_returnflag = col("l_returnflag");
  Column* l_linestatus = col("l_linestatus");
  Column* l_ship_quarter = col("l_ship_quarter");
  Column* l_ship_month = col("l_ship_month");
  Column* p_mfgr = col("p_mfgr");
  Column* p_brand = col("p_brand");
  Column* p_type = col("p_type");
  Column* p_container = col("p_container");
  Column* p_size_band = col("p_size_band");
  Column* s_name = col("s_name");
  Column* s_nation = col("s_nation");
  Column* s_region = col("s_region");
  Column* s_city = col("s_city");
  Column* s_acct_band = col("s_acct_band");
  Column* c_acctbal = col("c_acctbal");
  Column* s_acctbal = col("s_acctbal");
  Column* o_totalprice = col("o_totalprice");
  Column* l_quantity = col("l_quantity");
  Column* l_extendedprice = col("l_extendedprice");
  Column* l_discount = col("l_discount");
  Column* l_tax = col("l_tax");
  Column* l_revenue = col("l_revenue");
  Column* ps_availqty = col("ps_availqty");
  Column* ps_supplycost = col("ps_supplycost");
  Column* p_retailprice = col("p_retailprice");
  Column* p_size = col("p_size");
  Column* l_supplycharge = col("l_supplycharge");
  Column* c_custkey = col("c_custkey");
  Column* o_orderkey = col("o_orderkey");
  Column* o_orderdate = col("o_orderdate");
  Column* l_linenumber = col("l_linenumber");
  Column* l_partkey = col("l_partkey");
  Column* l_suppkey = col("l_suppkey");
  Column* l_shipdate = col("l_shipdate");
  Column* l_commitdate = col("l_commitdate");
  Column* l_receiptdate = col("l_receiptdate");
  Column* p_partkey = col("p_partkey");
  Column* ps_partkey = col("ps_partkey");
  Column* ps_suppkey = col("ps_suppkey");
  Column* s_suppkey = col("s_suppkey");
  Column* c_nationkey = col("c_nationkey");
  Column* s_nationkey = col("s_nationkey");
  Column* o_shippriority = col("o_shippriority");

  const char* kSizeBands[] = {"SIZE XS", "SIZE S", "SIZE M", "SIZE L",
                              "SIZE XL"};

  int64_t next_orderkey = 1;
  for (int ci = 0; ci < num_customers; ++ci) {
    const Customer& cust = customers[static_cast<size_t>(ci)];
    // Order count: most customers are light; a small heavy tail yields
    // the paper's max-tuples-per-entity skew (Table 5: avg 31, max 187).
    int n_orders;
    if (rng.Bernoulli(0.02)) {
      n_orders = 14 + static_cast<int>(rng.Uniform(27));  // 14..40
    } else {
      n_orders = 1 + static_cast<int>(rng.Uniform(13));  // 1..13
    }
    for (int oi = 0; oi < n_orders; ++oi) {
      int64_t orderkey = next_orderkey++;
      int clerk = static_cast<int>(rng.Uniform(
          static_cast<uint64_t>(num_clerks)));
      int priority = static_cast<int>(rng.Uniform(priorities.size()));
      int status = static_cast<int>(rng.Uniform(statuses.size()));
      int o_year = 1992 + static_cast<int>(rng.Uniform(7));
      int o_mon = 1 + static_cast<int>(rng.Uniform(12));
      int o_day = 1 + static_cast<int>(rng.Uniform(28));
      double totalprice =
          std::round(rng.UniformDouble(1000.0, 450000.0) * 100.0) / 100.0;
      int n_items = 1 + static_cast<int>(rng.Uniform(7));
      for (int li = 0; li < n_items; ++li) {
        int pi = static_cast<int>(rng.Uniform(
            static_cast<uint64_t>(num_parts)));
        int si = static_cast<int>(rng.Uniform(
            static_cast<uint64_t>(num_suppliers)));
        const Part& part = parts[static_cast<size_t>(pi)];
        const Supplier& supp = suppliers[static_cast<size_t>(si)];

        int ship_lag_months = static_cast<int>(rng.Uniform(4));
        int ship_mon0 = (o_mon - 1 + ship_lag_months) % 12;
        int ship_year = o_year + (o_mon - 1 + ship_lag_months) / 12;
        int ship_day = 1 + static_cast<int>(rng.Uniform(28));

        int64_t quantity = 1 + static_cast<int64_t>(rng.Uniform(50));
        double extendedprice =
            std::round(static_cast<double>(quantity) * part.retailprice *
                       100.0) /
            100.0;
        double discount =
            static_cast<double>(rng.Uniform(11)) / 100.0;  // 0.00..0.10
        double tax = static_cast<double>(rng.Uniform(9)) / 100.0;
        double revenue =
            std::round(extendedprice * (1.0 - discount) * 100.0) / 100.0;
        uint64_t ps_hash = PartSuppHash(pi, si);
        double supplycost =
            1.0 + static_cast<double>(ps_hash % 100000) / 100.0;
        int64_t availqty = 1 + static_cast<int64_t>((ps_hash >> 20) % 9999);
        double supplycharge = std::round(supplycost *
                                         static_cast<double>(quantity) *
                                         100.0) /
                              100.0;

        c_name->AppendString(cust.name);
        c_mktsegment->AppendString(
            segments[static_cast<size_t>(cust.segment)]);
        c_nation->AppendString(nations[static_cast<size_t>(cust.nation)]);
        c_region->AppendString(
            regions[static_cast<size_t>(
                nation_region[static_cast<size_t>(cust.nation)])]);
        c_city->AppendString(cust.city);
        c_phone_cc->AppendString(cust.phone_cc);
        c_acct_band->AppendString(AcctBand(cust.acctbal));
        o_orderpriority->AppendString(
            priorities[static_cast<size_t>(priority)]);
        o_orderstatus->AppendString(statuses[static_cast<size_t>(status)]);
        o_clerk->AppendString(TextPool::ClerkName(clerk + 1));
        o_quarter->AppendString(Quarter(o_mon));
        o_month->AppendString(months[static_cast<size_t>(o_mon - 1)]);
        l_shipmode->AppendString(
            ship_modes[static_cast<size_t>(rng.Uniform(ship_modes.size()))]);
        l_shipinstruct->AppendString(ship_instructions[static_cast<size_t>(
            rng.Uniform(ship_instructions.size()))]);
        l_returnflag->AppendString(return_flags[static_cast<size_t>(
            rng.Uniform(return_flags.size()))]);
        l_linestatus->AppendString(line_statuses[static_cast<size_t>(
            rng.Uniform(line_statuses.size()))]);
        l_ship_quarter->AppendString(Quarter(ship_mon0 + 1));
        l_ship_month->AppendString(months[static_cast<size_t>(ship_mon0)]);
        p_mfgr->AppendString(mfgrs[static_cast<size_t>(part.mfgr - 1)]);
        p_brand->AppendString(brands[static_cast<size_t>(part.brand)]);
        p_type->AppendString(part_types[static_cast<size_t>(part.type)]);
        p_container->AppendString(
            containers[static_cast<size_t>(part.container)]);
        p_size_band->AppendString(kSizeBands[part.size <= 10   ? 0
                                             : part.size <= 20 ? 1
                                             : part.size <= 30 ? 2
                                             : part.size <= 40 ? 3
                                                               : 4]);
        s_name->AppendString(supp.name);
        s_nation->AppendString(nations[static_cast<size_t>(supp.nation)]);
        s_region->AppendString(
            regions[static_cast<size_t>(
                nation_region[static_cast<size_t>(supp.nation)])]);
        s_city->AppendString(supp.city);
        s_acct_band->AppendString(AcctBand(supp.acctbal));
        c_acctbal->AppendDouble(cust.acctbal);
        s_acctbal->AppendDouble(supp.acctbal);
        o_totalprice->AppendDouble(totalprice);
        l_quantity->AppendInt64(quantity);
        l_extendedprice->AppendDouble(extendedprice);
        l_discount->AppendDouble(discount);
        l_tax->AppendDouble(tax);
        l_revenue->AppendDouble(revenue);
        ps_availqty->AppendInt64(availqty);
        ps_supplycost->AppendDouble(supplycost);
        p_retailprice->AppendDouble(part.retailprice);
        p_size->AppendInt64(part.size);
        l_supplycharge->AppendDouble(supplycharge);
        c_custkey->AppendInt64(ci + 1);
        o_orderkey->AppendInt64(orderkey);
        o_orderdate->AppendInt64(DateKey(o_year, o_mon, o_day));
        l_linenumber->AppendInt64(li + 1);
        l_partkey->AppendInt64(pi + 1);
        l_suppkey->AppendInt64(si + 1);
        l_shipdate->AppendInt64(DateKey(ship_year, ship_mon0 + 1, ship_day));
        l_commitdate->AppendInt64(
            DateKey(ship_year, ship_mon0 + 1,
                    std::min(28, ship_day + static_cast<int>(rng.Uniform(5)))));
        l_receiptdate->AppendInt64(
            DateKey(ship_year, ship_mon0 + 1,
                    std::min(28, ship_day + static_cast<int>(rng.Uniform(7)))));
        p_partkey->AppendInt64(pi + 1);
        ps_partkey->AppendInt64(pi + 1);
        ps_suppkey->AppendInt64(si + 1);
        s_suppkey->AppendInt64(si + 1);
        c_nationkey->AppendInt64(cust.nation);
        s_nationkey->AppendInt64(supp.nation);
        o_shippriority->AppendInt64(0);
      }
    }
  }
  PALEO_RETURN_NOT_OK(table.CheckConsistent());
  return table;
}

}  // namespace paleo
