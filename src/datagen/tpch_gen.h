// TPC-H-like denormalized single-relation generator.
//
// The paper materializes one table R by joining all TPC-H tables
// (57 columns: 27 textual, 13 non-key numeric, the rest keys/dates;
// entity column c_name). This generator reproduces that shape
// deterministically: one output row per lineitem carrying its
// customer, order, part, supplier, and partsupp attributes, with the
// official dbgen vocabularies for all categorical columns.
//
// Scale factor 1.0 approximates the paper's instance (~5.4M rows,
// ~150k customers, ~36 avg tuples/entity). Experiments default to a
// much smaller factor (see bench/bench_env.h) so everything runs on a
// laptop; the schema shape and value domains are scale-invariant.

#ifndef PALEO_DATAGEN_TPCH_GEN_H_
#define PALEO_DATAGEN_TPCH_GEN_H_

#include <cstdint>

#include "common/status.h"
#include "storage/table.h"

namespace paleo {

/// \brief Generator options for the TPC-H-like relation.
struct TpchGenOptions {
  double scale_factor = 0.01;
  uint64_t seed = 42;
};

/// \brief Generates the denormalized TPC-H-like relation.
class TpchGen {
 public:
  /// The 57-column schema (1 entity + 27 textual dims + 13 measures +
  /// 16 keys).
  static Schema MakeSchema();

  static StatusOr<Table> Generate(const TpchGenOptions& options);

  /// Derived sizing (exposed for tests): customers, parts, suppliers at
  /// a scale factor.
  static int NumCustomers(double sf);
  static int NumParts(double sf);
  static int NumSuppliers(double sf);
};

}  // namespace paleo

#endif  // PALEO_DATAGEN_TPCH_GEN_H_
