#include "datagen/traffic_gen.h"

#include <array>

#include "common/logging.h"
#include "common/random.h"
#include "datagen/text_pool.h"

namespace paleo {

namespace {

const std::array<const char*, 8> kStates = {"CA", "NY", "TX", "WA",
                                            "OR", "NV", "AZ", "CO"};
const std::array<const char*, 4> kPlans = {"S", "M", "L", "XL"};
const std::array<std::array<const char*, 5>, 8> kCities = {{
    {"SF", "LA", "Oakland", "San Jose", "San Diego"},
    {"NYC", "Buffalo", "Albany", "Rochester", "Syracuse"},
    {"Houston", "Dallas", "Austin", "El Paso", "Laredo"},
    {"Seattle", "Spokane", "Tacoma", "Bellevue", "Everett"},
    {"Portland", "Salem", "Eugene", "Bend", "Medford"},
    {"Las Vegas", "Reno", "Henderson", "Sparks", "Elko"},
    {"Phoenix", "Tucson", "Mesa", "Tempe", "Yuma"},
    {"Denver", "Aurora", "Boulder", "Pueblo", "Golden"},
}};

const std::array<const char*, 40> kFirstNames = {
    "John",   "Jane",  "Richard", "Jack",   "Lara",   "Alice", "Bob",
    "Carol",  "David", "Erin",    "Frank",  "Grace",  "Henry", "Ivy",
    "Kevin",  "Laura", "Mike",    "Nina",   "Oscar",  "Paula", "Quinn",
    "Rachel", "Sam",   "Tina",    "Victor", "Wendy",  "Xander", "Yara",
    "Zane",   "Amy",   "Brian",   "Cindy",  "Derek",  "Elena", "Felix",
    "Gina",   "Hank",  "Iris",    "Jorge",  "Kate"};
const std::array<const char*, 30> kLastNames = {
    "Smith",   "O'Neal",  "Fox",     "Stiles",  "Ellis",  "Brown",
    "Davis",   "Miller",  "Wilson",  "Moore",   "Taylor", "Thomas",
    "Jackson", "White",   "Harris",  "Martin",  "Garcia", "Clark",
    "Lewis",   "Walker",  "Young",   "Allen",   "King",   "Wright",
    "Scott",   "Green",   "Baker",   "Adams",   "Nelson", "Hill"};

}  // namespace

Schema TrafficGen::MakeSchema() {
  auto schema = Schema::Make({
      {"name", DataType::kString, FieldRole::kEntity},
      {"city", DataType::kString, FieldRole::kDimension},
      {"state", DataType::kString, FieldRole::kDimension},
      {"plan", DataType::kString, FieldRole::kDimension},
      {"month", DataType::kString, FieldRole::kDimension},
      {"minutes", DataType::kInt64, FieldRole::kMeasure},
      {"sms", DataType::kInt64, FieldRole::kMeasure},
      {"data_mb", DataType::kInt64, FieldRole::kMeasure},
  });
  PALEO_CHECK(schema.ok()) << schema.status().ToString();
  return *schema;
}

StatusOr<Table> TrafficGen::Generate(const TrafficGenOptions& options) {
  if (options.num_customers <= 0 || options.months_per_customer <= 0 ||
      options.months_per_customer > 12) {
    return Status::InvalidArgument("invalid TrafficGenOptions");
  }
  Rng rng(options.seed);
  Table table(MakeSchema());
  const auto& months = TextPool::Months();
  for (int c = 0; c < options.num_customers; ++c) {
    std::string name =
        std::string(kFirstNames[static_cast<size_t>(
            rng.Uniform(kFirstNames.size()))]) +
        " " +
        kLastNames[static_cast<size_t>(rng.Uniform(kLastNames.size()))] +
        " " + std::to_string(c);
    size_t state = static_cast<size_t>(rng.Uniform(kStates.size()));
    const char* city = kCities[state][static_cast<size_t>(rng.Uniform(5))];
    const char* plan =
        kPlans[static_cast<size_t>(rng.Uniform(kPlans.size()))];
    // Customers use their plan in a contiguous run of months.
    int first_month = static_cast<int>(
        rng.Uniform(static_cast<uint64_t>(13 - options.months_per_customer)));
    for (int m = 0; m < options.months_per_customer; ++m) {
      PALEO_RETURN_NOT_OK(table.AppendRow({
          Value::String(name),
          Value::String(city),
          Value::String(kStates[state]),
          Value::String(plan),
          Value::String(months[static_cast<size_t>(first_month + m)]),
          Value::Int64(rng.UniformInt(10, 900)),
          Value::Int64(rng.UniformInt(0, 120)),
          Value::Int64(rng.UniformInt(50, 3000)),
      }));
    }
  }
  return table;
}

StatusOr<Table> TrafficGen::PaperExample() {
  Table table(MakeSchema());
  struct Row {
    const char* name;
    const char* city;
    const char* state;
    const char* plan;
    const char* month;
    int64_t minutes, sms, data;
  };
  // The visible rows of the paper's Table 1.
  const Row kPaperRows[] = {
      {"John Smith", "SF", "CA", "XL", "June", 654, 87, 1230},
      {"John Smith", "SF", "CA", "XL", "July", 175, 22, 900},
      {"Jane O'Neal", "LA", "CA", "XL", "April", 699, 15, 2300},
      {"Jane O'Neal", "LA", "CA", "XL", "June", 334, 10, 1900},
      {"Richard Fox", "Oakland", "CA", "XL", "June", 596, 23, 1272},
      {"Jack Stiles", "San Jose", "CA", "XL", "March", 429, 42, 1192},
      {"Jack Stiles", "San Jose", "CA", "XL", "April", 586, 8, 1275},
      {"Lara Ellis", "San Diego", "CA", "XL", "May", 784, 11, 2107},
  };
  for (const Row& r : kPaperRows) {
    PALEO_RETURN_NOT_OK(table.AppendRow(
        {Value::String(r.name), Value::String(r.city), Value::String(r.state),
         Value::String(r.plan), Value::String(r.month),
         Value::Int64(r.minutes), Value::Int64(r.sms),
         Value::Int64(r.data)}));
  }
  // Background customers outside California with higher raw minutes, so
  // the state = 'CA' constraint is load-bearing for the example query.
  Rng rng(1234);
  for (int c = 0; c < 40; ++c) {
    std::string name = "Out Of State " + std::to_string(c);
    size_t state = 1 + static_cast<size_t>(rng.Uniform(kStates.size() - 1));
    const char* city = kCities[state][static_cast<size_t>(rng.Uniform(5))];
    const char* plan =
        kPlans[static_cast<size_t>(rng.Uniform(kPlans.size()))];
    for (int m = 0; m < 3; ++m) {
      PALEO_RETURN_NOT_OK(table.AppendRow({
          Value::String(name),
          Value::String(city),
          Value::String(kStates[state]),
          Value::String(plan),
          Value::String(
              TextPool::Months()[static_cast<size_t>(rng.Uniform(12))]),
          Value::Int64(rng.UniformInt(700, 999)),
          Value::Int64(rng.UniformInt(0, 120)),
          Value::Int64(rng.UniformInt(50, 3000)),
      }));
    }
  }
  return table;
}

}  // namespace paleo
