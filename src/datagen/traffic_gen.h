// The telecom Traffic relation from the paper's introduction (Table 1):
// per-customer monthly cellphone traffic with textual context columns
// and numeric usage measures. Used by the quickstart example and by
// end-to-end tests small enough to verify by hand.

#ifndef PALEO_DATAGEN_TRAFFIC_GEN_H_
#define PALEO_DATAGEN_TRAFFIC_GEN_H_

#include <cstdint>

#include "common/status.h"
#include "storage/table.h"

namespace paleo {

/// \brief Generator options for the Traffic relation.
struct TrafficGenOptions {
  /// Number of distinct customers.
  int num_customers = 200;
  /// Months of data per customer (1..12).
  int months_per_customer = 8;
  uint64_t seed = 7;
};

/// \brief Generates the Traffic relation.
class TrafficGen {
 public:
  /// Schema: name (entity); city, state, plan, month (dimensions);
  /// minutes, sms, data_mb (measures).
  static Schema MakeSchema();

  /// Random instance per options.
  static StatusOr<Table> Generate(const TrafficGenOptions& options);

  /// The exact scenario of the paper's Section 1: contains the five
  /// California XL-plan customers of Table 1 with their printed values,
  /// so that
  ///   SELECT name, max(minutes) FROM traffic WHERE state = 'CA'
  ///   GROUP BY name ORDER BY max(minutes) DESC LIMIT 5
  /// returns exactly Table 2 (Lara Ellis 784, Jane O'Neal 699, John
  /// Smith 654, Richard Fox 596, Jack Stiles 586), plus background rows
  /// in other states.
  static StatusOr<Table> PaperExample();
};

}  // namespace paleo

#endif  // PALEO_DATAGEN_TRAFFIC_GEN_H_
