#include "engine/aggregate.h"

namespace paleo {

const char* AggFnToString(AggFn fn) {
  switch (fn) {
    case AggFn::kMax:
      return "max";
    case AggFn::kMin:
      return "min";
    case AggFn::kSum:
      return "sum";
    case AggFn::kAvg:
      return "avg";
    case AggFn::kCount:
      return "count";
    case AggFn::kNone:
      return "";
  }
  return "";
}

}  // namespace paleo
