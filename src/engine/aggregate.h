// Aggregation functions of the query template.

#ifndef PALEO_ENGINE_AGGREGATE_H_
#define PALEO_ENGINE_AGGREGATE_H_

#include <limits>
#include <string>

namespace paleo {

/// \brief Aggregate applied to the ranking expression, grouped by
/// entity. kNone means the query has no GROUP BY: rows are ranked by
/// the raw expression value.
enum class AggFn : int {
  kMax = 0,
  kMin = 1,
  kSum = 2,
  kAvg = 3,
  kCount = 4,
  kNone = 5,
};

/// "max", "min", "sum", "avg", "count", or "" for kNone.
const char* AggFnToString(AggFn fn);

/// All aggregate functions the system searches over, in the Figure 4
/// pre-order: max first (cheapest to identify via top-entity lists),
/// then avg, then the sum family, then none. kMin/kCount are extensions
/// disabled by default in PaleoOptions.
constexpr AggFn kAllAggFns[] = {AggFn::kMax,   AggFn::kAvg, AggFn::kSum,
                                AggFn::kNone,  AggFn::kMin, AggFn::kCount};

/// \brief Streaming aggregation state for one group.
struct AggState {
  double sum = 0.0;
  double max = -std::numeric_limits<double>::infinity();
  double min = std::numeric_limits<double>::infinity();
  int64_t count = 0;

  void Add(double v) {
    sum += v;
    if (v > max) max = v;
    if (v < min) min = v;
    ++count;
  }

  /// Folds another group's partial state into this one (chunk-merge of
  /// the morsel-parallel scan). Merging partials in ascending chunk
  /// order is the CANONICAL aggregation order: every executor path
  /// (scalar, vectorized, morsel-parallel) computes per-chunk partials
  /// and merges them this way, so float accumulation is byte-identical
  /// across paths by construction.
  void Merge(const AggState& other) {
    sum += other.sum;
    if (other.max > max) max = other.max;
    if (other.min < min) min = other.min;
    count += other.count;
  }

  /// Final value under `fn`. Precondition: count > 0 and fn != kNone.
  double Finish(AggFn fn) const {
    switch (fn) {
      case AggFn::kMax:
        return max;
      case AggFn::kMin:
        return min;
      case AggFn::kSum:
        return sum;
      case AggFn::kAvg:
        return sum / static_cast<double>(count);
      case AggFn::kCount:
        return static_cast<double>(count);
      case AggFn::kNone:
        break;
    }
    return 0.0;
  }
};

}  // namespace paleo

#endif  // PALEO_ENGINE_AGGREGATE_H_
