#include "engine/atom_cache.h"

#include <new>

#include "common/fault_points.h"

namespace paleo {

namespace {

/// Mixes one atom's identity into a running hash (the same field walk
/// for both key kinds, so the two tiers hash consistently).
uint64_t MixAtom(uint64_t h, const AtomicPredicate& atom) {
  h ^= static_cast<uint64_t>(atom.column) * 0xC2B2AE3D27D4EB4FULL;
  h = (h << 17) | (h >> 47);
  h ^= static_cast<uint64_t>(atom.kind);
  h ^= atom.value.Hash();
  if (atom.is_range()) {
    h = (h << 9) | (h >> 55);
    h ^= atom.high.Hash();
  }
  return h;
}

uint64_t MixEpochChunk(uint64_t epoch, uint32_t chunk) {
  uint64_t h = epoch * 0x9E3779B97F4A7C15ULL;
  h ^= (static_cast<uint64_t>(chunk) + 0x165667B19E3779F9ULL) *
       0x27D4EB2F165667C5ULL;
  return h;
}

}  // namespace

size_t AtomSelectionCache::AtomKeyHash::operator()(const AtomKey& k) const {
  uint64_t h = MixEpochChunk(k.epoch, k.chunk);
  h = MixAtom(h, k.atom);
  return static_cast<size_t>(h * 0xFF51AFD7ED558CCDULL);
}

size_t AtomSelectionCache::ConjKeyHash::operator()(const ConjKey& k) const {
  uint64_t h = MixEpochChunk(k.epoch, k.chunk);
  h ^= k.partials_tier ? 0x94D049BB133111EBULL : 0;
  for (const AtomicPredicate& atom : k.atoms) {
    h = (h << 13) | (h >> 51);
    h = MixAtom(h, atom);
  }
  h ^= k.expr.Hash() * 0xBF58476D1CE4E5B9ULL;
  return static_cast<size_t>(h * 0xFF51AFD7ED558CCDULL);
}

std::shared_ptr<const SelectionBitmap> AtomSelectionCache::Lookup(
    uint64_t epoch, uint32_t chunk, const AtomicPredicate& atom) {
  MutexLock lock(mutex_);
  auto it = atom_index_.find(AtomKey{epoch, chunk, atom});
  if (it == atom_index_.end()) {
    ++misses_;
    obs::Inc(metrics_.misses);
    return nullptr;
  }
  // Refresh the LRU position: splice the entry to the front.
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  obs::Inc(metrics_.hits);
  return it->second->bitmap;
}

std::shared_ptr<const SelectionBitmap> AtomSelectionCache::LookupConjunction(
    uint64_t epoch, uint32_t chunk,
    const std::vector<AtomicPredicate>& atoms) {
  MutexLock lock(mutex_);
  auto it = conj_index_.find(
      ConjKey{epoch, chunk, /*partials_tier=*/false, atoms, RankExpr{}});
  if (it == conj_index_.end()) {
    ++conjunction_misses_;
    obs::Inc(metrics_.conjunction_misses);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++conjunction_hits_;
  obs::Inc(metrics_.conjunction_hits);
  return it->second->bitmap;
}

std::shared_ptr<const CachedChunkPartials> AtomSelectionCache::LookupPartials(
    uint64_t epoch, uint32_t chunk,
    const std::vector<AtomicPredicate>& atoms, const RankExpr& expr) {
  MutexLock lock(mutex_);
  auto it = conj_index_.find(
      ConjKey{epoch, chunk, /*partials_tier=*/true, atoms, expr});
  if (it == conj_index_.end()) {
    ++conjunction_misses_;
    obs::Inc(metrics_.conjunction_misses);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++conjunction_hits_;
  obs::Inc(metrics_.conjunction_hits);
  return it->second->partials;
}

bool AtomSelectionCache::InsertAllocFault() {
  // Chaos hook: behave exactly as if the shared-copy allocation threw.
  // One site serves all three Insert flavors so the chaos suite's
  // pressure ladder exercises every payload kind through one name.
  return PALEO_FAULT_POINT("atom-cache.insert.alloc").alloc_failure();
}

void AtomSelectionCache::NotePressure() {
  // Memory pressure: shrink retention (freeing resident payloads); the
  // caller then hands out an unretained copy — degrade, do not fail.
  MutexLock lock(mutex_);
  ShrinkOnPressureLocked();
  obs::Set(metrics_.resident_bytes, static_cast<int64_t>(resident_bytes_));
}

void AtomSelectionCache::CommitEntryLocked(Entry entry) {
  const size_t bytes = entry.bytes;
  lru_.push_front(std::move(entry));
  if (lru_.front().conjunction_tier) {
    conj_index_[lru_.front().ckey] = lru_.begin();
  } else {
    atom_index_[lru_.front().akey] = lru_.begin();
  }
  resident_bytes_ += bytes;
  EvictLocked();
  obs::Set(metrics_.resident_bytes, static_cast<int64_t>(resident_bytes_));
}

std::shared_ptr<const SelectionBitmap> AtomSelectionCache::Insert(
    uint64_t epoch, uint32_t chunk, const AtomicPredicate& atom,
    SelectionBitmap bitmap) {
  bool alloc_failed = InsertAllocFault();
  std::shared_ptr<const SelectionBitmap> shared;
  if (!alloc_failed) {
    try {
      shared = std::make_shared<const SelectionBitmap>(std::move(bitmap));
    } catch (const std::bad_alloc&) {
      // make_shared failed before moving from `bitmap`; it is intact.
      alloc_failed = true;
    }
  }
  if (alloc_failed) {
    NotePressure();
    // With evicted entries released this allocation normally succeeds;
    // a genuine out-of-memory still propagates (nothing sane is left).
    return std::make_shared<const SelectionBitmap>(std::move(bitmap));
  }
  if (byte_budget_ == 0 || under_pressure()) {
    return shared;  // retention disabled (configured off or degraded)
  }
  MutexLock lock(mutex_);
  AtomKey key{epoch, chunk, atom};
  auto it = atom_index_.find(key);
  if (it != atom_index_.end()) {
    // Another thread computed the same atom concurrently; first insert
    // wins so every consumer shares one copy.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->bitmap;
  }
  Entry entry;
  entry.conjunction_tier = false;
  entry.akey = key;
  entry.bitmap = shared;
  entry.bytes = shared->MemoryUsage();
  CommitEntryLocked(std::move(entry));
  return shared;
}

std::shared_ptr<const SelectionBitmap> AtomSelectionCache::InsertConjunction(
    uint64_t epoch, uint32_t chunk,
    const std::vector<AtomicPredicate>& atoms, SelectionBitmap bitmap) {
  bool alloc_failed = InsertAllocFault();
  std::shared_ptr<const SelectionBitmap> shared;
  if (!alloc_failed) {
    try {
      shared = std::make_shared<const SelectionBitmap>(std::move(bitmap));
    } catch (const std::bad_alloc&) {
      alloc_failed = true;
    }
  }
  if (alloc_failed) {
    NotePressure();
    return std::make_shared<const SelectionBitmap>(std::move(bitmap));
  }
  if (byte_budget_ == 0 || under_pressure()) {
    return shared;
  }
  MutexLock lock(mutex_);
  ConjKey key{epoch, chunk, /*partials_tier=*/false, atoms, RankExpr{}};
  auto it = conj_index_.find(key);
  if (it != conj_index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->bitmap;
  }
  Entry entry;
  entry.conjunction_tier = true;
  entry.ckey = std::move(key);
  entry.bitmap = shared;
  entry.bytes = shared->MemoryUsage() +
                atoms.size() * sizeof(AtomicPredicate);
  CommitEntryLocked(std::move(entry));
  return shared;
}

std::shared_ptr<const CachedChunkPartials> AtomSelectionCache::InsertPartials(
    uint64_t epoch, uint32_t chunk,
    const std::vector<AtomicPredicate>& atoms, const RankExpr& expr,
    CachedChunkPartials partials) {
  bool alloc_failed = InsertAllocFault();
  std::shared_ptr<const CachedChunkPartials> shared;
  if (!alloc_failed) {
    try {
      shared =
          std::make_shared<const CachedChunkPartials>(std::move(partials));
    } catch (const std::bad_alloc&) {
      alloc_failed = true;
    }
  }
  if (alloc_failed) {
    NotePressure();
    return std::make_shared<const CachedChunkPartials>(std::move(partials));
  }
  if (byte_budget_ == 0 || under_pressure()) {
    return shared;
  }
  MutexLock lock(mutex_);
  ConjKey key{epoch, chunk, /*partials_tier=*/true, atoms, expr};
  auto it = conj_index_.find(key);
  if (it != conj_index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->partials;
  }
  Entry entry;
  entry.conjunction_tier = true;
  entry.ckey = std::move(key);
  entry.partials = shared;
  entry.bytes =
      shared->MemoryUsage() + atoms.size() * sizeof(AtomicPredicate);
  CommitEntryLocked(std::move(entry));
  return shared;
}

void AtomSelectionCache::EvictLocked() {
  while (resident_bytes_ > effective_budget_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    resident_bytes_ -= victim.bytes;
    if (victim.conjunction_tier) {
      conj_index_.erase(victim.ckey);
    } else {
      atom_index_.erase(victim.akey);
    }
    lru_.pop_back();
    ++evictions_;
    obs::Inc(metrics_.evictions);
  }
}

void AtomSelectionCache::ShrinkOnPressureLocked() {
  ++pressure_events_;
  effective_budget_ /= 2;
  if (effective_budget_ < kMinRetentionBytes) {
    // The ladder's last rung: retention off; the executor sees
    // under_pressure() and degrades to its scalar path.
    effective_budget_ = 0;
    // relaxed: one-way advisory flag; a reader that misses it by one
    // execution just probes the cache once more under the mutex.
    retention_disabled_.store(true, std::memory_order_relaxed);
  }
  EvictLocked();
}

AtomSelectionCache::Stats AtomSelectionCache::stats() const {
  MutexLock lock(mutex_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.conjunction_hits = conjunction_hits_;
  s.conjunction_misses = conjunction_misses_;
  s.evictions = evictions_;
  s.pressure_events = pressure_events_;
  s.resident_bytes = resident_bytes_;
  s.entries = lru_.size();
  s.effective_budget_bytes = effective_budget_;
  return s;
}

}  // namespace paleo
