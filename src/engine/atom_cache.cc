#include "engine/atom_cache.h"

namespace paleo {

std::shared_ptr<const SelectionBitmap> AtomSelectionCache::Lookup(
    uint64_t epoch, const AtomicPredicate& atom) {
  MutexLock lock(mutex_);
  auto it = index_.find(Key{epoch, atom});
  if (it == index_.end()) {
    ++misses_;
    obs::Inc(metrics_.misses);
    return nullptr;
  }
  // Refresh the LRU position: splice the entry to the front.
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  obs::Inc(metrics_.hits);
  return it->second->bitmap;
}

std::shared_ptr<const SelectionBitmap> AtomSelectionCache::Insert(
    uint64_t epoch, const AtomicPredicate& atom, SelectionBitmap bitmap) {
  auto shared =
      std::make_shared<const SelectionBitmap>(std::move(bitmap));
  if (byte_budget_ == 0) return shared;  // retention disabled
  MutexLock lock(mutex_);
  Key key{epoch, atom};
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Another thread computed the same atom concurrently; first insert
    // wins so every consumer shares one copy.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->bitmap;
  }
  const size_t bytes = shared->MemoryUsage();
  lru_.push_front(Entry{key, shared, bytes});
  index_[key] = lru_.begin();
  resident_bytes_ += bytes;
  EvictLocked();
  obs::Set(metrics_.resident_bytes,
           static_cast<int64_t>(resident_bytes_));
  return shared;
}

void AtomSelectionCache::EvictLocked() {
  while (resident_bytes_ > byte_budget_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    resident_bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
    obs::Inc(metrics_.evictions);
  }
}

AtomSelectionCache::Stats AtomSelectionCache::stats() const {
  MutexLock lock(mutex_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.resident_bytes = resident_bytes_;
  s.entries = lru_.size();
  return s;
}

}  // namespace paleo
