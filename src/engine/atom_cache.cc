#include "engine/atom_cache.h"

#include <new>

#include "common/fault_points.h"

namespace paleo {

std::shared_ptr<const SelectionBitmap> AtomSelectionCache::Lookup(
    uint64_t epoch, uint32_t chunk, const AtomicPredicate& atom) {
  MutexLock lock(mutex_);
  auto it = index_.find(Key{epoch, chunk, atom});
  if (it == index_.end()) {
    ++misses_;
    obs::Inc(metrics_.misses);
    return nullptr;
  }
  // Refresh the LRU position: splice the entry to the front.
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  obs::Inc(metrics_.hits);
  return it->second->bitmap;
}

std::shared_ptr<const SelectionBitmap> AtomSelectionCache::Insert(
    uint64_t epoch, uint32_t chunk, const AtomicPredicate& atom,
    SelectionBitmap bitmap) {
  // Chaos hook: behave exactly as if the shared-copy allocation threw.
  bool alloc_failed =
      PALEO_FAULT_POINT("atom-cache.insert.alloc").alloc_failure();
  std::shared_ptr<const SelectionBitmap> shared;
  if (!alloc_failed) {
    try {
      shared = std::make_shared<const SelectionBitmap>(std::move(bitmap));
    } catch (const std::bad_alloc&) {
      // make_shared failed before moving from `bitmap`; it is intact.
      alloc_failed = true;
    }
  }
  if (alloc_failed) {
    // Memory pressure: shrink retention (freeing resident bitmaps) and
    // hand the caller an unretained copy — degrade, do not fail.
    {
      MutexLock lock(mutex_);
      ShrinkOnPressureLocked();
      obs::Set(metrics_.resident_bytes,
               static_cast<int64_t>(resident_bytes_));
    }
    // With evicted entries released this allocation normally succeeds;
    // a genuine out-of-memory still propagates (nothing sane is left).
    return std::make_shared<const SelectionBitmap>(std::move(bitmap));
  }
  if (byte_budget_ == 0 || under_pressure()) {
    return shared;  // retention disabled (configured off or degraded)
  }
  MutexLock lock(mutex_);
  Key key{epoch, chunk, atom};
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Another thread computed the same atom concurrently; first insert
    // wins so every consumer shares one copy.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->bitmap;
  }
  const size_t bytes = shared->MemoryUsage();
  lru_.push_front(Entry{key, shared, bytes});
  index_[key] = lru_.begin();
  resident_bytes_ += bytes;
  EvictLocked();
  obs::Set(metrics_.resident_bytes,
           static_cast<int64_t>(resident_bytes_));
  return shared;
}

void AtomSelectionCache::EvictLocked() {
  while (resident_bytes_ > effective_budget_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    resident_bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
    obs::Inc(metrics_.evictions);
  }
}

void AtomSelectionCache::ShrinkOnPressureLocked() {
  ++pressure_events_;
  effective_budget_ /= 2;
  if (effective_budget_ < kMinRetentionBytes) {
    // The ladder's last rung: retention off; the executor sees
    // under_pressure() and degrades to its scalar path.
    effective_budget_ = 0;
    // relaxed: one-way advisory flag; a reader that misses it by one
    // execution just probes the cache once more under the mutex.
    retention_disabled_.store(true, std::memory_order_relaxed);
  }
  EvictLocked();
}

AtomSelectionCache::Stats AtomSelectionCache::stats() const {
  MutexLock lock(mutex_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.pressure_events = pressure_events_;
  s.resident_bytes = resident_bytes_;
  s.entries = lru_.size();
  s.effective_budget_bytes = effective_budget_;
  return s;
}

}  // namespace paleo
