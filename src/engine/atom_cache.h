// Cross-candidate selection cache for the validation hot path.
//
// Apriori-mined candidate queries share almost all of their predicate
// atoms by construction (a level-3 conjunction reuses the exact atoms
// of its level-1/2 ancestors), yet the executor used to rescan R for
// every candidate. The cache is TWO-TIER:
//
//  * Atom tier — memoizes the per-atom selection bitmaps produced by
//    the kernels in engine/selection_kernels.h, keyed by (table epoch,
//    chunk index, atom), so a conjunction that has been seen atom-wise
//    before resolves to a word-wise AND of cached bitmaps instead of a
//    rescan.
//  * Conjunction tier — memoizes whole-conjunction results: the ANDed
//    selection bitmap keyed by (epoch, chunk, conjunction), and — the
//    apriori-lattice payoff — the chunk's compact per-group partial
//    aggregates keyed by (epoch, chunk, conjunction, ranking
//    expression). A parent conjunction's grouped partials computed once
//    are served to every child candidate that reuses the same
//    (conjunction, expression) pair, letting the executor skip the
//    chunk's scan entirely. Cached partials ARE the canonical per-chunk
//    partials (see the chunk-canonical merge in engine/executor.h), so
//    a served execution stays byte-identical with a scanned one.
//
// Keys compare by FULL equality (epoch, chunk, tier, every atom, the
// expression) — hash-only keying would make a collision silently serve
// the wrong selection. Chunked scans store one entry per chunk —
// morsel workers on different chunks never contend for the same key,
// and a zone-map-skipped chunk caches nothing.
//
// Retention is one byte budget with LRU eviction across both tiers:
// entries are charged their payload's size, the least-recently-used
// entries are dropped once the budget is exceeded, and payloads are
// handed out as shared_ptr<const T> so an evicted payload stays alive
// for readers still holding it.
//
// Thread-safety: fully thread-safe. One cache is shared by all workers
// of the validator's parallel path within a run; every public method
// takes the internal paleo::Mutex. Payload *computation* happens
// outside the lock (callers compute on miss, then Insert) — two
// threads may race to compute the same key, in which case the first
// Insert wins and the loser adopts the winner's payload, keeping every
// consumer on one shared copy.

#ifndef PALEO_ENGINE_ATOM_CACHE_H_
#define PALEO_ENGINE_ATOM_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "engine/aggregate.h"
#include "engine/predicate.h"
#include "engine/rank_expr.h"
#include "engine/selection_bitmap.h"
#include "obs/metrics.h"

namespace paleo {

/// \brief One chunk's canonical compact grouped partials: entity codes
/// in first-touch scan order plus the parallel per-group AggStates —
/// exactly what the executor's chunk merge consumes, and
/// agg-kind-independent (AggState carries sum/min/max/count at once),
/// so one cached entry serves MIN, MAX, SUM, COUNT, and AVG candidates
/// over the same (conjunction, expression) pair.
struct CachedChunkPartials {
  std::vector<uint32_t> touched;
  std::vector<AggState> partials;

  size_t MemoryUsage() const {
    return sizeof(CachedChunkPartials) +
           touched.capacity() * sizeof(uint32_t) +
           partials.capacity() * sizeof(AggState);
  }
};

/// \brief Thread-safe two-tier LRU cache of per-atom selection
/// bitmaps, whole-conjunction bitmaps, and per-chunk grouped partials.
class AtomSelectionCache {
 public:
  /// Registry-backed counters mirrored alongside the internal stats,
  /// all-null (one branch per event) by default. See
  /// paleo/pipeline_metrics.h for the paleo_cache_* /
  /// paleo_conjunction_cache_* series they back.
  struct MetricHandles {
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Gauge* resident_bytes = nullptr;
    /// Conjunction-tier traffic (bitmaps and partials), kept separate
    /// from the atom tier: a conjunction hit saves a whole chunk's AND
    /// or scan, not one kernel pass.
    obs::Counter* conjunction_hits = nullptr;
    obs::Counter* conjunction_misses = nullptr;
  };

  /// Point-in-time counters (exact; taken under the mutex).
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    /// Conjunction-tier hits/misses (bitmap and partials lookups).
    int64_t conjunction_hits = 0;
    int64_t conjunction_misses = 0;
    int64_t evictions = 0;
    /// Allocation failures (real or injected) absorbed by shrinking
    /// the effective budget; see Insert().
    int64_t pressure_events = 0;
    size_t resident_bytes = 0;
    size_t entries = 0;
    /// Current retention budget: starts at byte_budget(), halves on
    /// each pressure event, 0 once retention shut down.
    size_t effective_budget_bytes = 0;
  };

  /// `byte_budget` bounds the resident payload bytes; 0 disables
  /// retention entirely (every Lookup misses, Insert stores nothing),
  /// which keeps the call sites branch-free.
  explicit AtomSelectionCache(size_t byte_budget)
      : AtomSelectionCache(byte_budget, MetricHandles{}) {}
  AtomSelectionCache(size_t byte_budget, MetricHandles metrics)
      : byte_budget_(byte_budget),
        metrics_(metrics),
        effective_budget_(byte_budget) {}

  AtomSelectionCache(const AtomSelectionCache&) = delete;
  AtomSelectionCache& operator=(const AtomSelectionCache&) = delete;

  /// The cached selection of `atom` over chunk `chunk` of the table
  /// stamped `epoch`, or nullptr on miss. A hit refreshes the entry's
  /// LRU position.
  std::shared_ptr<const SelectionBitmap> Lookup(uint64_t epoch,
                                                uint32_t chunk,
                                                const AtomicPredicate& atom);

  /// Inserts the freshly computed selection and returns the retained
  /// bitmap. First insert wins: if another thread raced the same key in,
  /// the existing bitmap is returned and `bitmap` is discarded, so all
  /// consumers share one copy. Evicts LRU entries past the byte budget.
  ///
  /// Memory-pressure degradation: when retaining the payload fails to
  /// allocate (a real bad_alloc or an injected fault), the cache
  /// halves its effective budget, evicts down to it, and hands the
  /// caller an UNRETAINED copy — the run keeps its correct result and
  /// only loses reuse. Once the effective budget shrinks below a small
  /// floor, retention shuts down and under_pressure() turns true, at
  /// which point the executor degrades to its scalar path.
  std::shared_ptr<const SelectionBitmap> Insert(uint64_t epoch,
                                                uint32_t chunk,
                                                const AtomicPredicate& atom,
                                                SelectionBitmap bitmap);

  /// The cached whole-conjunction selection (every atom ANDed) over one
  /// chunk, or nullptr on miss. Worth a separate tier only for real
  /// conjunctions: callers consult it for 2+ atoms (a 1-atom
  /// "conjunction" is exactly the atom tier).
  std::shared_ptr<const SelectionBitmap> LookupConjunction(
      uint64_t epoch, uint32_t chunk,
      const std::vector<AtomicPredicate>& atoms);

  /// Inserts a whole-conjunction bitmap; same first-insert-wins and
  /// pressure contracts as Insert().
  std::shared_ptr<const SelectionBitmap> InsertConjunction(
      uint64_t epoch, uint32_t chunk,
      const std::vector<AtomicPredicate>& atoms, SelectionBitmap bitmap);

  /// The cached grouped partials of (conjunction, expression) over one
  /// chunk, or nullptr on miss. A hit lets the executor adopt the
  /// chunk's canonical partials without scanning it.
  std::shared_ptr<const CachedChunkPartials> LookupPartials(
      uint64_t epoch, uint32_t chunk,
      const std::vector<AtomicPredicate>& atoms, const RankExpr& expr);

  /// Inserts one chunk's grouped partials; same first-insert-wins and
  /// pressure contracts as Insert().
  std::shared_ptr<const CachedChunkPartials> InsertPartials(
      uint64_t epoch, uint32_t chunk,
      const std::vector<AtomicPredicate>& atoms, const RankExpr& expr,
      CachedChunkPartials partials);

  /// True once repeated allocation failures shut retention down; the
  /// executor then takes the scalar path. Lock-free, cheap enough for
  /// the per-execution check. relaxed: advisory one-way flag, no data
  /// is published through it.
  bool under_pressure() const {
    return retention_disabled_.load(std::memory_order_relaxed);
  }

  Stats stats() const;
  size_t byte_budget() const { return byte_budget_; }

 private:
  /// Atom-tier key: fixed-size, allocation-free (this tier is probed
  /// once per atom per chunk per execution — the hot path).
  struct AtomKey {
    uint64_t epoch;
    uint32_t chunk;
    AtomicPredicate atom;
    bool operator==(const AtomKey& other) const {
      return epoch == other.epoch && chunk == other.chunk &&
             atom == other.atom;
    }
  };
  struct AtomKeyHash {
    size_t operator()(const AtomKey& k) const;
  };

  /// Conjunction-tier key: the full atom list (miner order — candidates
  /// derived from one parent share it verbatim) plus, for the partials
  /// tier, the ranking expression. `partials_tier` separates the two
  /// payload kinds so a bitmap entry can never answer a partials probe.
  struct ConjKey {
    uint64_t epoch;
    uint32_t chunk;
    bool partials_tier;
    std::vector<AtomicPredicate> atoms;
    RankExpr expr;  // default-constructed for bitmap entries
    bool operator==(const ConjKey& other) const {
      return epoch == other.epoch && chunk == other.chunk &&
             partials_tier == other.partials_tier && expr == other.expr &&
             atoms == other.atoms;
    }
  };
  struct ConjKeyHash {
    size_t operator()(const ConjKey& k) const;
  };

  /// One LRU node; exactly one payload pointer is set, and exactly one
  /// of the two index maps holds an iterator to it (conjunction_tier
  /// picks which, so eviction can unindex it).
  struct Entry {
    bool conjunction_tier = false;
    AtomKey akey;
    ConjKey ckey;
    std::shared_ptr<const SelectionBitmap> bitmap;
    std::shared_ptr<const CachedChunkPartials> partials;
    size_t bytes = 0;
  };
  using LruList = std::list<Entry>;

  /// Below this effective budget retention is pointless (a single
  /// bitmap word array usually exceeds it): shut retention down.
  static constexpr size_t kMinRetentionBytes = 4096;

  /// Drops LRU entries until the effective budget holds again.
  void EvictLocked() REQUIRES(mutex_);
  /// One pressure event: halve the effective budget and evict down to
  /// it; below the floor, shut retention down.
  void ShrinkOnPressureLocked() REQUIRES(mutex_);
  /// The shared alloc-failure ladder of every Insert flavor: shrink,
  /// report, update the gauge. Returns after releasing the mutex.
  void NotePressure();
  /// The single "atom-cache.insert.alloc" chaos hook, shared by all
  /// three Insert flavors (one ladder for every payload kind).
  static bool InsertAllocFault();
  /// Links a freshly built entry at the LRU front, charges its bytes,
  /// evicts past the budget, and refreshes the gauge.
  void CommitEntryLocked(Entry entry) REQUIRES(mutex_);

  const size_t byte_budget_;
  const MetricHandles metrics_;
  // relaxed: one-way pressure flag read outside mutex_ (see
  // under_pressure()); all cache state is guarded by mutex_ below.
  std::atomic<bool> retention_disabled_{false};

  mutable Mutex mutex_;
  /// Front = most recently used; atom and conjunction entries share the
  /// one list (and thus one eviction order and one byte budget).
  LruList lru_ GUARDED_BY(mutex_);
  std::unordered_map<AtomKey, LruList::iterator, AtomKeyHash> atom_index_
      GUARDED_BY(mutex_);
  std::unordered_map<ConjKey, LruList::iterator, ConjKeyHash> conj_index_
      GUARDED_BY(mutex_);
  size_t effective_budget_ GUARDED_BY(mutex_) = 0;
  size_t resident_bytes_ GUARDED_BY(mutex_) = 0;
  int64_t hits_ GUARDED_BY(mutex_) = 0;
  int64_t misses_ GUARDED_BY(mutex_) = 0;
  int64_t conjunction_hits_ GUARDED_BY(mutex_) = 0;
  int64_t conjunction_misses_ GUARDED_BY(mutex_) = 0;
  int64_t evictions_ GUARDED_BY(mutex_) = 0;
  int64_t pressure_events_ GUARDED_BY(mutex_) = 0;
};

}  // namespace paleo

#endif  // PALEO_ENGINE_ATOM_CACHE_H_
