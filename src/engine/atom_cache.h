// Cross-candidate selection cache for the validation hot path.
//
// Apriori-mined candidate queries share almost all of their predicate
// atoms by construction (a level-3 conjunction reuses the exact atoms
// of its level-1/2 ancestors), yet the executor used to rescan R for
// every candidate. The AtomSelectionCache memoizes the per-atom
// selection bitmaps produced by the kernels in
// engine/selection_kernels.h, keyed by (table epoch, chunk index,
// atom), so a conjunction that has been seen atom-wise before resolves
// to a word-wise AND of cached bitmaps instead of a rescan. Chunked
// scans store one bitmap per chunk — morsel workers on different
// chunks never contend for the same key, and a zone-map-skipped chunk
// caches nothing.
//
// Retention is a byte budget with LRU eviction: entries are charged
// their bitmap's word-array size, the least-recently-used entries are
// dropped once the budget is exceeded, and bitmaps are handed out as
// shared_ptr<const SelectionBitmap> so an evicted bitmap stays alive
// for readers still holding it.
//
// Thread-safety: fully thread-safe. One cache is shared by all workers
// of the validator's parallel path within a run; every public method
// takes the internal paleo::Mutex. Bitmap *computation* happens outside
// the lock (callers compute on miss, then Insert) — two threads may
// race to compute the same atom, in which case the first Insert wins
// and the loser adopts the winner's bitmap, keeping every consumer on
// one shared copy.

#ifndef PALEO_ENGINE_ATOM_CACHE_H_
#define PALEO_ENGINE_ATOM_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "engine/predicate.h"
#include "engine/selection_bitmap.h"
#include "obs/metrics.h"

namespace paleo {

/// \brief Thread-safe LRU cache of per-atom selection bitmaps.
class AtomSelectionCache {
 public:
  /// Registry-backed counters mirrored alongside the internal stats,
  /// all-null (one branch per event) by default. See
  /// paleo/pipeline_metrics.h for the paleo_cache_* series they back.
  struct MetricHandles {
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Gauge* resident_bytes = nullptr;
  };

  /// Point-in-time counters (exact; taken under the mutex).
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    /// Allocation failures (real or injected) absorbed by shrinking
    /// the effective budget; see Insert().
    int64_t pressure_events = 0;
    size_t resident_bytes = 0;
    size_t entries = 0;
    /// Current retention budget: starts at byte_budget(), halves on
    /// each pressure event, 0 once retention shut down.
    size_t effective_budget_bytes = 0;
  };

  /// `byte_budget` bounds the resident bitmap bytes; 0 disables
  /// retention entirely (every Lookup misses, Insert stores nothing),
  /// which keeps the call sites branch-free.
  explicit AtomSelectionCache(size_t byte_budget)
      : AtomSelectionCache(byte_budget, MetricHandles{}) {}
  AtomSelectionCache(size_t byte_budget, MetricHandles metrics)
      : byte_budget_(byte_budget),
        metrics_(metrics),
        effective_budget_(byte_budget) {}

  AtomSelectionCache(const AtomSelectionCache&) = delete;
  AtomSelectionCache& operator=(const AtomSelectionCache&) = delete;

  /// The cached selection of `atom` over chunk `chunk` of the table
  /// stamped `epoch`, or nullptr on miss. A hit refreshes the entry's
  /// LRU position.
  std::shared_ptr<const SelectionBitmap> Lookup(uint64_t epoch,
                                                uint32_t chunk,
                                                const AtomicPredicate& atom);

  /// Inserts the freshly computed selection and returns the retained
  /// bitmap. First insert wins: if another thread raced the same key in,
  /// the existing bitmap is returned and `bitmap` is discarded, so all
  /// consumers share one copy. Evicts LRU entries past the byte budget.
  ///
  /// Memory-pressure degradation: when retaining the bitmap fails to
  /// allocate (a real bad_alloc or an injected fault), the cache
  /// halves its effective budget, evicts down to it, and hands the
  /// caller an UNRETAINED copy — the run keeps its correct bitmap and
  /// only loses reuse. Once the effective budget shrinks below a small
  /// floor, retention shuts down and under_pressure() turns true, at
  /// which point the executor degrades to its scalar path.
  std::shared_ptr<const SelectionBitmap> Insert(uint64_t epoch,
                                                uint32_t chunk,
                                                const AtomicPredicate& atom,
                                                SelectionBitmap bitmap);

  /// True once repeated allocation failures shut retention down; the
  /// executor then takes the scalar path. Lock-free, cheap enough for
  /// the per-execution check. relaxed: advisory one-way flag, no data
  /// is published through it.
  bool under_pressure() const {
    return retention_disabled_.load(std::memory_order_relaxed);
  }

  Stats stats() const;
  size_t byte_budget() const { return byte_budget_; }

 private:
  struct Key {
    uint64_t epoch;
    uint32_t chunk;
    AtomicPredicate atom;
    bool operator==(const Key& other) const {
      return epoch == other.epoch && chunk == other.chunk &&
             atom == other.atom;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = k.epoch * 0x9E3779B97F4A7C15ULL;
      h ^= (static_cast<uint64_t>(k.chunk) + 0x165667B19E3779F9ULL) *
           0x27D4EB2F165667C5ULL;
      h ^= static_cast<uint64_t>(k.atom.column) * 0xC2B2AE3D27D4EB4FULL;
      h = (h << 17) | (h >> 47);
      h ^= static_cast<uint64_t>(k.atom.kind);
      h ^= k.atom.value.Hash();
      if (k.atom.is_range()) {
        h = (h << 9) | (h >> 55);
        h ^= k.atom.high.Hash();
      }
      return static_cast<size_t>(h * 0xFF51AFD7ED558CCDULL);
    }
  };
  struct Entry {
    Key key;
    std::shared_ptr<const SelectionBitmap> bitmap;
    size_t bytes = 0;
  };
  using LruList = std::list<Entry>;

  /// Below this effective budget retention is pointless (a single
  /// bitmap word array usually exceeds it): shut retention down.
  static constexpr size_t kMinRetentionBytes = 4096;

  /// Drops LRU entries until the effective budget holds again.
  void EvictLocked() REQUIRES(mutex_);
  /// One pressure event: halve the effective budget and evict down to
  /// it; below the floor, shut retention down.
  void ShrinkOnPressureLocked() REQUIRES(mutex_);

  const size_t byte_budget_;
  const MetricHandles metrics_;
  // relaxed: one-way pressure flag read outside mutex_ (see
  // under_pressure()); all cache state is guarded by mutex_ below.
  std::atomic<bool> retention_disabled_{false};

  mutable Mutex mutex_;
  /// Front = most recently used.
  LruList lru_ GUARDED_BY(mutex_);
  std::unordered_map<Key, LruList::iterator, KeyHash> index_
      GUARDED_BY(mutex_);
  size_t effective_budget_ GUARDED_BY(mutex_) = 0;
  size_t resident_bytes_ GUARDED_BY(mutex_) = 0;
  int64_t hits_ GUARDED_BY(mutex_) = 0;
  int64_t misses_ GUARDED_BY(mutex_) = 0;
  int64_t evictions_ GUARDED_BY(mutex_) = 0;
  int64_t pressure_events_ GUARDED_BY(mutex_) = 0;
};

}  // namespace paleo

#endif  // PALEO_ENGINE_ATOM_CACHE_H_
