// ExecContext: the one-stop parameter block for Executor scans.
//
// Execute / ExecuteOnRows / CountMatching used to accumulate positional
// parameters (budget pointer, atom-cache pointer, and with chunked
// storage a thread pool and morsel knobs would have made it worse).
// All per-call execution state now travels in this struct, passed by
// const reference; the old positional overloads were deleted in PR 9
// and the paleo_lint exec-context rule bans the call shape tree-wide.
//
// An ExecContext is cheap to construct (a handful of pointers and
// flags) and carries NO ownership: every pointer is optional, borrowed,
// and must outlive the call. A default-constructed context means
// "sequential, unbudgeted, uncached" and is always valid.

#ifndef PALEO_ENGINE_EXEC_CONTEXT_H_
#define PALEO_ENGINE_EXEC_CONTEXT_H_

#include <cstddef>

namespace paleo {

class AtomSelectionCache;
class RunBudget;
class ThreadPool;

/// \brief Per-call execution parameters for Executor scans.
struct ExecContext {
  /// Cooperative budget polled every few thousand rows; nullptr (or an
  /// unlimited budget) never interrupts. On exhaustion the scan is
  /// abandoned with Status::Cancelled — a partially scanned result
  /// would be wrong.
  const RunBudget* budget = nullptr;

  /// Cross-candidate selection cache (internally synchronized, shared
  /// across threads), keyed by (table epoch, chunk, atom). nullptr
  /// disables reuse; results are identical either way.
  AtomSelectionCache* cache = nullptr;

  /// Thread pool for morsel-parallel full scans. nullptr keeps the scan
  /// on the calling thread. The pool is shared infrastructure (the
  /// validator's workers fan scan morsels into the same pool and join
  /// with WaitHelping, so nesting cannot deadlock).
  ThreadPool* pool = nullptr;

  /// Upper bound on morsel workers for one scan. Values <= 1, a null
  /// `pool`, or a single-chunk table keep the scan sequential. The
  /// result is byte-identical at any setting (rank-order merge of
  /// per-chunk partials).
  int scan_threads = 1;

  /// Vectorized selection kernels for full scans (default on). The
  /// executor-level SetVectorized(false) toggle overrides this to the
  /// scalar path regardless; results are identical either way.
  bool vectorized = true;

  /// Consult per-chunk zone maps to skip chunks no row of which can
  /// match the predicate (default on). Skipped chunks are excluded from
  /// rows_scanned and reported in ExecStats::chunks_skipped.
  bool zone_map_skipping = true;
};

}  // namespace paleo

#endif  // PALEO_ENGINE_EXEC_CONTEXT_H_
