// ExecContext: the one-stop parameter block for Executor scans.
//
// Execute / ExecuteOnRows / CountMatching used to accumulate positional
// parameters (budget pointer, atom-cache pointer, and with chunked
// storage a thread pool and morsel knobs would have made it worse).
// All per-call execution state now travels in this struct, passed by
// const reference; the old positional overloads were deleted in PR 9
// and the paleo_lint exec-context rule bans the call shape tree-wide.
//
// An ExecContext is cheap to construct (a handful of pointers and
// flags) and carries NO ownership: every pointer is optional, borrowed,
// and must outlive the call. A default-constructed context means
// "sequential, unbudgeted, uncached" and is always valid.

#ifndef PALEO_ENGINE_EXEC_CONTEXT_H_
#define PALEO_ENGINE_EXEC_CONTEXT_H_

#include <cstddef>

namespace paleo {

class AtomSelectionCache;
class RunBudget;
class ThreadPool;
class ThresholdMonitor;

/// \brief Per-call execution parameters for Executor scans.
struct ExecContext {
  /// Cooperative budget polled every few thousand rows; nullptr (or an
  /// unlimited budget) never interrupts. On exhaustion the scan is
  /// abandoned with Status::Cancelled — a partially scanned result
  /// would be wrong.
  const RunBudget* budget = nullptr;

  /// Cross-candidate selection cache (internally synchronized, shared
  /// across threads), keyed by (table epoch, chunk, atom). nullptr
  /// disables reuse; results are identical either way.
  AtomSelectionCache* cache = nullptr;

  /// Thread pool for morsel-parallel full scans. nullptr keeps the scan
  /// on the calling thread. The pool is shared infrastructure (the
  /// validator's workers fan scan morsels into the same pool and join
  /// with WaitHelping, so nesting cannot deadlock).
  ThreadPool* pool = nullptr;

  /// Upper bound on morsel workers for one scan. Values <= 1, a null
  /// `pool`, or a single-chunk table keep the scan sequential. The
  /// result is byte-identical at any setting (rank-order merge of
  /// per-chunk partials).
  int scan_threads = 1;

  /// Vectorized selection kernels for full scans (default on). The
  /// executor-level SetVectorized(false) toggle overrides this to the
  /// scalar path regardless; results are identical either way.
  bool vectorized = true;

  /// Consult per-chunk zone maps to skip chunks no row of which can
  /// match the predicate (default on). Skipped chunks are excluded from
  /// rows_scanned and reported in ExecStats::chunks_skipped.
  bool zone_map_skipping = true;

  /// Threshold-refutation targets for validation executions
  /// (engine/threshold_monitor.h). When set (and applicable to the
  /// query: grouped aggregate, matching k and order, multi-chunk full
  /// scan), the scan maintains per-group bounds between chunks and is
  /// aborted with Status::QueryRefuted the instant the result provably
  /// cannot equal the monitor's input list. nullptr (the default)
  /// always computes the full result. Soundness contract: a refuted
  /// execution's full result would NOT have been accepted, so callers
  /// treat refutation as an ordinary rejection.
  const ThresholdMonitor* threshold = nullptr;

  /// Share per-chunk work ACROSS candidate queries through the
  /// attached `cache`'s conjunction tiers: whole-conjunction selection
  /// bitmaps, and per-group partial aggregates keyed by
  /// (epoch, chunk, conjunction, expression) — an apriori parent's
  /// grouped partials computed once are served to every child
  /// candidate reusing the pair. Served chunks skip their scan
  /// entirely (their rows do not enter rows_scanned); the merged
  /// result stays byte-identical because cached partials are exactly
  /// the canonical per-chunk partials. Off by default: raw executor
  /// users keep strict per-execution accounting; the validator turns
  /// it on via PaleoOptions::share_aggregates.
  bool share_aggregates = false;
};

}  // namespace paleo

#endif  // PALEO_ENGINE_EXEC_CONTEXT_H_
