#include "engine/executor.h"

#include <algorithm>
#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <utility>

#include "common/fault_points.h"
#include "common/thread_pool.h"
#include "engine/atom_cache.h"
#include "engine/selection_bitmap.h"
#include "engine/selection_kernels.h"
#include "engine/threshold_monitor.h"
#include "index/dimension_index.h"
#include "storage/table_view.h"

namespace paleo {

namespace {

/// Validates the query's column references against the table's schema.
Status ValidateQuery(const Table& table, const TopKQuery& query) {
  const Schema& schema = table.schema();
  auto check_numeric = [&](int col) -> Status {
    if (col < 0 || col >= schema.num_fields()) {
      return Status::InvalidArgument("ranking column index " +
                                     std::to_string(col) + " out of range");
    }
    if (!IsNumeric(schema.field(col).type)) {
      return Status::TypeError("ranking column " + schema.field(col).name +
                               " is not numeric");
    }
    return Status::OK();
  };
  PALEO_RETURN_NOT_OK(check_numeric(query.expr.column_a()));
  if (!query.expr.is_single_column()) {
    PALEO_RETURN_NOT_OK(check_numeric(query.expr.column_b()));
  }
  for (const AtomicPredicate& a : query.predicate.atoms()) {
    if (a.column < 0 || a.column >= schema.num_fields()) {
      return Status::InvalidArgument("predicate column index " +
                                     std::to_string(a.column) +
                                     " out of range");
    }
  }
  if (query.k <= 0) {
    return Status::InvalidArgument("k must be positive, got " +
                                   std::to_string(query.k));
  }
  return Status::OK();
}

/// Candidate result row ordered by (score, tie-break name, row id).
struct HeapEntry {
  double score;
  uint32_t group;  // entity code, or row id for kNone
};

/// The BudgetGate stride of the scalar per-row scan loops: one clock
/// read every ~4096 rows.
constexpr uint32_t kScalarGateStride = 4096;
/// The vectorized kernels tick the gate once per kSelectionBatchRows
/// batch; stride 2 polls the clock every other batch, i.e. at the same
/// ~4096-row cadence as the scalar path.
constexpr uint32_t kVectorGateStride = 2;

/// What a chunk scan produces per chunk.
enum class ScanMode { kRows, kGroups, kCount };

/// One chunk's contribution to a full scan. Outcomes are merged in
/// ascending chunk index order, which IS the canonical result order
/// (see the header comment on chunk-canonical scans).
struct ChunkOutcome {
  /// Zone maps refuted the whole chunk; nothing else is populated.
  bool skipped = false;
  /// The scanner fully handled this chunk (skip or scan); outcomes of
  /// unclaimed / interrupted chunks stay false and must be ignored.
  bool completed = false;
  /// The chunk's grouped partials were served from the conjunction
  /// cache: touched/partials are populated but no row was scanned
  /// (visited stays 0 and the chunk is not a processed morsel).
  bool served = false;
  /// Rows visited by the consumption pass (rows_scanned accounting).
  size_t visited = 0;
  size_t match_count = 0;              // kCount
  std::vector<HeapEntry> row_entries;  // kRows: scores at absolute rows
  std::vector<uint32_t> touched;       // kGroups: codes, first-touch order
  std::vector<AggState> partials;      // kGroups: parallel to `touched`
  /// When the chunk's partials live in the conjunction cache (served
  /// from it, or donated to it on insert), the shared payload replaces
  /// the inline vectors — sharing a chunk is then pointer adoption,
  /// never a copy. Read through GroupTouched()/GroupPartials().
  std::shared_ptr<const CachedChunkPartials> shared_partials;

  const std::vector<uint32_t>& GroupTouched() const {
    return shared_partials != nullptr ? shared_partials->touched : touched;
  }
  const std::vector<AggState>& GroupPartials() const {
    return shared_partials != nullptr ? shared_partials->partials : partials;
  }
};

/// Per-worker reusable scan state: the dense group array is allocated
/// once per worker and wiped back to zero after every chunk (only the
/// touched slots are reset), so a scan's allocation cost is bounded by
/// its worker count, not its chunk count.
struct ChunkScratch {
  std::vector<AggState> groups;
};

/// \brief Chunk-granular scan engine shared by Execute and
/// CountMatching: everything invariant across the chunks of one full
/// scan. Const after construction; ProcessChunk is called concurrently
/// by morsel workers (per-worker gate/scratch/outcome, internally
/// synchronized cache).
class ChunkScanner {
 public:
  ChunkScanner(const Table& table, const TableView& view,
               const Predicate& predicate, const BoundPredicate& bound,
               ScanMode mode, const TopKQuery* query, bool vectorized,
               bool zone_skip, AtomSelectionCache* cache, bool share)
      : table_(table),
        view_(view),
        predicate_(predicate),
        bound_(bound),
        mode_(mode),
        query_(query),
        vectorized_(vectorized),
        zone_skip_(zone_skip),
        cache_(cache),
        share_(share && cache != nullptr),
        epoch_(view.epoch()),
        entity_codes_(table.entity_column().codes().data()),
        dict_size_(table.entity_column().dict()->size()) {}

  /// Scans chunk `chunk_index` into `out`. Returns false when the gate
  /// interrupted the scan; `out` is then partial and must be discarded
  /// (its `visited` count remains meaningful for accounting).
  bool ProcessChunk(size_t chunk_index, BudgetGate* gate,
                    ChunkScratch* scratch, ChunkOutcome* out) const {
    const Chunk& ch = view_.chunk(chunk_index);
    if (zone_skip_ && RefutedByZones(ch)) {
      out->skipped = true;
      out->completed = true;
      return true;
    }
    // Partials tier: a lattice neighbor already computed this chunk's
    // grouped partials for the same (conjunction, expression) pair —
    // adopt the canonical partials and skip the scan (visited stays 0;
    // the cached form IS what the rank-order merge consumes, so the
    // merged result is byte-identical with a scanned chunk).
    const bool share_partials = share_ && mode_ == ScanMode::kGroups;
    if (share_partials) {
      std::shared_ptr<const CachedChunkPartials> cached =
          cache_->LookupPartials(epoch_, static_cast<uint32_t>(chunk_index),
                                 predicate_.atoms(), query_->expr);
      if (cached != nullptr) {
        out->shared_partials = std::move(cached);
        out->served = true;
        out->completed = true;
        return true;
      }
    }
    const bool ok = vectorized_ ? ScanVectorized(chunk_index, ch, gate,
                                                 scratch, out)
                                : ScanScalar(ch, gate, scratch, out);
    out->completed = ok;
    if (ok && share_partials) {
      // Donate the vectors to the cache and adopt the retained payload
      // (ours, or a racing winner's identical one) — the insert never
      // copies the partials, and InsertPartials always returns the
      // payload even when retention is under pressure.
      out->shared_partials = cache_->InsertPartials(
          epoch_, static_cast<uint32_t>(chunk_index), predicate_.atoms(),
          query_->expr,
          CachedChunkPartials{std::move(out->touched),
                              std::move(out->partials)});
      out->touched.clear();
      out->partials.clear();
    }
    return ok;
  }

 private:
  bool RefutedByZones(const Chunk& ch) const {
    const std::vector<AtomicPredicate>& atoms = predicate_.atoms();
    const std::vector<BoundAtom>& bound_atoms = bound_.atoms();
    for (size_t i = 0; i < bound_atoms.size(); ++i) {
      const size_t col = static_cast<size_t>(atoms[i].column);
      if (AtomRefutedByZone(bound_atoms[i], ch.zones[col])) return true;
    }
    return false;
  }

  /// Resolves the conjunction's selection over the chunk via the
  /// per-atom kernels, consulting the (epoch, chunk, atom) cache first.
  /// Returns false when the budget interrupted (never caches partials).
  bool BuildChunkSelection(size_t chunk_index, const Chunk& ch,
                           BudgetGate* gate, SelectionBitmap* out) const {
    const size_t n = ch.num_rows();
    const std::vector<AtomicPredicate>& atoms = predicate_.atoms();
    const std::vector<BoundAtom>& bound_atoms = bound_.atoms();
    if (atoms.empty()) {
      *out = SelectionBitmap::AllSet(n);
      return true;
    }
    // Conjunction-bitmap tier: the fully ANDed selection of a 2+-atom
    // conjunction seen before (parent candidates and every sibling
    // reusing it) resolves in one probe instead of one per atom.
    // Single atoms stay on the atom tier — the two would be identical.
    const bool share_conj = share_ && atoms.size() >= 2;
    if (share_conj) {
      std::shared_ptr<const SelectionBitmap> bm = cache_->LookupConjunction(
          epoch_, static_cast<uint32_t>(chunk_index), atoms);
      if (bm != nullptr) {
        *out = *bm;
        return true;
      }
    }
    bool first = true;
    for (size_t i = 0; i < bound_atoms.size(); ++i) {
      std::shared_ptr<const SelectionBitmap> bm;
      if (cache_ != nullptr) {
        bm = cache_->Lookup(epoch_, static_cast<uint32_t>(chunk_index),
                            atoms[i]);
      }
      if (bm == nullptr) {
        SelectionBitmap fresh(n);
        if (!ComputeAtomSelectionRange(bound_atoms[i], ch.begin_row,
                                       ch.end_row, &fresh, gate)) {
          return false;
        }
        bm = cache_ != nullptr
                 ? cache_->Insert(epoch_, static_cast<uint32_t>(chunk_index),
                                  atoms[i], std::move(fresh))
                 : std::make_shared<const SelectionBitmap>(std::move(fresh));
      }
      if (first) {
        *out = *bm;
        first = false;
      } else {
        out->AndWith(*bm);
      }
    }
    if (share_conj) {
      // Retain the ANDed result for the next candidate on this
      // conjunction; first insert wins on races (identical contents
      // either way, so adopting the winner's copy is unnecessary).
      cache_->InsertConjunction(epoch_, static_cast<uint32_t>(chunk_index),
                                atoms, SelectionBitmap(*out));
    }
    return true;
  }

  void EnsureScratch(ChunkScratch* scratch) const {
    if (scratch->groups.size() < dict_size_) {
      scratch->groups.resize(dict_size_);
    }
  }

  /// Moves the dense per-chunk aggregates into the outcome's compact
  /// (touched, partials) form and zeroes the touched scratch slots, so
  /// the scratch is clean for the worker's next chunk. Runs even after
  /// an interrupt (the partial outcome is discarded by the caller, but
  /// the scratch must not leak state across chunks).
  void CompactGroups(ChunkScratch* scratch, ChunkOutcome* out) const {
    out->partials.reserve(out->touched.size());
    for (uint32_t code : out->touched) {
      out->partials.push_back(scratch->groups[code]);
      scratch->groups[code] = AggState{};
    }
  }

  bool ScanVectorized(size_t chunk_index, const Chunk& ch, BudgetGate* gate,
                      ChunkScratch* scratch, ChunkOutcome* out) const {
    SelectionBitmap sel;
    if (!BuildChunkSelection(chunk_index, ch, gate, &sel)) return false;
    switch (mode_) {
      case ScanMode::kCount:
        out->match_count = sel.CountSet();
        out->visited = ch.num_rows();
        return true;
      case ScanMode::kRows: {
        std::vector<RowId> matching;
        matching.reserve(sel.CountSet());
        size_t visited = 0;
        const bool done = CollectSelectedRows(sel, gate, &matching, &visited,
                                              ch.begin_row);
        out->visited += visited;
        if (!done) return false;
        out->row_entries.reserve(matching.size());
        for (RowId r : matching) {
          out->row_entries.push_back(HeapEntry{query_->expr.Eval(table_, r),
                                               r});
        }
        return true;
      }
      case ScanMode::kGroups: {
        EnsureScratch(scratch);
        size_t visited = 0;
        const bool done = FusedGroupAggregate(
            sel, table_, query_->expr, entity_codes_, gate, &scratch->groups,
            &out->touched, &visited, ch.begin_row);
        out->visited += visited;
        CompactGroups(scratch, out);
        return done;
      }
    }
    return true;
  }

  bool ScanScalar(const Chunk& ch, BudgetGate* gate, ChunkScratch* scratch,
                  ChunkOutcome* out) const {
    if (mode_ == ScanMode::kGroups) EnsureScratch(scratch);
    size_t visited = 0;
    bool completed = true;
    for (RowId r = ch.begin_row; r < ch.end_row; ++r) {
      if (gate->Tick() != TerminationReason::kCompleted) {
        completed = false;
        break;
      }
      ++visited;
      if (!bound_.Matches(r)) continue;
      switch (mode_) {
        case ScanMode::kCount:
          ++out->match_count;
          break;
        case ScanMode::kRows:
          out->row_entries.push_back(HeapEntry{query_->expr.Eval(table_, r),
                                               r});
          break;
        case ScanMode::kGroups: {
          const uint32_t code = entity_codes_[r];
          AggState& g = scratch->groups[code];
          if (g.count == 0) out->touched.push_back(code);
          g.Add(query_->expr.Eval(table_, r));
          break;
        }
      }
    }
    out->visited += visited;
    if (mode_ == ScanMode::kGroups) CompactGroups(scratch, out);
    return completed;
  }

  const Table& table_;
  const TableView& view_;
  const Predicate& predicate_;
  const BoundPredicate& bound_;
  const ScanMode mode_;
  const TopKQuery* query_;  // null for kCount
  const bool vectorized_;
  const bool zone_skip_;
  AtomSelectionCache* cache_;
  /// Conjunction-tier sharing (ExecContext::share_aggregates); forced
  /// off without a cache to keep the scan branches simple.
  const bool share_;
  const uint64_t epoch_;
  const uint32_t* entity_codes_;
  const size_t dict_size_;
};

/// Runs the scanner over every chunk — on the calling thread, or as
/// morsels claimed from a shared atomic counter by `workers` pool tasks
/// (the caller joins via WaitHelping, donating itself, so scans issued
/// from inside pool tasks cannot deadlock). Per-chunk outcomes land at
/// their chunk's index in `outcomes`; the merge happens in the caller,
/// strictly in ascending chunk order, which makes the result
/// independent of claim interleaving. Returns kCompleted, or the first
/// interrupting termination reason (the scan is then abandoned).
TerminationReason RunChunkScan(const ChunkScanner& scanner, size_t num_chunks,
                               const RunBudget* budget, uint32_t gate_stride,
                               ThreadPool* pool, int workers,
                               ThresholdState* threshold,
                               std::vector<ChunkOutcome>* outcomes) {
  // relaxed: next_chunk is a pure work-claim ticket and abort/reason
  // are advisory flags; chunk-outcome visibility is provided by the
  // future-fulfillment synchronization below, not by these atomics.
  std::atomic<size_t> next_chunk{0};
  std::atomic<bool> abort{false};
  std::atomic<TerminationReason> reason{TerminationReason::kCompleted};
  auto worker = [&]() {
    BudgetGate gate(budget, gate_stride);
    ChunkScratch scratch;
    while (!abort.load(std::memory_order_relaxed)) {
      // Threshold refutation stops claiming but is not an interrupt:
      // the caller distinguishes the refuted outcome from the merged
      // outcomes (completed chunks remain valid partials).
      if (threshold != nullptr && threshold->refuted()) break;
      const size_t i = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (i >= num_chunks) break;
      if (!scanner.ProcessChunk(i, &gate, &scratch, &(*outcomes)[i])) {
        // First interrupt wins; racing stores agree on "not completed"
        // and the exact reason is advisory.
        reason.store(gate.reason(), std::memory_order_relaxed);
        abort.store(true, std::memory_order_relaxed);
        break;
      }
      if (threshold != nullptr) {
        const ChunkOutcome& o = (*outcomes)[i];
        if (o.skipped) {
          threshold->NoteChunkSkipped(i);
        } else {
          threshold->NoteChunk(i, o.GroupTouched(), o.GroupPartials());
        }
      }
    }
  };
  if (pool != nullptr && workers > 1) {
    std::vector<std::future<void>> futures;
    futures.reserve(static_cast<size_t>(workers));
    for (int t = 0; t < workers; ++t) {
      futures.push_back(pool->Submit(worker));
    }
    // Future fulfillment synchronizes-with WaitHelping's wait, so the
    // outcomes written by pool workers are visible to the merge below.
    for (std::future<void>& f : futures) pool->WaitHelping(f);
  } else {
    worker();
  }
  return reason.load(std::memory_order_relaxed);
}

}  // namespace

StatusOr<TopKList> Executor::Execute(const Table& table,
                                     const TopKQuery& query,
                                     const ExecContext& ctx) {
  return ExecuteImpl(table, nullptr, query, ctx);
}

StatusOr<TopKList> Executor::ExecuteOnRows(const Table& table,
                                           const std::vector<RowId>& rows,
                                           const TopKQuery& query,
                                           const ExecContext& ctx) {
  return ExecuteImpl(table, &rows, query, ctx);
}

size_t Executor::CountMatching(const Table& table, const Predicate& predicate,
                               const ExecContext& ctx) {
  if (dimension_index_ != nullptr && indexed_table_ == &table &&
      !predicate.IsTrue() && dimension_index_->Covers(predicate)) {
    return dimension_index_->Match(predicate).size();
  }
  BoundPredicate bound(predicate, table);
  const bool use_vectorized = vectorized_ && ctx.vectorized;
  TableView view(table);
  const size_t num_chunks = view.num_chunks();
  ChunkScanner scanner(table, view, predicate, bound, ScanMode::kCount,
                       nullptr, use_vectorized, ctx.zone_map_skipping,
                       ctx.cache, ctx.share_aggregates);
  int workers = 1;
  if (ctx.pool != nullptr && ctx.scan_threads > 1 && num_chunks > 1) {
    workers = static_cast<int>(
        std::min<size_t>(static_cast<size_t>(ctx.scan_threads), num_chunks));
  }
  std::vector<ChunkOutcome> outcomes(num_chunks);
  // A count cannot be partially returned, so CountMatching ignores
  // ctx.budget (as the positional API always did): the gate never trips.
  RunChunkScan(scanner, num_chunks, nullptr,
               use_vectorized ? kVectorGateStride : kScalarGateStride,
               workers > 1 ? ctx.pool : nullptr, workers, nullptr, &outcomes);
  size_t count = 0;
  int64_t skipped = 0;
  int64_t morsels = 0;
  for (const ChunkOutcome& o : outcomes) {
    count += o.match_count;
    if (o.skipped) {
      ++skipped;
    } else if (o.completed) {
      ++morsels;
    }
  }
  // relaxed: Stats counters are pure tallies (see Stats doc).
  stats_.chunks_skipped.fetch_add(skipped, std::memory_order_relaxed);
  stats_.morsels.fetch_add(morsels, std::memory_order_relaxed);
  obs::Inc(metrics_.chunks_skipped, skipped);
  obs::Inc(metrics_.morsels, morsels);
  obs::Observe(metrics_.scan_parallelism, static_cast<double>(workers));
  return count;
}

StatusOr<TopKList> Executor::ExecuteImpl(const Table& table,
                                         const std::vector<RowId>* rows,
                                         const TopKQuery& query,
                                         const ExecContext& ctx) {
  PALEO_RETURN_NOT_OK(ValidateQuery(table, query));
  // Chaos hook: an injected Cancelled simulates a mid-scan budget
  // interruption (wind-down, not failure); other codes simulate a hard
  // execution error. Delays make scans slow enough to wedge.
  FaultResult scan_fault = PALEO_FAULT_POINT("executor.execute.scan");
  if (scan_fault.error()) return scan_fault.status;
  // relaxed: Stats counters are pure tallies (see Stats doc).
  stats_.queries_executed.fetch_add(1, std::memory_order_relaxed);
  obs::Inc(metrics_.queries_executed);

  BoundPredicate bound(query.predicate, table);
  const Column& entities = table.entity_column();
  const StringDictionary& dict = *entities.dict();
  const bool desc = query.order == SortOrder::kDesc;

  // Index-assisted path: a fully covered conjunction over the indexed
  // base table resolves to its matching rows via posting intersection,
  // skipping the scan and the per-row predicate checks.
  std::vector<RowId> index_rows;
  bool from_index = false;
  if (rows == nullptr && dimension_index_ != nullptr &&
      indexed_table_ == &table && !query.predicate.IsTrue() &&
      dimension_index_->Covers(query.predicate)) {
    index_rows = dimension_index_->Match(query.predicate);
    rows = &index_rows;
    from_index = true;
    // relaxed: Stats counters are pure tallies (see Stats doc).
    stats_.index_assisted.fetch_add(1, std::memory_order_relaxed);
    obs::Inc(metrics_.index_assisted);
  }

  // Full scans take the vectorized chunk path: per-atom per-chunk
  // selection bitmaps (cache-shared across candidates), word-wise AND,
  // and bitmap-driven consumption. Row-restricted executions (R' tuple
  // sets, index postings) stay scalar — their row lists are already the
  // selection.
  //
  // Degradation ladder: when the attached cache is under memory
  // pressure (its budget shrank to zero after allocation failures) or
  // an allocation failure is injected here, the execution falls back
  // to the scalar row-at-a-time path — byte-identical results, fewer
  // bitmap allocations — instead of failing the run.
  bool use_vectorized = ctx.vectorized && vectorized_ && rows == nullptr;
  if (use_vectorized &&
      ((ctx.cache != nullptr && ctx.cache->under_pressure()) ||
       PALEO_FAULT_POINT("executor.selection.alloc").alloc_failure())) {
    use_vectorized = false;
    // relaxed: Stats counters are pure tallies (see Stats doc).
    stats_.scalar_fallbacks.fetch_add(1, std::memory_order_relaxed);
  }

  auto account_rows = [&](size_t visited) {
    // relaxed: Stats counters are pure tallies (see Stats doc).
    stats_.rows_scanned.fetch_add(static_cast<int64_t>(visited),
                                  std::memory_order_relaxed);
    obs::Inc(metrics_.rows_scanned, static_cast<int64_t>(visited));
  };
  auto interrupted = [](TerminationReason reason) -> Status {
    return Status::Cancelled(std::string("query execution interrupted (") +
                             TerminationReasonToString(reason) + ")");
  };

  // Orders a before b when a ranks better; ties by entity name
  // ascending, then by group id for full determinism.
  auto better = [&](double sa, const std::string& na, uint32_t ga, double sb,
                    const std::string& nb, uint32_t gb) {
    if (sa != sb) return desc ? sa > sb : sa < sb;
    if (na != nb) return na < nb;
    return ga < gb;
  };

  // Phase 1 — scan. Produces either ranked row entries (kNone) or the
  // merged dense group aggregates, through one of two scan shapes:
  //
  //  * Row-restricted (tuple sets, index postings): a scalar pass over
  //    the row list in its own order, polled every few thousand rows.
  //  * Full scan: chunk-canonical. Each chunk yields a partial outcome
  //    (possibly skipped via zone maps); partials merge in ascending
  //    chunk order, so scalar / vectorized / morsel-parallel runs are
  //    byte-identical by construction.
  std::vector<HeapEntry> results;        // kNone entries
  std::vector<AggState> groups;          // merged dense group states
  std::vector<uint32_t> touched;         // codes in canonical order

  if (rows != nullptr) {
    BudgetGate gate(ctx.budget, kScalarGateStride);
    size_t visited = 0;
    bool completed = true;
    const bool grouped = query.agg != AggFn::kNone;
    if (grouped) {
      groups.resize(dict.size());
      // At most one slot per distinct entity is ever touched; reserving
      // at the dictionary size caps reallocation churn at one upfront
      // allocation (dictionaries are small relative to row counts).
      touched.reserve(dict.size());
    }
    for (RowId r : *rows) {
      if (gate.Tick() != TerminationReason::kCompleted) {
        completed = false;
        break;
      }
      ++visited;
      // Postings already satisfy the whole conjunction when the rows
      // came from the index.
      if (!from_index && !bound.Matches(r)) continue;
      if (grouped) {
        const uint32_t code = entities.CodeAt(r);
        AggState& g = groups[code];
        if (g.count == 0) touched.push_back(code);
        g.Add(query.expr.Eval(table, r));
      } else {
        results.push_back(HeapEntry{query.expr.Eval(table, r), r});
      }
    }
    account_rows(visited);
    if (!completed) return interrupted(gate.reason());
  } else {
    TableView view(table);
    const size_t num_chunks = view.num_chunks();
    const ScanMode mode =
        query.agg == AggFn::kNone ? ScanMode::kRows : ScanMode::kGroups;
    ChunkScanner scanner(table, view, query.predicate, bound, mode, &query,
                         use_vectorized, ctx.zone_map_skipping, ctx.cache,
                         ctx.share_aggregates);
    int workers = 1;
    if (ctx.pool != nullptr && ctx.scan_threads > 1 && num_chunks > 1) {
      workers = static_cast<int>(
          std::min<size_t>(static_cast<size_t>(ctx.scan_threads), num_chunks));
    }
    // Threshold pruning engages only on grouped multi-chunk full scans
    // whose shape matches the monitor's targets: single-chunk tables
    // have no "remaining chunks" to bound against, so the check could
    // never fire before the scan finished anyway.
    std::unique_ptr<ThresholdState> tstate;
    if (ctx.threshold != nullptr && mode == ScanMode::kGroups &&
        num_chunks > 1 && ctx.threshold->AppliesTo(query)) {
      tstate = std::make_unique<ThresholdState>(ctx.threshold, table, view,
                                                query);
    }
    std::vector<ChunkOutcome> outcomes(num_chunks);
    const TerminationReason scan_reason = RunChunkScan(
        scanner, num_chunks, ctx.budget,
        use_vectorized ? kVectorGateStride : kScalarGateStride,
        workers > 1 ? ctx.pool : nullptr, workers, tstate.get(), &outcomes);

    // Accounting first (interrupted executions still report the rows
    // they visited, as the row-restricted path does).
    size_t visited = 0;
    int64_t skipped = 0;
    int64_t morsels = 0;
    for (const ChunkOutcome& o : outcomes) {
      visited += o.visited;
      if (o.skipped) {
        ++skipped;
      } else if (o.completed && !o.served) {
        // Cache-served chunks were neither skipped nor scanned; the
        // conjunction-cache hit counters account for them.
        ++morsels;
      }
    }
    account_rows(visited);
    // relaxed: Stats counters are pure tallies (see Stats doc).
    stats_.chunks_skipped.fetch_add(skipped, std::memory_order_relaxed);
    stats_.morsels.fetch_add(morsels, std::memory_order_relaxed);
    obs::Inc(metrics_.chunks_skipped, skipped);
    obs::Inc(metrics_.morsels, morsels);
    obs::Observe(metrics_.scan_parallelism, static_cast<double>(workers));
    if (scan_reason != TerminationReason::kCompleted) {
      // A budget interrupt outranks refutation: the wind-down contract
      // (Status::Cancelled, identical to the unpruned path) must not
      // depend on whether the bounds happened to trip first.
      return interrupted(scan_reason);
    }
    if (tstate != nullptr && tstate->refuted()) {
      // Refutation is only actionable when some chunk was actually left
      // unscanned: when every chunk completed anyway (the flag tripped
      // on the last chunk, or racing workers drained the table first),
      // fall through and return the full canonical result — refutation
      // is sound, so the caller's comparison rejects it identically,
      // and the sequential/parallel outcomes stay consistent.
      size_t saved = 0;
      for (size_t i = 0; i < num_chunks; ++i) {
        const ChunkOutcome& o = outcomes[i];
        if (o.completed) continue;
        saved += view.chunk(i).num_rows() - o.visited;
      }
      if (saved > 0) {
        // relaxed: Stats counters are pure tallies (see Stats doc).
        stats_.executions_aborted_early.fetch_add(1,
                                                  std::memory_order_relaxed);
        stats_.rows_saved.fetch_add(static_cast<int64_t>(saved),
                                    std::memory_order_relaxed);
        obs::Inc(metrics_.rows_saved, static_cast<int64_t>(saved));
        return Status::QueryRefuted(
            "threshold bounds prove the candidate cannot reproduce the "
            "target list");
      }
    }

    // Rank-order merge: strictly ascending chunk index. For kRows this
    // concatenates per-chunk entries back into global ascending row
    // order; for kGroups the first partial touching a code is COPIED
    // (not folded into a zero state) and later partials merge in chunk
    // order — single-chunk tables therefore reproduce the historical
    // single-pass bit pattern exactly.
    if (mode == ScanMode::kRows) {
      size_t total = 0;
      for (const ChunkOutcome& o : outcomes) total += o.row_entries.size();
      results.reserve(total);
      for (const ChunkOutcome& o : outcomes) {
        results.insert(results.end(), o.row_entries.begin(),
                       o.row_entries.end());
      }
    } else {
      groups.resize(dict.size());
      touched.reserve(dict.size());
      for (const ChunkOutcome& o : outcomes) {
        if (o.skipped || !o.completed) continue;
        const std::vector<uint32_t>& o_touched = o.GroupTouched();
        const std::vector<AggState>& o_partials = o.GroupPartials();
        for (size_t i = 0; i < o_touched.size(); ++i) {
          const uint32_t code = o_touched[i];
          AggState& g = groups[code];
          if (g.count == 0) {
            touched.push_back(code);
            g = o_partials[i];
          } else {
            g.Merge(o_partials[i]);
          }
        }
      }
    }
  }

  // Phase 2 — rank and truncate (shared by every scan shape).
  if (query.agg == AggFn::kNone) {
    auto name_of = [&](uint32_t row) -> const std::string& {
      return dict.Get(entities.CodeAt(row));
    };
    auto row_cmp = [&](const HeapEntry& a, const HeapEntry& b) {
      return better(a.score, name_of(a.group), a.group, b.score,
                    name_of(b.group), b.group);
    };
    // Only the best k survive: partial_sort does O(n log k) work where
    // a full sort did O(n log n). The comparator is a strict total
    // order, so the first k entries are identical to sort-then-truncate.
    if (results.size() > static_cast<size_t>(query.k)) {
      std::partial_sort(results.begin(),
                        results.begin() + static_cast<ptrdiff_t>(query.k),
                        results.end(), row_cmp);
      results.resize(static_cast<size_t>(query.k));
    } else {
      std::sort(results.begin(), results.end(), row_cmp);
    }
    TopKList out;
    for (const HeapEntry& e : results) {
      out.Append(name_of(e.group), e.score);
    }
    return out;
  }

  results.reserve(touched.size());
  for (uint32_t code : touched) {
    results.push_back(HeapEntry{groups[code].Finish(query.agg), code});
  }
  auto cmp = [&](const HeapEntry& a, const HeapEntry& b) {
    return better(a.score, dict.Get(a.group), a.group, b.score,
                  dict.Get(b.group), b.group);
  };
  if (results.size() > static_cast<size_t>(query.k)) {
    std::partial_sort(results.begin(),
                      results.begin() + static_cast<ptrdiff_t>(query.k),
                      results.end(), cmp);
    results.resize(static_cast<size_t>(query.k));
  } else {
    std::sort(results.begin(), results.end(), cmp);
  }
  TopKList out;
  for (const HeapEntry& e : results) {
    out.Append(dict.Get(e.group), e.score);
  }
  return out;
}

}  // namespace paleo
