#include "engine/executor.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "common/fault_points.h"
#include "engine/atom_cache.h"
#include "engine/selection_bitmap.h"
#include "engine/selection_kernels.h"
#include "index/dimension_index.h"

namespace paleo {

namespace {

/// Validates the query's column references against the table's schema.
Status ValidateQuery(const Table& table, const TopKQuery& query) {
  const Schema& schema = table.schema();
  auto check_numeric = [&](int col) -> Status {
    if (col < 0 || col >= schema.num_fields()) {
      return Status::InvalidArgument("ranking column index " +
                                     std::to_string(col) + " out of range");
    }
    if (!IsNumeric(schema.field(col).type)) {
      return Status::TypeError("ranking column " + schema.field(col).name +
                               " is not numeric");
    }
    return Status::OK();
  };
  PALEO_RETURN_NOT_OK(check_numeric(query.expr.column_a()));
  if (!query.expr.is_single_column()) {
    PALEO_RETURN_NOT_OK(check_numeric(query.expr.column_b()));
  }
  for (const AtomicPredicate& a : query.predicate.atoms()) {
    if (a.column < 0 || a.column >= schema.num_fields()) {
      return Status::InvalidArgument("predicate column index " +
                                     std::to_string(a.column) +
                                     " out of range");
    }
  }
  if (query.k <= 0) {
    return Status::InvalidArgument("k must be positive, got " +
                                   std::to_string(query.k));
  }
  return Status::OK();
}

/// Candidate result row ordered by (score, tie-break name, row id).
struct HeapEntry {
  double score;
  uint32_t group;  // entity code, or row id for kNone
};

/// The BudgetGate stride of the scalar per-row scan loops: one clock
/// read every ~4096 rows.
constexpr uint32_t kScalarGateStride = 4096;
/// The vectorized kernels tick the gate once per kSelectionBatchRows
/// batch; stride 2 polls the clock every other batch, i.e. at the same
/// ~4096-row cadence as the scalar path.
constexpr uint32_t kVectorGateStride = 2;

}  // namespace

StatusOr<TopKList> Executor::Execute(const Table& table,
                                     const TopKQuery& query,
                                     const RunBudget* budget,
                                     AtomSelectionCache* cache) {
  return ExecuteImpl(table, nullptr, query, budget, cache);
}

StatusOr<TopKList> Executor::ExecuteOnRows(const Table& table,
                                           const std::vector<RowId>& rows,
                                           const TopKQuery& query,
                                           const RunBudget* budget) {
  return ExecuteImpl(table, &rows, query, budget, nullptr);
}

bool Executor::BuildSelection(const Table& table, const Predicate& predicate,
                              const BoundPredicate& bound,
                              AtomSelectionCache* cache, BudgetGate* gate,
                              SelectionBitmap* out) {
  const size_t n = table.num_rows();
  const std::vector<AtomicPredicate>& atoms = predicate.atoms();
  const std::vector<BoundAtom>& bound_atoms = bound.atoms();
  if (atoms.empty()) {
    *out = SelectionBitmap::AllSet(n);
    return true;
  }
  bool first = true;
  for (size_t i = 0; i < bound_atoms.size(); ++i) {
    std::shared_ptr<const SelectionBitmap> bm;
    if (cache != nullptr) bm = cache->Lookup(table.epoch(), atoms[i]);
    if (bm == nullptr) {
      SelectionBitmap fresh(n);
      if (!ComputeAtomSelection(bound_atoms[i], n, &fresh, gate)) {
        return false;  // interrupted; never cache a partial bitmap
      }
      bm = cache != nullptr
               ? cache->Insert(table.epoch(), atoms[i], std::move(fresh))
               : std::make_shared<const SelectionBitmap>(std::move(fresh));
    }
    if (first) {
      *out = *bm;
      first = false;
    } else {
      out->AndWith(*bm);
    }
  }
  return true;
}

size_t Executor::CountMatching(const Table& table,
                               const Predicate& predicate,
                               AtomSelectionCache* cache) {
  if (dimension_index_ != nullptr && indexed_table_ == &table &&
      !predicate.IsTrue() && dimension_index_->Covers(predicate)) {
    return dimension_index_->Match(predicate).size();
  }
  BoundPredicate bound(predicate, table);
  if (vectorized_) {
    BudgetGate gate(nullptr);
    SelectionBitmap sel;
    BuildSelection(table, predicate, bound, cache, &gate, &sel);
    return sel.CountSet();
  }
  size_t n = 0;
  for (size_t row = 0; row < table.num_rows(); ++row) {
    if (bound.Matches(static_cast<RowId>(row))) ++n;
  }
  return n;
}

StatusOr<TopKList> Executor::ExecuteImpl(const Table& table,
                                         const std::vector<RowId>* rows,
                                         const TopKQuery& query,
                                         const RunBudget* budget,
                                         AtomSelectionCache* cache) {
  PALEO_RETURN_NOT_OK(ValidateQuery(table, query));
  // Chaos hook: an injected Cancelled simulates a mid-scan budget
  // interruption (wind-down, not failure); other codes simulate a hard
  // execution error. Delays make scans slow enough to wedge.
  FaultResult scan_fault = PALEO_FAULT_POINT("executor.execute.scan");
  if (scan_fault.error()) return scan_fault.status;
  stats_.queries_executed.fetch_add(1, std::memory_order_relaxed);
  obs::Inc(metrics_.queries_executed);

  BoundPredicate bound(query.predicate, table);
  const Column& entities = table.entity_column();
  const StringDictionary& dict = *entities.dict();
  const bool desc = query.order == SortOrder::kDesc;

  // Index-assisted path: a fully covered conjunction over the indexed
  // base table resolves to its matching rows via posting intersection,
  // skipping the scan and the per-row predicate checks.
  std::vector<RowId> index_rows;
  bool from_index = false;
  if (rows == nullptr && dimension_index_ != nullptr &&
      indexed_table_ == &table && !query.predicate.IsTrue() &&
      dimension_index_->Covers(query.predicate)) {
    index_rows = dimension_index_->Match(query.predicate);
    rows = &index_rows;
    from_index = true;
    stats_.index_assisted.fetch_add(1, std::memory_order_relaxed);
    obs::Inc(metrics_.index_assisted);
  }

  // Full scans take the vectorized path: per-atom selection bitmaps
  // (cache-shared across candidates), word-wise AND, and bitmap-driven
  // consumption. Row-restricted executions (R' tuple sets, index
  // postings) stay scalar — their row lists are already the selection.
  //
  // Degradation ladder: when the attached cache is under memory
  // pressure (its budget shrank to zero after allocation failures) or
  // an allocation failure is injected here, the execution falls back
  // to the scalar row-at-a-time path — byte-identical results, no
  // bitmap allocations — instead of failing the run.
  bool use_vectorized = vectorized_ && rows == nullptr;
  if (use_vectorized &&
      ((cache != nullptr && cache->under_pressure()) ||
       PALEO_FAULT_POINT("executor.selection.alloc").alloc_failure())) {
    use_vectorized = false;
    stats_.scalar_fallbacks.fetch_add(1, std::memory_order_relaxed);
  }

  // The scan / group-by loop polls the budget every few thousand rows
  // (one branch per row otherwise), so even a full scan of a large
  // relation notices a deadline or cancellation within microseconds.
  // Returns false when interrupted; the partial aggregation state is
  // then discarded.
  BudgetGate gate(budget,
                  use_vectorized ? kVectorGateStride : kScalarGateStride);
  auto account_rows = [&](size_t visited) {
    stats_.rows_scanned.fetch_add(static_cast<int64_t>(visited),
                                  std::memory_order_relaxed);
    obs::Inc(metrics_.rows_scanned, static_cast<int64_t>(visited));
  };
  auto visit_rows = [&](auto&& fn) -> bool {
    size_t visited = 0;
    bool completed = true;
    if (rows != nullptr) {
      for (RowId r : *rows) {
        if (gate.Tick() != TerminationReason::kCompleted) {
          completed = false;
          break;
        }
        ++visited;
        // Postings already satisfy the whole conjunction when the rows
        // came from the index.
        fn(r, from_index || bound.Matches(r));
      }
    } else {
      size_t n = table.num_rows();
      for (size_t r = 0; r < n; ++r) {
        if (gate.Tick() != TerminationReason::kCompleted) {
          completed = false;
          break;
        }
        ++visited;
        fn(static_cast<RowId>(r), bound.Matches(static_cast<RowId>(r)));
      }
    }
    account_rows(visited);
    return completed;
  };
  auto interrupted = [&]() -> Status {
    return Status::Cancelled(
        std::string("query execution interrupted (") +
        TerminationReasonToString(gate.reason()) + ")");
  };

  // The conjunction's selection bitmap (vectorized path only).
  SelectionBitmap selection;
  if (use_vectorized &&
      !BuildSelection(table, query.predicate, bound, cache, &gate,
                      &selection)) {
    return interrupted();
  }

  // Orders a before b when a ranks better; ties by entity name
  // ascending, then by group id for full determinism.
  auto better = [&](double sa, const std::string& na, uint32_t ga, double sb,
                    const std::string& nb, uint32_t gb) {
    if (sa != sb) return desc ? sa > sb : sa < sb;
    if (na != nb) return na < nb;
    return ga < gb;
  };

  std::vector<HeapEntry> results;

  if (query.agg == AggFn::kNone) {
    // No GROUP BY: rank individual rows.
    if (use_vectorized) {
      std::vector<RowId> matching;
      matching.reserve(selection.CountSet());
      size_t visited = 0;
      const bool completed =
          CollectSelectedRows(selection, &gate, &matching, &visited);
      account_rows(visited);
      if (!completed) return interrupted();
      results.reserve(matching.size());
      for (RowId r : matching) {
        results.push_back(HeapEntry{query.expr.Eval(table, r), r});
      }
    } else if (!visit_rows([&](RowId r, bool matches) {
                 if (!matches) return;
                 results.push_back(HeapEntry{query.expr.Eval(table, r), r});
               })) {
      return interrupted();
    }
    auto name_of = [&](uint32_t row) -> const std::string& {
      return dict.Get(entities.CodeAt(row));
    };
    auto row_cmp = [&](const HeapEntry& a, const HeapEntry& b) {
      return better(a.score, name_of(a.group), a.group, b.score,
                    name_of(b.group), b.group);
    };
    // Only the best k survive: partial_sort does O(n log k) work where
    // a full sort did O(n log n). The comparator is a strict total
    // order, so the first k entries are identical to sort-then-truncate.
    if (results.size() > static_cast<size_t>(query.k)) {
      std::partial_sort(results.begin(),
                        results.begin() + static_cast<ptrdiff_t>(query.k),
                        results.end(), row_cmp);
      results.resize(static_cast<size_t>(query.k));
    } else {
      std::sort(results.begin(), results.end(), row_cmp);
    }
    TopKList out;
    for (const HeapEntry& e : results) {
      out.Append(name_of(e.group), e.score);
    }
    return out;
  }

  // Grouped aggregation keyed by dense entity code.
  std::vector<AggState> groups(dict.size());
  std::vector<uint32_t> touched;
  // At most one slot per distinct entity is ever touched; reserving at
  // the dictionary size caps the vector's reallocation churn at one
  // upfront allocation (dictionaries are small relative to row counts).
  touched.reserve(dict.size());
  if (use_vectorized) {
    size_t visited = 0;
    const bool completed = FusedGroupAggregate(
        selection, table, query.expr, entities.codes().data(), &gate,
        &groups, &touched, &visited);
    account_rows(visited);
    if (!completed) return interrupted();
  } else if (!visit_rows([&](RowId r, bool matches) {
               if (!matches) return;
               uint32_t code = entities.CodeAt(r);
               AggState& g = groups[code];
               if (g.count == 0) touched.push_back(code);
               g.Add(query.expr.Eval(table, r));
             })) {
    return interrupted();
  }

  results.reserve(touched.size());
  for (uint32_t code : touched) {
    results.push_back(HeapEntry{groups[code].Finish(query.agg), code});
  }
  auto cmp = [&](const HeapEntry& a, const HeapEntry& b) {
    return better(a.score, dict.Get(a.group), a.group, b.score,
                  dict.Get(b.group), b.group);
  };
  if (results.size() > static_cast<size_t>(query.k)) {
    std::partial_sort(results.begin(),
                      results.begin() + static_cast<ptrdiff_t>(query.k),
                      results.end(), cmp);
    results.resize(static_cast<size_t>(query.k));
  } else {
    std::sort(results.begin(), results.end(), cmp);
  }
  TopKList out;
  for (const HeapEntry& e : results) {
    out.Append(dict.Get(e.group), e.score);
  }
  return out;
}

}  // namespace paleo
