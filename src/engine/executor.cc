#include "engine/executor.h"

#include <algorithm>
#include <string>

#include "index/dimension_index.h"

namespace paleo {

namespace {

/// Validates the query's column references against the table's schema.
Status ValidateQuery(const Table& table, const TopKQuery& query) {
  const Schema& schema = table.schema();
  auto check_numeric = [&](int col) -> Status {
    if (col < 0 || col >= schema.num_fields()) {
      return Status::InvalidArgument("ranking column index " +
                                     std::to_string(col) + " out of range");
    }
    if (!IsNumeric(schema.field(col).type)) {
      return Status::TypeError("ranking column " + schema.field(col).name +
                               " is not numeric");
    }
    return Status::OK();
  };
  PALEO_RETURN_NOT_OK(check_numeric(query.expr.column_a()));
  if (!query.expr.is_single_column()) {
    PALEO_RETURN_NOT_OK(check_numeric(query.expr.column_b()));
  }
  for (const AtomicPredicate& a : query.predicate.atoms()) {
    if (a.column < 0 || a.column >= schema.num_fields()) {
      return Status::InvalidArgument("predicate column index " +
                                     std::to_string(a.column) +
                                     " out of range");
    }
  }
  if (query.k <= 0) {
    return Status::InvalidArgument("k must be positive, got " +
                                   std::to_string(query.k));
  }
  return Status::OK();
}

/// Candidate result row ordered by (score, tie-break name, row id).
struct HeapEntry {
  double score;
  uint32_t group;  // entity code, or row id for kNone
};

}  // namespace

StatusOr<TopKList> Executor::Execute(const Table& table,
                                     const TopKQuery& query,
                                     const RunBudget* budget) {
  return ExecuteImpl(table, nullptr, query, budget);
}

StatusOr<TopKList> Executor::ExecuteOnRows(const Table& table,
                                           const std::vector<RowId>& rows,
                                           const TopKQuery& query,
                                           const RunBudget* budget) {
  return ExecuteImpl(table, &rows, query, budget);
}

size_t Executor::CountMatching(const Table& table,
                               const Predicate& predicate) {
  if (dimension_index_ != nullptr && indexed_table_ == &table &&
      !predicate.IsTrue() && dimension_index_->Covers(predicate)) {
    return dimension_index_->Match(predicate).size();
  }
  BoundPredicate bound(predicate, table);
  size_t n = 0;
  for (size_t row = 0; row < table.num_rows(); ++row) {
    if (bound.Matches(static_cast<RowId>(row))) ++n;
  }
  return n;
}

StatusOr<TopKList> Executor::ExecuteImpl(const Table& table,
                                         const std::vector<RowId>* rows,
                                         const TopKQuery& query,
                                         const RunBudget* budget) {
  PALEO_RETURN_NOT_OK(ValidateQuery(table, query));
  stats_.queries_executed.fetch_add(1, std::memory_order_relaxed);
  obs::Inc(metrics_.queries_executed);

  BoundPredicate bound(query.predicate, table);
  const Column& entities = table.entity_column();
  const StringDictionary& dict = *entities.dict();
  const bool desc = query.order == SortOrder::kDesc;

  // Index-assisted path: a fully covered conjunction over the indexed
  // base table resolves to its matching rows via posting intersection,
  // skipping the scan and the per-row predicate checks.
  std::vector<RowId> index_rows;
  bool from_index = false;
  if (rows == nullptr && dimension_index_ != nullptr &&
      indexed_table_ == &table && !query.predicate.IsTrue() &&
      dimension_index_->Covers(query.predicate)) {
    index_rows = dimension_index_->Match(query.predicate);
    rows = &index_rows;
    from_index = true;
    stats_.index_assisted.fetch_add(1, std::memory_order_relaxed);
    obs::Inc(metrics_.index_assisted);
  }

  // The scan / group-by loop polls the budget every few thousand rows
  // (one branch per row otherwise), so even a full scan of a large
  // relation notices a deadline or cancellation within microseconds.
  // Returns false when interrupted; the partial aggregation state is
  // then discarded.
  BudgetGate gate(budget, /*stride=*/4096);
  auto visit_rows = [&](auto&& fn) -> bool {
    size_t visited = 0;
    bool completed = true;
    if (rows != nullptr) {
      for (RowId r : *rows) {
        if (gate.Tick() != TerminationReason::kCompleted) {
          completed = false;
          break;
        }
        ++visited;
        // Postings already satisfy the whole conjunction when the rows
        // came from the index.
        fn(r, from_index || bound.Matches(r));
      }
    } else {
      size_t n = table.num_rows();
      for (size_t r = 0; r < n; ++r) {
        if (gate.Tick() != TerminationReason::kCompleted) {
          completed = false;
          break;
        }
        ++visited;
        fn(static_cast<RowId>(r), bound.Matches(static_cast<RowId>(r)));
      }
    }
    stats_.rows_scanned.fetch_add(static_cast<int64_t>(visited),
                                  std::memory_order_relaxed);
    obs::Inc(metrics_.rows_scanned, static_cast<int64_t>(visited));
    return completed;
  };
  auto interrupted = [&]() -> Status {
    return Status::Cancelled(
        std::string("query execution interrupted (") +
        TerminationReasonToString(gate.reason()) + ")");
  };

  // Orders a before b when a ranks better; ties by entity name
  // ascending, then by group id for full determinism.
  auto better = [&](double sa, const std::string& na, uint32_t ga, double sb,
                    const std::string& nb, uint32_t gb) {
    if (sa != sb) return desc ? sa > sb : sa < sb;
    if (na != nb) return na < nb;
    return ga < gb;
  };

  std::vector<HeapEntry> results;

  if (query.agg == AggFn::kNone) {
    // No GROUP BY: rank individual rows.
    if (!visit_rows([&](RowId r, bool matches) {
          if (!matches) return;
          results.push_back(HeapEntry{query.expr.Eval(table, r), r});
        })) {
      return interrupted();
    }
    auto name_of = [&](uint32_t row) -> const std::string& {
      return dict.Get(entities.CodeAt(row));
    };
    std::sort(results.begin(), results.end(),
              [&](const HeapEntry& a, const HeapEntry& b) {
                return better(a.score, name_of(a.group), a.group, b.score,
                              name_of(b.group), b.group);
              });
    if (results.size() > static_cast<size_t>(query.k)) {
      results.resize(static_cast<size_t>(query.k));
    }
    TopKList out;
    for (const HeapEntry& e : results) {
      out.Append(name_of(e.group), e.score);
    }
    return out;
  }

  // Grouped aggregation keyed by dense entity code.
  std::vector<AggState> groups(dict.size());
  std::vector<uint32_t> touched;
  if (!visit_rows([&](RowId r, bool matches) {
        if (!matches) return;
        uint32_t code = entities.CodeAt(r);
        AggState& g = groups[code];
        if (g.count == 0) touched.push_back(code);
        g.Add(query.expr.Eval(table, r));
      })) {
    return interrupted();
  }

  results.reserve(touched.size());
  for (uint32_t code : touched) {
    results.push_back(HeapEntry{groups[code].Finish(query.agg), code});
  }
  auto cmp = [&](const HeapEntry& a, const HeapEntry& b) {
    return better(a.score, dict.Get(a.group), a.group, b.score,
                  dict.Get(b.group), b.group);
  };
  if (results.size() > static_cast<size_t>(query.k)) {
    std::partial_sort(results.begin(),
                      results.begin() + static_cast<ptrdiff_t>(query.k),
                      results.end(), cmp);
    results.resize(static_cast<size_t>(query.k));
  } else {
    std::sort(results.begin(), results.end(), cmp);
  }
  TopKList out;
  for (const HeapEntry& e : results) {
    out.Append(dict.Get(e.group), e.score);
  }
  return out;
}

}  // namespace paleo
