// Query executor: evaluates the template query over a table with a
// filter -> hash group-by -> bounded top-k heap pipeline.
//
// This is the "database" of the reproduction: PALEO's validation step
// issues candidate queries here, exactly as the paper issues them to
// PostgreSQL.

#ifndef PALEO_ENGINE_EXECUTOR_H_
#define PALEO_ENGINE_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/run_budget.h"
#include "common/status.h"
#include "engine/query.h"
#include "engine/topk_list.h"
#include "obs/metrics.h"
#include "storage/table.h"

namespace paleo {

class DimensionIndex;

/// \brief Stateless query evaluation over columnar tables.
///
/// Determinism: score ties are broken by entity name ascending (and by
/// row id for no-aggregation queries), so repeated executions and
/// executions through different-but-equivalent predicates produce
/// identical lists.
///
/// Thread safety: Execute / ExecuteOnRows / CountMatching may be
/// called concurrently from any number of threads — the tables they
/// read are immutable and the stats counters are atomic (relaxed;
/// totals are exact, cross-counter snapshots are not). Configuration
/// (SetDimensionIndex, ResetStats) is not synchronized: call it before
/// sharing the executor, never mid-flight.
class Executor {
 public:
  /// Counters accumulated across Execute calls (reset manually).
  /// Atomic so concurrent executions through one shared executor (the
  /// parallel validator, the discovery service) keep exact totals.
  struct Stats {
    std::atomic<int64_t> queries_executed{0};
    std::atomic<int64_t> rows_scanned{0};
    /// Executions answered from dimension-index postings instead of a
    /// full scan.
    std::atomic<int64_t> index_assisted{0};
  };

  /// Optional registry-backed counters mirrored alongside Stats, so a
  /// serving process can export executor activity without polling every
  /// executor instance. All-null (one branch per event) by default.
  struct MetricHandles {
    obs::Counter* queries_executed = nullptr;
    obs::Counter* rows_scanned = nullptr;
    obs::Counter* index_assisted = nullptr;
  };

  Executor() = default;

  /// Binds registry counters; same configuration contract as
  /// SetDimensionIndex (set before sharing, never mid-flight).
  void SetMetrics(MetricHandles handles) { metrics_ = handles; }

  /// Attaches secondary dimension indexes built over `indexed_table`.
  /// Subsequent Execute calls against that exact table evaluate fully
  /// covered, non-empty predicates by posting-list intersection instead
  /// of scanning. Results are identical either way (asserted by the
  /// executor property tests); only wall-clock changes. Pass nullptrs
  /// to detach.
  void SetDimensionIndex(const DimensionIndex* index,
                         const Table* indexed_table) {
    dimension_index_ = index;
    indexed_table_ = indexed_table;
  }

  /// Runs `query` over `table`. Errors on non-numeric ranking columns
  /// or invalid column indices. When `budget` is set, the scan and
  /// group-by loop poll it every few thousand rows and abandon the
  /// execution with Status::Cancelled once the deadline passes or the
  /// cancellation token trips (a partially scanned result would be
  /// wrong, so interruption cannot return a list).
  StatusOr<TopKList> Execute(const Table& table, const TopKQuery& query,
                             const RunBudget* budget = nullptr);

  /// Runs `query` restricted to the given rows of `table` (used to
  /// evaluate ranking criteria over tuple sets of R'). Rows must be
  /// valid ids into `table`.
  StatusOr<TopKList> ExecuteOnRows(const Table& table,
                                   const std::vector<RowId>& rows,
                                   const TopKQuery& query,
                                   const RunBudget* budget = nullptr);

  /// Number of rows of `table` matching `predicate` (selectivity
  /// numerator; Table 6).
  size_t CountMatching(const Table& table, const Predicate& predicate);

  const Stats& stats() const { return stats_; }
  void ResetStats() {
    stats_.queries_executed.store(0, std::memory_order_relaxed);
    stats_.rows_scanned.store(0, std::memory_order_relaxed);
    stats_.index_assisted.store(0, std::memory_order_relaxed);
  }

 private:
  StatusOr<TopKList> ExecuteImpl(const Table& table,
                                 const std::vector<RowId>* rows,
                                 const TopKQuery& query,
                                 const RunBudget* budget);

  Stats stats_;
  MetricHandles metrics_;
  const DimensionIndex* dimension_index_ = nullptr;
  const Table* indexed_table_ = nullptr;
};

}  // namespace paleo

#endif  // PALEO_ENGINE_EXECUTOR_H_
