// Query executor: evaluates the template query over a table with a
// filter -> hash group-by -> bounded top-k heap pipeline.
//
// This is the "database" of the reproduction: PALEO's validation step
// issues candidate queries here, exactly as the paper issues them to
// PostgreSQL.
//
// Full-table scans run through vectorized selection kernels by default
// (engine/selection_kernels.h): each predicate atom is evaluated over
// its column array in word-packed batches into a selection bitmap, the
// conjunction is a word-wise AND, and a fused kernel aggregates the
// survivors straight into the dense entity-code group array. With an
// AtomSelectionCache attached to the call, per-atom bitmaps are reused
// across the candidate queries of a validation run, which share almost
// all of their atoms by construction. Results are byte-identical to the
// scalar row-at-a-time path (same visit order, same float accumulation
// order); SetVectorized(false) forces the scalar path for differential
// testing and ablation.

#ifndef PALEO_ENGINE_EXECUTOR_H_
#define PALEO_ENGINE_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/run_budget.h"
#include "common/status.h"
#include "engine/query.h"
#include "engine/topk_list.h"
#include "obs/metrics.h"
#include "storage/table.h"

namespace paleo {

class AtomSelectionCache;
class DimensionIndex;
class SelectionBitmap;

/// \brief Stateless query evaluation over columnar tables.
///
/// Determinism: score ties are broken by entity name ascending (and by
/// row id for no-aggregation queries), so repeated executions and
/// executions through different-but-equivalent predicates produce
/// identical lists — whether evaluated through the scalar path, the
/// vectorized kernels, a dimension index, or cached selections.
///
/// Thread safety: Execute / ExecuteOnRows / CountMatching may be
/// called concurrently from any number of threads — the tables they
/// read are immutable, the stats counters are atomic (relaxed; totals
/// over completed executions are exact, cross-counter snapshots and
/// interrupted executions are not), and a shared AtomSelectionCache is
/// internally synchronized. Configuration (SetDimensionIndex,
/// SetVectorized, ResetStats) is not synchronized: call it before
/// sharing the executor, never mid-flight.
class Executor {
 public:
  /// Counters accumulated across Execute calls (reset manually).
  /// Atomic so concurrent executions through one shared executor (the
  /// parallel validator, the discovery service) keep exact totals.
  struct Stats {
    std::atomic<int64_t> queries_executed{0};
    std::atomic<int64_t> rows_scanned{0};
    /// Executions answered from dimension-index postings instead of a
    /// full scan.
    std::atomic<int64_t> index_assisted{0};
    /// Executions that degraded from the vectorized to the scalar path
    /// because selection-bitmap memory could not be allocated (real or
    /// injected) or the attached cache is under memory pressure.
    /// Results are byte-identical either way.
    std::atomic<int64_t> scalar_fallbacks{0};
  };

  /// Optional registry-backed counters mirrored alongside Stats, so a
  /// serving process can export executor activity without polling every
  /// executor instance. All-null (one branch per event) by default.
  struct MetricHandles {
    obs::Counter* queries_executed = nullptr;
    obs::Counter* rows_scanned = nullptr;
    obs::Counter* index_assisted = nullptr;
  };

  Executor() = default;

  /// Binds registry counters; same configuration contract as
  /// SetDimensionIndex (set before sharing, never mid-flight).
  void SetMetrics(MetricHandles handles) { metrics_ = handles; }

  /// Attaches secondary dimension indexes built over `indexed_table`.
  /// Subsequent Execute calls against that exact table evaluate fully
  /// covered, non-empty predicates by posting-list intersection instead
  /// of scanning. Results are identical either way (asserted by the
  /// executor property tests); only wall-clock changes. Pass nullptrs
  /// to detach.
  void SetDimensionIndex(const DimensionIndex* index,
                         const Table* indexed_table) {
    dimension_index_ = index;
    indexed_table_ = indexed_table;
  }

  /// Toggles the vectorized full-scan path (default on). Off forces the
  /// scalar row-at-a-time scan everywhere; results are identical either
  /// way. Same configuration contract as SetDimensionIndex.
  void SetVectorized(bool on) { vectorized_ = on; }
  bool vectorized() const { return vectorized_; }

  /// Runs `query` over `table`. Errors on non-numeric ranking columns
  /// or invalid column indices. When `budget` is set, the scan and
  /// group-by loop poll it every few thousand rows and abandon the
  /// execution with Status::Cancelled once the deadline passes or the
  /// cancellation token trips (a partially scanned result would be
  /// wrong, so interruption cannot return a list).
  ///
  /// `cache` (optional, internally synchronized, shared across threads)
  /// memoizes per-atom selection bitmaps keyed by the table's epoch;
  /// pass the validation run's cache so candidates sharing atoms skip
  /// the rescan. Ignored on the scalar path.
  StatusOr<TopKList> Execute(const Table& table, const TopKQuery& query,
                             const RunBudget* budget = nullptr,
                             AtomSelectionCache* cache = nullptr);

  /// Runs `query` restricted to the given rows of `table` (used to
  /// evaluate ranking criteria over tuple sets of R'). Rows must be
  /// valid ids into `table`.
  StatusOr<TopKList> ExecuteOnRows(const Table& table,
                                   const std::vector<RowId>& rows,
                                   const TopKQuery& query,
                                   const RunBudget* budget = nullptr);

  /// Number of rows of `table` matching `predicate` (selectivity
  /// numerator; Table 6). Routed through the selection kernels (and
  /// `cache`, when given) so miner-side support counting shares the
  /// bitmaps of the validation path.
  size_t CountMatching(const Table& table, const Predicate& predicate,
                       AtomSelectionCache* cache = nullptr);

  const Stats& stats() const { return stats_; }
  void ResetStats() {
    stats_.queries_executed.store(0, std::memory_order_relaxed);
    stats_.rows_scanned.store(0, std::memory_order_relaxed);
    stats_.index_assisted.store(0, std::memory_order_relaxed);
    stats_.scalar_fallbacks.store(0, std::memory_order_relaxed);
  }

 private:
  StatusOr<TopKList> ExecuteImpl(const Table& table,
                                 const std::vector<RowId>* rows,
                                 const TopKQuery& query,
                                 const RunBudget* budget,
                                 AtomSelectionCache* cache);

  /// Resolves `predicate` to its selection over all rows of `table`
  /// via the per-atom kernels, consulting `cache` first. Returns false
  /// when the budget interrupted the scan (*out is then partial).
  bool BuildSelection(const Table& table, const Predicate& predicate,
                      const BoundPredicate& bound, AtomSelectionCache* cache,
                      BudgetGate* gate, SelectionBitmap* out);

  Stats stats_;
  MetricHandles metrics_;
  const DimensionIndex* dimension_index_ = nullptr;
  const Table* indexed_table_ = nullptr;
  bool vectorized_ = true;
};

}  // namespace paleo

#endif  // PALEO_ENGINE_EXECUTOR_H_
