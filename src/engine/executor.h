// Query executor: evaluates the template query over a table with a
// filter -> hash group-by -> bounded top-k heap pipeline.
//
// This is the "database" of the reproduction: PALEO's validation step
// issues candidate queries here, exactly as the paper issues them to
// PostgreSQL.
//
// Full-table scans are CHUNK-CANONICAL: the table's fixed-size chunks
// (storage/table_view.h) are the scan granules. Per chunk, predicate
// atoms first consult the chunk's zone maps — a refuted chunk is
// skipped without touching row data — then the surviving chunk is
// evaluated either by the vectorized selection kernels
// (engine/selection_kernels.h, default) or the scalar row-at-a-time
// loop, producing per-chunk partial results. Partials are merged in
// ascending chunk order (rank-order merge), which defines the one
// canonical aggregation order shared by every path: scalar,
// vectorized, and morsel-parallel results are byte-identical by
// construction. With an ExecContext carrying a ThreadPool and
// scan_threads > 1, chunks are dispatched as morsels claimed by pool
// workers (the caller donates itself via WaitHelping, so scans
// launched from inside pool tasks cannot deadlock).
//
// With an AtomSelectionCache attached to the call, per-atom per-chunk
// bitmaps are reused across the candidate queries of a validation run,
// which share almost all of their atoms by construction.
// SetVectorized(false) forces the scalar path for differential testing
// and ablation.

#ifndef PALEO_ENGINE_EXECUTOR_H_
#define PALEO_ENGINE_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/run_budget.h"
#include "common/status.h"
#include "engine/exec_context.h"
#include "engine/query.h"
#include "engine/topk_list.h"
#include "obs/metrics.h"
#include "storage/table.h"

namespace paleo {

class AtomSelectionCache;
class DimensionIndex;
class SelectionBitmap;

/// \brief Stateless query evaluation over columnar tables.
///
/// Determinism: score ties are broken by entity name ascending (and by
/// row id for no-aggregation queries), so repeated executions and
/// executions through different-but-equivalent predicates produce
/// identical lists — whether evaluated through the scalar path, the
/// vectorized kernels, the morsel-parallel scan, a dimension index, or
/// cached selections.
///
/// Thread safety: Execute / ExecuteOnRows / CountMatching may be
/// called concurrently from any number of threads — the tables they
/// read are immutable, the stats counters are atomic (relaxed; totals
/// over completed executions are exact, cross-counter snapshots and
/// interrupted executions are not), and a shared AtomSelectionCache is
/// internally synchronized. Configuration (SetDimensionIndex,
/// SetVectorized, ResetStats) is not synchronized: call it before
/// sharing the executor, never mid-flight.
class Executor {
 public:
  /// Counters accumulated across Execute calls.
  ///
  /// relaxed: all counters are relaxed-atomic because the morsel-parallel scan
  /// accumulates them from multiple pool workers concurrently (and one
  /// shared executor serves the parallel validator / discovery
  /// service). Calling ResetStats() while any Execute / CountMatching
  /// is in flight is a CONTRACT VIOLATION: in-flight executions would
  /// add their counts to the zeroed counters, splitting one execution's
  /// accounting across the reset. Reset only at quiescence (asserted by
  /// tests/chunked_scan_test.cc).
  struct Stats {
    std::atomic<int64_t> queries_executed{0};
    std::atomic<int64_t> rows_scanned{0};
    /// Executions answered from dimension-index postings instead of a
    /// full scan.
    std::atomic<int64_t> index_assisted{0};
    /// Executions that degraded from the vectorized to the scalar path
    /// because selection-bitmap memory could not be allocated (real or
    /// injected) or the attached cache is under memory pressure.
    /// Results are byte-identical either way.
    std::atomic<int64_t> scalar_fallbacks{0};
    /// Chunks skipped by zone-map refutation: no row of the chunk can
    /// match the predicate, so its rows never enter rows_scanned.
    std::atomic<int64_t> chunks_skipped{0};
    /// Chunk-granular scan morsels actually processed (skipped chunks
    /// excluded); equals chunks-per-table on unselective scans.
    std::atomic<int64_t> morsels{0};
    /// Executions aborted mid-scan by threshold refutation
    /// (ExecContext::threshold): the running per-group bounds proved
    /// the result cannot equal the monitor's target list.
    /// relaxed: independent event counter, no ordering with other
    /// memory needed (same contract as every counter above).
    std::atomic<int64_t> executions_aborted_early{0};
    /// Rows NOT scanned thanks to threshold refutation: the unscanned
    /// remainder of chunks never claimed (or abandoned) when an
    /// execution aborted early. Zone-map-skipped chunks do not count —
    /// they are attributed to chunks_skipped.
    /// relaxed: independent event counter, accumulated once per aborted
    /// execution after the morsel join; no cross-counter ordering.
    std::atomic<int64_t> rows_saved{0};
  };

  /// Optional registry-backed instruments mirrored alongside Stats, so
  /// a serving process can export executor activity without polling
  /// every executor instance. All-null (one branch per event) by
  /// default. See paleo/pipeline_metrics.h for the series they back.
  struct MetricHandles {
    obs::Counter* queries_executed = nullptr;
    obs::Counter* rows_scanned = nullptr;
    obs::Counter* index_assisted = nullptr;
    obs::Counter* chunks_skipped = nullptr;
    obs::Counter* morsels = nullptr;
    /// Rows saved by threshold refutation (paired with
    /// Stats::rows_saved; backs paleo_rows_saved_by_threshold_total).
    obs::Counter* rows_saved = nullptr;
    /// One observation per full scan: the number of morsel workers the
    /// scan ran with (1 for sequential).
    obs::Histogram* scan_parallelism = nullptr;
  };

  Executor() = default;

  /// Binds registry instruments; same configuration contract as
  /// SetDimensionIndex (set before sharing, never mid-flight).
  void SetMetrics(MetricHandles handles) { metrics_ = handles; }

  /// Attaches secondary dimension indexes built over `indexed_table`.
  /// Subsequent Execute calls against that exact table evaluate fully
  /// covered, non-empty predicates by posting-list intersection instead
  /// of scanning. Results are identical either way (asserted by the
  /// executor property tests); only wall-clock changes. Pass nullptrs
  /// to detach.
  void SetDimensionIndex(const DimensionIndex* index,
                         const Table* indexed_table) {
    dimension_index_ = index;
    indexed_table_ = indexed_table;
  }

  /// Toggles the vectorized full-scan path (default on). Off forces the
  /// scalar row-at-a-time scan everywhere; results are identical either
  /// way. Same configuration contract as SetDimensionIndex.
  void SetVectorized(bool on) { vectorized_ = on; }
  bool vectorized() const { return vectorized_; }

  /// Runs `query` over `table` under `ctx` (engine/exec_context.h):
  /// budget, atom cache, morsel-parallelism, and per-call path toggles
  /// all travel in the context. Errors on non-numeric ranking columns
  /// or invalid column indices; returns Status::Cancelled when the
  /// context's budget interrupts the scan (a partially scanned result
  /// would be wrong, so interruption cannot return a list).
  StatusOr<TopKList> Execute(const Table& table, const TopKQuery& query,
                             const ExecContext& ctx);

  /// Runs `query` restricted to the given rows of `table` (used to
  /// evaluate ranking criteria over tuple sets of R'). Rows must be
  /// valid ids into `table`. Row-restricted executions scan the row
  /// list itself (scalar, sequential, in list order); only `ctx.budget`
  /// applies.
  StatusOr<TopKList> ExecuteOnRows(const Table& table,
                                   const std::vector<RowId>& rows,
                                   const TopKQuery& query,
                                   const ExecContext& ctx);

  /// Number of rows of `table` matching `predicate` (selectivity
  /// numerator; Table 6). Routed through the chunked selection kernels
  /// (and `ctx.cache`, when given) so miner-side support counting
  /// shares the bitmaps of the validation path; zone-map skipping and
  /// morsel parallelism apply as in Execute.
  size_t CountMatching(const Table& table, const Predicate& predicate,
                       const ExecContext& ctx);

  // The pre-ExecContext positional overloads (budget/cache as trailing
  // parameters) were deprecated in PR 8 and deleted in PR 9; the
  // paleo_lint exec-context rule hard-bans the positional call shape
  // tree-wide so they cannot creep back.

  const Stats& stats() const { return stats_; }

  /// Zeroes every counter. See Stats: calling this while any execution
  /// is in flight on this executor is a contract violation.
  /// relaxed: stores happen at quiescence (no concurrent accumulators),
  /// so no ordering with other memory is needed.
  void ResetStats() {
    stats_.queries_executed.store(0, std::memory_order_relaxed);
    stats_.rows_scanned.store(0, std::memory_order_relaxed);
    stats_.index_assisted.store(0, std::memory_order_relaxed);
    stats_.scalar_fallbacks.store(0, std::memory_order_relaxed);
    stats_.chunks_skipped.store(0, std::memory_order_relaxed);
    stats_.morsels.store(0, std::memory_order_relaxed);
    stats_.executions_aborted_early.store(0, std::memory_order_relaxed);
    stats_.rows_saved.store(0, std::memory_order_relaxed);
  }

 private:
  StatusOr<TopKList> ExecuteImpl(const Table& table,
                                 const std::vector<RowId>* rows,
                                 const TopKQuery& query,
                                 const ExecContext& ctx);

  Stats stats_;
  MetricHandles metrics_;
  const DimensionIndex* dimension_index_ = nullptr;
  const Table* indexed_table_ = nullptr;
  bool vectorized_ = true;
};

}  // namespace paleo

#endif  // PALEO_ENGINE_EXECUTOR_H_
