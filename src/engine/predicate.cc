#include "engine/predicate.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace paleo {

Predicate::Predicate(std::vector<AtomicPredicate> atoms)
    : atoms_(std::move(atoms)) {
  std::sort(atoms_.begin(), atoms_.end());
}

Predicate Predicate::Atom(int column, Value value) {
  return Predicate({AtomicPredicate(column, std::move(value))});
}

StatusOr<Predicate> Predicate::And(const AtomicPredicate& atom) const {
  for (const AtomicPredicate& a : atoms_) {
    if (a.column == atom.column) {
      return Status::InvalidArgument(
          "column " + std::to_string(atom.column) +
          " already constrained in predicate");
    }
  }
  std::vector<AtomicPredicate> atoms = atoms_;
  atoms.push_back(atom);
  return Predicate(std::move(atoms));
}

bool Predicate::SubsetOf(const Predicate& other) const {
  // Both sides sorted: linear merge check.
  size_t j = 0;
  for (const AtomicPredicate& a : atoms_) {
    while (j < other.atoms_.size() && other.atoms_[j] < a) ++j;
    if (j == other.atoms_.size() || !(other.atoms_[j] == a)) return false;
    ++j;
  }
  return true;
}

int Predicate::OverlapWith(const Predicate& other) const {
  int overlap = 0;
  size_t i = 0, j = 0;
  while (i < atoms_.size() && j < other.atoms_.size()) {
    if (atoms_[i] < other.atoms_[j]) {
      ++i;
    } else if (other.atoms_[j] < atoms_[i]) {
      ++j;
    } else {
      ++overlap;
      ++i;
      ++j;
    }
  }
  return overlap;
}

bool Predicate::Matches(const Table& table, RowId row) const {
  for (const AtomicPredicate& a : atoms_) {
    if (a.is_range()) {
      Value v = table.GetValue(row, a.column);
      if (!v.is_numeric() || !a.value.is_numeric() || !a.high.is_numeric())
        return false;
      double x = v.AsDouble();
      if (x < a.value.AsDouble() || x > a.high.AsDouble()) return false;
    } else if (table.GetValue(row, a.column) != a.value) {
      return false;
    }
  }
  return true;
}

std::string Predicate::ToSql(const Schema& schema) const {
  if (atoms_.empty()) return "TRUE";
  std::vector<std::string> parts;
  parts.reserve(atoms_.size());
  for (const AtomicPredicate& a : atoms_) {
    if (a.is_range()) {
      parts.push_back(schema.field(a.column).name + " BETWEEN " +
                      a.value.ToSql() + " AND " + a.high.ToSql());
    } else {
      parts.push_back(schema.field(a.column).name + " = " + a.value.ToSql());
    }
  }
  return Join(parts, " AND ");
}

bool Predicate::operator<(const Predicate& other) const {
  return std::lexicographical_compare(atoms_.begin(), atoms_.end(),
                                      other.atoms_.begin(),
                                      other.atoms_.end());
}

uint64_t Predicate::Hash() const {
  uint64_t h = 0x243F6A8885A308D3ULL;
  for (const AtomicPredicate& a : atoms_) {
    h ^= static_cast<uint64_t>(a.column) * 0x9E3779B97F4A7C15ULL;
    h = (h << 13) | (h >> 51);
    h ^= a.value.Hash();
    if (a.is_range()) {
      h = (h << 7) | (h >> 57);
      h ^= a.high.Hash() ^ 0xA5A5A5A5A5A5A5A5ULL;
    }
    h *= 0xC2B2AE3D27D4EB4FULL;
  }
  return h;
}

BoundPredicate::BoundPredicate(const Predicate& pred, const Table& table) {
  atoms_.reserve(pred.atoms().size());
  for (const AtomicPredicate& a : pred.atoms()) {
    const Column& col = table.column(a.column);
    BoundAtom bound;
    if (a.is_range()) {
      // Ranges apply to numeric columns only.
      if (!a.value.is_numeric() || !a.high.is_numeric()) {
        bound.kind = BoundAtom::kNever;
      } else if (col.type() == DataType::kInt64) {
        bound.kind = BoundAtom::kIntRange;
        bound.ints = &col.ints();
        // Integer bounds: round inward so the inclusive semantics hold.
        bound.int_value =
            static_cast<int64_t>(std::ceil(a.value.AsDouble()));
        bound.int_high =
            static_cast<int64_t>(std::floor(a.high.AsDouble()));
      } else if (col.type() == DataType::kDouble) {
        bound.kind = BoundAtom::kDoubleRange;
        bound.doubles = &col.doubles();
        bound.double_value = a.value.AsDouble();
        bound.double_high = a.high.AsDouble();
      } else {
        bound.kind = BoundAtom::kNever;
      }
      atoms_.push_back(bound);
      continue;
    }
    switch (col.type()) {
      case DataType::kString: {
        if (!a.value.is_string()) {
          bound.kind = BoundAtom::kNever;
          break;
        }
        uint32_t code = col.dict()->Lookup(a.value.str());
        if (code == StringDictionary::kInvalidCode) {
          bound.kind = BoundAtom::kNever;
        } else {
          bound.kind = BoundAtom::kCode;
          bound.codes = &col.codes();
          bound.code = code;
        }
        break;
      }
      case DataType::kInt64:
        if (!a.value.is_int64()) {
          bound.kind = BoundAtom::kNever;
        } else {
          bound.kind = BoundAtom::kInt;
          bound.ints = &col.ints();
          bound.int_value = a.value.int64();
        }
        break;
      case DataType::kDouble:
        if (!a.value.is_numeric()) {
          bound.kind = BoundAtom::kNever;
        } else {
          bound.kind = BoundAtom::kDouble;
          bound.doubles = &col.doubles();
          bound.double_value = a.value.AsDouble();
        }
        break;
    }
    atoms_.push_back(bound);
  }
}

bool AtomRefutedByZone(const BoundAtom& atom, const ZoneMap& zone) {
  // kNever needs no zone: the constant is unmappable, nothing matches.
  if (atom.kind == BoundAtom::kNever) return true;
  if (zone.empty) return false;
  switch (atom.kind) {
    case BoundAtom::kCode:
      return atom.code < zone.code_min || atom.code > zone.code_max;
    case BoundAtom::kInt:
      return atom.int_value < zone.int_min || atom.int_value > zone.int_max;
    case BoundAtom::kDouble:
      return atom.double_value < zone.double_min ||
             atom.double_value > zone.double_max;
    case BoundAtom::kIntRange:
      // Disjoint intervals: [low, high] misses [min, max] entirely.
      return atom.int_high < zone.int_min || atom.int_value > zone.int_max;
    case BoundAtom::kDoubleRange:
      return atom.double_high < zone.double_min ||
             atom.double_value > zone.double_max;
    case BoundAtom::kNever:
      return true;
  }
  return false;
}

}  // namespace paleo
