// Conjunctive equality predicates — the WHERE clause language of the
// paper's query template (P1 AND P2 AND ..., each Pi of the form
// Ai = v).

#ifndef PALEO_ENGINE_PREDICATE_H_
#define PALEO_ENGINE_PREDICATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"
#include "types/schema.h"
#include "types/value.h"

namespace paleo {

/// \brief One atomic predicate: column = constant, or (the range
/// extension, opt-in in the miner) column BETWEEN low AND high with
/// inclusive numeric bounds.
struct AtomicPredicate {
  enum class Kind : int { kEquals = 0, kRange = 1 };

  int column = -1;
  Kind kind = Kind::kEquals;
  Value value;  // the constant, or the range's inclusive lower bound
  Value high;   // the range's inclusive upper bound (kRange only)

  AtomicPredicate() = default;
  AtomicPredicate(int column_in, Value value_in)
      : column(column_in), value(std::move(value_in)) {}

  /// Range atom over a numeric column; requires low <= high.
  static AtomicPredicate Range(int column, Value low, Value high) {
    AtomicPredicate atom(column, std::move(low));
    atom.kind = Kind::kRange;
    atom.high = std::move(high);
    return atom;
  }

  bool is_range() const { return kind == Kind::kRange; }

  bool operator==(const AtomicPredicate& other) const {
    return column == other.column && kind == other.kind &&
           value == other.value && (!is_range() || high == other.high);
  }
  /// Ordered by column index, then kind, then bounds (canonical
  /// conjunct order).
  bool operator<(const AtomicPredicate& other) const {
    if (column != other.column) return column < other.column;
    if (kind != other.kind) return kind < other.kind;
    if (!(value == other.value)) return value < other.value;
    if (is_range() && !(high == other.high)) return high < other.high;
    return false;
  }
};

/// \brief Conjunction of atomic equality predicates, kept sorted by
/// column index. An empty conjunction is TRUE (no WHERE clause).
class Predicate {
 public:
  Predicate() = default;
  explicit Predicate(std::vector<AtomicPredicate> atoms);

  /// Convenience: single-atom predicate.
  static Predicate Atom(int column, Value value);

  /// Conjunction of this predicate and an extra atom. Returns
  /// InvalidArgument if the atom's column already appears (equality on
  /// the same column twice is either redundant or unsatisfiable).
  StatusOr<Predicate> And(const AtomicPredicate& atom) const;

  const std::vector<AtomicPredicate>& atoms() const { return atoms_; }
  int size() const { return static_cast<int>(atoms_.size()); }
  bool IsTrue() const { return atoms_.empty(); }

  /// True if every atom of this predicate also appears in `other`
  /// (i.e. this is a sub-predicate: other is at least as restrictive).
  bool SubsetOf(const Predicate& other) const;

  /// Number of atoms shared with `other`.
  int OverlapWith(const Predicate& other) const;

  /// Row-at-a-time evaluation (boxed; for tests and small inputs).
  bool Matches(const Table& table, RowId row) const;

  /// Renders "p_type = 'STEEL' AND r_name = 'AMERICA'"; "TRUE" if empty.
  std::string ToSql(const Schema& schema) const;

  bool operator==(const Predicate& other) const {
    return atoms_ == other.atoms_;
  }
  bool operator<(const Predicate& other) const;

  uint64_t Hash() const;

 private:
  std::vector<AtomicPredicate> atoms_;  // sorted by (column, value)
};

/// \brief One atom resolved against a concrete table: string constants
/// looked up in the dictionary, the column bound to its typed array.
/// Shared between the row-at-a-time BoundPredicate::Matches loop and
/// the batch selection kernels (engine/selection_kernels.h).
struct BoundAtom {
  enum Kind {
    kCode,
    kInt,
    kDouble,
    kIntRange,
    kDoubleRange,
    kNever
  } kind = kNever;
  const std::vector<uint32_t>* codes = nullptr;
  const std::vector<int64_t>* ints = nullptr;
  const std::vector<double>* doubles = nullptr;
  uint32_t code = 0;
  int64_t int_value = 0;    // equality constant or range low
  double double_value = 0.0;
  int64_t int_high = 0;     // range high bounds
  double double_high = 0.0;
};

/// \brief Predicate compiled against a concrete table for scan loops:
/// string constants are resolved to dictionary codes once, and columns
/// are bound to typed arrays.
class BoundPredicate {
 public:
  /// Binding never fails: a string constant absent from the column's
  /// dictionary simply can never match (the predicate selects nothing).
  BoundPredicate(const Predicate& pred, const Table& table);

  bool Matches(RowId row) const {
    for (const BoundAtom& a : atoms_) {
      switch (a.kind) {
        case BoundAtom::kCode:
          if ((*a.codes)[row] != a.code) return false;
          break;
        case BoundAtom::kInt:
          if ((*a.ints)[row] != a.int_value) return false;
          break;
        case BoundAtom::kDouble:
          if ((*a.doubles)[row] != a.double_value) return false;
          break;
        case BoundAtom::kIntRange: {
          int64_t v = (*a.ints)[row];
          if (v < a.int_value || v > a.int_high) return false;
          break;
        }
        case BoundAtom::kDoubleRange: {
          double v = (*a.doubles)[row];
          if (v < a.double_value || v > a.double_high) return false;
          break;
        }
        case BoundAtom::kNever:
          return false;
      }
    }
    return true;
  }

  /// Bound atoms in the predicate's canonical (column-sorted) order,
  /// i.e. atoms()[i] is the binding of pred.atoms()[i].
  const std::vector<BoundAtom>& atoms() const { return atoms_; }

 private:
  std::vector<BoundAtom> atoms_;
};

/// \brief True when `atom` provably matches NO row of a chunk whose
/// column summary is `zone` — the executor then skips the chunk
/// entirely (zone-map data skipping).
///
/// Soundness rules:
///  - An `empty` zone never refutes (nothing is known about the chunk).
///  - kNever atoms (string constant absent from the dictionary) refute
///    every chunk.
///  - Dictionary-code ranges refute EQUALITY only: codes are
///    insertion-ordered, so [code_min, code_max] says which codes occur,
///    not anything about string order. (String range atoms do not exist
///    in the predicate language; numeric ranges use the value ranges.)
///  - NaN-only chunks keep empty zones and are conservatively scanned;
///    NaN data values can never match an atom, so excluding them from
///    zone ranges (storage/zone_map.h) refutes nothing incorrectly.
bool AtomRefutedByZone(const BoundAtom& atom, const ZoneMap& zone);

struct PredicateHasher {
  size_t operator()(const Predicate& p) const {
    return static_cast<size_t>(p.Hash());
  }
};

}  // namespace paleo

#endif  // PALEO_ENGINE_PREDICATE_H_
