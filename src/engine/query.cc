#include "engine/query.h"

namespace paleo {

std::string TopKQuery::RankingSql(const Schema& schema) const {
  std::string inner = expr.ToSql(schema);
  if (agg == AggFn::kNone) return inner;
  return std::string(AggFnToString(agg)) + "(" + inner + ")";
}

std::string TopKQuery::ToSql(const Schema& schema) const {
  const std::string& entity = schema.field(schema.entity_index()).name;
  std::string ranking = RankingSql(schema);
  std::string sql = "SELECT " + entity + ", " + ranking + " FROM R";
  if (!predicate.IsTrue()) {
    sql += " WHERE " + predicate.ToSql(schema);
  }
  if (agg != AggFn::kNone) {
    sql += " GROUP BY " + entity;
  }
  sql += " ORDER BY " + ranking +
         (order == SortOrder::kDesc ? " DESC" : " ASC");
  sql += " LIMIT " + std::to_string(k);
  return sql;
}

uint64_t TopKQuery::Hash() const {
  uint64_t h = predicate.Hash();
  h ^= expr.Hash() * 0x9E3779B97F4A7C15ULL;
  h ^= static_cast<uint64_t>(agg) * 0xC2B2AE3D27D4EB4FULL;
  h ^= static_cast<uint64_t>(order) * 0x165667B19E3779F9ULL;
  h ^= static_cast<uint64_t>(k) * 0x27D4EB2F165667C5ULL;
  return h;
}

}  // namespace paleo
