// The paper's query template:
//
//   SELECT e, agg(expr) FROM R WHERE P1 AND P2 AND ...
//   GROUP BY e ORDER BY agg(expr) DESC LIMIT k
//
// plus the no-aggregation variant (no GROUP BY, rank rows directly).

#ifndef PALEO_ENGINE_QUERY_H_
#define PALEO_ENGINE_QUERY_H_

#include <cstdint>
#include <string>

#include "engine/aggregate.h"
#include "engine/predicate.h"
#include "engine/rank_expr.h"
#include "types/schema.h"

namespace paleo {

enum class SortOrder : int { kDesc = 0, kAsc = 1 };

/// \brief A fully specified top-k query over one relation.
struct TopKQuery {
  Predicate predicate;          // conjunctive WHERE clause (may be TRUE)
  RankExpr expr;                // ranking expression
  AggFn agg = AggFn::kMax;      // aggregate (kNone: no GROUP BY)
  SortOrder order = SortOrder::kDesc;
  int k = 10;

  /// "agg(expr)" or plain "expr" for kNone.
  std::string RankingSql(const Schema& schema) const;

  /// Full SQL text of the query.
  std::string ToSql(const Schema& schema) const;

  /// Same ranking criterion (expression + aggregate + order)?
  bool SameRanking(const TopKQuery& other) const {
    return expr == other.expr && agg == other.agg && order == other.order;
  }

  bool operator==(const TopKQuery& other) const {
    return predicate == other.predicate && expr == other.expr &&
           agg == other.agg && order == other.order && k == other.k;
  }

  uint64_t Hash() const;
};

}  // namespace paleo

#endif  // PALEO_ENGINE_QUERY_H_
