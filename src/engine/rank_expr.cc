#include "engine/rank_expr.h"

namespace paleo {

std::string RankExpr::ToSql(const Schema& schema) const {
  const std::string& name_a = schema.field(a_).name;
  switch (kind_) {
    case Kind::kColumn:
      return name_a;
    case Kind::kAdd:
      return name_a + " + " + schema.field(b_).name;
    case Kind::kMul:
      return name_a + " * " + schema.field(b_).name;
  }
  return name_a;
}

}  // namespace paleo
