// Ranking expressions — the value inside the aggregate of the query
// template. The paper's query types use a single column A, a sum of two
// columns A + B, or a product A * B.

#ifndef PALEO_ENGINE_RANK_EXPR_H_
#define PALEO_ENGINE_RANK_EXPR_H_

#include <cstdint>
#include <string>
#include <utility>

#include "storage/table.h"
#include "types/schema.h"

namespace paleo {

/// \brief Numeric expression over the columns of one row: a column
/// reference, A + B, or A * B.
class RankExpr {
 public:
  enum class Kind : int { kColumn = 0, kAdd = 1, kMul = 2 };

  RankExpr() = default;

  static RankExpr Column(int col) { return RankExpr(Kind::kColumn, col, -1); }
  static RankExpr Add(int a, int b) { return RankExpr(Kind::kAdd, a, b); }
  static RankExpr Mul(int a, int b) { return RankExpr(Kind::kMul, a, b); }

  Kind kind() const { return kind_; }
  int column_a() const { return a_; }
  int column_b() const { return b_; }
  bool is_single_column() const { return kind_ == Kind::kColumn; }

  /// Row value widened to double. Preconditions: numeric columns.
  double Eval(const Table& table, RowId row) const {
    double va = table.column(a_).NumericAt(row);
    switch (kind_) {
      case Kind::kColumn:
        return va;
      case Kind::kAdd:
        return va + table.column(b_).NumericAt(row);
      case Kind::kMul:
        return va * table.column(b_).NumericAt(row);
    }
    return va;
  }

  /// "lo_revenue", "ps_supplycost + ps_availqty", "A * B".
  std::string ToSql(const Schema& schema) const;

  bool operator==(const RankExpr& other) const {
    return kind_ == other.kind_ && a_ == other.a_ && b_ == other.b_;
  }
  bool operator!=(const RankExpr& other) const { return !(*this == other); }

  uint64_t Hash() const {
    return (static_cast<uint64_t>(kind_) * 1000003ULL +
            static_cast<uint64_t>(a_)) *
               1000003ULL +
           static_cast<uint64_t>(b_ + 1);
  }

 private:
  RankExpr(Kind kind, int a, int b) : kind_(kind), a_(a), b_(b) {
    // Canonicalize commutative operands so A+B == B+A.
    if (kind_ != Kind::kColumn && b_ < a_) std::swap(a_, b_);
  }

  Kind kind_ = Kind::kColumn;
  int a_ = -1;
  int b_ = -1;
};

}  // namespace paleo

#endif  // PALEO_ENGINE_RANK_EXPR_H_
