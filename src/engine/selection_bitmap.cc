#include "engine/selection_bitmap.h"

namespace paleo {

SelectionBitmap SelectionBitmap::AllSet(size_t num_rows) {
  SelectionBitmap bm(num_rows);
  if (num_rows == 0) return bm;
  for (size_t w = 0; w < bm.words_.size(); ++w) {
    bm.words_[w] = ~uint64_t{0};
  }
  // Clear the bits past num_rows so word-wise consumers need no tail
  // masks.
  size_t tail = num_rows % 64;
  if (tail != 0) {
    bm.words_.back() = (uint64_t{1} << tail) - 1;
  }
  return bm;
}

void SelectionBitmap::AndWith(const SelectionBitmap& other) {
  const uint64_t* o = other.words_.data();
  uint64_t* w = words_.data();
  const size_t n = words_.size();
  for (size_t i = 0; i < n; ++i) w[i] &= o[i];
}

size_t SelectionBitmap::CountSet() const {
  size_t n = 0;
  for (uint64_t w : words_) n += static_cast<size_t>(__builtin_popcountll(w));
  return n;
}

}  // namespace paleo
