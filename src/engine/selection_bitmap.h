// Word-packed selection vectors for the vectorized execution kernels.
//
// A SelectionBitmap holds one bit per row of a table (bit set = row
// selected), packed into 64-bit words. Predicates resolve to one bitmap
// per atom (engine/selection_kernels.h), conjunctions to a word-wise
// AND of those bitmaps, and the group-by consumes the intersection —
// so the per-row work of a scan collapses into tight, auto-vectorizable
// word loops instead of a per-row multi-atom branch chain.
//
// Thread-safety: a bitmap is a plain value. Once built it is only read
// (the atom cache shares them as shared_ptr<const SelectionBitmap>
// across validation workers); concurrent const access is safe.

#ifndef PALEO_ENGINE_SELECTION_BITMAP_H_
#define PALEO_ENGINE_SELECTION_BITMAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace paleo {

/// \brief Fixed-size row-selection bitmap (64 rows per word).
///
/// Bits at positions >= num_rows() in the last word are kept zero by
/// every producer, so word-wise consumers (CountSet, AndWith, the
/// aggregation kernels) never need tail masks.
class SelectionBitmap {
 public:
  SelectionBitmap() = default;

  /// All-clear bitmap covering `num_rows` rows.
  explicit SelectionBitmap(size_t num_rows)
      : num_rows_(num_rows), words_((num_rows + 63) / 64, 0) {}

  /// All-set bitmap covering `num_rows` rows (the TRUE predicate).
  static SelectionBitmap AllSet(size_t num_rows);

  size_t num_rows() const { return num_rows_; }
  size_t num_words() const { return words_.size(); }

  uint64_t* words() { return words_.data(); }
  const uint64_t* words() const { return words_.data(); }

  bool Test(size_t row) const {
    return (words_[row / 64] >> (row % 64)) & 1u;
  }
  void Set(size_t row) { words_[row / 64] |= uint64_t{1} << (row % 64); }

  /// Word-wise intersection: *this &= other. Precondition: equal
  /// num_rows().
  void AndWith(const SelectionBitmap& other);

  /// Number of selected rows (popcount over the words).
  size_t CountSet() const;

  /// Heap footprint of the word array, the unit the atom cache's byte
  /// budget is charged in.
  size_t MemoryUsage() const { return words_.size() * sizeof(uint64_t); }

 private:
  size_t num_rows_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace paleo

#endif  // PALEO_ENGINE_SELECTION_BITMAP_H_
