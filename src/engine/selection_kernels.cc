#include "engine/selection_kernels.h"

#include <algorithm>

#include "storage/table.h"

namespace paleo {

namespace {

/// Evaluates `pred` over rows [base, end) of `v` into the covering
/// bitmap words. Word-at-a-time with a branch-free inner loop, so the
/// compiler can vectorize the comparison; callers keep [base, end)
/// word-aligned except for the final tail, whose trailing bits stay
/// zero.
template <typename T, typename Pred>
void FillWords(const T* v, size_t base, size_t end, uint64_t* words,
               Pred pred) {
  for (size_t w = base / 64; w * 64 < end; ++w) {
    const size_t start = w * 64;
    const size_t limit = std::min<size_t>(64, end - start);
    uint64_t bits = 0;
    for (size_t j = 0; j < limit; ++j) {
      bits |= static_cast<uint64_t>(pred(v[start + j])) << j;
    }
    words[w] = bits;
  }
}

}  // namespace

namespace {

/// Shared body of ComputeAtomSelection / ComputeAtomSelectionRange:
/// evaluates `atom` over `n` rows starting at column-array offset
/// `col_offset` into the bitmap words (bit i = row col_offset + i).
bool ComputeAtomSelectionAt(const BoundAtom& atom, size_t col_offset, size_t n,
                            SelectionBitmap* out, BudgetGate* gate,
                            size_t* rows_visited) {
  uint64_t* words = out->words();
  size_t visited = 0;
  bool completed = true;
  for (size_t base = 0; base < n; base += kSelectionBatchRows) {
    if (gate->Tick() != TerminationReason::kCompleted) {
      completed = false;
      break;
    }
    const size_t end = std::min(base + kSelectionBatchRows, n);
    switch (atom.kind) {
      case BoundAtom::kCode:
        FillWords(atom.codes->data() + col_offset, base, end, words,
                  [c = atom.code](uint32_t v) { return v == c; });
        break;
      case BoundAtom::kInt:
        FillWords(atom.ints->data() + col_offset, base, end, words,
                  [c = atom.int_value](int64_t v) { return v == c; });
        break;
      case BoundAtom::kDouble:
        FillWords(atom.doubles->data() + col_offset, base, end, words,
                  [c = atom.double_value](double v) { return v == c; });
        break;
      case BoundAtom::kIntRange:
        FillWords(atom.ints->data() + col_offset, base, end, words,
                  [lo = atom.int_value, hi = atom.int_high](int64_t v) {
                    return v >= lo && v <= hi;
                  });
        break;
      case BoundAtom::kDoubleRange:
        FillWords(atom.doubles->data() + col_offset, base, end, words,
                  [lo = atom.double_value, hi = atom.double_high](double v) {
                    return v >= lo && v <= hi;
                  });
        break;
      case BoundAtom::kNever:
        for (size_t w = base / 64; w * 64 < end; ++w) words[w] = 0;
        break;
    }
    visited += end - base;
  }
  if (rows_visited != nullptr) *rows_visited = visited;
  return completed;
}

}  // namespace

bool ComputeAtomSelection(const BoundAtom& atom, size_t n,
                          SelectionBitmap* out, BudgetGate* gate,
                          size_t* rows_visited) {
  return ComputeAtomSelectionAt(atom, 0, n, out, gate, rows_visited);
}

bool ComputeAtomSelectionRange(const BoundAtom& atom, RowId begin, RowId end,
                               SelectionBitmap* out, BudgetGate* gate,
                               size_t* rows_visited) {
  return ComputeAtomSelectionAt(atom, begin, end - begin, out, gate,
                                rows_visited);
}

bool CollectSelectedRows(const SelectionBitmap& sel, BudgetGate* gate,
                         std::vector<RowId>* out, size_t* rows_visited,
                         RowId row_offset) {
  const uint64_t* words = sel.words();
  const size_t num_words = sel.num_words();
  constexpr size_t kWordsPerBatch = kSelectionBatchRows / 64;
  size_t visited = 0;
  bool completed = true;
  for (size_t w0 = 0; w0 < num_words; w0 += kWordsPerBatch) {
    if (gate->Tick() != TerminationReason::kCompleted) {
      completed = false;
      break;
    }
    const size_t w1 = std::min(w0 + kWordsPerBatch, num_words);
    for (size_t w = w0; w < w1; ++w) {
      uint64_t bits = words[w];
      const size_t base = row_offset + w * 64;
      while (bits != 0) {
        const int tz = __builtin_ctzll(bits);
        out->push_back(static_cast<RowId>(base + static_cast<size_t>(tz)));
        bits &= bits - 1;
      }
    }
    visited += std::min(w1 * 64, sel.num_rows()) - w0 * 64;
  }
  if (rows_visited != nullptr) *rows_visited = visited;
  return completed;
}

bool FusedGroupAggregate(const SelectionBitmap& sel, const Table& table,
                         const RankExpr& expr, const uint32_t* entity_codes,
                         BudgetGate* gate, std::vector<AggState>* groups,
                         std::vector<uint32_t>* touched,
                         size_t* rows_visited, RowId row_offset) {
  const uint64_t* words = sel.words();
  const size_t num_words = sel.num_words();
  constexpr size_t kWordsPerBatch = kSelectionBatchRows / 64;
  AggState* g = groups->data();
  size_t visited = 0;
  bool completed = true;
  for (size_t w0 = 0; w0 < num_words; w0 += kWordsPerBatch) {
    if (gate->Tick() != TerminationReason::kCompleted) {
      completed = false;
      break;
    }
    const size_t w1 = std::min(w0 + kWordsPerBatch, num_words);
    for (size_t w = w0; w < w1; ++w) {
      uint64_t bits = words[w];
      const size_t base = row_offset + w * 64;
      while (bits != 0) {
        const RowId r =
            static_cast<RowId>(base + static_cast<size_t>(__builtin_ctzll(bits)));
        const uint32_t code = entity_codes[r];
        AggState& state = g[code];
        if (state.count == 0) touched->push_back(code);
        state.Add(expr.Eval(table, r));
        bits &= bits - 1;
      }
    }
    visited += std::min(w1 * 64, sel.num_rows()) - w0 * 64;
  }
  if (rows_visited != nullptr) *rows_visited = visited;
  return completed;
}

}  // namespace paleo
