// Vectorized execution kernels (DuckDB-style selection vectors).
//
// Each kernel works on one typed column array in word-aligned batches
// of kSelectionBatchRows rows, producing (or consuming) a
// SelectionBitmap. A conjunction is evaluated atom-by-atom into per-atom
// bitmaps — cacheable across candidate queries that share the atom
// (engine/atom_cache.h) — and resolved by word-wise AND, replacing the
// per-row multi-atom branch chain of BoundPredicate::Matches on the
// executor's full-scan path.
//
// Scalar-equivalence contract: kernels visit rows in ascending order,
// so floating-point accumulation (AggState::Add) happens in exactly the
// order of the row-at-a-time scan and results are byte-identical to the
// scalar path (asserted by tests/vectorized_exec_test.cc).
//
// Budget handling mirrors the scalar scan: the BudgetGate is polled
// once per batch, and an interrupted kernel returns false with its
// output partial — callers must discard partial state, exactly as the
// scalar loop discards a partially aggregated execution.
//
// Thread-safety: kernels are pure functions of their inputs; concurrent
// calls over immutable tables are safe.

#ifndef PALEO_ENGINE_SELECTION_KERNELS_H_
#define PALEO_ENGINE_SELECTION_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/run_budget.h"
#include "engine/aggregate.h"
#include "engine/predicate.h"
#include "engine/rank_expr.h"
#include "engine/selection_bitmap.h"
#include "storage/column.h"

namespace paleo {

/// Rows evaluated per kernel batch. A multiple of 64 so batches never
/// straddle bitmap words; 2048 keeps a batch's column slice plus its
/// bitmap slice comfortably inside L1.
constexpr size_t kSelectionBatchRows = 2048;

/// Evaluates `atom` over rows [0, n) of its bound column into `out`
/// (which must cover exactly n rows), polling `gate` once per batch.
/// Returns false when the budget interrupted the scan; `out` is then
/// partial and must be discarded. `*rows_visited` (optional) receives
/// the number of rows evaluated (n on completion).
bool ComputeAtomSelection(const BoundAtom& atom, size_t n,
                          SelectionBitmap* out, BudgetGate* gate,
                          size_t* rows_visited = nullptr);

/// Chunk-range variant: evaluates `atom` over ABSOLUTE rows
/// [begin, end) of its bound column into `out`, whose bit i corresponds
/// to row begin + i (out must cover exactly end - begin rows).
/// Precondition: begin is a multiple of 64 (chunk boundaries are
/// word-aligned; see storage/table_view.h). Same gate/discard contract
/// as ComputeAtomSelection.
bool ComputeAtomSelectionRange(const BoundAtom& atom, RowId begin, RowId end,
                               SelectionBitmap* out, BudgetGate* gate,
                               size_t* rows_visited = nullptr);

/// Appends the selected rows of `sel` to `out` in ascending order,
/// polling `gate` once per batch. Returns false on interruption (same
/// discard contract as above). `row_offset` translates bitmap-local
/// positions to absolute row ids (bit i -> row_offset + i) for
/// per-chunk bitmaps.
bool CollectSelectedRows(const SelectionBitmap& sel, BudgetGate* gate,
                         std::vector<RowId>* out,
                         size_t* rows_visited = nullptr,
                         RowId row_offset = 0);

/// Fused filter + group-by aggregation: for each selected row of `sel`
/// in ascending order, evaluates `expr` over `table` at absolute row
/// row_offset + i (bit i of a per-chunk bitmap) and folds the value
/// into groups[entity_codes[row]], appending first-touched codes to
/// `touched` (`entity_codes` points at the FULL column array, indexed
/// by absolute row; `groups` must be pre-sized to the entity dictionary
/// and zero-count). Polls `gate` once per batch; returns false on
/// interruption with `groups`/`touched` partial.
bool FusedGroupAggregate(const SelectionBitmap& sel, const Table& table,
                         const RankExpr& expr, const uint32_t* entity_codes,
                         BudgetGate* gate, std::vector<AggState>* groups,
                         std::vector<uint32_t>* touched,
                         size_t* rows_visited = nullptr,
                         RowId row_offset = 0);

}  // namespace paleo

#endif  // PALEO_ENGINE_SELECTION_KERNELS_H_
