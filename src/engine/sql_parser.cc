#include "engine/sql_parser.h"

#include <cctype>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/string_util.h"

namespace paleo {

namespace {

enum class TokenKind {
  kIdentifier,  // bare word (keyword or column name)
  kString,      // 'literal'
  kNumber,      // integer or decimal
  kSymbol,      // , ( ) = + *
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;  // identifier/keyword (as written), literal payload
  double number = 0.0;
  bool number_is_int = false;
  int64_t int_value = 0;
  char symbol = 0;
  size_t position = 0;
};

/// Hand-rolled tokenizer for the template dialect.
class Lexer {
 public:
  explicit Lexer(std::string_view sql) : sql_(sql) {}

  StatusOr<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    size_t i = 0;
    while (i < sql_.size()) {
      char c = sql_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      Token token;
      token.position = i;
      if (c == '\'') {
        // SQL string with '' escaping.
        std::string payload;
        ++i;
        bool closed = false;
        while (i < sql_.size()) {
          if (sql_[i] == '\'') {
            if (i + 1 < sql_.size() && sql_[i + 1] == '\'') {
              payload += '\'';
              i += 2;
            } else {
              ++i;
              closed = true;
              break;
            }
          } else {
            payload += sql_[i++];
          }
        }
        if (!closed) {
          return Status::InvalidArgument(
              "unterminated string literal at position " +
              std::to_string(token.position));
        }
        token.kind = TokenKind::kString;
        token.text = std::move(payload);
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '-' &&
                  i + 1 < sql_.size() &&
                  std::isdigit(static_cast<unsigned char>(sql_[i + 1])))) {
        size_t start = i;
        if (c == '-') ++i;
        bool is_int = true;
        while (i < sql_.size() &&
               (std::isdigit(static_cast<unsigned char>(sql_[i])) ||
                sql_[i] == '.' || sql_[i] == 'e' || sql_[i] == 'E' ||
                ((sql_[i] == '+' || sql_[i] == '-') &&
                 (sql_[i - 1] == 'e' || sql_[i - 1] == 'E')))) {
          if (!std::isdigit(static_cast<unsigned char>(sql_[i])))
            is_int = false;
          ++i;
        }
        std::string text(sql_.substr(start, i - start));
        token.kind = TokenKind::kNumber;
        token.text = text;
        token.number = std::strtod(text.c_str(), nullptr);
        token.number_is_int = is_int;
        if (is_int) token.int_value = std::strtoll(text.c_str(), nullptr, 10);
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = i;
        while (i < sql_.size() &&
               (std::isalnum(static_cast<unsigned char>(sql_[i])) ||
                sql_[i] == '_')) {
          ++i;
        }
        token.kind = TokenKind::kIdentifier;
        token.text = std::string(sql_.substr(start, i - start));
      } else if (c == ',' || c == '(' || c == ')' || c == '=' || c == '+' ||
                 c == '*') {
        token.kind = TokenKind::kSymbol;
        token.symbol = c;
        ++i;
      } else {
        return Status::InvalidArgument("unexpected character '" +
                                       std::string(1, c) + "' at position " +
                                       std::to_string(i));
      }
      tokens.push_back(std::move(token));
    }
    Token end;
    end.position = sql_.size();
    tokens.push_back(end);
    return tokens;
  }

 private:
  std::string_view sql_;
};

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  Parser(std::vector<Token> tokens, const Schema& schema)
      : tokens_(std::move(tokens)), schema_(schema) {}

  StatusOr<TopKQuery> Parse() {
    TopKQuery query;
    PALEO_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    PALEO_ASSIGN_OR_RETURN(std::string entity, ExpectIdentifier());
    if (schema_.FieldIndex(entity) != schema_.entity_index()) {
      return Status::InvalidArgument("SELECT must project the entity column "
                                     "'" +
                                     schema_.field(schema_.entity_index())
                                         .name +
                                     "', got '" + entity + "'");
    }
    PALEO_RETURN_NOT_OK(ExpectSymbol(','));
    PALEO_ASSIGN_OR_RETURN(Ranking select_ranking, ParseRanking());
    PALEO_RETURN_NOT_OK(ExpectKeyword("FROM"));
    PALEO_RETURN_NOT_OK(ExpectIdentifier().status());  // table name: free

    if (PeekKeyword("WHERE")) {
      Advance();
      PALEO_ASSIGN_OR_RETURN(query.predicate, ParsePredicate());
    }

    bool has_group_by = false;
    if (PeekKeyword("GROUP")) {
      Advance();
      PALEO_RETURN_NOT_OK(ExpectKeyword("BY"));
      PALEO_ASSIGN_OR_RETURN(std::string group_col, ExpectIdentifier());
      if (schema_.FieldIndex(group_col) != schema_.entity_index()) {
        return Status::InvalidArgument(
            "GROUP BY must group by the entity column, got '" + group_col +
            "'");
      }
      has_group_by = true;
    }

    PALEO_RETURN_NOT_OK(ExpectKeyword("ORDER"));
    PALEO_RETURN_NOT_OK(ExpectKeyword("BY"));
    PALEO_ASSIGN_OR_RETURN(Ranking order_ranking, ParseRanking());
    if (!(select_ranking.expr == order_ranking.expr) ||
        select_ranking.agg != order_ranking.agg) {
      return Status::InvalidArgument(
          "ORDER BY ranking differs from the SELECT ranking");
    }
    query.expr = select_ranking.expr;
    query.agg = select_ranking.agg;
    if ((query.agg == AggFn::kNone) == has_group_by) {
      return Status::InvalidArgument(
          has_group_by ? "GROUP BY requires an aggregate in the SELECT list"
                       : "an aggregate requires GROUP BY on the entity");
    }

    query.order = SortOrder::kDesc;
    if (PeekKeyword("DESC")) {
      Advance();
    } else if (PeekKeyword("ASC")) {
      query.order = SortOrder::kAsc;
      Advance();
    }

    PALEO_RETURN_NOT_OK(ExpectKeyword("LIMIT"));
    const Token& k = Peek();
    if (k.kind != TokenKind::kNumber || !k.number_is_int ||
        k.int_value <= 0) {
      return Status::InvalidArgument("LIMIT expects a positive integer");
    }
    query.k = static_cast<int>(k.int_value);
    Advance();

    if (Peek().kind != TokenKind::kEnd) {
      return Status::InvalidArgument("trailing tokens after LIMIT at "
                                     "position " +
                                     std::to_string(Peek().position));
    }
    return query;
  }

 private:
  struct Ranking {
    RankExpr expr;
    AggFn agg = AggFn::kNone;
  };

  static StatusOr<AggFn> AggFromName(const std::string& name) {
    std::string lower = ToLower(name);
    if (lower == "max") return AggFn::kMax;
    if (lower == "min") return AggFn::kMin;
    if (lower == "sum") return AggFn::kSum;
    if (lower == "avg") return AggFn::kAvg;
    if (lower == "count") return AggFn::kCount;
    return Status::InvalidArgument("unknown aggregate: " + name);
  }

  bool IsKeyword(const Token& token, const char* keyword) const {
    return token.kind == TokenKind::kIdentifier &&
           ToUpper(token.text) == keyword;
  }

  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() { ++pos_; }

  bool PeekKeyword(const char* keyword) const {
    return IsKeyword(Peek(), keyword);
  }

  Status ExpectKeyword(const char* keyword) {
    if (!PeekKeyword(keyword)) {
      return Status::InvalidArgument("expected " + std::string(keyword) +
                                     " at position " +
                                     std::to_string(Peek().position));
    }
    Advance();
    return Status::OK();
  }

  StatusOr<std::string> ExpectIdentifier() {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Status::InvalidArgument("expected an identifier at position " +
                                     std::to_string(Peek().position));
    }
    std::string text = Peek().text;
    Advance();
    return text;
  }

  Status ExpectSymbol(char symbol) {
    if (Peek().kind != TokenKind::kSymbol || Peek().symbol != symbol) {
      return Status::InvalidArgument("expected '" + std::string(1, symbol) +
                                     "' at position " +
                                     std::to_string(Peek().position));
    }
    Advance();
    return Status::OK();
  }

  StatusOr<int> ResolveColumn(const std::string& name) {
    int idx = schema_.FieldIndex(name);
    if (idx < 0) {
      return Status::NotFound("unknown column: " + name);
    }
    return idx;
  }

  /// <column> [ ('+'|'*') <column> ]
  StatusOr<RankExpr> ParseExpr() {
    PALEO_ASSIGN_OR_RETURN(std::string first, ExpectIdentifier());
    PALEO_ASSIGN_OR_RETURN(int a, ResolveColumn(first));
    if (Peek().kind == TokenKind::kSymbol &&
        (Peek().symbol == '+' || Peek().symbol == '*')) {
      char op = Peek().symbol;
      Advance();
      PALEO_ASSIGN_OR_RETURN(std::string second, ExpectIdentifier());
      PALEO_ASSIGN_OR_RETURN(int b, ResolveColumn(second));
      return op == '+' ? RankExpr::Add(a, b) : RankExpr::Mul(a, b);
    }
    return RankExpr::Column(a);
  }

  /// <agg> '(' <expr> ')' | <expr>
  StatusOr<Ranking> ParseRanking() {
    Ranking ranking;
    // Lookahead: identifier followed by '(' is an aggregate call.
    if (Peek().kind == TokenKind::kIdentifier &&
        pos_ + 1 < tokens_.size() &&
        tokens_[pos_ + 1].kind == TokenKind::kSymbol &&
        tokens_[pos_ + 1].symbol == '(') {
      PALEO_ASSIGN_OR_RETURN(ranking.agg, AggFromName(Peek().text));
      Advance();
      PALEO_RETURN_NOT_OK(ExpectSymbol('('));
      PALEO_ASSIGN_OR_RETURN(ranking.expr, ParseExpr());
      PALEO_RETURN_NOT_OK(ExpectSymbol(')'));
      return ranking;
    }
    ranking.agg = AggFn::kNone;
    PALEO_ASSIGN_OR_RETURN(ranking.expr, ParseExpr());
    return ranking;
  }

  /// One literal, typed by the column it constrains.
  StatusOr<Value> ParseLiteral(int column, const std::string& name) {
    const Token& literal = Peek();
    Value value;
    if (literal.kind == TokenKind::kString) {
      value = Value::String(literal.text);
    } else if (literal.kind == TokenKind::kNumber) {
      // Literal type follows the column's physical type.
      if (schema_.field(column).type == DataType::kDouble) {
        value = Value::Double(literal.number);
      } else if (literal.number_is_int) {
        value = Value::Int64(literal.int_value);
      } else {
        return Status::TypeError("decimal literal for non-DOUBLE column " +
                                 name);
      }
    } else {
      return Status::InvalidArgument("expected a literal at position " +
                                     std::to_string(literal.position));
    }
    Advance();
    return value;
  }

  /// <atom> { AND <atom> } where <atom> is
  /// <column> = <literal> | <column> BETWEEN <literal> AND <literal>.
  /// The AND after BETWEEN binds to the range, as in SQL.
  StatusOr<Predicate> ParsePredicate() {
    std::vector<AtomicPredicate> atoms;
    for (;;) {
      PALEO_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
      PALEO_ASSIGN_OR_RETURN(int column, ResolveColumn(name));
      AtomicPredicate atom;
      if (PeekKeyword("BETWEEN")) {
        Advance();
        if (!IsNumeric(schema_.field(column).type)) {
          return Status::TypeError("BETWEEN requires a numeric column, " +
                                   name + " is not");
        }
        PALEO_ASSIGN_OR_RETURN(Value low, ParseLiteral(column, name));
        PALEO_RETURN_NOT_OK(ExpectKeyword("AND"));
        PALEO_ASSIGN_OR_RETURN(Value high, ParseLiteral(column, name));
        if (!low.is_numeric() || !high.is_numeric() ||
            low.AsDouble() > high.AsDouble()) {
          return Status::InvalidArgument("empty BETWEEN range on " + name);
        }
        atom = AtomicPredicate::Range(column, std::move(low),
                                      std::move(high));
      } else {
        PALEO_RETURN_NOT_OK(ExpectSymbol('='));
        PALEO_ASSIGN_OR_RETURN(Value value, ParseLiteral(column, name));
        atom = AtomicPredicate(column, std::move(value));
      }
      for (const AtomicPredicate& existing : atoms) {
        if (existing.column == column) {
          return Status::InvalidArgument("column " + name +
                                         " constrained twice");
        }
      }
      atoms.push_back(std::move(atom));
      if (PeekKeyword("AND")) {
        Advance();
        continue;
      }
      break;
    }
    return Predicate(std::move(atoms));
  }

  std::vector<Token> tokens_;
  const Schema& schema_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<TopKQuery> ParseTopKQuery(std::string_view sql,
                                   const Schema& schema) {
  Lexer lexer(sql);
  PALEO_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens), schema);
  return parser.Parse();
}

}  // namespace paleo
