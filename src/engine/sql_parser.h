// Parser for the template query dialect — the inverse of
// TopKQuery::ToSql.
//
// Grammar (keywords case-insensitive; whitespace free-form):
//
//   SELECT <entity> , <ranking> FROM <ident>
//   [ WHERE <column> = <literal> { AND <column> = <literal> } ]
//   [ GROUP BY <entity> ]
//   ORDER BY <ranking> [ ASC | DESC ] LIMIT <int>
//
//   <ranking> ::= <agg> '(' <expr> ')' | <expr>
//   <agg>     ::= max | min | sum | avg | count
//   <expr>    ::= <column> [ ('+'|'*') <column> ]
//   <literal> ::= 'string' (with '' escaping) | integer | decimal
//
// Column names are resolved against the schema; the SELECT/GROUP BY
// entity must be the schema's entity column; the two <ranking>
// occurrences must agree. A query without an aggregate must omit
// GROUP BY and vice versa.

#ifndef PALEO_ENGINE_SQL_PARSER_H_
#define PALEO_ENGINE_SQL_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "engine/query.h"
#include "types/schema.h"

namespace paleo {

/// Parses one template query against `schema`. Errors carry the
/// offending token and position.
StatusOr<TopKQuery> ParseTopKQuery(std::string_view sql,
                                   const Schema& schema);

}  // namespace paleo

#endif  // PALEO_ENGINE_SQL_PARSER_H_
