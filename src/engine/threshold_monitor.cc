#include "engine/threshold_monitor.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "storage/zone_map.h"

namespace paleo {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Refutation slack: wide enough to absorb float wobble between the
/// completion-order running bounds and the canonical-order final
/// values, narrow enough to catch any macroscopic mismatch. Never
/// tighter than the acceptance eps.
double SlackFor(double rel_eps) { return std::max(rel_eps * 16.0, 1e-7); }

/// True when x exceeds v by more than the relative slack (the same
/// scale convention as ValuesClose in engine/topk_list.h).
bool Above(double x, double v, double slack) {
  const double scale = std::max(std::abs(x), std::abs(v));
  return x - v > slack * std::max(scale, 1.0);
}

/// Per-row [lo, hi] of one column over one chunk, from its zone map.
/// Empty zones (all-NaN or legacy layouts) are unbounded.
void ColumnBounds(const Column& col, const ZoneMap& zone, double* lo,
                  double* hi) {
  if (zone.empty) {
    *lo = -kInf;
    *hi = kInf;
    return;
  }
  switch (col.type()) {
    case DataType::kInt64:
      *lo = static_cast<double>(zone.int_min);
      *hi = static_cast<double>(zone.int_max);
      return;
    case DataType::kDouble:
      *lo = zone.double_min;
      *hi = zone.double_max;
      return;
    case DataType::kString:
      // A string column cannot be a ranking operand (the executor
      // validates numeric columns); unbounded keeps this conservative.
      *lo = -kInf;
      *hi = kInf;
      return;
  }
  *lo = -kInf;
  *hi = kInf;
}

/// Per-row [lo, hi] of the ranking expression over one chunk.
void ExprBounds(const RankExpr& expr, const Table& table, const Chunk& chunk,
                double* lo, double* hi) {
  double la;
  double ha;
  const size_t col_a = static_cast<size_t>(expr.column_a());
  ColumnBounds(table.column(static_cast<int>(col_a)), chunk.zones[col_a], &la,
               &ha);
  if (expr.is_single_column()) {
    *lo = la;
    *hi = ha;
    return;
  }
  double lb;
  double hb;
  const size_t col_b = static_cast<size_t>(expr.column_b());
  ColumnBounds(table.column(static_cast<int>(col_b)), chunk.zones[col_b], &lb,
               &hb);
  if (expr.kind() == RankExpr::Kind::kAdd) {
    *lo = la + lb;
    *hi = ha + hb;
    return;
  }
  // kMul: the product range is spanned by the interval corners. Any
  // non-finite operand bound makes corner arithmetic ill-defined
  // (inf * 0 = NaN): stay conservative with unbounded.
  if (!std::isfinite(la) || !std::isfinite(ha) || !std::isfinite(lb) ||
      !std::isfinite(hb)) {
    *lo = -kInf;
    *hi = kInf;
    return;
  }
  const double c1 = la * lb;
  const double c2 = la * hb;
  const double c3 = ha * lb;
  const double c4 = ha * hb;
  *lo = std::min(std::min(c1, c2), std::min(c3, c4));
  *hi = std::max(std::max(c1, c2), std::max(c3, c4));
}

/// True when every row value of the ranking expression is an integer
/// (exactly representable in double at these magnitudes): all operand
/// columns are int64, and add/mul preserve integrality.
bool IsIntegerExpr(const RankExpr& expr, const Table& table) {
  if (table.column(expr.column_a()).type() != DataType::kInt64) return false;
  if (expr.is_single_column()) return true;
  return table.column(expr.column_b()).type() == DataType::kInt64;
}

}  // namespace

ThresholdMonitor::ThresholdMonitor(const Table& table, const TopKList& input,
                                   SortOrder order, double rel_eps)
    : order_(order), k_(input.size()), slack_(SlackFor(rel_eps)) {
  if (input.empty()) return;
  // Values must be sorted consistently with the candidate order; an
  // unsorted L can never be produced by a grouped top-k query, so
  // pruning would save nothing the ordinary rejection does not.
  const std::vector<TopKEntry>& entries = input.entries();
  for (size_t i = 1; i < entries.size(); ++i) {
    const bool ok = order == SortOrder::kDesc
                        ? entries[i - 1].value >= entries[i].value
                        : entries[i - 1].value <= entries[i].value;
    if (!ok) return;
  }
  const StringDictionary& dict = *table.entity_column().dict();
  targets_.reserve(entries.size());
  for (const TopKEntry& e : entries) {
    const uint32_t code = dict.Lookup(e.entity);
    // An entity absent from R's dictionary (possible on mutated or
    // foreign inputs) or duplicated in L (kNone-style lists) means no
    // grouped candidate can ever be accepted; deactivate rather than
    // special-case.
    if (code == StringDictionary::kInvalidCode ||
        targets_.count(code) != 0) {
      targets_.clear();
      return;
    }
    targets_.emplace(code, e.value);
  }
  worst_value_ = entries.back().value;
  is_target_.assign(dict.size(), 0);
  for (const auto& [code, value] : targets_) {
    (void)value;
    is_target_[code] = 1;
  }
  // Tie-break order against L's k-th entry, for the integer tie-
  // displacement rule (see ThresholdState). One pass over the
  // dictionary per validation run; the per-chunk probes are bitmap
  // reads.
  const std::string& worst_name = entries.back().entity;
  precedes_worst_.assign(dict.size(), 0);
  for (uint32_t code = 0; code < dict.size(); ++code) {
    precedes_worst_[code] = dict.Get(code) < worst_name ? 1 : 0;
  }
  active_ = true;
}

std::unique_ptr<ThresholdMonitor::GroupScratch>
ThresholdMonitor::AcquireScratch(size_t dict_size) const {
  std::unique_ptr<GroupScratch> scratch;
  {
    MutexLock lock(pool_mutex_);
    if (!pool_.empty()) {
      scratch = std::move(pool_.back());
      pool_.pop_back();
    }
  }
  if (scratch == nullptr) scratch = std::make_unique<GroupScratch>();
  if (scratch->groups.size() < dict_size) {
    scratch->groups.resize(dict_size);
    scratch->stamps.resize(dict_size, 0);
  }
  // Advancing the generation invalidates every stale slot at once. On
  // the (unreachable in practice) wraparound the stamps are rewound
  // explicitly so no slot can alias the fresh generation.
  if (++scratch->gen == 0) {
    std::fill(scratch->stamps.begin(), scratch->stamps.end(), 0);
    scratch->gen = 1;
  }
  scratch->touched.clear();
  return scratch;
}

void ThresholdMonitor::ReleaseScratch(
    std::unique_ptr<GroupScratch> scratch) const {
  if (scratch == nullptr) return;
  MutexLock lock(pool_mutex_);
  pool_.push_back(std::move(scratch));
}

ThresholdState::ThresholdState(const ThresholdMonitor* monitor,
                               const Table& table, const TableView& view,
                               const TopKQuery& query)
    : monitor_(monitor),
      agg_(query.agg),
      desc_(query.order == SortOrder::kDesc) {
  const size_t num_chunks = view.num_chunks();
  chunk_lo_.resize(num_chunks);
  chunk_hi_.resize(num_chunks);
  chunk_rows_.resize(num_chunks);
  MutexLock lock(mutex_);
  chunk_done_.assign(num_chunks, false);
  for (size_t i = 0; i < num_chunks; ++i) {
    const Chunk& ch = view.chunk(i);
    ExprBounds(query.expr, table, ch, &chunk_lo_[i], &chunk_hi_[i]);
    chunk_rows_[i] = ch.num_rows();
    rem_rows_ += chunk_rows_[i];
    const double n = static_cast<double>(chunk_rows_[i]);
    rem_pos_ += n * std::max(0.0, chunk_hi_[i]);
    rem_neg_ += n * std::min(0.0, chunk_lo_[i]);
    rem_his_.insert(chunk_hi_[i]);
    rem_los_.insert(chunk_lo_[i]);
  }
  scratch_ = monitor->AcquireScratch(table.entity_column().dict()->size());
  foreign_stat_ = desc_ ? -kInf : kInf;
  // Integer tie-displacement rule (see the header): only for the
  // aggregates whose beat-side bound is exact AND changes only when
  // the group is touched (so the inline merge-loop check is complete):
  // MAX and COUNT under desc (running lb), MIN under asc (running ub).
  // COUNT is integral regardless of the expression. Requires the
  // acceptance tolerance to be far below the integer gap at the cut's
  // magnitude, so value-closeness collapses to exact equality.
  const bool integral =
      agg_ == AggFn::kCount || IsIntegerExpr(query.expr, table);
  const bool exact_side = desc_
                              ? (agg_ == AggFn::kMax || agg_ == AggFn::kCount)
                              : agg_ == AggFn::kMin;
  const double worst = monitor->worst_value();
  int_tie_ = monitor->active() && integral && exact_side &&
             monitor->slack() * std::max(std::abs(worst), 1.0) < 0.25;
  tie_lo_ = worst - 0.5;
  tie_hi_ = worst + 0.5;
}

ThresholdState::~ThresholdState() {
  std::unique_ptr<ThresholdMonitor::GroupScratch> scratch;
  {
    MutexLock lock(mutex_);
    scratch = std::move(scratch_);
  }
  monitor_->ReleaseScratch(std::move(scratch));
}

void ThresholdState::RetireChunkLocked(size_t chunk_index) {
  if (chunk_done_[chunk_index]) return;
  chunk_done_[chunk_index] = true;
  rem_rows_ -= chunk_rows_[chunk_index];
  const double n = static_cast<double>(chunk_rows_[chunk_index]);
  rem_pos_ -= n * std::max(0.0, chunk_hi_[chunk_index]);
  rem_neg_ -= n * std::min(0.0, chunk_lo_[chunk_index]);
  rem_his_.erase(rem_his_.find(chunk_hi_[chunk_index]));
  rem_los_.erase(rem_los_.find(chunk_lo_[chunk_index]));
}

void ThresholdState::NoteChunkSkipped(size_t chunk_index) {
  MutexLock lock(mutex_);
  RetireChunkLocked(chunk_index);
  // Dropping a chunk only tightens bounds: seen groups may now be
  // refutable even though no new rows arrived.
  CheckLocked();
}

void ThresholdState::NoteChunk(size_t chunk_index,
                               const std::vector<uint32_t>& touched,
                               const std::vector<AggState>& partials) {
  MutexLock lock(mutex_);
  RetireChunkLocked(chunk_index);
  const uint32_t gen = scratch_->gen;
  for (size_t i = 0; i < touched.size(); ++i) {
    const uint32_t code = touched[i];
    AggState& g = scratch_->groups[code];
    if (scratch_->stamps[code] != gen) {
      scratch_->stamps[code] = gen;
      g = AggState{};
      scratch_->touched.push_back(code);
    }
    // Merge order is morsel completion order, NOT the canonical chunk
    // order — fine for bounds (set semantics), absorbed by the slack
    // for float wobble.
    g.Merge(partials[i]);
    if (!monitor_->IsTarget(code)) {
      // Fold the group's refutation statistic into the foreign
      // extremum tracker (see the header note on when this is exact
      // vs merely conservative).
      double stat = 0.0;
      switch (agg_) {
        case AggFn::kMax:
          stat = g.max;
          break;
        case AggFn::kMin:
          stat = g.min;
          break;
        case AggFn::kSum:
          stat = g.sum;
          break;
        case AggFn::kCount:
          stat = static_cast<double>(g.count);
          break;
        case AggFn::kAvg:
        case AggFn::kNone:
          continue;
      }
      foreign_stat_ = desc_ ? std::max(foreign_stat_, stat)
                            : std::min(foreign_stat_, stat);
      // Integer tie displacement: under desc the group's final value f
      // satisfies f >= stat (exact, monotone); if stat clears the cut
      // by more than the integer half-gap, f beats L's k-th entry by
      // value, and if it lands inside the half-gap (an exact tie after
      // tolerance collapse) while the group's name precedes the k-th
      // entry's, f beats it on the executor's name tie-break. Either
      // way a foreign entity enters the top-k, so no result can equal
      // L. Mirrored for asc (f <= stat).
      if (int_tie_ &&
          (desc_ ? (stat > tie_hi_ ||
                    (stat > tie_lo_ && monitor_->PrecedesWorst(code)))
                 : (stat < tie_lo_ ||
                    (stat < tie_hi_ && monitor_->PrecedesWorst(code))))) {
        // relaxed: see refuted().
        refuted_.store(true, std::memory_order_relaxed);
        return;
      }
    }
  }
  CheckLocked();
}

void ThresholdState::BoundsLocked(const AggState& s, double rem_hi,
                                  double rem_lo, double* lb,
                                  double* ub) const {
  switch (agg_) {
    case AggFn::kMax:
      *lb = s.max;
      *ub = std::max(s.max, rem_hi);
      return;
    case AggFn::kMin:
      *lb = std::min(s.min, rem_lo);
      *ub = s.min;
      return;
    case AggFn::kSum:
      *lb = s.sum + rem_neg_;
      *ub = s.sum + rem_pos_;
      return;
    case AggFn::kCount:
      *lb = static_cast<double>(s.count);
      *ub = static_cast<double>(s.count + static_cast<int64_t>(rem_rows_));
      return;
    case AggFn::kAvg: {
      const double cur = s.sum / static_cast<double>(s.count);
      if (rem_rows_ == 0) {
        *lb = *ub = cur;
      } else {
        *lb = std::min(cur, rem_lo);
        *ub = std::max(cur, rem_hi);
      }
      return;
    }
    case AggFn::kNone:
      break;  // never constructed for ungrouped queries
  }
  *lb = -kInf;
  *ub = kInf;
}

void ThresholdState::CheckLocked() {
  if (refuted_.load(std::memory_order_relaxed)) return;
  const double rem_hi = rem_his_.empty() ? -kInf : *rem_his_.rbegin();
  const double rem_lo = rem_los_.empty() ? kInf : *rem_los_.begin();
  const double slack = monitor_->slack();
  // In-L groups: k of them, checked exactly every time. A target the
  // scan has not touched yet has no running value to test (its bounds
  // still span the whole remaining potential).
  for (const auto& [code, target] : monitor_->targets()) {
    if (scratch_->stamps[code] != scratch_->gen) continue;
    const AggState& s = scratch_->groups[code];
    double lb;
    double ub;
    BoundsLocked(s, rem_hi, rem_lo, &lb, &ub);
    // An entity of L must finish exactly at its target value.
    if (Above(lb, target, slack) || Above(target, ub, slack)) {
      // relaxed: see refuted(); the flag is advisory and sticky.
      refuted_.store(true, std::memory_order_relaxed);
      return;
    }
  }
  // Foreign groups: O(1) on the extremum tracker. Only when the
  // tracker's (possibly stale) bound says some foreign group might
  // provably beat L's cut do we pay the exact per-group pass. For the
  // per-group-monotone statistics the tracker is exact and the verify
  // pass refutes on its first iteration; for the rest a no-refute
  // verify tightens the tracker, so repeated triggers need the bound
  // to move again. NaN-poisoned statistics fail the comparison and
  // trigger nothing (conservative).
  const double worst = monitor_->worst_value();
  bool trigger = false;
  switch (agg_) {
    case AggFn::kMax:
      trigger = desc_ ? Above(foreign_stat_, worst, slack)
                      : Above(worst, std::max(foreign_stat_, rem_hi), slack);
      break;
    case AggFn::kMin:
      trigger = desc_ ? Above(std::min(foreign_stat_, rem_lo), worst, slack)
                      : Above(worst, foreign_stat_, slack);
      break;
    case AggFn::kSum:
      trigger = desc_ ? Above(foreign_stat_ + rem_neg_, worst, slack)
                      : Above(worst, foreign_stat_ + rem_pos_, slack);
      break;
    case AggFn::kCount:
      trigger =
          desc_ ? Above(foreign_stat_, worst, slack)
                : Above(worst,
                        foreign_stat_ + static_cast<double>(rem_rows_),
                        slack);
      break;
    case AggFn::kAvg:
    case AggFn::kNone:
      trigger = false;
      break;
  }
  if (trigger) VerifyForeignLocked(rem_hi, rem_lo);
}

void ThresholdState::VerifyForeignLocked(double rem_hi, double rem_lo) {
  const double slack = monitor_->slack();
  const double worst = monitor_->worst_value();
  double tight = desc_ ? -kInf : kInf;
  for (uint32_t code : scratch_->touched) {
    if (monitor_->IsTarget(code)) continue;
    const AggState& s = scratch_->groups[code];
    double lb;
    double ub;
    BoundsLocked(s, rem_hi, rem_lo, &lb, &ub);
    // A foreign entity must not beat L's worst entry; NaN-poisoned
    // bounds fail both comparisons and refute nothing (conservative).
    if (desc_ ? Above(lb, worst, slack) : Above(worst, ub, slack)) {
      // relaxed: see refuted(); the flag is advisory and sticky.
      refuted_.store(true, std::memory_order_relaxed);
      return;
    }
    double stat = 0.0;
    switch (agg_) {
      case AggFn::kMax:
        stat = s.max;
        break;
      case AggFn::kMin:
        stat = s.min;
        break;
      case AggFn::kSum:
        stat = s.sum;
        break;
      case AggFn::kCount:
        stat = static_cast<double>(s.count);
        break;
      case AggFn::kAvg:
      case AggFn::kNone:
        continue;
    }
    tight = desc_ ? std::max(tight, stat) : std::min(tight, stat);
  }
  foreign_stat_ = tight;
}

}  // namespace paleo
