// Threshold-style early termination for candidate-query validation.
//
// Validation executes a candidate query only to compare its result
// against the KNOWN top-k list L — so the full grouped aggregate is
// wasted work the moment the running per-group aggregates can no
// longer reproduce L's entities, order, or values. In the spirit of
// threshold / any-k ranked enumeration (Tziavelis et al.), the
// executor's chunk-canonical scan maintains per-group running
// aggregates plus BOUNDS on every group's final value derived from the
// not-yet-scanned chunks' zone maps and row counts, and aborts the
// scan with Status::QueryRefuted the instant some group provably
// cannot land where L requires it.
//
// Per aggregate kind, with s = the group's running AggState over the
// processed chunks and R = the set of remaining (unprocessed,
// non-zone-skipped) chunks, each with per-row expression bounds
// [lo_c, hi_c] (from its zone maps) and row count n_c, the final value
// f is bracketed by [lb, ub]:
//
//   SUM    lb = s.sum + sum_c n_c*min(0, lo_c)   (monotone when lo>=0)
//          ub = s.sum + sum_c n_c*max(0, hi_c)
//   COUNT  lb = s.count            ub = s.count + sum_c n_c (monotone)
//   MAX    lb = s.max              ub = max(s.max, max_c hi_c)
//   MIN    lb = min(s.min, min_c lo_c)           ub = s.min
//   AVG    lb = min(s.sum/s.count, min_c lo_c)
//          ub = max(s.sum/s.count, max_c hi_c)
//
// Refutation rules (sound: an accepted candidate is NEVER refuted):
//   - a group that is an entity of L with target value v is refuted
//     when lb > v or ub < v beyond the tolerance slack;
//   - a FOREIGN group (not in L) is refuted when it provably beats L's
//     worst entry: lb > v_k under descending order, ub < v_k under
//     ascending (a foreign entity ranking above the cut contradicts
//     result == L);
//   - integer tie displacement: when the ranking values are provably
//     integral and the tolerance is far below the integer gap, a
//     foreign group whose EXACT beat-side bound ties v_k while its
//     entity name precedes L's k-th entry's name is refuted — the
//     executor breaks exact value ties by name ascending, so the
//     foreign entity displaces the k-th entry, and acceptance compares
//     entity (multi)sets, which a foreign entity always breaks. This
//     fires on the tie populations (small integer domains saturating
//     many groups at the cut value) where value bounds alone never
//     separate.
// Empty zone maps yield infinite bounds (refute nothing), and NaN row
// values — excluded from zone maps — poison only groups that could
// never be accepted anyway, so the bounds stay sound (see the zone-map
// NaN note in storage/zone_map.h).
//
// The tolerance slack is deliberately wider than the acceptance
// rel_eps: running bounds are merged in morsel completion order, not
// the canonical chunk order, so float wobble up to a few ulps of the
// accumulation must never refute a candidate the canonical result
// would accept. Values that differ by less than the slack are simply
// not refuted — they are rejected (or accepted) by the ordinary full
// comparison instead.
//
// Thread-safety: ThresholdMonitor is immutable after construction and
// shared by every execution of one validation run. ThresholdState is
// per-execution: NoteChunk / NoteChunkSkipped are internally
// synchronized (morsel workers call them concurrently in completion
// order — the bounds above are set-of-chunks semantics, so completion
// order does not matter); refuted() is a lock-free flag cheap enough
// to poll between chunks.

#ifndef PALEO_ENGINE_THRESHOLD_MONITOR_H_
#define PALEO_ENGINE_THRESHOLD_MONITOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "engine/aggregate.h"
#include "engine/query.h"
#include "engine/topk_list.h"
#include "storage/table.h"
#include "storage/table_view.h"

namespace paleo {

/// \brief Immutable per-validation-run refutation targets: L resolved
/// against the table's entity dictionary.
class ThresholdMonitor {
 public:
  /// Builds the monitor for reverse engineering `input` over `table`
  /// with candidate queries ordered by `order`. `rel_eps` is the
  /// acceptance tolerance; the monitor widens it into its refutation
  /// slack. The monitor deactivates itself (active() == false, prunes
  /// nothing) whenever refutation would be unsound or useless: an
  /// empty input, duplicate entities (no grouped query can produce
  /// them), an entity absent from the table's dictionary, or values
  /// not sorted consistently with `order`.
  ThresholdMonitor(const Table& table, const TopKList& input,
                   SortOrder order, double rel_eps);

  ThresholdMonitor(const ThresholdMonitor&) = delete;
  ThresholdMonitor& operator=(const ThresholdMonitor&) = delete;

  bool active() const { return active_; }

  /// True when `query`'s shape matches what the targets were built
  /// for: grouped aggregate, same k, same sort order. The executor
  /// prunes only when this holds (and the monitor is active).
  bool AppliesTo(const TopKQuery& query) const {
    return active_ && query.agg != AggFn::kNone &&
           static_cast<size_t>(query.k) == k_ && query.order == order_;
  }

  SortOrder order() const { return order_; }
  size_t k() const { return k_; }
  /// The refutation slack (relative), wider than the acceptance eps.
  double slack() const { return slack_; }
  /// L's worst (k-th) value — the cut a foreign group must not beat.
  double worst_value() const { return worst_value_; }

  /// Target value for entity code `code`, or nullptr when the code is
  /// not an entity of L (a foreign group).
  const double* TargetFor(uint32_t code) const {
    auto it = targets_.find(code);
    return it == targets_.end() ? nullptr : &it->second;
  }

  /// All k (entity code, required value) targets — the in-L groups the
  /// per-chunk check iterates directly (O(k), not O(seen groups)).
  const std::unordered_map<uint32_t, double>& targets() const {
    return targets_;
  }

  /// Dense is-an-entity-of-L test (valid codes only; built once for
  /// the whole run — the merge loop probes it per matching row's
  /// group, where a hash lookup would dominate the merge).
  bool IsTarget(uint32_t code) const {
    return code < is_target_.size() && is_target_[code] != 0;
  }

  /// True when entity `code`'s name orders before L's k-th entry's
  /// name — the executor's tie-break. A foreign group that TIES the
  /// cut value exactly and precedes the k-th name displaces it (see
  /// the integer tie rule in ThresholdState).
  bool PrecedesWorst(uint32_t code) const {
    return code < precedes_worst_.size() && precedes_worst_[code] != 0;
  }

  /// \brief Reusable dense per-group accumulation buffers.
  ///
  /// A ThresholdState needs a dict-sized dense AggState array; zeroing
  /// one per execution costs more than the whole incremental check, so
  /// states borrow generation-stamped buffers from this pool (slots
  /// whose stamp is stale read as untouched) and return them on
  /// destruction. Buffers are handed to one state at a time; the pool
  /// itself is internally synchronized.
  struct GroupScratch {
    std::vector<AggState> groups;
    std::vector<uint32_t> stamps;
    uint32_t gen = 0;
    std::vector<uint32_t> touched;
  };
  std::unique_ptr<GroupScratch> AcquireScratch(size_t dict_size) const;
  void ReleaseScratch(std::unique_ptr<GroupScratch> scratch) const;

 private:
  bool active_ = false;
  SortOrder order_ = SortOrder::kDesc;
  size_t k_ = 0;
  double slack_ = 0.0;
  double worst_value_ = 0.0;
  std::unordered_map<uint32_t, double> targets_;
  std::vector<uint8_t> is_target_;
  std::vector<uint8_t> precedes_worst_;

  mutable Mutex pool_mutex_;
  mutable std::vector<std::unique_ptr<GroupScratch>> pool_
      GUARDED_BY(pool_mutex_);
};

/// \brief Per-execution running aggregates + remaining-chunk bounds.
///
/// Created by the executor for one full grouped scan; morsel workers
/// feed completed chunks through NoteChunk / NoteChunkSkipped and poll
/// refuted() before claiming the next chunk.
class ThresholdState {
 public:
  /// Precomputes per-chunk expression bounds from `view`'s zone maps
  /// (O(num_chunks), trivially cheaper than scanning one chunk).
  ThresholdState(const ThresholdMonitor* monitor, const Table& table,
                 const TableView& view, const TopKQuery& query);
  /// Returns the borrowed group scratch to the monitor's pool.
  ~ThresholdState();

  ThresholdState(const ThresholdState&) = delete;
  ThresholdState& operator=(const ThresholdState&) = delete;

  /// True once some group provably cannot match L. Sticky.
  /// relaxed: advisory abort flag; workers that miss it by one chunk
  /// just scan one extra chunk. No data is published through it.
  bool refuted() const { return refuted_.load(std::memory_order_relaxed); }

  /// A zone-map-skipped chunk contributes no matching rows: drop it
  /// from the remaining potentials (which can only tighten bounds).
  void NoteChunkSkipped(size_t chunk_index);

  /// Folds one completed chunk's compact per-group partials into the
  /// running aggregates, drops the chunk from the remaining
  /// potentials, and re-checks L's k targets plus the foreign-group
  /// extremum against the tightened bounds (O(k), not O(seen groups)).
  void NoteChunk(size_t chunk_index, const std::vector<uint32_t>& touched,
                 const std::vector<AggState>& partials);

 private:
  /// Removes chunk `chunk_index` from the remaining-potential
  /// accounting. Idempotence guard: each chunk is noted at most once
  /// (the scan claims each chunk exactly once).
  void RetireChunkLocked(size_t chunk_index) REQUIRES(mutex_);
  /// [lb, ub] on group `s`'s final value given the current remaining
  /// potentials (the header formulas).
  void BoundsLocked(const AggState& s, double rem_hi, double rem_lo,
                    double* lb, double* ub) const REQUIRES(mutex_);
  /// The incremental per-chunk check: O(k) over L's targets plus an
  /// O(1) foreign-extremum test (escalating to VerifyForeignLocked
  /// only when the tracker says a foreign group might newly beat the
  /// cut). Trips `refuted_` on the first group that provably cannot
  /// match L.
  void CheckLocked() REQUIRES(mutex_);
  /// The slow, exact foreign check: one pass over every seen foreign
  /// group. Refutes, or tightens `foreign_stat_` to the true current
  /// extremum so the O(1) trigger stays quiet until something changes.
  void VerifyForeignLocked(double rem_hi, double rem_lo) REQUIRES(mutex_);

  const ThresholdMonitor* monitor_;
  AggFn agg_;
  bool desc_;
  /// Integer tie-displacement rule enabled (set once in the ctor):
  /// the ranking values are provably integral (int64 operand columns,
  /// or COUNT), the beat-side bound is exact and touch-monotone (MAX/
  /// COUNT under desc, MIN under asc), and the acceptance tolerance at
  /// the cut's magnitude is far below the integer gap — so "within
  /// eps" collapses to exact equality and a foreign group whose exact
  /// bound ties the cut while its name precedes L's k-th entry's name
  /// provably displaces it (the executor breaks exact value ties by
  /// entity name ascending). tie_lo_/tie_hi_ bracket the cut by the
  /// integer half-gap, absorbing a non-integral L value (then no
  /// integral result can be accepted at all, and refuting is vacuously
  /// sound).
  bool int_tie_ = false;
  double tie_lo_ = 0.0;
  double tie_hi_ = 0.0;

  /// Per-chunk per-row expression bounds and row counts (index =
  /// chunk). Infinite bounds for unsummarizable (empty) zones.
  std::vector<double> chunk_lo_;
  std::vector<double> chunk_hi_;
  std::vector<size_t> chunk_rows_;

  mutable Mutex mutex_;
  std::vector<bool> chunk_done_ GUARDED_BY(mutex_);
  /// Remaining matchable rows across unretired chunks.
  size_t rem_rows_ GUARDED_BY(mutex_) = 0;
  /// sum_c n_c * max(0, hi_c) / sum_c n_c * min(0, lo_c) over
  /// unretired chunks (SUM bounds).
  double rem_pos_ GUARDED_BY(mutex_) = 0.0;
  double rem_neg_ GUARDED_BY(mutex_) = 0.0;
  /// Multisets of per-chunk hi / lo over unretired chunks, for O(log n)
  /// max/min maintenance under chunk retirement (MAX/MIN/AVG bounds).
  std::multiset<double> rem_his_ GUARDED_BY(mutex_);
  std::multiset<double> rem_los_ GUARDED_BY(mutex_);
  /// Dense running per-group aggregates + the touched-code list,
  /// borrowed from the monitor's pool (generation-stamped, so no
  /// per-execution zeroing). Guarded by mutex_ like the inline state
  /// it replaced.
  std::unique_ptr<ThresholdMonitor::GroupScratch> scratch_
      GUARDED_BY(mutex_);
  /// Foreign-group extremum tracker over the refutation-relevant
  /// running statistic (max under desc, min under asc): s.max / s.min /
  /// s.sum / s.count by aggregate kind. For MAX-desc, MIN-asc and
  /// COUNT-desc the statistic is monotone per group, so the tracker
  /// equals the true current extremum and the O(1) test is exact; for
  /// the rest it is a stale-but-conservative bound that only ever
  /// over-triggers VerifyForeignLocked, never under. AVG tracks
  /// nothing: a foreign average is unbounded until the scan's last
  /// chunk, where aborting saves nothing.
  double foreign_stat_ GUARDED_BY(mutex_);

  // relaxed: see refuted().
  std::atomic<bool> refuted_{false};
};

}  // namespace paleo

#endif  // PALEO_ENGINE_THRESHOLD_MONITOR_H_
