#include "engine/topk_list.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <set>
#include <unordered_set>

#include "common/string_util.h"

namespace paleo {

bool ValuesClose(double a, double b, double rel_eps) {
  if (a == b) return true;
  double scale = std::max(std::abs(a), std::abs(b));
  return std::abs(a - b) <= rel_eps * std::max(scale, 1.0);
}

std::vector<std::string> TopKList::Entities() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const TopKEntry& e : entries_) out.push_back(e.entity);
  return out;
}

std::vector<std::string> TopKList::DistinctEntities() const {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  for (const TopKEntry& e : entries_) {
    if (seen.insert(e.entity).second) out.push_back(e.entity);
  }
  return out;
}

std::vector<double> TopKList::Values() const {
  std::vector<double> out;
  out.reserve(entries_.size());
  for (const TopKEntry& e : entries_) out.push_back(e.value);
  return out;
}

bool TopKList::InstanceEquals(const TopKList& other, double rel_eps) const {
  if (entries_.size() != other.entries_.size()) return false;
  size_t i = 0;
  while (i < entries_.size()) {
    // Find the run of positions whose values are tied (within eps) in
    // both lists, then compare the entity multisets of the run.
    if (!ValuesClose(entries_[i].value, other.entries_[i].value, rel_eps)) {
      return false;
    }
    size_t j = i + 1;
    while (j < entries_.size() &&
           ValuesClose(entries_[j].value, entries_[i].value, rel_eps) &&
           ValuesClose(other.entries_[j].value, other.entries_[i].value,
                       rel_eps)) {
      ++j;
    }
    if (j == i + 1) {
      if (entries_[i].entity != other.entries_[i].entity) return false;
    } else {
      std::multiset<std::string> mine, theirs;
      for (size_t p = i; p < j; ++p) {
        mine.insert(entries_[p].entity);
        theirs.insert(other.entries_[p].entity);
      }
      if (mine != theirs) return false;
    }
    i = j;
  }
  return true;
}

double TopKList::EntityJaccard(const TopKList& other) const {
  std::unordered_set<std::string> a, b;
  for (const TopKEntry& e : entries_) a.insert(e.entity);
  for (const TopKEntry& e : other.entries_) b.insert(e.entity);
  if (a.empty() && b.empty()) return 1.0;
  size_t inter = 0;
  for (const std::string& s : a) inter += b.count(s);
  size_t uni = a.size() + b.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double TopKList::ValueJaccard(const TopKList& other, double rel_eps) const {
  // Values are real numbers: match them greedily after sorting, which
  // is exact for the tolerance-based equality we need.
  std::vector<double> a = Values();
  std::vector<double> b = other.Values();
  if (a.empty() && b.empty()) return 1.0;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  size_t i = 0, j = 0, inter = 0;
  while (i < a.size() && j < b.size()) {
    if (ValuesClose(a[i], b[j], rel_eps)) {
      ++inter;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  size_t uni = a.size() + b.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

StatusOr<TopKList> TopKList::FromCsv(std::string_view text, char sep) {
  TopKList out;
  size_t line_no = 0;
  bool seen_content = false;
  for (const std::string& raw : Split(text, '\n')) {
    ++line_no;
    std::string_view line = Trim(raw);
    if (line.empty()) continue;
    bool first_content = !seen_content;
    seen_content = true;
    size_t pos = line.rfind(sep);
    if (pos == std::string_view::npos) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + " has no '" +
          std::string(1, sep) + "' separator: " + std::string(line));
    }
    std::string entity(Trim(line.substr(0, pos)));
    std::string value_text(Trim(line.substr(pos + 1)));
    char* end = nullptr;
    double value = std::strtod(value_text.c_str(), &end);
    bool parsed = end != value_text.c_str() && *end == '\0' &&
                  !value_text.empty();
    if (!parsed) {
      // A non-numeric value column is acceptable only as a header row.
      if (first_content) continue;
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     " has a non-numeric value: " +
                                     value_text);
    }
    if (entity.empty()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     " has an empty entity");
    }
    out.Append(std::move(entity), value);
  }
  return out;
}

std::string TopKList::ToCsv(char sep) const {
  std::string out;
  for (const TopKEntry& e : entries_) {
    out += e.entity;
    out += sep;
    out += FormatDouble(e.value);
    out += '\n';
  }
  return out;
}

std::string TopKList::ToString() const {
  size_t w = 0;
  for (const TopKEntry& e : entries_) w = std::max(w, e.entity.size());
  std::string out;
  for (size_t i = 0; i < entries_.size(); ++i) {
    out += std::to_string(i + 1);
    out += ". ";
    out += entries_[i].entity;
    out.append(w - entries_[i].entity.size() + 2, ' ');
    out += FormatDouble(entries_[i].value);
    out += '\n';
  }
  return out;
}

}  // namespace paleo
