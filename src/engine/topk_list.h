// The top-k list L: the input to the reverse-engineering task and the
// output of every query execution. Two columns — entity (L.e) and
// numeric value (L.v) — ordered by rank.

#ifndef PALEO_ENGINE_TOPK_LIST_H_
#define PALEO_ENGINE_TOPK_LIST_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace paleo {

/// \brief One row of a top-k list.
struct TopKEntry {
  std::string entity;
  double value = 0.0;

  TopKEntry() = default;
  TopKEntry(std::string entity_in, double value_in)
      : entity(std::move(entity_in)), value(value_in) {}

  bool operator==(const TopKEntry& other) const {
    return entity == other.entity && value == other.value;
  }
};

/// \brief Ranked list of (entity, value) pairs, best first.
class TopKList {
 public:
  TopKList() = default;
  explicit TopKList(std::vector<TopKEntry> entries)
      : entries_(std::move(entries)) {}

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const TopKEntry& entry(size_t i) const { return entries_[i]; }
  const std::vector<TopKEntry>& entries() const { return entries_; }

  void Append(std::string entity, double value) {
    entries_.emplace_back(std::move(entity), value);
  }

  /// Entity column, in rank order (may contain duplicates for
  /// no-aggregation queries).
  std::vector<std::string> Entities() const;
  /// Distinct entities, in first-appearance order.
  std::vector<std::string> DistinctEntities() const;
  /// Value column, in rank order.
  std::vector<double> Values() const;

  /// Instance-equivalence test (the paper's "valid query" acceptance):
  /// same length, same entity sequence, and values equal within a
  /// relative tolerance. Runs of equal values are compared as sets of
  /// entities, because SQL leaves the order within ties unspecified.
  bool InstanceEquals(const TopKList& other, double rel_eps = 1e-9) const;

  /// Jaccard similarity of the entity sets (Algorithm 3's J(Q(R).e,
  /// L.e)).
  double EntityJaccard(const TopKList& other) const;
  /// Jaccard similarity of the value sets, with values bucketed by
  /// relative tolerance (Algorithm 3's J(Q.v, L.v)).
  double ValueJaccard(const TopKList& other, double rel_eps = 1e-9) const;

  /// Aligned text rendering for examples and logs.
  std::string ToString() const;

  /// Parses a list from delimiter-separated text: one "entity<sep>value"
  /// row per line (value last, as in the paper's two-column lists).
  /// Blank lines are skipped; a first line whose value column does not
  /// parse as a number is treated as a header and skipped. Errors on
  /// malformed rows past the optional header.
  static StatusOr<TopKList> FromCsv(std::string_view text, char sep = ',');

  /// Renders as "entity<sep>value" lines (inverse of FromCsv for
  /// entities without separators or newlines).
  std::string ToCsv(char sep = ',') const;

  bool operator==(const TopKList& other) const {
    return entries_ == other.entries_;
  }

 private:
  std::vector<TopKEntry> entries_;
};

/// True when a and b agree within `rel_eps` relative tolerance
/// (absolute tolerance near zero).
bool ValuesClose(double a, double b, double rel_eps = 1e-9);

}  // namespace paleo

#endif  // PALEO_ENGINE_TOPK_LIST_H_
