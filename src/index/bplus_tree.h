// From-scratch order-preserving B+ tree.
//
// This is the access path the paper assumes on the entity column of R
// ("By using a standard database index, such as a B+ tree, on the entity
// attribute of R, we can efficiently retrieve R'", Section 3.1).
//
// Design:
//  * Unique-key map from K to V. Leaf nodes hold (key, value) pairs and
//    are doubly linked for ordered range scans; internal nodes hold
//    separator keys and child pointers.
//  * kMaxKeys keys per node; non-root nodes keep at least kMaxKeys/2.
//    Inserts split full nodes bottom-up; erases rebalance by borrowing
//    from a sibling or merging.
//  * VerifyInvariants() checks the full set of structural invariants and
//    backs the property-based test suite.
//
// Thread contract: mutation (Insert/Erase) is single-threaded, but the
// tree is immutable after its build phase in every PALEO use (the
// entity index builds it once per relation), and all read paths
// (Lookup, Scan*, height, VerifyInvariants) are const with no hidden
// mutable state — so any number of threads may read one built tree
// concurrently with no synchronization. This is what lets the
// discovery service share one index across all sessions.

#ifndef PALEO_INDEX_BPLUS_TREE_H_
#define PALEO_INDEX_BPLUS_TREE_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace paleo {

template <typename K, typename V, int kMaxKeys = 64,
          typename Compare = std::less<K>>
class BPlusTree {
  static_assert(kMaxKeys >= 3, "B+ tree fanout too small");

  struct Node;
  struct Leaf;
  struct Internal;

 public:
  BPlusTree() : root_(new Leaf()) {}
  ~BPlusTree() { DestroyNode(root_); }

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  BPlusTree(BPlusTree&& other) noexcept
      : root_(other.root_), size_(other.size_), cmp_(other.cmp_) {
    other.root_ = new Leaf();
    other.size_ = 0;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Tree height: 1 for a single leaf.
  int height() const {
    int h = 1;
    const Node* n = root_;
    while (!n->is_leaf) {
      n = static_cast<const Internal*>(n)->children.front();
      ++h;
    }
    return h;
  }

  /// Inserts (key, value); returns false (and leaves the tree unchanged)
  /// if the key already exists.
  bool Insert(const K& key, V value) {
    SplitResult split;
    bool inserted = InsertRec(root_, key, std::move(value), &split);
    if (split.new_node != nullptr) {
      auto* new_root = new Internal();
      new_root->keys.push_back(std::move(split.key));
      new_root->children.push_back(root_);
      new_root->children.push_back(split.new_node);
      root_ = new_root;
    }
    if (inserted) ++size_;
    return inserted;
  }

  /// Pointer to the value for `key`, or nullptr. The pointer is
  /// invalidated by any mutation.
  V* Find(const K& key) {
    Leaf* leaf = FindLeaf(key);
    int i = LowerBoundIdx(leaf->keys, key);
    if (i < static_cast<int>(leaf->keys.size()) && Equal(leaf->keys[i], key)) {
      return &leaf->values[static_cast<size_t>(i)];
    }
    return nullptr;
  }
  const V* Find(const K& key) const {
    return const_cast<BPlusTree*>(this)->Find(key);
  }

  bool Contains(const K& key) const { return Find(key) != nullptr; }

  /// Removes `key`; returns false if absent.
  bool Erase(const K& key) {
    bool erased = EraseRec(root_, key);
    if (!erased) return false;
    --size_;
    // Shrink the root: an internal root with a single child is replaced
    // by that child; an empty leaf root stays (empty tree).
    if (!root_->is_leaf) {
      auto* r = static_cast<Internal*>(root_);
      if (r->children.size() == 1) {
        root_ = r->children[0];
        r->children.clear();
        delete r;
      }
    }
    return true;
  }

  /// \brief Forward iterator over (key, value) pairs in key order.
  class Iterator {
   public:
    Iterator() = default;
    Iterator(const Leaf* leaf, int idx) : leaf_(leaf), idx_(idx) {
      Normalize();
    }

    bool Valid() const { return leaf_ != nullptr; }
    const K& key() const { return leaf_->keys[static_cast<size_t>(idx_)]; }
    const V& value() const {
      return leaf_->values[static_cast<size_t>(idx_)];
    }
    void Next() {
      ++idx_;
      Normalize();
    }

    bool operator==(const Iterator& o) const {
      return leaf_ == o.leaf_ && (leaf_ == nullptr || idx_ == o.idx_);
    }

   private:
    void Normalize() {
      while (leaf_ != nullptr &&
             idx_ >= static_cast<int>(leaf_->keys.size())) {
        leaf_ = leaf_->next;
        idx_ = 0;
      }
    }
    const Leaf* leaf_ = nullptr;
    int idx_ = 0;
  };

  /// Iterator at the smallest key.
  Iterator Begin() const {
    const Node* n = root_;
    while (!n->is_leaf) n = static_cast<const Internal*>(n)->children.front();
    return Iterator(static_cast<const Leaf*>(n), 0);
  }

  /// Iterator at the first key >= `key`.
  Iterator LowerBound(const K& key) const {
    const Leaf* leaf = const_cast<BPlusTree*>(this)->FindLeaf(key);
    int i = LowerBoundIdx(leaf->keys, key);
    return Iterator(leaf, i);
  }

  /// Invokes fn(key, value) for keys in [lo, hi]; stops early if fn
  /// returns false.
  template <typename Fn>
  void Scan(const K& lo, const K& hi, Fn fn) const {
    for (Iterator it = LowerBound(lo); it.Valid(); it.Next()) {
      if (cmp_(hi, it.key())) break;  // key > hi
      if (!fn(it.key(), it.value())) break;
    }
  }

  /// Verifies all structural invariants; CHECK-fails with a description
  /// on violation. Used by property tests after random operation mixes.
  void VerifyInvariants() const {
    const Leaf* prev_leaf = nullptr;
    size_t counted = 0;
    int leaf_depth = -1;
    VerifyRec(root_, /*depth=*/0, /*is_root=*/true, nullptr, nullptr,
              &prev_leaf, &counted, &leaf_depth);
    PALEO_CHECK(counted == size_)
        << "size mismatch: counted " << counted << ", recorded " << size_;
    if (prev_leaf != nullptr) {
      PALEO_CHECK(prev_leaf->next == nullptr) << "dangling leaf link";
    }
  }

 private:
  struct Node {
    bool is_leaf;
    explicit Node(bool leaf) : is_leaf(leaf) {}
  };
  struct Leaf : Node {
    Leaf() : Node(true) {}
    std::vector<K> keys;
    std::vector<V> values;
    Leaf* next = nullptr;
    Leaf* prev = nullptr;
  };
  struct Internal : Node {
    Internal() : Node(false) {}
    // children.size() == keys.size() + 1; keys[i] is the smallest key
    // reachable through children[i + 1].
    std::vector<K> keys;
    std::vector<Node*> children;
  };

  struct SplitResult {
    K key{};
    Node* new_node = nullptr;
  };

  static constexpr int kMinKeys = kMaxKeys / 2;

  bool Equal(const K& a, const K& b) const {
    return !cmp_(a, b) && !cmp_(b, a);
  }

  int LowerBoundIdx(const std::vector<K>& keys, const K& key) const {
    return static_cast<int>(
        std::lower_bound(keys.begin(), keys.end(), key, cmp_) - keys.begin());
  }
  int UpperBoundIdx(const std::vector<K>& keys, const K& key) const {
    return static_cast<int>(
        std::upper_bound(keys.begin(), keys.end(), key, cmp_) - keys.begin());
  }

  /// Child index to descend into for `key`.
  int ChildIdx(const Internal* node, const K& key) const {
    return UpperBoundIdx(node->keys, key);
  }

  Leaf* FindLeaf(const K& key) {
    Node* n = root_;
    while (!n->is_leaf) {
      auto* in = static_cast<Internal*>(n);
      n = in->children[static_cast<size_t>(ChildIdx(in, key))];
    }
    return static_cast<Leaf*>(n);
  }

  bool InsertRec(Node* node, const K& key, V value, SplitResult* split) {
    if (node->is_leaf) {
      auto* leaf = static_cast<Leaf*>(node);
      int i = LowerBoundIdx(leaf->keys, key);
      if (i < static_cast<int>(leaf->keys.size()) &&
          Equal(leaf->keys[i], key)) {
        return false;  // duplicate
      }
      leaf->keys.insert(leaf->keys.begin() + i, key);
      leaf->values.insert(leaf->values.begin() + i, std::move(value));
      if (static_cast<int>(leaf->keys.size()) > kMaxKeys) SplitLeaf(leaf, split);
      return true;
    }
    auto* in = static_cast<Internal*>(node);
    int ci = ChildIdx(in, key);
    SplitResult child_split;
    bool inserted = InsertRec(in->children[static_cast<size_t>(ci)], key,
                              std::move(value), &child_split);
    if (child_split.new_node != nullptr) {
      in->keys.insert(in->keys.begin() + ci, std::move(child_split.key));
      in->children.insert(in->children.begin() + ci + 1,
                          child_split.new_node);
      if (static_cast<int>(in->keys.size()) > kMaxKeys)
        SplitInternal(in, split);
    }
    return inserted;
  }

  void SplitLeaf(Leaf* leaf, SplitResult* split) {
    auto* right = new Leaf();
    int mid = static_cast<int>(leaf->keys.size()) / 2;
    right->keys.assign(leaf->keys.begin() + mid, leaf->keys.end());
    right->values.assign(std::make_move_iterator(leaf->values.begin() + mid),
                         std::make_move_iterator(leaf->values.end()));
    leaf->keys.resize(static_cast<size_t>(mid));
    leaf->values.resize(static_cast<size_t>(mid));
    right->next = leaf->next;
    right->prev = leaf;
    if (leaf->next != nullptr) leaf->next->prev = right;
    leaf->next = right;
    split->key = right->keys.front();
    split->new_node = right;
  }

  void SplitInternal(Internal* node, SplitResult* split) {
    auto* right = new Internal();
    int mid = static_cast<int>(node->keys.size()) / 2;
    // keys[mid] moves up; right gets keys after it.
    split->key = node->keys[static_cast<size_t>(mid)];
    right->keys.assign(node->keys.begin() + mid + 1, node->keys.end());
    right->children.assign(node->children.begin() + mid + 1,
                           node->children.end());
    node->keys.resize(static_cast<size_t>(mid));
    node->children.resize(static_cast<size_t>(mid) + 1);
    split->new_node = right;
  }

  /// Erases from the subtree; returns true if the key was found. The
  /// caller (parent) repairs underflow of `node`'s children.
  bool EraseRec(Node* node, const K& key) {
    if (node->is_leaf) {
      auto* leaf = static_cast<Leaf*>(node);
      int i = LowerBoundIdx(leaf->keys, key);
      if (i >= static_cast<int>(leaf->keys.size()) ||
          !Equal(leaf->keys[i], key)) {
        return false;
      }
      leaf->keys.erase(leaf->keys.begin() + i);
      leaf->values.erase(leaf->values.begin() + i);
      return true;
    }
    auto* in = static_cast<Internal*>(node);
    int ci = ChildIdx(in, key);
    Node* child = in->children[static_cast<size_t>(ci)];
    bool erased = EraseRec(child, key);
    if (erased && Underflowed(child)) Rebalance(in, ci);
    return erased;
  }

  bool Underflowed(const Node* node) const {
    if (node->is_leaf) {
      return static_cast<int>(static_cast<const Leaf*>(node)->keys.size()) <
             kMinKeys;
    }
    return static_cast<int>(static_cast<const Internal*>(node)->keys.size()) <
           kMinKeys;
  }

  int NumKeys(const Node* node) const {
    return node->is_leaf
               ? static_cast<int>(static_cast<const Leaf*>(node)->keys.size())
               : static_cast<int>(
                     static_cast<const Internal*>(node)->keys.size());
  }

  /// Repairs an underflowed child `ci` of `parent` by borrowing from a
  /// sibling or merging with one.
  void Rebalance(Internal* parent, int ci) {
    Node* child = parent->children[static_cast<size_t>(ci)];
    // Try borrowing from the left sibling, then the right one.
    if (ci > 0 &&
        NumKeys(parent->children[static_cast<size_t>(ci - 1)]) > kMinKeys) {
      BorrowFromLeft(parent, ci);
      return;
    }
    if (ci + 1 < static_cast<int>(parent->children.size()) &&
        NumKeys(parent->children[static_cast<size_t>(ci + 1)]) > kMinKeys) {
      BorrowFromRight(parent, ci);
      return;
    }
    // Merge with a sibling (prefer left).
    if (ci > 0) {
      Merge(parent, ci - 1);
    } else {
      Merge(parent, ci);
    }
    (void)child;
  }

  void BorrowFromLeft(Internal* parent, int ci) {
    Node* left = parent->children[static_cast<size_t>(ci - 1)];
    Node* right = parent->children[static_cast<size_t>(ci)];
    K& sep = parent->keys[static_cast<size_t>(ci - 1)];
    if (right->is_leaf) {
      auto* l = static_cast<Leaf*>(left);
      auto* r = static_cast<Leaf*>(right);
      r->keys.insert(r->keys.begin(), std::move(l->keys.back()));
      r->values.insert(r->values.begin(), std::move(l->values.back()));
      l->keys.pop_back();
      l->values.pop_back();
      sep = r->keys.front();
    } else {
      auto* l = static_cast<Internal*>(left);
      auto* r = static_cast<Internal*>(right);
      r->keys.insert(r->keys.begin(), std::move(sep));
      sep = std::move(l->keys.back());
      l->keys.pop_back();
      r->children.insert(r->children.begin(), l->children.back());
      l->children.pop_back();
    }
  }

  void BorrowFromRight(Internal* parent, int ci) {
    Node* left = parent->children[static_cast<size_t>(ci)];
    Node* right = parent->children[static_cast<size_t>(ci + 1)];
    K& sep = parent->keys[static_cast<size_t>(ci)];
    if (left->is_leaf) {
      auto* l = static_cast<Leaf*>(left);
      auto* r = static_cast<Leaf*>(right);
      l->keys.push_back(std::move(r->keys.front()));
      l->values.push_back(std::move(r->values.front()));
      r->keys.erase(r->keys.begin());
      r->values.erase(r->values.begin());
      sep = r->keys.front();
    } else {
      auto* l = static_cast<Internal*>(left);
      auto* r = static_cast<Internal*>(right);
      l->keys.push_back(std::move(sep));
      sep = std::move(r->keys.front());
      r->keys.erase(r->keys.begin());
      l->children.push_back(r->children.front());
      r->children.erase(r->children.begin());
    }
  }

  /// Merges children[ci + 1] into children[ci] and drops separator ci.
  void Merge(Internal* parent, int ci) {
    Node* left = parent->children[static_cast<size_t>(ci)];
    Node* right = parent->children[static_cast<size_t>(ci + 1)];
    if (left->is_leaf) {
      auto* l = static_cast<Leaf*>(left);
      auto* r = static_cast<Leaf*>(right);
      l->keys.insert(l->keys.end(), std::make_move_iterator(r->keys.begin()),
                     std::make_move_iterator(r->keys.end()));
      l->values.insert(l->values.end(),
                       std::make_move_iterator(r->values.begin()),
                       std::make_move_iterator(r->values.end()));
      l->next = r->next;
      if (r->next != nullptr) r->next->prev = l;
      delete r;
    } else {
      auto* l = static_cast<Internal*>(left);
      auto* r = static_cast<Internal*>(right);
      l->keys.push_back(std::move(parent->keys[static_cast<size_t>(ci)]));
      l->keys.insert(l->keys.end(), std::make_move_iterator(r->keys.begin()),
                     std::make_move_iterator(r->keys.end()));
      l->children.insert(l->children.end(), r->children.begin(),
                         r->children.end());
      r->children.clear();
      delete r;
    }
    parent->keys.erase(parent->keys.begin() + ci);
    parent->children.erase(parent->children.begin() + ci + 1);
  }

  void DestroyNode(Node* node) {
    if (node == nullptr) return;
    if (!node->is_leaf) {
      for (Node* c : static_cast<Internal*>(node)->children) DestroyNode(c);
      delete static_cast<Internal*>(node);
    } else {
      delete static_cast<Leaf*>(node);
    }
  }

  void VerifyRec(const Node* node, int depth, bool is_root, const K* lo,
                 const K* hi, const Leaf** prev_leaf, size_t* counted,
                 int* leaf_depth) const {
    if (node->is_leaf) {
      const auto* leaf = static_cast<const Leaf*>(node);
      if (*leaf_depth < 0) *leaf_depth = depth;
      PALEO_CHECK(*leaf_depth == depth) << "leaves at different depths";
      if (!is_root) {
        PALEO_CHECK(static_cast<int>(leaf->keys.size()) >= kMinKeys)
            << "leaf underflow: " << leaf->keys.size();
      }
      PALEO_CHECK(leaf->keys.size() == leaf->values.size());
      PALEO_CHECK(static_cast<int>(leaf->keys.size()) <= kMaxKeys);
      PALEO_CHECK(std::is_sorted(leaf->keys.begin(), leaf->keys.end(), cmp_))
          << "leaf keys unsorted";
      for (const K& k : leaf->keys) {
        if (lo != nullptr) {
          PALEO_CHECK(!cmp_(k, *lo)) << "key below bound";
        }
        if (hi != nullptr) {
          PALEO_CHECK(cmp_(k, *hi)) << "key above bound";
        }
      }
      PALEO_CHECK(leaf->prev == *prev_leaf) << "broken leaf back-link";
      if (*prev_leaf != nullptr) {
        PALEO_CHECK((*prev_leaf)->next == leaf) << "broken leaf link";
        if (!(*prev_leaf)->keys.empty() && !leaf->keys.empty()) {
          PALEO_CHECK(cmp_((*prev_leaf)->keys.back(), leaf->keys.front()))
              << "leaf chain unsorted";
        }
      }
      *prev_leaf = leaf;
      *counted += leaf->keys.size();
      return;
    }
    const auto* in = static_cast<const Internal*>(node);
    PALEO_CHECK(in->children.size() == in->keys.size() + 1);
    PALEO_CHECK(static_cast<int>(in->keys.size()) <= kMaxKeys);
    if (!is_root) {
      PALEO_CHECK(static_cast<int>(in->keys.size()) >= kMinKeys)
          << "internal underflow";
    } else {
      PALEO_CHECK(!in->keys.empty()) << "internal root with no keys";
    }
    PALEO_CHECK(std::is_sorted(in->keys.begin(), in->keys.end(), cmp_));
    for (size_t i = 0; i < in->children.size(); ++i) {
      const K* child_lo = (i == 0) ? lo : &in->keys[i - 1];
      const K* child_hi = (i == in->keys.size()) ? hi : &in->keys[i];
      VerifyRec(in->children[i], depth + 1, false, child_lo, child_hi,
                prev_leaf, counted, leaf_depth);
    }
  }

  Node* root_;
  size_t size_ = 0;
  Compare cmp_{};
};

}  // namespace paleo

#endif  // PALEO_INDEX_BPLUS_TREE_H_
