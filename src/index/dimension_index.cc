#include "index/dimension_index.h"

#include <algorithm>

#include "paleo/tuple_set.h"

namespace paleo {

DimensionIndex DimensionIndex::Build(const Table& table) {
  DimensionIndex index;
  const Schema& schema = table.schema();
  for (int c : schema.dimension_indices()) {
    const Column& col = table.column(c);
    ColumnPostings postings;
    postings.type = col.type();
    const size_t n = table.num_rows();
    for (size_t r = 0; r < n; ++r) {
      uint64_t key = 0;
      switch (col.type()) {
        case DataType::kString:
          key = col.CodeAt(static_cast<RowId>(r));
          break;
        case DataType::kInt64:
          key = static_cast<uint64_t>(col.Int64At(static_cast<RowId>(r)));
          break;
        case DataType::kDouble: {
          double v = col.DoubleAt(static_cast<RowId>(r));
          __builtin_memcpy(&key, &v, sizeof(key));
          break;
        }
      }
      postings.by_value[key].push_back(static_cast<RowId>(r));
    }
    if (col.type() == DataType::kString) {
      index.dicts_.emplace(c, col.dict());
    }
    index.columns_.emplace(c, std::move(postings));
  }
  return index;
}

DimensionIndex DimensionIndex::BuildIncremental(const DimensionIndex& prev,
                                                const Table& table,
                                                size_t old_rows) {
  DimensionIndex index;
  index.columns_ = prev.columns_;  // copied posting maps
  for (int c : table.schema().dimension_indices()) {
    const Column& col = table.column(c);
    ColumnPostings& postings = index.columns_[c];
    postings.type = col.type();
    for (size_t r = old_rows; r < table.num_rows(); ++r) {
      uint64_t key = 0;
      switch (col.type()) {
        case DataType::kString:
          key = col.CodeAt(static_cast<RowId>(r));
          break;
        case DataType::kInt64:
          key = static_cast<uint64_t>(col.Int64At(static_cast<RowId>(r)));
          break;
        case DataType::kDouble: {
          double v = col.DoubleAt(static_cast<RowId>(r));
          __builtin_memcpy(&key, &v, sizeof(key));
          break;
        }
      }
      postings.by_value[key].push_back(static_cast<RowId>(r));
    }
    if (col.type() == DataType::kString) {
      // The NEW table's dictionary: the snapshot must not dangle into
      // the previous version's (deep-copied) dictionaries.
      index.dicts_.emplace(c, col.dict());
    }
  }
  return index;
}

bool DimensionIndex::KeyFor(int column, const Value& value,
                            uint64_t* key) const {
  auto it = columns_.find(column);
  if (it == columns_.end()) return false;
  switch (it->second.type) {
    case DataType::kString: {
      if (!value.is_string()) return false;
      uint32_t code = dicts_.at(column)->Lookup(value.str());
      if (code == StringDictionary::kInvalidCode) return false;
      *key = code;
      return true;
    }
    case DataType::kInt64:
      if (!value.is_int64()) return false;
      *key = static_cast<uint64_t>(value.int64());
      return true;
    case DataType::kDouble: {
      if (!value.is_numeric()) return false;
      double v = value.AsDouble();
      __builtin_memcpy(key, &v, sizeof(*key));
      return true;
    }
  }
  return false;
}

const std::vector<RowId>& DimensionIndex::Lookup(int column,
                                                 const Value& value) const {
  static const std::vector<RowId> kEmpty;
  uint64_t key;
  if (!KeyFor(column, value, &key)) return kEmpty;
  const ColumnPostings& postings = columns_.at(column);
  auto it = postings.by_value.find(key);
  return it == postings.by_value.end() ? kEmpty : it->second;
}

bool DimensionIndex::Covers(const Predicate& predicate) const {
  for (const AtomicPredicate& atom : predicate.atoms()) {
    // Range atoms are not answerable from equality postings.
    if (atom.is_range()) return false;
    if (columns_.find(atom.column) == columns_.end()) return false;
  }
  return true;
}

std::vector<RowId> DimensionIndex::Match(const Predicate& predicate) const {
  // Gather the postings, shortest first, then intersect.
  std::vector<const std::vector<RowId>*> postings;
  postings.reserve(predicate.atoms().size());
  for (const AtomicPredicate& atom : predicate.atoms()) {
    postings.push_back(&Lookup(atom.column, atom.value));
    if (postings.back()->empty()) return {};
  }
  std::sort(postings.begin(), postings.end(),
            [](const auto* a, const auto* b) { return a->size() < b->size(); });
  std::vector<RowId> rows = *postings[0];
  for (size_t i = 1; i < postings.size() && !rows.empty(); ++i) {
    rows = IntersectSorted(rows, *postings[i]);
  }
  return rows;
}

size_t DimensionIndex::MemoryUsage() const {
  size_t bytes = 0;
  for (const auto& [col, postings] : columns_) {
    for (const auto& [key, rows] : postings.by_value) {
      bytes += sizeof(key) + rows.capacity() * sizeof(RowId) + 32;
    }
  }
  return bytes;
}

}  // namespace paleo
