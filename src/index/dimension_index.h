// Secondary indexes on dimension columns.
//
// Candidate-query validation executes many conjunctive-equality
// queries against R. With a posting list per (dimension column, value),
// the executor can intersect postings instead of scanning R — the
// standard inverted-index evaluation strategy. The paper validates
// against PostgreSQL with only the entity B+ tree (full scans); this
// index is an optional substrate improvement that changes none of the
// measured quantities (executions, candidates) — only wall-clock.
// bench_micro_executor quantifies the difference.
//
// Immutable after Build(): Lookup/Covers/Match are const, allocate
// only caller-local state, and may run concurrently from any number of
// threads over one shared instance.

#ifndef PALEO_INDEX_DIMENSION_INDEX_H_
#define PALEO_INDEX_DIMENSION_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "engine/predicate.h"
#include "storage/table.h"

namespace paleo {

/// \brief Posting lists for every (dimension column, value) pair of a
/// table.
class DimensionIndex {
 public:
  /// One pass per dimension column.
  static DimensionIndex Build(const Table& table);

  /// Builds the index for `table` off `prev`, which must index exactly
  /// the first `old_rows` rows of `table`. Copies the posting maps and
  /// appends only the delta rows (ascending row ids keep postings
  /// sorted); dictionary references are re-pointed at `table`'s own
  /// columns so the result never dangles into the previous snapshot.
  /// Identical lookup behavior to Build(table).
  static DimensionIndex BuildIncremental(const DimensionIndex& prev,
                                         const Table& table,
                                         size_t old_rows);

  /// Rows matching `column = value`, ascending; empty if the value is
  /// absent or the column is not indexed.
  const std::vector<RowId>& Lookup(int column, const Value& value) const;

  /// True if every atom of the predicate references an indexed column
  /// (so the predicate can be evaluated from postings alone).
  bool Covers(const Predicate& predicate) const;

  /// Rows matching the whole conjunction, ascending: postings are
  /// intersected smallest-first. Precondition: Covers(predicate) and
  /// !predicate.IsTrue().
  std::vector<RowId> Match(const Predicate& predicate) const;

  /// Approximate heap footprint in bytes.
  size_t MemoryUsage() const;

 private:
  // Per indexed column: value-key -> posting. Keys normalize values to
  // 64 bits (dictionary code / int64 / double bits), consistent with
  // the column's physical type.
  struct ColumnPostings {
    DataType type = DataType::kString;
    std::unordered_map<uint64_t, std::vector<RowId>> by_value;
  };

  /// Normalizes `value` to the column's key space; false if the value
  /// cannot match the column (type mismatch / unknown dictionary
  /// string).
  bool KeyFor(int column, const Value& value, uint64_t* key) const;

  std::unordered_map<int, ColumnPostings> columns_;
  // Dictionaries of indexed string columns, for constant resolution.
  std::unordered_map<int, std::shared_ptr<StringDictionary>> dicts_;
};

}  // namespace paleo

#endif  // PALEO_INDEX_DIMENSION_INDEX_H_
