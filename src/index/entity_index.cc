#include "index/entity_index.h"

#include <algorithm>

namespace paleo {

EntityIndex EntityIndex::Build(const Table& table) {
  EntityIndex index;
  const Column& entities = table.entity_column();
  const StringDictionary& dict = *entities.dict();
  // Dictionary codes are dense, so bucket rows by code first, then
  // insert one tree entry per distinct entity actually present.
  std::vector<std::vector<RowId>> by_code(dict.size());
  for (size_t row = 0; row < table.num_rows(); ++row) {
    by_code[entities.CodeAt(static_cast<RowId>(row))].push_back(
        static_cast<RowId>(row));
  }
  for (uint32_t code = 0; code < dict.size(); ++code) {
    if (by_code[code].empty()) continue;
    uint32_t posting_id = static_cast<uint32_t>(index.postings_.size());
    index.postings_.push_back(std::move(by_code[code]));
    index.tree_.Insert(dict.Get(code), posting_id);
  }
  return index;
}

EntityIndex EntityIndex::BuildIncremental(const EntityIndex& prev,
                                          const Table& table,
                                          size_t old_rows) {
  EntityIndex index;
  index.postings_ = prev.postings_;  // copied; prev stays untouched
  const Column& entities = table.entity_column();
  const StringDictionary& dict = *entities.dict();
  // Resolve each dictionary code to its posting list: existing
  // entities through prev's tree, new ones get fresh postings.
  constexpr uint32_t kNoPosting = UINT32_MAX;
  std::vector<uint32_t> posting_of(dict.size(), kNoPosting);
  for (uint32_t code = 0; code < dict.size(); ++code) {
    const uint32_t* posting_id = prev.tree_.Find(dict.Get(code));
    if (posting_id != nullptr) posting_of[code] = *posting_id;
  }
  for (size_t row = old_rows; row < table.num_rows(); ++row) {
    uint32_t code = entities.CodeAt(static_cast<RowId>(row));
    if (posting_of[code] == kNoPosting) {
      posting_of[code] = static_cast<uint32_t>(index.postings_.size());
      index.postings_.emplace_back();
    }
    index.postings_[posting_of[code]].push_back(static_cast<RowId>(row));
  }
  // The tree itself is rebuilt (it is move-only and small relative to
  // the postings): one insert per distinct entity.
  for (uint32_t code = 0; code < dict.size(); ++code) {
    if (posting_of[code] != kNoPosting) {
      index.tree_.Insert(dict.Get(code), posting_of[code]);
    }
  }
  return index;
}

const std::vector<RowId>& EntityIndex::Lookup(
    const std::string& entity) const {
  static const std::vector<RowId> kEmpty;
  const uint32_t* posting_id = tree_.Find(entity);
  if (posting_id == nullptr) return kEmpty;
  return postings_[*posting_id];
}

std::vector<RowId> EntityIndex::LookupAll(
    const std::vector<std::string>& entities,
    std::vector<std::string>* missing) const {
  std::vector<RowId> rows;
  for (const std::string& e : entities) {
    const uint32_t* posting_id = tree_.Find(e);
    if (posting_id == nullptr) {
      if (missing != nullptr) missing->push_back(e);
      continue;
    }
    const std::vector<RowId>& p = postings_[*posting_id];
    rows.insert(rows.end(), p.begin(), p.end());
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

size_t EntityIndex::MaxPostingLength() const {
  size_t best = 0;
  for (const auto& p : postings_) best = std::max(best, p.size());
  return best;
}

double EntityIndex::AvgPostingLength() const {
  if (postings_.empty()) return 0.0;
  size_t total = 0;
  for (const auto& p : postings_) total += p.size();
  return static_cast<double>(total) / static_cast<double>(postings_.size());
}

}  // namespace paleo
