// Entity index over the base relation R.
//
// Maps each entity name to the posting list of row ids holding that
// entity, backed by the B+ tree of bplus_tree.h. PALEO's first move for
// any input list L is Lookup() of each entity followed by Table::Gather
// to materialize R' (paper Section 3.1: "SELECT * FROM R WHERE Ae IN
// [e, f, g, m, o]").
//
// Immutable after Build(): every member below is const and touches no
// hidden mutable state, so one index instance is safely shared by any
// number of concurrent readers (the discovery service relies on this).

#ifndef PALEO_INDEX_ENTITY_INDEX_H_
#define PALEO_INDEX_ENTITY_INDEX_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "index/bplus_tree.h"
#include "storage/table.h"

namespace paleo {

/// \brief B+ tree index on the entity column of a table.
class EntityIndex {
 public:
  /// Builds the index in one pass over the table's entity column.
  static EntityIndex Build(const Table& table);

  /// Builds the index for `table` off `prev`, which must index exactly
  /// the first `old_rows` rows of `table` (the ingestion contract:
  /// `table` is `prev`'s table plus appended rows). Copies the posting
  /// lists and appends only the delta rows — row ids are appended in
  /// ascending order, preserving the sorted-postings invariant — then
  /// rebuilds the (small) name tree. Lookup-observable behavior is
  /// identical to Build(table); internal posting ids may differ for
  /// entities first seen in the delta.
  static EntityIndex BuildIncremental(const EntityIndex& prev,
                                      const Table& table, size_t old_rows);

  /// Row ids (ascending) of the entity, or an empty list if absent.
  const std::vector<RowId>& Lookup(const std::string& entity) const;

  /// Row ids of all listed entities, merged in ascending order; entities
  /// not present are recorded in `missing` when non-null.
  std::vector<RowId> LookupAll(const std::vector<std::string>& entities,
                               std::vector<std::string>* missing = nullptr)
      const;

  /// Number of distinct entities indexed.
  size_t num_entities() const { return tree_.size(); }

  /// Largest / average posting-list length (Table 5 statistics).
  size_t MaxPostingLength() const;
  double AvgPostingLength() const;

  /// Structural self-check of the underlying B+ tree.
  void VerifyInvariants() const { tree_.VerifyInvariants(); }

 private:
  // The tree maps entity name -> index into postings_. Posting lists
  // live outside the tree so node splits never copy them.
  BPlusTree<std::string, uint32_t> tree_;
  std::vector<std::vector<RowId>> postings_;
};

}  // namespace paleo

#endif  // PALEO_INDEX_ENTITY_INDEX_H_
