#include "io/binary_io.h"

#include <cstring>
#include <fstream>
#include <sstream>

namespace paleo {

namespace {

constexpr char kMagic[4] = {'P', 'A', 'L', 'B'};
constexpr uint32_t kVersion = 1;

/// Byte-stream writer over a std::string.
class Writer {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void I64(int64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.append(s);
  }
  void Raw(const void* data, size_t size) {
    out_.append(static_cast<const char*>(data), size);
  }
  std::string& buffer() { return out_; }

 private:
  std::string out_;
};

/// Bounds-checked byte-stream reader.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  Status U8(uint8_t* v) { return Raw(v, sizeof(*v)); }
  Status U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  Status U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  Status I64(int64_t* v) { return Raw(v, sizeof(*v)); }
  Status F64(double* v) { return Raw(v, sizeof(*v)); }

  Status Str(std::string* s) {
    uint32_t len = 0;
    PALEO_RETURN_NOT_OK(U32(&len));
    if (len > Remaining()) {
      return Status::IoError("truncated string field");
    }
    s->assign(bytes_.substr(pos_, len));
    pos_ += len;
    return Status::OK();
  }

  Status Raw(void* data, size_t size) {
    if (size > Remaining()) {
      return Status::IoError("unexpected end of data");
    }
    std::memcpy(data, bytes_.data() + pos_, size);
    pos_ += size;
    return Status::OK();
  }

  size_t Remaining() const { return bytes_.size() - pos_; }
  size_t position() const { return pos_; }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace

std::string BinaryIo::Serialize(const Table& table) {
  Writer w;
  w.Raw(kMagic, sizeof(kMagic));
  const Schema& schema = table.schema();
  w.U32(kVersion);
  w.U32(static_cast<uint32_t>(schema.num_fields()));
  for (const Field& f : schema.fields()) {
    w.Str(f.name);
    w.U8(static_cast<uint8_t>(f.type));
    w.U8(static_cast<uint8_t>(f.role));
  }
  w.U64(table.num_rows());
  for (int c = 0; c < schema.num_fields(); ++c) {
    const Column& col = table.column(c);
    switch (col.type()) {
      case DataType::kString: {
        const StringDictionary& dict = *col.dict();
        w.U32(dict.size());
        for (uint32_t code = 0; code < dict.size(); ++code) {
          w.Str(dict.Get(code));
        }
        w.Raw(col.codes().data(), col.codes().size() * sizeof(uint32_t));
        break;
      }
      case DataType::kInt64:
        w.Raw(col.ints().data(), col.ints().size() * sizeof(int64_t));
        break;
      case DataType::kDouble:
        w.Raw(col.doubles().data(), col.doubles().size() * sizeof(double));
        break;
    }
  }
  // CRC of everything after the magic.
  uint32_t crc = Crc32(w.buffer().data() + sizeof(kMagic),
                       w.buffer().size() - sizeof(kMagic));
  w.U32(crc);
  return std::move(w.buffer());
}

StatusOr<Table> BinaryIo::Deserialize(std::string_view bytes) {
  if (bytes.size() < sizeof(kMagic) + sizeof(uint32_t) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::IoError("not a PALEO binary table (bad magic)");
  }
  // Verify the trailing CRC before trusting any field.
  size_t payload_end = bytes.size() - sizeof(uint32_t);
  uint32_t stored_crc;
  std::memcpy(&stored_crc, bytes.data() + payload_end, sizeof(stored_crc));
  uint32_t actual_crc = Crc32(bytes.data() + sizeof(kMagic),
                              payload_end - sizeof(kMagic));
  if (stored_crc != actual_crc) {
    return Status::IoError("CRC mismatch: file corrupted or truncated");
  }

  Reader r(bytes.substr(sizeof(kMagic), payload_end - sizeof(kMagic)));
  uint32_t version = 0;
  PALEO_RETURN_NOT_OK(r.U32(&version));
  if (version != kVersion) {
    return Status::Unsupported("unsupported format version " +
                               std::to_string(version));
  }
  uint32_t n_cols = 0;
  PALEO_RETURN_NOT_OK(r.U32(&n_cols));
  if (n_cols == 0 || n_cols > 100000) {
    return Status::IoError("implausible column count");
  }
  std::vector<Field> fields;
  fields.reserve(n_cols);
  for (uint32_t c = 0; c < n_cols; ++c) {
    Field f;
    PALEO_RETURN_NOT_OK(r.Str(&f.name));
    uint8_t type = 0, role = 0;
    PALEO_RETURN_NOT_OK(r.U8(&type));
    PALEO_RETURN_NOT_OK(r.U8(&role));
    if (type > static_cast<uint8_t>(DataType::kString) ||
        role > static_cast<uint8_t>(FieldRole::kKey)) {
      return Status::IoError("invalid column type/role byte");
    }
    f.type = static_cast<DataType>(type);
    f.role = static_cast<FieldRole>(role);
    fields.push_back(std::move(f));
  }
  PALEO_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(fields)));

  uint64_t n_rows = 0;
  PALEO_RETURN_NOT_OK(r.U64(&n_rows));
  // Structural validation before decoding anything: the declared row
  // count must fit in the remaining payload. Every row costs at least
  // 4 bytes (a dictionary code) in a string column and 8 in a numeric
  // one, so an absurd count is rejected up front instead of grinding
  // through (and allocating for) a doomed decode loop.
  {
    uint64_t min_bytes_per_row = 0;
    for (uint32_t c = 0; c < n_cols; ++c) {
      min_bytes_per_row +=
          schema.field(static_cast<int>(c)).type == DataType::kString ? 4 : 8;
    }
    if (min_bytes_per_row > 0 &&
        n_rows > r.Remaining() / min_bytes_per_row) {
      return Status::IoError("row count " + std::to_string(n_rows) +
                             " exceeds file size");
    }
  }
  Table table(schema);
  for (uint32_t c = 0; c < n_cols; ++c) {
    Column* col = table.mutable_column(static_cast<int>(c));
    switch (schema.field(static_cast<int>(c)).type) {
      case DataType::kString: {
        uint32_t dict_size = 0;
        PALEO_RETURN_NOT_OK(r.U32(&dict_size));
        // Each dictionary entry occupies at least its 4-byte length.
        if (dict_size > r.Remaining() / 4) {
          return Status::IoError("dictionary size " +
                                 std::to_string(dict_size) +
                                 " exceeds file size");
        }
        for (uint32_t i = 0; i < dict_size; ++i) {
          std::string entry;
          PALEO_RETURN_NOT_OK(r.Str(&entry));
          uint32_t code = col->dict()->GetOrAdd(entry);
          if (code != i) {
            return Status::IoError("duplicate dictionary entry: " + entry);
          }
        }
        if (n_rows > r.Remaining() / sizeof(uint32_t)) {
          return Status::IoError(
              "string column " + schema.field(static_cast<int>(c)).name +
              ": code array truncated");
        }
        for (uint64_t row = 0; row < n_rows; ++row) {
          uint32_t code = 0;
          PALEO_RETURN_NOT_OK(r.U32(&code));
          if (code >= dict_size) {
            return Status::IoError("dictionary code out of range");
          }
          col->AppendCode(code);
        }
        break;
      }
      case DataType::kInt64:
        if (n_rows > r.Remaining() / sizeof(int64_t)) {
          return Status::IoError(
              "int64 column " + schema.field(static_cast<int>(c)).name +
              ": value array truncated");
        }
        for (uint64_t row = 0; row < n_rows; ++row) {
          int64_t v = 0;
          PALEO_RETURN_NOT_OK(r.I64(&v));
          col->AppendInt64(v);
        }
        break;
      case DataType::kDouble:
        if (n_rows > r.Remaining() / sizeof(double)) {
          return Status::IoError(
              "double column " + schema.field(static_cast<int>(c)).name +
              ": value array truncated");
        }
        for (uint64_t row = 0; row < n_rows; ++row) {
          double v = 0;
          PALEO_RETURN_NOT_OK(r.F64(&v));
          col->AppendDouble(v);
        }
        break;
    }
  }
  if (r.Remaining() != 0) {
    return Status::IoError("trailing bytes after table payload");
  }
  PALEO_RETURN_NOT_OK(table.CheckConsistent());
  return table;
}

Status BinaryIo::WriteFile(const Table& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  std::string bytes = Serialize(table);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    return Status::IoError("error writing " + path);
  }
  return Status::OK();
}

StatusOr<Table> BinaryIo::ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IoError("error reading " + path);
  }
  return Deserialize(buffer.str());
}

}  // namespace paleo
