// Binary relation format.
//
// A compact columnar on-disk format for Table, orders of magnitude
// faster to load than CSV for large relations:
//
//   "PALB" magic | u32 version | u32 column count
//   per column: name (u32 len + bytes) | u8 type | u8 role
//   u64 row count
//   per column payload:
//     STRING: u32 dict size, dict entries (u32 len + bytes),
//             u32 codes[rows]
//     INT64:  i64 values[rows]
//     DOUBLE: f64 values[rows]
//   u32 CRC-32 of everything after the magic
//
// Integers are little-endian (the format is not byte-swapped on
// big-endian hosts; loading a file produced on the other endianness is
// detected by the CRC). The trailing CRC turns truncation and
// corruption into clean IoError statuses instead of garbage tables.

#ifndef PALEO_IO_BINARY_IO_H_
#define PALEO_IO_BINARY_IO_H_

#include <string>
#include <string_view>

#include "common/crc32.h"
#include "common/status.h"
#include "storage/table.h"

namespace paleo {

/// \brief Binary (de)serialization of tables.
class BinaryIo {
 public:
  /// Serializes the table into the format above.
  static std::string Serialize(const Table& table);

  /// Parses a serialized table; verifies magic, version, CRC, and
  /// structural sanity (schema validity, code ranges).
  static StatusOr<Table> Deserialize(std::string_view bytes);

  static Status WriteFile(const Table& table, const std::string& path);
  static StatusOr<Table> ReadFile(const std::string& path);
};

}  // namespace paleo

#endif  // PALEO_IO_BINARY_IO_H_
