#include "io/fault_injection.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/crc32.h"

namespace paleo {

const char* FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTruncate:
      return "truncate";
    case FaultKind::kBitFlip:
      return "bit-flip";
    case FaultKind::kShortRead:
      return "short-read";
    case FaultKind::kGarbageRun:
      return "garbage-run";
  }
  return "unknown";
}

std::string FaultEvent::ToString() const {
  return std::string(FaultKindToString(kind)) + " at offset " +
         std::to_string(offset) + ", span " + std::to_string(span);
}

FaultEvent FaultInjector::Corrupt(std::string* bytes) {
  FaultEvent event;
  if (bytes->empty()) return event;
  const size_t n = bytes->size();
  event.kind = static_cast<FaultKind>(rng_.Uniform(4));
  switch (event.kind) {
    case FaultKind::kTruncate: {
      event.offset = static_cast<size_t>(rng_.Uniform(n));
      event.span = n - event.offset;
      bytes->resize(event.offset);
      break;
    }
    case FaultKind::kBitFlip: {
      event.span = 1 + static_cast<size_t>(rng_.Uniform(8));
      event.offset = static_cast<size_t>(rng_.Uniform(n));
      for (size_t i = 0; i < event.span; ++i) {
        size_t pos = static_cast<size_t>(rng_.Uniform(n));
        (*bytes)[pos] = static_cast<char>(
            static_cast<unsigned char>((*bytes)[pos]) ^
            (1u << rng_.Uniform(8)));
      }
      break;
    }
    case FaultKind::kShortRead: {
      event.offset = static_cast<size_t>(rng_.Uniform(n));
      size_t max_span = n - event.offset;
      event.span =
          1 + static_cast<size_t>(rng_.Uniform(std::min<size_t>(
                  max_span, 1 + static_cast<size_t>(rng_.Uniform(64)))));
      bytes->erase(event.offset, event.span);
      break;
    }
    case FaultKind::kGarbageRun: {
      event.offset = static_cast<size_t>(rng_.Uniform(n));
      size_t max_span = n - event.offset;
      event.span = 1 + static_cast<size_t>(
                           rng_.Uniform(std::min<size_t>(max_span, 32)));
      for (size_t i = 0; i < event.span; ++i) {
        (*bytes)[event.offset + i] =
            static_cast<char>(rng_.Uniform(256));
      }
      break;
    }
  }
  MaybeFixCrc(bytes);
  return event;
}

std::vector<FaultEvent> FaultInjector::CorruptMany(std::string* bytes,
                                                   int count) {
  std::vector<FaultEvent> events;
  // Fix the CRC once at the end, not after every constituent fault:
  // intermediate fixes would partially repair earlier corruption.
  const bool fix_crc = fix_crc_;
  fix_crc_ = false;
  for (int i = 0; i < count && !bytes->empty(); ++i) {
    events.push_back(Corrupt(bytes));
  }
  fix_crc_ = fix_crc;
  MaybeFixCrc(bytes);
  return events;
}

void FaultInjector::MaybeFixCrc(std::string* bytes) const {
  if (fix_crc_ && bytes->size() >= sizeof(uint32_t) + 4) {
    // Recompute the PALB trailing CRC over everything after the 4-byte
    // magic, making the checksum consistent with the corrupted body.
    size_t payload_end = bytes->size() - sizeof(uint32_t);
    uint32_t crc = Crc32(bytes->data() + 4, payload_end - 4);
    std::memcpy(bytes->data() + payload_end, &crc, sizeof(crc));
  }
}

StatusOr<std::string> FaultInjector::ReadFileCorrupted(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IoError("error reading " + path);
  }
  std::string bytes = buffer.str();
  Corrupt(&bytes);
  return bytes;
}

}  // namespace paleo
