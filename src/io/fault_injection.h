// Deterministic I/O fault injection for hardening tests.
//
// A FaultInjector perturbs byte buffers the way broken storage and
// interrupted transfers do — truncated tails, flipped bits, short
// reads that silently drop a middle chunk, and overwritten runs — all
// driven by an explicit seed so every failing case is replayable from
// its seed alone. Tests wrap a loader with it and assert the invariant
// the io/ layer promises: every injected fault surfaces as a Status,
// never as a crash, hang, or silently wrong table.
//
//   FaultInjector fi(seed);
//   std::string bytes = BinaryIo::Serialize(table);
//   FaultEvent fault = fi.Corrupt(&bytes);
//   auto reloaded = BinaryIo::Deserialize(bytes);   // must not crash
//
// set_fix_crc(true) recomputes the PALB trailing checksum after the
// mutation, deliberately defeating the CRC so the parser's structural
// validation (magic, version, counts, per-column lengths) is what gets
// exercised.

#ifndef PALEO_IO_FAULT_INJECTION_H_
#define PALEO_IO_FAULT_INJECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace paleo {

/// \brief The kinds of corruption the injector produces.
enum class FaultKind : int {
  /// The buffer loses its tail from a random offset on.
  kTruncate = 0,
  /// One to eight random bits flip.
  kBitFlip = 1,
  /// A run of bytes vanishes from the middle (a short read spliced
  /// over by the next chunk).
  kShortRead = 2,
  /// A run of bytes is overwritten with random garbage.
  kGarbageRun = 3,
};

const char* FaultKindToString(FaultKind kind);

/// \brief One injected fault, for diagnostics in failing tests.
struct FaultEvent {
  FaultKind kind = FaultKind::kBitFlip;
  /// Byte offset the fault starts at.
  size_t offset = 0;
  /// Bytes removed/overwritten, or bits flipped for kBitFlip.
  size_t span = 0;
  std::string ToString() const;
};

/// \brief Seeded source of replayable I/O faults.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : rng_(seed) {}

  /// After corrupting, recompute and re-append a valid PALB trailing
  /// CRC (only meaningful for binary-table buffers; buffers shorter
  /// than a CRC are left alone). Off by default.
  void set_fix_crc(bool fix) { fix_crc_ = fix; }

  /// Applies one random fault to `bytes` in place and reports it.
  /// Empty buffers are returned unchanged.
  FaultEvent Corrupt(std::string* bytes);

  /// Applies `count` independent faults to `bytes` in place — compound
  /// corruption, the way one bad disk pass leaves several scars. Later
  /// faults land on the already-corrupted buffer (a truncate shrinks
  /// the range a following bit-flip draws from); corruption stops
  /// early only if the buffer becomes empty. With set_fix_crc the CRC
  /// is recomputed once, after the last fault.
  std::vector<FaultEvent> CorruptMany(std::string* bytes, int count);

  /// Reads a file and corrupts its contents with one fault — the
  /// drop-in faulty counterpart of reading the file directly.
  StatusOr<std::string> ReadFileCorrupted(const std::string& path);

 private:
  /// Recomputes the PALB trailing CRC when fix_crc_ is set and the
  /// buffer is long enough to carry one.
  void MaybeFixCrc(std::string* bytes) const;

  Rng rng_;
  bool fix_crc_ = false;
};

}  // namespace paleo

#endif  // PALEO_IO_FAULT_INJECTION_H_
