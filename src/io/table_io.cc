#include "io/table_io.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/fault_points.h"
#include "common/string_util.h"

namespace paleo {

namespace {

/// Splits CSV text into records of fields, honoring double-quoted
/// fields with "" escaping and quoted newlines/separators.
StatusOr<std::vector<std::vector<std::string>>> ParseRecords(
    std::string_view text, char sep) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&]() {
    record.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_record = [&]() {
    end_field();
    // Skip records that are entirely empty (blank lines).
    if (record.size() != 1 || !record[0].empty()) {
      records.push_back(std::move(record));
    }
    record.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    if (c == '"' && !field_started) {
      in_quotes = true;
      field_started = true;
    } else if (c == sep) {
      end_field();
    } else if (c == '\n') {
      if (field_started || !field.empty() || !record.empty()) end_record();
    } else if (c == '\r') {
      // Tolerate CRLF.
    } else {
      field += c;
      field_started = true;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted field");
  }
  if (!field.empty() || !record.empty()) end_record();
  return records;
}

bool LooksLikeInt64(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool LooksLikeDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

/// One parsed header column: name plus optional explicit type/role.
struct HeaderColumn {
  std::string name;
  bool has_type = false;
  DataType type = DataType::kString;
  bool has_role = false;
  FieldRole role = FieldRole::kDimension;
};

StatusOr<HeaderColumn> ParseHeaderColumn(const std::string& cell) {
  std::vector<std::string> parts = Split(cell, ':');
  if (parts.empty() || parts[0].empty()) {
    return Status::InvalidArgument("empty column name in header");
  }
  HeaderColumn col;
  col.name = parts[0];
  if (parts.size() >= 2 && !parts[1].empty()) {
    std::string t = ToUpper(parts[1]);
    if (t == "INT64" || t == "INT" || t == "BIGINT") {
      col.type = DataType::kInt64;
    } else if (t == "DOUBLE" || t == "FLOAT" || t == "REAL") {
      col.type = DataType::kDouble;
    } else if (t == "STRING" || t == "TEXT" || t == "VARCHAR") {
      col.type = DataType::kString;
    } else {
      return Status::InvalidArgument("unknown column type: " + parts[1]);
    }
    col.has_type = true;
  }
  if (parts.size() >= 3 && !parts[2].empty()) {
    std::string r = ToUpper(parts[2]);
    if (r == "ENTITY") {
      col.role = FieldRole::kEntity;
    } else if (r == "DIM" || r == "DIMENSION") {
      col.role = FieldRole::kDimension;
    } else if (r == "MEASURE") {
      col.role = FieldRole::kMeasure;
    } else if (r == "KEY") {
      col.role = FieldRole::kKey;
    } else {
      return Status::InvalidArgument("unknown column role: " + parts[2]);
    }
    col.has_role = true;
  }
  if (parts.size() > 3) {
    return Status::InvalidArgument("malformed header column: " + cell);
  }
  return col;
}

bool NeedsQuoting(const std::string& s, char sep) {
  for (char c : s) {
    if (c == sep || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

std::string QuoteField(const std::string& s, char sep) {
  if (!NeedsQuoting(s, sep)) return s;
  std::string out = "\"";
  for (char c : s) {
    out += c;
    if (c == '"') out += '"';
  }
  out += '"';
  return out;
}

}  // namespace

StatusOr<Table> TableIo::FromCsv(std::string_view text, char sep) {
  PALEO_ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> records,
                         ParseRecords(text, sep));
  if (records.empty()) {
    return Status::InvalidArgument("CSV has no header");
  }
  std::vector<HeaderColumn> header;
  for (const std::string& cell : records[0]) {
    PALEO_ASSIGN_OR_RETURN(HeaderColumn col, ParseHeaderColumn(cell));
    header.push_back(std::move(col));
  }
  const size_t n_cols = header.size();
  if (records.size() < 2) {
    return Status::InvalidArgument("CSV has a header but no data rows");
  }

  // Infer missing types from the first data row.
  const std::vector<std::string>& first = records[1];
  if (first.size() != n_cols) {
    return Status::InvalidArgument("row 1 has " +
                                   std::to_string(first.size()) +
                                   " fields, header has " +
                                   std::to_string(n_cols));
  }
  for (size_t c = 0; c < n_cols; ++c) {
    if (header[c].has_type) continue;
    int64_t i64;
    double d;
    if (LooksLikeInt64(first[c], &i64)) {
      header[c].type = DataType::kInt64;
    } else if (LooksLikeDouble(first[c], &d)) {
      header[c].type = DataType::kDouble;
    } else {
      header[c].type = DataType::kString;
    }
  }

  // Default roles: if nothing is annotated, the first string column is
  // the entity; otherwise strings are dimensions and numerics measures.
  bool any_role = false;
  for (const HeaderColumn& col : header) any_role |= col.has_role;
  bool entity_assigned = false;
  for (HeaderColumn& col : header) {
    if (col.has_role) {
      entity_assigned |= (col.role == FieldRole::kEntity);
      continue;
    }
    if (!any_role && !entity_assigned && col.type == DataType::kString) {
      col.role = FieldRole::kEntity;
      entity_assigned = true;
    } else {
      col.role = IsNumeric(col.type) ? FieldRole::kMeasure
                                     : FieldRole::kDimension;
    }
  }

  std::vector<Field> fields;
  fields.reserve(n_cols);
  for (const HeaderColumn& col : header) {
    fields.emplace_back(col.name, col.type, col.role);
  }
  PALEO_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(fields)));
  Table table(schema);

  for (size_t r = 1; r < records.size(); ++r) {
    const std::vector<std::string>& row = records[r];
    if (row.size() != n_cols) {
      return Status::InvalidArgument(
          "row " + std::to_string(r) + " has " + std::to_string(row.size()) +
          " fields, header has " + std::to_string(n_cols));
    }
    for (size_t c = 0; c < n_cols; ++c) {
      Column* col = table.mutable_column(static_cast<int>(c));
      switch (header[c].type) {
        case DataType::kInt64: {
          int64_t v;
          if (!LooksLikeInt64(row[c], &v)) {
            return Status::TypeError("row " + std::to_string(r) +
                                     ", column " + header[c].name +
                                     ": not an INT64: " + row[c]);
          }
          col->AppendInt64(v);
          break;
        }
        case DataType::kDouble: {
          double v;
          if (!LooksLikeDouble(row[c], &v)) {
            return Status::TypeError("row " + std::to_string(r) +
                                     ", column " + header[c].name +
                                     ": not a DOUBLE: " + row[c]);
          }
          col->AppendDouble(v);
          break;
        }
        case DataType::kString:
          col->AppendString(row[c]);
          break;
      }
    }
  }
  PALEO_RETURN_NOT_OK(table.CheckConsistent());
  return table;
}

StatusOr<Table> TableIo::ReadCsvFile(const std::string& path, char sep) {
  // Chaos hook: simulated I/O failure (e.g. EIO on open) without
  // touching the filesystem; surfaces like any real read error.
  FaultResult fault = PALEO_FAULT_POINT("table-io.read.open");
  if (fault.error()) return fault.status;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IoError("error reading " + path);
  }
  return FromCsv(buffer.str(), sep);
}

std::string TableIo::ToCsv(const Table& table, char sep) {
  const Schema& schema = table.schema();
  std::string out;
  for (int c = 0; c < schema.num_fields(); ++c) {
    if (c > 0) out += sep;
    const Field& f = schema.field(c);
    const char* role = f.role == FieldRole::kEntity      ? "ENTITY"
                       : f.role == FieldRole::kDimension ? "DIM"
                       : f.role == FieldRole::kMeasure   ? "MEASURE"
                                                         : "KEY";
    out += QuoteField(f.name, sep);
    out += ':';
    out += DataTypeToString(f.type);
    out += ':';
    out += role;
  }
  out += '\n';
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (int c = 0; c < schema.num_fields(); ++c) {
      if (c > 0) out += sep;
      out += QuoteField(
          table.GetValue(static_cast<RowId>(r), c).ToString(), sep);
    }
    out += '\n';
  }
  return out;
}

Status TableIo::WriteCsvFile(const Table& table, const std::string& path,
                             char sep) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  out << ToCsv(table, sep);
  out.flush();
  if (!out) {
    return Status::IoError("error writing " + path);
  }
  return Status::OK();
}

}  // namespace paleo
