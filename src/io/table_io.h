// Relation import/export.
//
// The paper keeps R in PostgreSQL; this reproduction's equivalent is a
// self-describing CSV format so users can bring their own relations to
// the library (and the CLI):
//
//   name:STRING:ENTITY,state:STRING:DIM,minutes:INT64:MEASURE
//   John Smith,CA,654
//   ...
//
// The header carries per-column type and role; roles default to
// DIMENSION for strings and MEASURE for numerics when omitted
// ("name:STRING" or just "name"). Values containing the separator,
// quotes, or newlines are double-quoted with "" escaping (RFC-4180
// style).

#ifndef PALEO_IO_TABLE_IO_H_
#define PALEO_IO_TABLE_IO_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "storage/table.h"

namespace paleo {

/// \brief CSV (de)serialization of tables.
class TableIo {
 public:
  /// Parses a relation from CSV text with the self-describing header.
  /// Column types may be omitted, in which case they are inferred from
  /// the first data row (numeric-looking -> INT64 or DOUBLE, otherwise
  /// STRING). Exactly one column must be marked ENTITY, except that a
  /// header without any role annotations treats the FIRST string
  /// column as the entity.
  static StatusOr<Table> FromCsv(std::string_view text, char sep = ',');

  /// Reads a file and parses it with FromCsv.
  static StatusOr<Table> ReadCsvFile(const std::string& path,
                                     char sep = ',');

  /// Renders the table in the FromCsv format (round-trips).
  static std::string ToCsv(const Table& table, char sep = ',');

  /// Writes ToCsv output to a file.
  static Status WriteCsvFile(const Table& table, const std::string& path,
                             char sep = ',');
};

}  // namespace paleo

#endif  // PALEO_IO_TABLE_IO_H_
