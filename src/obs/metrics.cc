#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace paleo {
namespace obs {

namespace {

/// Finite bucket bounds in ms: 2^i microseconds for i in [0, 26], i.e.
/// 0.001 ms .. ~67.1 s. Covers a cache-hit index probe through a
/// multi-minute governed run with ~2x resolution everywhere.
double BoundMs(int i) { return std::ldexp(0.001, i); }

/// Shortest decimal rendering that round-trips our bounds (they are
/// exact binary fractions scaled by 1e-3, so %.17g is overkill; %g at
/// 10 significant digits is stable and compact).
std::string FormatBound(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string FormatDouble(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

}  // namespace

double Histogram::BucketUpperBound(int i) { return BoundMs(i); }

void Histogram::Observe(double ms) {
  if (!(ms >= 0.0)) ms = 0.0;  // NaN and negatives clamp to zero
  // Bucket index = position of ms on the 2^i microsecond ladder.
  int idx;
  if (ms <= 0.001) {
    idx = 0;
  } else {
    idx = static_cast<int>(std::ceil(std::log2(ms * 1000.0)));
    if (idx < 0) idx = 0;
    if (idx > kNumBuckets) idx = kNumBuckets;  // +Inf bucket
  }
  // relaxed: independent tallies; scrape-side tolerance for torn
  // cross-counter snapshots is documented on the accessors.
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double micros = ms * 1000.0;
  constexpr double kMaxMicros = 9.0e18;
  if (micros > kMaxMicros) micros = kMaxMicros;
  sum_micros_.fetch_add(static_cast<int64_t>(micros),
                        std::memory_order_relaxed);
}

double Histogram::Quantile(double q) const {
  int64_t total = count();
  if (total <= 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the target observation (1-based, ceil).
  int64_t rank = static_cast<int64_t>(std::ceil(q * total));
  if (rank < 1) rank = 1;
  int64_t seen = 0;
  for (int i = 0; i <= kNumBuckets; ++i) {
    int64_t in_bucket = bucket_count(i);
    if (in_bucket == 0) continue;
    if (seen + in_bucket >= rank) {
      if (i >= kNumBuckets) return BoundMs(kNumBuckets - 1);
      double hi = BoundMs(i);
      double lo = i == 0 ? 0.0 : BoundMs(i - 1);
      double frac = static_cast<double>(rank - seen) /
                    static_cast<double>(in_bucket);
      return lo + (hi - lo) * frac;
    }
    seen += in_bucket;
  }
  return BoundMs(kNumBuckets - 1);
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(
    Kind kind, const std::string& name, const std::string& help,
    const std::string& labels) {
  WriterMutexLock lock(mutex_);
  for (auto& e : entries_) {
    if (e->kind == kind && e->name == name && e->labels == labels) {
      return e.get();
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->kind = kind;
  entry->name = name;
  entry->labels = labels;
  entry->help = help;
  switch (kind) {
    case Kind::kCounter:
      entry->counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      entry->histogram = std::make_unique<Histogram>();
      break;
  }
  entries_.push_back(std::move(entry));
  return entries_.back().get();
}

const MetricsRegistry::Entry* MetricsRegistry::Find(
    Kind kind, const std::string& name, const std::string& labels) const {
  ReaderMutexLock lock(mutex_);
  return FindLocked(kind, name, labels);
}

const MetricsRegistry::Entry* MetricsRegistry::FindLocked(
    Kind kind, const std::string& name, const std::string& labels) const {
  for (const auto& e : entries_) {
    if (e->kind == kind && e->name == name && e->labels == labels) {
      return e.get();
    }
  }
  return nullptr;
}

Counter* MetricsRegistry::FindOrCreateCounter(const std::string& name,
                                              const std::string& help,
                                              const std::string& labels) {
  return FindOrCreate(Kind::kCounter, name, help, labels)->counter.get();
}

Gauge* MetricsRegistry::FindOrCreateGauge(const std::string& name,
                                          const std::string& help,
                                          const std::string& labels) {
  return FindOrCreate(Kind::kGauge, name, help, labels)->gauge.get();
}

Histogram* MetricsRegistry::FindOrCreateHistogram(const std::string& name,
                                                  const std::string& help,
                                                  const std::string& labels) {
  return FindOrCreate(Kind::kHistogram, name, help, labels)->histogram.get();
}

const Counter* MetricsRegistry::counter(const std::string& name,
                                        const std::string& labels) const {
  const Entry* e = Find(Kind::kCounter, name, labels);
  return e != nullptr ? e->counter.get() : nullptr;
}

const Gauge* MetricsRegistry::gauge(const std::string& name,
                                    const std::string& labels) const {
  const Entry* e = Find(Kind::kGauge, name, labels);
  return e != nullptr ? e->gauge.get() : nullptr;
}

const Histogram* MetricsRegistry::histogram(const std::string& name,
                                            const std::string& labels) const {
  const Entry* e = Find(Kind::kHistogram, name, labels);
  return e != nullptr ? e->histogram.get() : nullptr;
}

size_t MetricsRegistry::size() const {
  ReaderMutexLock lock(mutex_);
  return entries_.size();
}

std::string MetricsRegistry::RenderText() const {
  ReaderMutexLock lock(mutex_);
  std::string out;
  auto append_sample = [&out](const std::string& name,
                              const std::string& labels,
                              const std::string& value) {
    out += name;
    if (!labels.empty()) {
      out += '{';
      out += labels;
      out += '}';
    }
    out += ' ';
    out += value;
    out += '\n';
  };
  // One HELP/TYPE header per family, emitted at its first appearance in
  // registration order; later same-name entries (other label sets) are
  // grouped under it by a second pass.
  std::vector<const Entry*> done;
  for (const auto& first : entries_) {
    bool seen = false;
    for (const Entry* d : done) {
      if (d->name == first->name) {
        seen = true;
        break;
      }
    }
    if (seen) continue;
    out += "# HELP " + first->name + " " + first->help + "\n";
    const char* type = first->kind == Kind::kCounter   ? "counter"
                       : first->kind == Kind::kGauge   ? "gauge"
                                                       : "histogram";
    out += "# TYPE " + first->name + " " + type + "\n";
    for (const auto& e : entries_) {
      if (e->name != first->name) continue;
      done.push_back(e.get());
      switch (e->kind) {
        case Kind::kCounter:
          append_sample(e->name, e->labels,
                        std::to_string(e->counter->value()));
          break;
        case Kind::kGauge:
          append_sample(e->name, e->labels,
                        std::to_string(e->gauge->value()));
          break;
        case Kind::kHistogram: {
          const Histogram& h = *e->histogram;
          // Hoisted out of the bucket loop: the label prefix and the
          // "_bucket" family name are the same for all 28 rows, and
          // one row-label buffer is reused across them.
          std::string label_prefix = e->labels;
          if (!label_prefix.empty()) label_prefix += ',';
          const std::string bucket_name = e->name + "_bucket";
          std::string row_labels;
          int64_t cumulative = 0;
          for (int i = 0; i < Histogram::kNumBuckets; ++i) {
            cumulative += h.bucket_count(i);
            row_labels.assign(label_prefix);
            row_labels += "le=\"";
            row_labels += FormatBound(Histogram::BucketUpperBound(i));
            row_labels += '"';
            append_sample(bucket_name, row_labels,
                          std::to_string(cumulative));
          }
          cumulative += h.bucket_count(Histogram::kNumBuckets);
          row_labels.assign(label_prefix);
          row_labels += "le=\"+Inf\"";
          append_sample(bucket_name, row_labels,
                        std::to_string(cumulative));
          append_sample(e->name + "_sum", e->labels,
                        FormatDouble(h.sum_ms()));
          append_sample(e->name + "_count", e->labels,
                        std::to_string(h.count()));
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace paleo
