// Lock-cheap metrics for the PALEO pipeline and the discovery service.
//
// A MetricsRegistry names three instrument kinds:
//
//   - Counter:   monotonic 64-bit count (events, candidates, rows),
//   - Gauge:     settable 64-bit level (queue depth, in-flight runs),
//   - Histogram: fixed-bucket latency distribution with p50/p95/p99.
//
// Registration (FindOrCreate*) takes a mutex and returns a pointer that
// stays valid for the registry's lifetime; the update path (Add / Set /
// Observe) is a single relaxed atomic op, so any number of threads may
// hammer one instrument concurrently — totals are exact, cross-metric
// snapshots are not synchronized.
//
// Instrumentation is compiled in but must cost nothing when turned off.
// The convention throughout the codebase is a NULLABLE HANDLE: code
// holds `Counter*` / `Histogram*` pointers (all-null when no registry is
// attached) and reports events through the free helpers below, which
// reduce a disabled event to exactly one well-predicted branch:
//
//   obs::Inc(metrics.candidates_executed);          // no-op if null
//   obs::Observe(metrics.run_ms, timer.ElapsedMillis());
//
// RenderText() emits the Prometheus text exposition format (HELP/TYPE
// lines, cumulative `_bucket{le=...}` rows, `_sum`/`_count`), suitable
// for scraping or for a periodic stderr dump (`paleo_server_cli
// --metrics-every`).

#ifndef PALEO_OBS_METRICS_H_
#define PALEO_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace paleo {
namespace obs {

/// \brief Monotonic event counter. Thread-safe.
/// relaxed: a counter is a pure tally — increments commute and readers
/// sample; nothing is ordered or published through it.
class Counter {
 public:
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  // relaxed: see class comment.
  std::atomic<int64_t> value_{0};
};

/// \brief Settable level. Thread-safe.
/// relaxed: last-writer-wins level sampled by scrapes; stale reads are
/// inherent to sampling and no other memory depends on the value.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  // relaxed: see class comment.
  std::atomic<int64_t> value_{0};
};

/// \brief Fixed-bucket latency histogram over milliseconds.
///
/// Buckets are a hard-coded exponential ladder (2^i / 1000 ms from 1 µs
/// up to ~67 s, plus +Inf), so Observe() is a loop-free index
/// computation plus one relaxed increment — no allocation, no locks.
/// The sum is accumulated in nanosecond-resolution integer ticks to
/// stay atomic without a CAS loop on doubles.
class Histogram {
 public:
  /// Number of finite bucket upper bounds; bucket kNumBuckets is +Inf.
  static constexpr int kNumBuckets = 27;

  /// Upper bound (inclusive, in ms) of finite bucket `i`.
  static double BucketUpperBound(int i);

  void Observe(double ms);

  // relaxed: scrape-side samples of independent tallies; a reader may
  // see count/sum/buckets from slightly different instants, which
  // Prometheus-style scraping tolerates by design.
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum_ms() const {
    return static_cast<double>(sum_micros_.load(std::memory_order_relaxed)) /
           1000.0;
  }
  int64_t bucket_count(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Quantile estimate (q in [0, 1]) by linear interpolation inside the
  /// owning bucket; 0 when empty. p99 of a histogram whose tail sits in
  /// the +Inf bucket reports the last finite bound.
  double Quantile(double q) const;
  double p50() const { return Quantile(0.50); }
  double p95() const { return Quantile(0.95); }
  double p99() const { return Quantile(0.99); }

 private:
  // relaxed: independent tallies (see accessor comment above).
  std::atomic<int64_t> buckets_[kNumBuckets + 1] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_micros_{0};
};

/// \brief Named instrument directory with Prometheus-style rendering.
///
/// Instruments are identified by (name, labels) where `labels` is a
/// pre-rendered Prometheus label body such as `stage="executed"` (empty
/// for none). FindOrCreate* is idempotent: the same pair always returns
/// the same instrument, so independent binding sites share totals.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* FindOrCreateCounter(const std::string& name,
                               const std::string& help,
                               const std::string& labels = "");
  Gauge* FindOrCreateGauge(const std::string& name, const std::string& help,
                           const std::string& labels = "");
  Histogram* FindOrCreateHistogram(const std::string& name,
                                   const std::string& help,
                                   const std::string& labels = "");

  /// The instrument registered under (name, labels), or nullptr. For
  /// tests and dashboards; prefer holding the FindOrCreate* pointer.
  const Counter* counter(const std::string& name,
                         const std::string& labels = "") const;
  const Gauge* gauge(const std::string& name,
                     const std::string& labels = "") const;
  const Histogram* histogram(const std::string& name,
                             const std::string& labels = "") const;

  /// Prometheus text exposition: one HELP/TYPE header per family (in
  /// first-registration order), then one sample line per instrument —
  /// counters as `name{labels} v`, gauges likewise, histograms as
  /// cumulative `_bucket{le="..."}` rows plus `_sum` and `_count`.
  std::string RenderText() const;

  size_t size() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string name;
    std::string labels;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreate(Kind kind, const std::string& name,
                      const std::string& help, const std::string& labels);
  const Entry* Find(Kind kind, const std::string& name,
                    const std::string& labels) const;
  const Entry* FindLocked(Kind kind, const std::string& name,
                          const std::string& labels) const
      REQUIRES_SHARED(mutex_);

  /// Reader/writer: registration (rare) takes the writer side, lookups
  /// and RenderText scrapes share the reader side, so a scrape never
  /// blocks another scrape. Instrument updates bypass the lock entirely
  /// (relaxed atomics on stable heap entries).
  mutable SharedMutex mutex_;
  /// Registration order; stable pointers (entries are heap-allocated).
  std::vector<std::unique_ptr<Entry>> entries_ GUARDED_BY(mutex_);
};

// ---- Nullable-handle event helpers (the one-branch disabled path) ----

inline void Inc(Counter* c, int64_t n = 1) {
  if (c != nullptr) c->Add(n);
}
inline void Set(Gauge* g, int64_t v) {
  if (g != nullptr) g->Set(v);
}
inline void Add(Gauge* g, int64_t n) {
  if (g != nullptr) g->Add(n);
}
inline void Observe(Histogram* h, double ms) {
  if (h != nullptr) h->Observe(ms);
}

}  // namespace obs
}  // namespace paleo

#endif  // PALEO_OBS_METRICS_H_
