#include "obs/trace.h"

#include <cstdio>

namespace paleo {
namespace obs {

namespace {

using Clock = std::chrono::steady_clock;

double OffsetMs(Clock::time_point base, Clock::time_point t) {
  return std::chrono::duration<double, std::milli>(t - base).count();
}

std::string FormatMs(double ms) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

std::string FormatDouble(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void AppendJsonString(std::string_view s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

Trace::SpanId Trace::StartSpan(std::string_view name, SpanId parent) {
  Span span;
  span.name.assign(name.data(), name.size());
  span.parent = parent;
  span.start = Clock::now();
  spans_.push_back(std::move(span));
  return static_cast<SpanId>(spans_.size() - 1);
}

void Trace::EndSpan(SpanId id) {
  if (id < 0 || static_cast<size_t>(id) >= spans_.size()) return;
  Span& span = spans_[static_cast<size_t>(id)];
  if (!span.finished()) span.end = Clock::now();
}

void Trace::AddAttr(SpanId id, std::string_view key, int64_t value) {
  if (id < 0 || static_cast<size_t>(id) >= spans_.size()) return;
  SpanAttr attr;
  attr.key.assign(key.data(), key.size());
  attr.kind = SpanAttr::Kind::kInt;
  attr.i = value;
  spans_[static_cast<size_t>(id)].attrs.push_back(std::move(attr));
}

void Trace::AddAttr(SpanId id, std::string_view key, double value) {
  if (id < 0 || static_cast<size_t>(id) >= spans_.size()) return;
  SpanAttr attr;
  attr.key.assign(key.data(), key.size());
  attr.kind = SpanAttr::Kind::kDouble;
  attr.d = value;
  spans_[static_cast<size_t>(id)].attrs.push_back(std::move(attr));
}

void Trace::AddAttr(SpanId id, std::string_view key,
                    std::string_view value) {
  if (id < 0 || static_cast<size_t>(id) >= spans_.size()) return;
  SpanAttr attr;
  attr.key.assign(key.data(), key.size());
  attr.kind = SpanAttr::Kind::kString;
  attr.s.assign(value.data(), value.size());
  spans_[static_cast<size_t>(id)].attrs.push_back(std::move(attr));
}

Trace::SpanId Trace::Adopt(const Trace& other, SpanId parent) {
  if (other.spans_.empty()) return kNoSpan;
  const SpanId base = static_cast<SpanId>(spans_.size());
  spans_.reserve(spans_.size() + other.spans_.size());
  for (const Span& span : other.spans_) {
    Span copy = span;
    copy.parent = span.parent == kNoSpan ? parent : span.parent + base;
    spans_.push_back(std::move(copy));
  }
  return base;
}

const Span* Trace::FindSpan(std::string_view name) const {
  for (const Span& span : spans_) {
    if (span.name == name) return &span;
  }
  return nullptr;
}

std::string Trace::ToJson() const {
  if (spans_.empty()) return "[]";
  // Child lists by parent, preserving arena (creation) order.
  std::vector<std::vector<SpanId>> children(spans_.size());
  std::vector<SpanId> roots;
  for (size_t i = 0; i < spans_.size(); ++i) {
    SpanId parent = spans_[i].parent;
    if (parent == kNoSpan) {
      roots.push_back(static_cast<SpanId>(i));
    } else {
      children[static_cast<size_t>(parent)].push_back(
          static_cast<SpanId>(i));
    }
  }
  const Clock::time_point base = spans_[static_cast<size_t>(
      roots.empty() ? 0 : roots.front())].start;

  std::string out;
  // Recursive lambda over the tree.
  auto render = [&](auto&& self, SpanId id) -> void {
    const Span& span = spans_[static_cast<size_t>(id)];
    out += "{\"name\":";
    AppendJsonString(span.name, &out);
    out += ",\"start_ms\":" + FormatMs(OffsetMs(base, span.start));
    out += ",\"duration_ms\":" + FormatMs(span.duration_ms());
    if (!span.attrs.empty()) {
      out += ",\"attrs\":{";
      for (size_t a = 0; a < span.attrs.size(); ++a) {
        if (a > 0) out += ',';
        const SpanAttr& attr = span.attrs[a];
        AppendJsonString(attr.key, &out);
        out += ':';
        switch (attr.kind) {
          case SpanAttr::Kind::kInt:
            out += std::to_string(attr.i);
            break;
          case SpanAttr::Kind::kDouble:
            out += FormatDouble(attr.d);
            break;
          case SpanAttr::Kind::kString:
            AppendJsonString(attr.s, &out);
            break;
        }
      }
      out += '}';
    }
    const auto& kids = children[static_cast<size_t>(id)];
    if (!kids.empty()) {
      out += ",\"children\":[";
      for (size_t k = 0; k < kids.size(); ++k) {
        if (k > 0) out += ',';
        self(self, kids[k]);
      }
      out += ']';
    }
    out += '}';
  };

  if (roots.size() == 1) {
    render(render, roots.front());
  } else {
    out += '[';
    for (size_t r = 0; r < roots.size(); ++r) {
      if (r > 0) out += ',';
      render(render, roots[r]);
    }
    out += ']';
  }
  return out;
}

}  // namespace obs
}  // namespace paleo
