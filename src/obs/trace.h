// Structured per-request tracing: one Trace is a tree of timed spans
// with typed attributes, covering a whole reverse-engineering request
// (service admission -> queue -> run -> miner -> ranking finder ->
// per-candidate validation).
//
// Design:
//   - Spans live in an arena (std::vector) and reference each other by
//     index, so building a trace is append-only and a dump walks the
//     arena once. Start/end are steady_clock time points, which makes
//     Adopt() (grafting the pipeline's run trace under a session span)
//     a plain copy — all traces in one process share the clock base.
//   - A Trace is NOT thread-safe. Each request builds its own trace
//     from the thread driving its pipeline (the parallel validator
//     records spans only from the single-threaded commit loop), and
//     service handoffs (queue push/pop, Session::Finish) already
//     synchronize, so no extra locking is needed or taken.
//   - Every recording entry point is null-tolerant: ScopedSpan and the
//     Trace* helpers reduce to one branch when tracing is off, the
//     same contract as the metrics handles.
//
// ToJson() renders the tree as nested objects with millisecond offsets
// relative to the root span's start — the `paleo_cli --trace-out`
// format and the input to ExplainTrace().

#ifndef PALEO_OBS_TRACE_H_
#define PALEO_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace paleo {
namespace obs {

/// \brief One typed span attribute (int64, double, or string).
struct SpanAttr {
  enum class Kind : int { kInt, kDouble, kString };
  std::string key;
  Kind kind = Kind::kInt;
  int64_t i = 0;
  double d = 0.0;
  std::string s;
};

/// \brief One timed node of the span tree.
struct Span {
  std::string name;
  int32_t parent = -1;  // index into Trace::spans(); -1 = root
  std::chrono::steady_clock::time_point start{};
  std::chrono::steady_clock::time_point end{};
  std::vector<SpanAttr> attrs;

  bool finished() const {
    return end != std::chrono::steady_clock::time_point{};
  }
  double duration_ms() const {
    if (!finished()) return 0.0;
    return std::chrono::duration<double, std::milli>(end - start).count();
  }
};

/// \brief Append-only span tree for one request.
class Trace {
 public:
  using SpanId = int32_t;
  static constexpr SpanId kNoSpan = -1;

  Trace() = default;
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;
  Trace(Trace&&) = default;
  Trace& operator=(Trace&&) = default;

  /// Opens a span under `parent` (kNoSpan = top level) and returns its
  /// id. Ids are stable (arena indices).
  SpanId StartSpan(std::string_view name, SpanId parent = kNoSpan);

  /// Closes the span (idempotent: the first end wins).
  void EndSpan(SpanId id);

  void AddAttr(SpanId id, std::string_view key, int64_t value);
  void AddAttr(SpanId id, std::string_view key, double value);
  void AddAttr(SpanId id, std::string_view key, std::string_view value);

  /// Grafts a copy of `other`'s span tree under `parent` (its top-level
  /// spans become children of `parent`). Returns the id of the first
  /// adopted span, or kNoSpan when `other` is empty.
  SpanId Adopt(const Trace& other, SpanId parent);

  const std::vector<Span>& spans() const { return spans_; }
  bool empty() const { return spans_.empty(); }
  size_t size() const { return spans_.size(); }
  const Span& span(SpanId id) const {
    return spans_[static_cast<size_t>(id)];
  }

  /// First span with the given name (depth-first arena order), or
  /// nullptr.
  const Span* FindSpan(std::string_view name) const;

  /// Nested-object JSON dump; offsets in ms relative to the first
  /// top-level span's start:
  ///   {"name":"run","start_ms":0.0,"duration_ms":12.4,
  ///    "attrs":{"candidates":130},"children":[...]}
  /// Multiple roots render as a JSON array.
  std::string ToJson() const;

 private:
  std::vector<Span> spans_;
};

/// \brief RAII span, tolerant of a null trace (one branch per call).
///
/// Not copyable; ends the span on destruction unless End() already ran.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(Trace* trace, std::string_view name,
             Trace::SpanId parent = Trace::kNoSpan)
      : trace_(trace),
        id_(trace != nullptr ? trace->StartSpan(name, parent)
                             : Trace::kNoSpan) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ScopedSpan(ScopedSpan&& other) noexcept
      : trace_(other.trace_), id_(other.id_) {
    other.trace_ = nullptr;
  }
  ~ScopedSpan() { End(); }

  void End() {
    if (trace_ != nullptr) trace_->EndSpan(id_);
    trace_ = nullptr;
  }

  template <typename T>
  void AddAttr(std::string_view key, T value) {
    if (trace_ != nullptr) trace_->AddAttr(id_, key, value);
  }

  /// The underlying trace and id, for parenting child spans; trace()
  /// is null when tracing is off or the span already ended.
  Trace* trace() const { return trace_; }
  Trace::SpanId id() const { return id_; }

 private:
  Trace* trace_ = nullptr;
  Trace::SpanId id_ = Trace::kNoSpan;
};

/// \brief (trace, parent-span) pair threaded through pipeline stages so
/// they can hang their spans under the caller's span. Null trace = off.
struct TraceContext {
  Trace* trace = nullptr;
  Trace::SpanId parent = Trace::kNoSpan;
};

}  // namespace obs
}  // namespace paleo

#endif  // PALEO_OBS_TRACE_H_
