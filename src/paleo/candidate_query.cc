#include "paleo/candidate_query.h"

#include <algorithm>

namespace paleo {

std::vector<CandidateQuery> BuildCandidateQueries(
    const MiningResult& mining, const std::vector<GroupRanking>& rankings,
    const ProbModel& model, int k, SortOrder order, bool lattice_order) {
  std::vector<CandidateQuery> out;
  for (const GroupRanking& ranking : rankings) {
    if (ranking.candidates.empty()) continue;
    const PredicateGroup& group =
        mining.groups[static_cast<size_t>(ranking.group_id)];
    for (int pred_id : group.predicate_ids) {
      const MinedPredicate& mined =
          mining.predicates[static_cast<size_t>(pred_id)];
      double p_fp =
          model.FalsePositiveProbability(mined.predicate, group);
      double proxy = model.PredicateSelectivity(mined.predicate);
      for (const RankingCandidate& criterion : ranking.candidates) {
        CandidateQuery cq;
        cq.query.predicate = mined.predicate;
        cq.query.expr = criterion.expr;
        cq.query.agg = criterion.agg;
        cq.query.order = order;
        cq.query.k = k;
        cq.group_id = ranking.group_id;
        cq.predicate_id = pred_id;
        cq.p_false_positive = p_fp;
        cq.ranking_distance = criterion.distance;
        cq.suitability = ProbModel::Suitability(p_fp, criterion.distance);
        cq.selectivity_proxy = proxy;
        out.push_back(std::move(cq));
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [lattice_order](const CandidateQuery& a, const CandidateQuery& b) {
              if (a.suitability != b.suitability)
                return a.suitability > b.suitability;
              // Lattice-aware ties: apriori parents (smaller
              // conjunctions) first, so their shared partials are
              // cached before the children probe them.
              if (lattice_order &&
                  a.query.predicate.size() != b.query.predicate.size())
                return a.query.predicate.size() < b.query.predicate.size();
              // Ties: most selective predicate first — covering all
              // input entities with rare values is strong evidence.
              if (a.selectivity_proxy != b.selectivity_proxy)
                return a.selectivity_proxy < b.selectivity_proxy;
              if (a.query.predicate.size() != b.query.predicate.size())
                return a.query.predicate.size() > b.query.predicate.size();
              if (!(a.query.predicate == b.query.predicate))
                return a.query.predicate < b.query.predicate;
              if (a.query.agg != b.query.agg) return a.query.agg < b.query.agg;
              return a.query.expr.Hash() < b.query.expr.Hash();
            });
  return out;
}

}  // namespace paleo
