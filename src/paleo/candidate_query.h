// Candidate query assembly and suitability ordering (Sections 3.2 and
// 6.3): the cross product of each predicate group's predicates with the
// group's candidate ranking criteria, scored by
// s(Qc) = (1 - P[false positive]) * (1 - d) and sorted best-first.
//
// Thread-safety: plain value types and pure functions over their
// arguments; concurrent calls are safe as long as each call uses its
// own output vector.

#ifndef PALEO_PALEO_CANDIDATE_QUERY_H_
#define PALEO_PALEO_CANDIDATE_QUERY_H_

#include <vector>

#include "engine/query.h"
#include "paleo/prob_model.h"
#include "paleo/ranking_finder.h"

namespace paleo {

/// \brief One fully assembled candidate query with its score
/// components.
struct CandidateQuery {
  TopKQuery query;
  int group_id = -1;
  int predicate_id = -1;
  double p_false_positive = 0.0;
  double ranking_distance = 0.0;
  double suitability = 1.0;
  /// Estimated selectivity of the predicate over R (catalog value
  /// frequencies under independence), used to break suitability ties:
  /// a predicate that covers every input entity despite rare values is
  /// unlikely to be a coincidence, and it lets fewer foreign entities
  /// through when executed over R.
  double selectivity_proxy = 1.0;
};

/// Builds the scored, ordered candidate list. `k` is the LIMIT of the
/// assembled queries (the input list's length). Ordering is
/// deterministic: suitability descending, then — among ties, which is
/// the common case over a complete R' where every candidate scores
/// 1.0 — most selective predicate first (largest size, smallest
/// selectivity proxy), then predicate/criterion identity.
///
/// `lattice_order` (PaleoOptions::lattice_aware_order) flips the
/// within-tie size preference to SMALLEST conjunction first: apriori
/// parents validate before the children derived from them, so the
/// shared conjunction cache is populated top-down. Suitability order
/// itself is untouched.
std::vector<CandidateQuery> BuildCandidateQueries(
    const MiningResult& mining, const std::vector<GroupRanking>& rankings,
    const ProbModel& model, int k, SortOrder order = SortOrder::kDesc,
    bool lattice_order = false);

}  // namespace paleo

#endif  // PALEO_PALEO_CANDIDATE_QUERY_H_
