#include "paleo/explain.h"

#include <algorithm>
#include <cstdio>

#include "common/string_util.h"

namespace paleo {

namespace {

std::string Line(const char* label, const std::string& value) {
  std::string out = "  ";
  out += label;
  size_t pad = out.size() < 30 ? 30 - out.size() : 1;
  out.append(pad, ' ');
  out += value;
  out += '\n';
  return out;
}

std::string FormatMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f ms", ms);
  return buf;
}

}  // namespace

std::string ExplainReport(const ReverseEngineerReport& report,
                          const Schema& schema,
                          const ExplainOptions& options) {
  std::string out;

  out += "Step 1 — candidate predicates (apriori over R')\n";
  out += Line("R' rows:", WithThousands(report.rprime_rows));
  out += Line("R' memory:",
              WithThousands(static_cast<int64_t>(report.rprime_bytes)) +
                  " bytes");
  out += Line("candidate predicates:",
              WithThousands(report.candidate_predicates));
  std::vector<std::string> by_size;
  for (size_t s = 1; s < report.predicates_by_size.size(); ++s) {
    by_size.push_back("|P|=" + std::to_string(s) + ": " +
                      std::to_string(report.predicates_by_size[s]));
  }
  if (!by_size.empty()) {
    out += Line("by size:", Join(by_size, ", "));
  }
  out += Line("distinct tuple sets:", WithThousands(report.tuple_sets));

  out += "Step 2 — ranking criteria (Figure 4 walk)\n";
  std::vector<std::string> techniques;
  if (report.ranking_info.used_top_entities) {
    techniques.push_back(
        "top-entity lists (" +
        std::to_string(report.ranking_info.top_entity_candidate_columns) +
        " candidate columns)");
  }
  if (report.ranking_info.used_histograms) {
    techniques.push_back(
        "histogram sampling (" +
        std::to_string(report.ranking_info.histogram_candidate_columns) +
        " candidate columns)");
  }
  if (report.ranking_info.used_fallback) {
    techniques.push_back("R' fallback");
  }
  out += Line("techniques:", techniques.empty() ? std::string("none")
                                                : Join(techniques, ", "));
  out += Line("criteria evaluated:",
              WithThousands(report.ranking_info.tuple_set_evaluations));
  out += Line("candidate queries:",
              WithThousands(report.candidate_queries));

  out += "Step 3 — validation against R\n";
  out += Line("executions:", WithThousands(report.executed_queries));
  if (report.skip_events > 0) {
    out += Line("smart skips:", WithThousands(report.skip_events));
  }

  if (report.termination != TerminationReason::kCompleted) {
    out += Line("stopped early:",
                TerminationReasonToString(report.termination));
  }

  if (report.found()) {
    out += "Result: " + std::to_string(report.valid.size()) +
           " valid quer" + (report.valid.size() == 1 ? "y" : "ies") + "\n";
    for (const ValidQuery& vq : report.valid) {
      out += "  " + vq.query.ToSql(schema) + "\n";
      out += Line("  found after:",
                  WithThousands(vq.executions_at_discovery) +
                      " executions");
    }
  } else {
    out += "Result: no valid query found\n";
  }

  if (!report.near_misses.empty()) {
    out += "Near misses (best candidates the budget never validated):\n";
    for (const CandidateQuery& cq : report.near_misses) {
      char score[64];
      std::snprintf(score, sizeof(score), "  s=%.3f  ", cq.suitability);
      out += score;
      out += cq.query.ToSql(schema) + "\n";
    }
  }

  if (options.show_candidates > 0 && !report.candidates.empty()) {
    out += "Top-scored candidates (suitability = (1 - P[fp]) x (1 - d)):\n";
    int n = std::min<int>(options.show_candidates,
                          static_cast<int>(report.candidates.size()));
    for (int i = 0; i < n; ++i) {
      const CandidateQuery& cq =
          report.candidates[static_cast<size_t>(i)];
      char score[96];
      std::snprintf(score, sizeof(score),
                    "  [%d] s=%.3f (P[fp]=%.3f, d=%.3f)  ", i + 1,
                    cq.suitability, cq.p_false_positive,
                    cq.ranking_distance);
      out += score;
      out += cq.query.ToSql(schema) + "\n";
    }
    if (static_cast<size_t>(n) < report.candidates.size()) {
      out += "  ... (" +
             WithThousands(static_cast<int64_t>(report.candidates.size()) -
                           n) +
             " more)\n";
    }
  }

  if (options.show_timings) {
    out += "Timings\n";
    out += Line("find predicates:",
                FormatMs(report.timings.find_predicates_ms));
    out += Line("find ranking:", FormatMs(report.timings.find_ranking_ms));
    out += Line("validation:", FormatMs(report.timings.validation_ms));
    out += Line("total:", FormatMs(report.timings.total_ms()));
  }

  if (options.show_trace && report.trace != nullptr &&
      !report.trace->empty()) {
    out += "Spans\n";
    const std::vector<obs::Span>& spans = report.trace->spans();
    // Arena order is creation order, so parents precede children and
    // the walk below renders the tree chronologically; depth comes
    // from the parent chain.
    std::vector<int> depth(spans.size(), 0);
    int rendered = 0;
    int64_t suppressed = 0;
    for (size_t i = 0; i < spans.size(); ++i) {
      const obs::Span& span = spans[i];
      if (span.parent >= 0) {
        depth[i] = depth[static_cast<size_t>(span.parent)] + 1;
      }
      if (rendered >= options.max_trace_spans) {
        ++suppressed;
        continue;
      }
      ++rendered;
      out += "  ";
      out.append(static_cast<size_t>(2 * depth[i]), ' ');
      out += span.name;
      out += "  " + std::string(FormatMs(span.duration_ms()));
      std::vector<std::string> attrs;
      for (const obs::SpanAttr& attr : span.attrs) {
        switch (attr.kind) {
          case obs::SpanAttr::Kind::kInt:
            attrs.push_back(attr.key + "=" + std::to_string(attr.i));
            break;
          case obs::SpanAttr::Kind::kDouble: {
            char buf[48];
            std::snprintf(buf, sizeof(buf), "%s=%.4g", attr.key.c_str(),
                          attr.d);
            attrs.push_back(buf);
            break;
          }
          case obs::SpanAttr::Kind::kString:
            attrs.push_back(attr.key + "=" + attr.s);
            break;
        }
      }
      if (!attrs.empty()) out += "  [" + Join(attrs, ", ") + "]";
      out += '\n';
    }
    if (suppressed > 0) {
      out += "  ... (" + WithThousands(suppressed) + " more spans)\n";
    }
  }
  return out;
}

}  // namespace paleo
