// Human-readable explanation of a reverse-engineering run: what PALEO
// searched, what it found, and why the result is credible. Rendered by
// the CLI's --verbose mode and usable by any embedder.
//
// Thread-safety: stateless rendering of an immutable Result; safe to
// call concurrently.

#ifndef PALEO_PALEO_EXPLAIN_H_
#define PALEO_PALEO_EXPLAIN_H_

#include <string>

#include "paleo/paleo.h"

namespace paleo {

/// \brief Rendering options for ExplainReport.
struct ExplainOptions {
  /// Show the top-N scored candidates (requires the report to have
  /// been produced with keep_candidates).
  int show_candidates = 5;
  /// Include per-step wall-clock timings.
  bool show_timings = true;
  /// Include the span breakdown (requires the report to have been
  /// produced with RunRequest::collect_trace).
  bool show_trace = true;
  /// Cap on rendered spans; per-candidate execute/commit spans past
  /// the cap collapse into one "... (N more)" line.
  int max_trace_spans = 40;
};

/// Renders a multi-line explanation of `report` against the relation's
/// schema. Safe on any report (found or not, with or without retained
/// candidates).
std::string ExplainReport(const ReverseEngineerReport& report,
                          const Schema& schema,
                          const ExplainOptions& options = ExplainOptions());

}  // namespace paleo

#endif  // PALEO_PALEO_EXPLAIN_H_
