#include "paleo/options.h"

#include <algorithm>

namespace paleo {

double CoverageRatioForSample(double sample_fraction) {
  struct Point {
    double fraction;
    double ratio;
  };
  // The paper's schedule, linearly interpolated.
  static const Point kSchedule[] = {
      {0.05, 0.5}, {0.10, 0.6}, {0.20, 0.7}, {0.30, 0.8}, {1.00, 1.0}};
  if (sample_fraction <= kSchedule[0].fraction) return kSchedule[0].ratio;
  for (size_t i = 1; i < std::size(kSchedule); ++i) {
    if (sample_fraction <= kSchedule[i].fraction) {
      const Point& a = kSchedule[i - 1];
      const Point& b = kSchedule[i];
      double t = (sample_fraction - a.fraction) / (b.fraction - a.fraction);
      return a.ratio + t * (b.ratio - a.ratio);
    }
  }
  return 1.0;
}

}  // namespace paleo
