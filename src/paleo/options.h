// Configuration of the PALEO pipeline.
//
// Thread-safety: a plain value type. Treat as immutable once handed to
// Run(); concurrent const access is safe.

#ifndef PALEO_PALEO_OPTIONS_H_
#define PALEO_PALEO_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "engine/aggregate.h"

namespace paleo {

/// \brief How candidate queries are validated against R.
enum class ValidationStrategy : int {
  /// Execute candidates in descending suitability order (Section 6.3).
  kRanked = 0,
  /// Result-driven validation with skipping (Algorithm 3, Section 7).
  kSmart = 1,
};

/// \brief How a candidate query's output is accepted as matching L.
enum class MatchMode : int {
  /// Instance equivalence: identical entities, order, and values.
  kExact = 0,
  /// Partial match (Section 3.3): rank-distance and value-distance
  /// thresholds.
  kPartial = 1,
};

/// \brief All tuning knobs of the PALEO pipeline, with the paper's
/// defaults.
struct PaleoOptions {
  // ---- Candidate predicate mining (Section 4) ----
  /// Largest conjunction size mined. The paper's workloads use
  /// |P| <= 3; mining is downward-closed so this is a safety cap, not a
  /// correctness knob.
  int max_predicate_size = 3;
  /// Fraction of the input list's entities a predicate must cover to
  /// qualify as a candidate. 1.0 with a complete R'; relaxed under
  /// sampling (Section 6.4).
  double coverage_ratio = 1.0;
  /// Also offer the empty conjunction (no WHERE clause) as a candidate
  /// predicate, so lists generated without any filter are recoverable.
  /// The paper's algorithm starts at |P| = 1 and never considers it;
  /// the bench harness switches this off to match the paper's counts.
  bool include_empty_predicate = true;
  /// Extension beyond the paper (its predicates are equality-only):
  /// also mine one BETWEEN atom per numeric dimension column — the
  /// tightest interval whose rows cover the required entities — and
  /// let it conjoin with equality atoms in the apriori levels. Enables
  /// recovering queries like "d_year BETWEEN 1993 AND 1995".
  bool mine_range_predicates = false;

  // ---- Ranking criteria identification (Section 5) ----
  /// Fraction of measure columns kept as candidates by the histogram
  /// heuristic ("top 30% of the columns", Section 5.2).
  double histogram_keep_fraction = 0.3;
  /// Values sampled from each histogram (k of the input list is used
  /// when 0).
  int histogram_sample_size = 0;
  /// Aggregates searched for single-column ranking criteria, in the
  /// Figure 4 pre-order.
  std::vector<AggFn> single_column_aggs = {AggFn::kMax, AggFn::kAvg,
                                           AggFn::kSum, AggFn::kNone};
  /// Two-column ranking criteria: sum(A + B) and sum(A * B).
  bool enable_sum_of_two = true;
  bool enable_product_of_two = true;
  /// Extension beyond the paper: also search min/count aggregates.
  bool enable_min_count = false;
  /// Under sampling (scored mode), keep only this many best-distance
  /// criteria per tuple set. Without a cap every group carries every
  /// criterion (hundreds), flooding validation with near-duplicate
  /// candidates; the paper's Table 7 candidate counts (~130 for max(A))
  /// imply a strong per-group selection. 0 = unlimited.
  int max_criteria_per_group = 16;

  // ---- Suitability model and validation (Sections 6, 7) ----
  ValidationStrategy validation_strategy = ValidationStrategy::kSmart;
  MatchMode match_mode = MatchMode::kExact;
  /// Jaccard threshold tau of Algorithm 3.
  double smart_jaccard_threshold = 0.5;
  /// Partial-match acceptance thresholds (used when match_mode is
  /// kPartial): minimum entity Jaccard similarity and maximum
  /// normalized value distance.
  double partial_min_entity_jaccard = 0.6;
  double partial_max_value_distance = 0.2;
  /// Stop after this many candidate query executions (0 = unlimited).
  int64_t max_query_executions = 0;
  /// Stop at the first valid query (the paper's headline metric) or
  /// enumerate all valid queries.
  bool stop_at_first_valid = true;
  /// Estimate the false-positive model's per-tuple match probability
  /// from the predicate's observed match rate in the sample (default)
  /// instead of the paper's prod 1/|Ai| uniformity assumption, which
  /// collapses under correlated tuples (see ProbModel).
  bool use_observed_match_rate = true;

  // ---- Resource governance (beyond the paper) ----
  /// Wall-clock deadline for one Run()/RunOnSample() call, in
  /// milliseconds; 0 = unlimited, the paper's behaviour (results are
  /// then bit-for-bit identical to an ungoverned run). On expiry the
  /// run winds down gracefully instead of erroring: the report keeps
  /// every query validated so far, termination is kDeadline, and the
  /// best candidates that never got executed are surfaced as
  /// near_misses.
  int64_t deadline_ms = 0;
  /// Cap on candidate-query executions per run, counted across all
  /// validation passes; 0 = unlimited. Unlike max_query_executions
  /// (the paper's per-pass knob above, which stops silently), hitting
  /// this cap is reported as TerminationReason::kExecutionBudget with
  /// near misses. Both caps may be set; the tighter one wins.
  int64_t max_validation_executions = 0;

  /// Fan candidate-query executions of the validation step out across
  /// a ThreadPool (passed to Paleo::RunConcurrent or the Validator):
  /// up to this many executions run concurrently, results commit in
  /// suitability-rank order, and the first validated query cancels
  /// outstanding lower-rank siblings. <= 1, or a missing pool, keeps
  /// the sequential paths. The set of valid queries (and with
  /// stop_at_first_valid the single reported query) is identical to a
  /// sequential run — speculation beyond the commit point is discarded
  /// exactly where the sequential smart scheduler would have skipped
  /// or stopped — but wall-clock-dependent side counts
  /// (speculative_executions, timings) differ.
  int num_threads = 1;

  /// Evaluate full-table scans through the vectorized selection
  /// kernels (engine/selection_kernels.h): per-atom selection bitmaps,
  /// word-wise conjunction AND, fused group-by consumption. Results
  /// are byte-identical to the scalar row-at-a-time path (asserted by
  /// tests/vectorized_exec_test.cc); only wall-clock changes. Disable
  /// for ablation or to debug against the reference scalar path.
  bool vectorized_execution = true;
  /// Morsel-parallel full scans: one candidate's table scan decomposes
  /// into chunk-granular morsels (storage/table_view.h) claimed by up
  /// to this many workers of the run's ThreadPool. <= 1, or a missing
  /// pool, keeps each scan on its calling thread. Results are
  /// byte-identical at any setting (rank-order merge of per-chunk
  /// partials); composes with num_threads — validation workers and
  /// their scan morsels share one pool via work-stealing, so
  /// num_threads * scan_threads can exceed the pool size safely.
  int scan_threads = 1;
  /// Re-chunk the base table to this many rows per chunk (rounded down
  /// to a multiple of 64) when building catalog snapshots; 0 keeps the
  /// table's existing layout (Table::kDefaultChunkRows for tables built
  /// through AppendRows). Smaller chunks sharpen zone-map skipping and
  /// morsel granularity at the cost of per-chunk overhead.
  size_t chunk_rows = 0;
  /// Byte budget of the per-run AtomSelectionCache sharing per-atom
  /// selection bitmaps across candidate executions (LRU-evicted past
  /// the budget). 0 disables the cache; ignored when
  /// vectorized_execution is off.
  size_t atom_cache_bytes = static_cast<size_t>(32) << 20;

  /// Threshold-pruned validation (engine/threshold_monitor.h): abort a
  /// candidate execution mid-scan the instant its running per-group
  /// bounds prove the result cannot equal L. Sound — a candidate the
  /// full execution would accept is never refuted — so the set of
  /// validated queries is identical on or off (asserted by
  /// tests/threshold_validation_test.cc); refuted executions still
  /// count against every execution budget. Applies to exact-match
  /// validation over multi-chunk tables; partial-match runs ignore it
  /// (a pruned scan has no result list to score). Disable for ablation
  /// or to reproduce the paper's full-execution cost profile.
  bool threshold_pruning = true;
  /// Share whole-conjunction selection bitmaps and per-chunk grouped
  /// partial aggregates across the candidate lattice through the
  /// run's AtomSelectionCache conjunction tiers: a parent
  /// conjunction's partials computed once are served to every
  /// candidate reusing the same (conjunction, ranking expression)
  /// pair, skipping those chunks' scans outright. Byte-identical
  /// results (cached partials ARE the canonical per-chunk partials);
  /// executor rows_scanned drops accordingly. Requires the atom cache
  /// (atom_cache_bytes > 0 and vectorized_execution on).
  bool share_aggregates = true;
  /// Order suitability-tied candidates lattice-aware — parents (small
  /// conjunctions) before children — so shared partials are populated
  /// top-down and children hit the cache on their first chunk. Off by
  /// default: the paper's tie-break prefers the most selective
  /// (largest) predicate first, and the bench harness measures that
  /// profile; sharing still works either direction (children populate,
  /// parents reuse), just with a colder start.
  bool lattice_aware_order = false;

  /// Build secondary indexes on R's dimension columns and answer
  /// candidate-query executions by posting-list intersection instead
  /// of full scans. Results are identical; validation wall-clock drops
  /// by orders of magnitude for selective predicates. Disable to
  /// reproduce the paper's scan-based validation cost profile
  /// (Figure 7).
  bool use_dimension_index = true;

  /// Relative tolerance for value comparisons.
  double rel_eps = 1e-9;

  /// Seed for the histogram sampling inside ranking identification.
  uint64_t seed = 4242;
};

/// The paper's coverage-ratio schedule for uniform per-entity samples
/// (Section 8.1): 0.5 at 5%, 0.6 at 10%, 0.7 at 20%, 0.8 at 30%,
/// 1.0 at 100%; linear interpolation in between.
double CoverageRatioForSample(double sample_fraction);

}  // namespace paleo

#endif  // PALEO_PALEO_OPTIONS_H_
