#include "paleo/paleo.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/timer.h"
#include "paleo/rprime.h"

namespace paleo {

namespace {

/// Near misses surfaced on budget exhaustion are capped: they are best
/// guesses for a human (or a retry with a larger budget), not an
/// exhaustive dump of the candidate space.
constexpr size_t kMaxNearMisses = 16;

/// Copies the unvalidated candidates (ascending index = suitability
/// order) into the report's near-miss list, up to the cap.
void AppendNearMisses(const std::vector<CandidateQuery>& candidates,
                      const std::vector<size_t>& unvalidated,
                      ReverseEngineerReport* report) {
  for (size_t idx : unvalidated) {
    if (report->near_misses.size() >= kMaxNearMisses) break;
    report->near_misses.push_back(candidates[idx]);
  }
}

}  // namespace

Paleo::Paleo(const Table* base, PaleoOptions options)
    : base_(base),
      options_(std::move(options)),
      index_(EntityIndex::Build(*base)),
      catalog_(StatsCatalog::Build(*base)) {
  if (options_.use_dimension_index) {
    dimension_index_ =
        std::make_unique<DimensionIndex>(DimensionIndex::Build(*base));
    executor_.SetDimensionIndex(dimension_index_.get(), base_);
  }
}

StatusOr<ReverseEngineerReport> Paleo::Run(const TopKList& input,
                                           bool keep_candidates,
                                           const RunBudget* budget) {
  return RunImpl(input, nullptr, options_.coverage_ratio,
                 /*assume_complete=*/true, keep_candidates, budget,
                 options_, &executor_, /*pool=*/nullptr);
}

StatusOr<ReverseEngineerReport> Paleo::RunOnSample(
    const TopKList& input, const std::vector<RowId>& sample_rows,
    double sample_fraction, bool keep_candidates,
    double coverage_ratio_override, const RunBudget* budget) {
  double coverage = coverage_ratio_override > 0.0
                        ? coverage_ratio_override
                        : CoverageRatioForSample(sample_fraction);
  return RunImpl(input, &sample_rows, coverage, /*assume_complete=*/false,
                 keep_candidates, budget, options_, &executor_,
                 /*pool=*/nullptr);
}

StatusOr<ReverseEngineerReport> Paleo::RunConcurrent(
    const TopKList& input, const RunBudget* budget, ThreadPool* pool,
    const PaleoOptions* options_override) const {
  const PaleoOptions& options =
      options_override != nullptr ? *options_override : options_;
  // All mutable state is this stack-local executor; the shared read
  // structures (base table, indexes, catalog) are immutable after
  // construction, so concurrent calls never synchronize.
  Executor executor;
  if (dimension_index_ != nullptr && options.use_dimension_index) {
    executor.SetDimensionIndex(dimension_index_.get(), base_);
  }
  return RunImpl(input, nullptr, options.coverage_ratio,
                 /*assume_complete=*/true, /*keep_candidates=*/false,
                 budget, options, &executor, pool);
}

StatusOr<ReverseEngineerReport> Paleo::RunImpl(
    const TopKList& input, const std::vector<RowId>* sample_rows,
    double coverage_ratio, bool assume_complete, bool keep_candidates,
    const RunBudget* external_budget, const PaleoOptions& options,
    Executor* executor, ThreadPool* pool) const {
  ReverseEngineerReport report;

  // ---- Resource governance ----
  // The effective budget is the intersection of the options' knobs
  // (deadline_ms anchored at this call, max_validation_executions) and
  // the caller's external budget (deadline, cap, cancellation token).
  // With neither configured, `governed` stays nullptr and every stage
  // runs exactly as the ungoverned paper pipeline.
  RunBudget budget;
  budget.SetDeadlineAfterMillis(options.deadline_ms);
  budget.set_max_executions(options.max_validation_executions);
  if (external_budget != nullptr) budget.Tighten(*external_budget);
  const RunBudget* governed = budget.IsUnlimited() ? nullptr : &budget;
  // The first stage to exhaust the budget names the reason; later
  // stages are skipped or wound down and cannot overwrite it.
  auto note_termination = [&report](TerminationReason reason) {
    if (report.termination == TerminationReason::kCompleted) {
      report.termination = reason;
    }
  };

  // ---- Step 1: retrieve R' and mine candidate predicates ----
  Timer step_timer;
  PALEO_ASSIGN_OR_RETURN(RPrime rprime,
                         RPrime::Build(*base_, index_, input, sample_rows));
  report.rprime_rows = static_cast<int64_t>(rprime.num_rows());
  report.rprime_bytes = rprime.table().MemoryUsage();

  PaleoOptions step_options = options;
  step_options.coverage_ratio = coverage_ratio;
  PredicateMiner miner(rprime, step_options);
  PALEO_ASSIGN_OR_RETURN(MiningResult mining, miner.Mine(governed));
  note_termination(mining.termination);
  report.candidate_predicates =
      static_cast<int64_t>(mining.predicates.size());
  report.predicates_by_size = mining.predicates_by_size;
  report.tuple_sets = static_cast<int64_t>(mining.groups.size());
  report.timings.find_predicates_ms = step_timer.ElapsedMillis();

  // ---- Step 2: identify ranking criteria ----
  step_timer.Reset();
  RankingFinder finder(rprime, &catalog_, step_options);
  PALEO_ASSIGN_OR_RETURN(
      std::vector<GroupRanking> rankings,
      finder.Find(mining.groups, input, assume_complete,
                  &report.ranking_info, /*exhaustive=*/false, governed));
  note_termination(report.ranking_info.termination);

  // ORDER BY direction: ascending only when the input values are
  // non-decreasing with at least one increase (matching the ranking
  // finder's detection).
  std::vector<double> input_values = input.Values();
  const SortOrder order =
      std::is_sorted(input_values.begin(), input_values.end()) &&
              !std::is_sorted(input_values.rbegin(), input_values.rend())
          ? SortOrder::kAsc
          : SortOrder::kDesc;

  ProbModel model(catalog_, rprime);
  model.set_use_observed_match_rate(options.use_observed_match_rate);
  std::vector<CandidateQuery> candidates = BuildCandidateQueries(
      mining, rankings, model, static_cast<int>(input.size()), order);
  report.candidate_queries = static_cast<int64_t>(candidates.size());
  report.timings.find_ranking_ms = step_timer.ElapsedMillis();

  // ---- Step 3: validate candidate queries against R ----
  step_timer.Reset();
  Validator validator(*base_, executor, options, pool);
  ValidationOutcome outcome;
  if (report.termination == TerminationReason::kCompleted) {
    PALEO_ASSIGN_OR_RETURN(
        outcome, validator.Validate(candidates, input, governed,
                                    /*prior_executions=*/0));
    note_termination(outcome.termination);
    AppendNearMisses(candidates, outcome.unvalidated, &report);
  } else {
    // The budget ran out before validation started: nothing was
    // executed, so every assembled candidate is a near miss.
    for (size_t i = 0;
         i < candidates.size() && i < kMaxNearMisses; ++i) {
      report.near_misses.push_back(candidates[i]);
    }
  }
  report.valid = std::move(outcome.valid);
  report.executed_queries = outcome.executions;
  report.speculative_executions = outcome.speculative_executions;
  report.skip_events = outcome.skip_events;
  report.timings.validation_ms = step_timer.ElapsedMillis();

  // ---- Progressive deepening (complete R' only) ----
  // The Figure 4 walk stops at the first technique with exact criteria,
  // which is usually right but can be shadowed by a coincidental exact
  // match (e.g. max == avg == sum over one-row tuple sets). If nothing
  // validated against R, redo the ranking search exhaustively and
  // validate only the criteria the first pass did not try. Skipped
  // when the budget is already exhausted — the near misses above are
  // the best answer the budget affords.
  if (assume_complete && report.valid.empty() &&
      report.termination == TerminationReason::kCompleted) {
    step_timer.Reset();
    RankingSearchInfo deep_info;
    PALEO_ASSIGN_OR_RETURN(
        std::vector<GroupRanking> all_rankings,
        finder.Find(mining.groups, input, /*assume_complete=*/true,
                    &deep_info, /*exhaustive=*/true, governed));
    note_termination(deep_info.termination);
    std::vector<CandidateQuery> all_candidates = BuildCandidateQueries(
        mining, all_rankings, model, static_cast<int>(input.size()), order);
    std::unordered_set<uint64_t> already_tried;
    for (const CandidateQuery& cq : candidates) {
      already_tried.insert(cq.query.Hash());
    }
    std::vector<CandidateQuery> fresh;
    for (CandidateQuery& cq : all_candidates) {
      if (already_tried.count(cq.query.Hash()) == 0) {
        fresh.push_back(std::move(cq));
      }
    }
    report.candidate_queries =
        static_cast<int64_t>(candidates.size() + fresh.size());
    report.timings.find_ranking_ms += step_timer.ElapsedMillis();

    step_timer.Reset();
    ValidationOutcome retry;
    if (report.termination == TerminationReason::kCompleted) {
      PALEO_ASSIGN_OR_RETURN(
          retry, validator.Validate(fresh, input, governed,
                                    report.executed_queries));
      note_termination(retry.termination);
      AppendNearMisses(fresh, retry.unvalidated, &report);
    } else {
      for (size_t i = 0;
           i < fresh.size() && report.near_misses.size() < kMaxNearMisses;
           ++i) {
        report.near_misses.push_back(fresh[i]);
      }
    }
    for (ValidQuery& vq : retry.valid) {
      vq.executions_at_discovery += report.executed_queries;
      report.valid.push_back(std::move(vq));
    }
    report.executed_queries += retry.executions;
    report.speculative_executions += retry.speculative_executions;
    report.skip_events += retry.skip_events;
    report.timings.validation_ms += step_timer.ElapsedMillis();
    if (keep_candidates) {
      for (CandidateQuery& cq : fresh) candidates.push_back(std::move(cq));
    }
  }

  if (keep_candidates) report.candidates = std::move(candidates);
  return report;
}

}  // namespace paleo
