#include "paleo/paleo.h"

#include <algorithm>
#include <memory>
#include <unordered_set>
#include <utility>

#include "common/timer.h"
#include "engine/atom_cache.h"
#include "paleo/rprime.h"

namespace paleo {

namespace {

/// Near misses surfaced on budget exhaustion are capped: they are best
/// guesses for a human (or a retry with a larger budget), not an
/// exhaustive dump of the candidate space.
constexpr size_t kMaxNearMisses = 16;

/// Copies the unvalidated candidates (ascending index = suitability
/// order) into the report's near-miss list, up to the cap.
void AppendNearMisses(const std::vector<CandidateQuery>& candidates,
                      const std::vector<size_t>& unvalidated,
                      ReverseEngineerReport* report) {
  for (size_t idx : unvalidated) {
    if (report->near_misses.size() >= kMaxNearMisses) break;
    report->near_misses.push_back(candidates[idx]);
  }
}

}  // namespace

Paleo::Paleo(const Table* base, PaleoOptions options)
    : base_(base),
      options_(std::move(options)),
      index_(EntityIndex::Build(*base)),
      catalog_(StatsCatalog::Build(*base)) {
  executor_.SetVectorized(options_.vectorized_execution);
  if (options_.use_dimension_index) {
    dimension_index_ =
        std::make_unique<DimensionIndex>(DimensionIndex::Build(*base));
    executor_.SetDimensionIndex(dimension_index_.get(), base_);
  }
}

Paleo::Paleo(const Table* base, PaleoOptions options, EntityIndex index,
             StatsCatalog catalog,
             std::unique_ptr<DimensionIndex> dimension_index)
    : base_(base),
      options_(std::move(options)),
      index_(std::move(index)),
      catalog_(std::move(catalog)),
      dimension_index_(std::move(dimension_index)) {
  executor_.SetVectorized(options_.vectorized_execution);
  if (options_.use_dimension_index && dimension_index_ != nullptr) {
    executor_.SetDimensionIndex(dimension_index_.get(), base_);
  }
}

StatusOr<ReverseEngineerReport> Paleo::Run(const RunRequest& request) const {
  if (request.input == nullptr) {
    return Status::InvalidArgument("RunRequest.input must be set");
  }
  const PaleoOptions& options = request.options_override != nullptr
                                    ? *request.options_override
                                    : options_;

  // A request-private executor is what makes this call thread-safe;
  // callers that pass their own (the legacy wrappers, tooling that
  // wants cumulative Stats) opt out of that.
  Executor local_executor;
  Executor* executor = request.executor;
  if (executor == nullptr) {
    executor = &local_executor;
    local_executor.SetVectorized(options.vectorized_execution);
    if (dimension_index_ != nullptr && options.use_dimension_index) {
      local_executor.SetDimensionIndex(dimension_index_.get(), base_);
    }
  }

  PipelineMetrics metrics = PipelineMetrics::Bind(request.metrics);
  if (request.executor == nullptr) {
    // Mirror the executor's counters into the registry. A
    // caller-provided executor keeps whatever binding its owner chose
    // (it may be shared across runs with a different registry).
    executor->SetMetrics({metrics.executor_queries,
                          metrics.executor_rows_scanned,
                          metrics.executor_index_assisted,
                          metrics.chunks_skipped, metrics.morsels,
                          metrics.rows_saved_by_threshold,
                          metrics.scan_parallelism});
  }

  std::shared_ptr<obs::Trace> trace;
  if (request.collect_trace) trace = std::make_shared<obs::Trace>();

  obs::Inc(metrics.runs_total);
  Timer run_timer;
  auto result = RunImpl(request, options, executor, metrics, trace.get());
  obs::Observe(metrics.run_ms, run_timer.ElapsedMillis());
  if (result.ok()) {
    if (result->found()) obs::Inc(metrics.runs_found);
    result->trace = std::move(trace);
  }
  return result;
}

StatusOr<ReverseEngineerReport> Paleo::Run(const TopKList& input,
                                           bool keep_candidates,
                                           const RunBudget* budget) {
  RunRequest request;
  request.input = &input;
  request.keep_candidates = keep_candidates;
  request.budget = budget;
  request.executor = &executor_;
  return Run(request);
}

StatusOr<ReverseEngineerReport> Paleo::RunOnSample(
    const TopKList& input, const std::vector<RowId>& sample_rows,
    double sample_fraction, bool keep_candidates,
    double coverage_ratio_override, const RunBudget* budget) {
  RunRequest request;
  request.input = &input;
  request.sample_rows = &sample_rows;
  request.sample_fraction = sample_fraction;
  request.coverage_ratio_override = coverage_ratio_override;
  request.keep_candidates = keep_candidates;
  request.budget = budget;
  request.executor = &executor_;
  return Run(request);
}

StatusOr<ReverseEngineerReport> Paleo::RunConcurrent(
    const TopKList& input, const RunBudget* budget, ThreadPool* pool,
    const PaleoOptions* options_override) const {
  RunRequest request;
  request.input = &input;
  request.budget = budget;
  request.pool = pool;
  request.options_override = options_override;
  return Run(request);
}

StatusOr<ReverseEngineerReport> Paleo::RunImpl(
    const RunRequest& request, const PaleoOptions& options,
    Executor* executor, const PipelineMetrics& metrics,
    obs::Trace* trace) const {
  const TopKList& input = *request.input;
  const std::vector<RowId>* sample_rows = request.sample_rows;
  const bool assume_complete = sample_rows == nullptr;
  const double coverage_ratio =
      assume_complete ? options.coverage_ratio
      : request.coverage_ratio_override > 0.0
          ? request.coverage_ratio_override
          : CoverageRatioForSample(request.sample_fraction);
  const bool keep_candidates = request.keep_candidates;

  ReverseEngineerReport report;

  // Degradation accounting is a delta over the run: the executor may
  // be caller-provided and shared across runs, so its cumulative
  // counter cannot be read directly. relaxed: sampling a pure tally.
  const int64_t scalar_fallbacks_before =
      executor->stats().scalar_fallbacks.load(std::memory_order_relaxed);
  const int64_t rows_saved_before =
      executor->stats().rows_saved.load(std::memory_order_relaxed);

  obs::ScopedSpan run_span(trace, "run");
  run_span.AddAttr("k", static_cast<int64_t>(input.size()));
  run_span.AddAttr("sampled", static_cast<int64_t>(!assume_complete));

  // ---- Resource governance ----
  // The effective budget is the intersection of the options' knobs
  // (deadline_ms anchored at this call, max_validation_executions) and
  // the caller's external budget (deadline, cap, cancellation token).
  // With neither configured, `governed` stays nullptr and every stage
  // runs exactly as the ungoverned paper pipeline.
  RunBudget budget;
  budget.SetDeadlineAfterMillis(options.deadline_ms);
  budget.set_max_executions(options.max_validation_executions);
  if (request.budget != nullptr) budget.Tighten(*request.budget);
  const RunBudget* governed = budget.IsUnlimited() ? nullptr : &budget;
  // The first stage to exhaust the budget names the reason; later
  // stages are skipped or wound down and cannot overwrite it.
  auto note_termination = [&report](TerminationReason reason) {
    if (report.termination == TerminationReason::kCompleted) {
      report.termination = reason;
    }
  };

  // ---- Step 1: retrieve R' and mine candidate predicates ----
  Timer step_timer;
  obs::ScopedSpan mine_span(trace, "find_predicates", run_span.id());
  PALEO_ASSIGN_OR_RETURN(RPrime rprime,
                         RPrime::Build(*base_, index_, input, sample_rows));
  report.rprime_rows = static_cast<int64_t>(rprime.num_rows());
  report.rprime_bytes = rprime.table().MemoryUsage();

  PaleoOptions step_options = options;
  step_options.coverage_ratio = coverage_ratio;
  PredicateMiner miner(rprime, step_options);
  PALEO_ASSIGN_OR_RETURN(MiningResult mining, miner.Mine(governed));
  note_termination(mining.termination);
  report.candidate_predicates =
      static_cast<int64_t>(mining.predicates.size());
  report.predicates_by_size = mining.predicates_by_size;
  report.tuple_sets = static_cast<int64_t>(mining.groups.size());
  report.timings.find_predicates_ms = step_timer.ElapsedMillis();
  obs::Inc(metrics.candidate_predicates, report.candidate_predicates);
  obs::Observe(metrics.step_find_predicates_ms,
               report.timings.find_predicates_ms);
  mine_span.AddAttr("rprime_rows", report.rprime_rows);
  mine_span.AddAttr("candidate_predicates", report.candidate_predicates);
  mine_span.AddAttr("tuple_sets", report.tuple_sets);
  mine_span.End();

  // ---- Step 2: identify ranking criteria ----
  step_timer.Reset();
  obs::ScopedSpan rank_span(trace, "find_ranking", run_span.id());
  RankingFinder finder(rprime, &catalog_, step_options);
  PALEO_ASSIGN_OR_RETURN(
      std::vector<GroupRanking> rankings,
      finder.Find(mining.groups, input, assume_complete,
                  &report.ranking_info, /*exhaustive=*/false, governed));
  note_termination(report.ranking_info.termination);

  // ORDER BY direction: ascending only when the input values are
  // non-decreasing with at least one increase (matching the ranking
  // finder's detection).
  std::vector<double> input_values = input.Values();
  const SortOrder order =
      std::is_sorted(input_values.begin(), input_values.end()) &&
              !std::is_sorted(input_values.rbegin(), input_values.rend())
          ? SortOrder::kAsc
          : SortOrder::kDesc;

  ProbModel model(catalog_, rprime);
  model.set_use_observed_match_rate(options.use_observed_match_rate);
  std::vector<CandidateQuery> candidates = BuildCandidateQueries(
      mining, rankings, model, static_cast<int>(input.size()), order,
      options.lattice_aware_order);
  report.candidate_queries = static_cast<int64_t>(candidates.size());
  report.timings.find_ranking_ms = step_timer.ElapsedMillis();
  obs::Inc(metrics.candidate_queries, report.candidate_queries);
  obs::Observe(metrics.step_find_ranking_ms,
               report.timings.find_ranking_ms);
  rank_span.AddAttr("tuple_set_evaluations",
                    report.ranking_info.tuple_set_evaluations);
  rank_span.AddAttr("candidate_queries", report.candidate_queries);
  rank_span.End();

  // ---- Step 3: validate candidate queries against R ----
  // One atom-selection cache per run, shared by the main validation and
  // the progressive-deepening retry below (and across all pool workers
  // within them): the candidates share almost all of their predicate
  // atoms, so each distinct atom is scanned once per run instead of
  // once per candidate. Scoped to the run because the cache pins bitmap
  // memory and the candidate sets of different runs rarely overlap.
  std::unique_ptr<AtomSelectionCache> atom_cache;
  if (executor->vectorized() && options.atom_cache_bytes > 0) {
    atom_cache = std::make_unique<AtomSelectionCache>(
        options.atom_cache_bytes,
        AtomSelectionCache::MetricHandles{
            metrics.cache_hits, metrics.cache_misses,
            metrics.cache_evictions, metrics.cache_resident_bytes,
            metrics.conjunction_cache_hits,
            metrics.conjunction_cache_misses});
  }
  step_timer.Reset();
  obs::ScopedSpan validate_span(trace, "validate", run_span.id());
  Validator validator(*base_, executor, options, request.pool, metrics,
                      obs::TraceContext{trace, validate_span.id()},
                      atom_cache.get());
  ValidationOutcome outcome;
  if (report.termination == TerminationReason::kCompleted) {
    PALEO_ASSIGN_OR_RETURN(
        outcome, validator.Validate(candidates, input, governed,
                                    /*prior_executions=*/0));
    note_termination(outcome.termination);
    AppendNearMisses(candidates, outcome.unvalidated, &report);
  } else {
    // The budget ran out before validation started: nothing was
    // executed, so every assembled candidate is a near miss.
    for (size_t i = 0;
         i < candidates.size() && i < kMaxNearMisses; ++i) {
      report.near_misses.push_back(candidates[i]);
    }
  }
  report.valid = std::move(outcome.valid);
  report.executed_queries = outcome.executions;
  report.speculative_executions = outcome.speculative_executions;
  report.skip_events = outcome.skip_events;
  report.executions_aborted_early = outcome.refuted_early;
  report.timings.validation_ms = step_timer.ElapsedMillis();
  obs::Observe(metrics.step_validation_ms, report.timings.validation_ms);
  validate_span.AddAttr("executed", outcome.executions);
  validate_span.AddAttr("skipped", outcome.skip_events);
  validate_span.AddAttr("valid",
                        static_cast<int64_t>(report.valid.size()));
  validate_span.End();

  // ---- Progressive deepening (complete R' only) ----
  // The Figure 4 walk stops at the first technique with exact criteria,
  // which is usually right but can be shadowed by a coincidental exact
  // match (e.g. max == avg == sum over one-row tuple sets). If nothing
  // validated against R, redo the ranking search exhaustively and
  // validate only the criteria the first pass did not try. Skipped
  // when the budget is already exhausted — the near misses above are
  // the best answer the budget affords.
  if (assume_complete && report.valid.empty() &&
      report.termination == TerminationReason::kCompleted) {
    obs::ScopedSpan deepen_span(trace, "deepen", run_span.id());
    step_timer.Reset();
    obs::ScopedSpan deep_rank_span(trace, "find_ranking",
                                   deepen_span.id());
    RankingSearchInfo deep_info;
    PALEO_ASSIGN_OR_RETURN(
        std::vector<GroupRanking> all_rankings,
        finder.Find(mining.groups, input, /*assume_complete=*/true,
                    &deep_info, /*exhaustive=*/true, governed));
    note_termination(deep_info.termination);
    std::vector<CandidateQuery> all_candidates = BuildCandidateQueries(
        mining, all_rankings, model, static_cast<int>(input.size()), order,
        options.lattice_aware_order);
    std::unordered_set<uint64_t> already_tried;
    for (const CandidateQuery& cq : candidates) {
      already_tried.insert(cq.query.Hash());
    }
    std::vector<CandidateQuery> fresh;
    for (CandidateQuery& cq : all_candidates) {
      if (already_tried.count(cq.query.Hash()) == 0) {
        fresh.push_back(std::move(cq));
      }
    }
    report.candidate_queries =
        static_cast<int64_t>(candidates.size() + fresh.size());
    report.timings.find_ranking_ms += step_timer.ElapsedMillis();
    obs::Inc(metrics.candidate_queries,
             static_cast<int64_t>(fresh.size()));
    deep_rank_span.AddAttr("fresh_candidates",
                           static_cast<int64_t>(fresh.size()));
    deep_rank_span.End();

    step_timer.Reset();
    obs::ScopedSpan deep_validate_span(trace, "validate",
                                       deepen_span.id());
    Validator deep_validator(
        *base_, executor, options, request.pool, metrics,
        obs::TraceContext{trace, deep_validate_span.id()},
        atom_cache.get());
    ValidationOutcome retry;
    if (report.termination == TerminationReason::kCompleted) {
      PALEO_ASSIGN_OR_RETURN(
          retry, deep_validator.Validate(fresh, input, governed,
                                         report.executed_queries));
      note_termination(retry.termination);
      AppendNearMisses(fresh, retry.unvalidated, &report);
    } else {
      for (size_t i = 0;
           i < fresh.size() && report.near_misses.size() < kMaxNearMisses;
           ++i) {
        report.near_misses.push_back(fresh[i]);
      }
    }
    for (ValidQuery& vq : retry.valid) {
      vq.executions_at_discovery += report.executed_queries;
      report.valid.push_back(std::move(vq));
    }
    report.executed_queries += retry.executions;
    report.speculative_executions += retry.speculative_executions;
    report.skip_events += retry.skip_events;
    report.executions_aborted_early += retry.refuted_early;
    report.timings.validation_ms += step_timer.ElapsedMillis();
    obs::Observe(metrics.step_validation_ms, step_timer.ElapsedMillis());
    deep_validate_span.AddAttr("executed", retry.executions);
    deep_validate_span.AddAttr(
        "valid", static_cast<int64_t>(retry.valid.size()));
    deep_validate_span.End();
    if (keep_candidates) {
      for (CandidateQuery& cq : fresh) candidates.push_back(std::move(cq));
    }
  }

  obs::Inc(metrics.near_misses,
           static_cast<int64_t>(report.near_misses.size()));
  // relaxed: delta of a pure tally (see the matching load above).
  report.degraded_events =
      executor->stats().scalar_fallbacks.load(std::memory_order_relaxed) -
      scalar_fallbacks_before;
  // relaxed: same delta pattern — threshold aborts tally rows skipped.
  report.rows_saved =
      executor->stats().rows_saved.load(std::memory_order_relaxed) -
      rows_saved_before;
  if (atom_cache != nullptr) {
    report.degraded_events += atom_cache->stats().pressure_events;
  }
  if (report.degraded_events > 0) obs::Inc(metrics.degraded_runs);
  run_span.AddAttr("termination",
                   TerminationReasonToString(report.termination));
  run_span.AddAttr("valid", static_cast<int64_t>(report.valid.size()));

  if (keep_candidates) report.candidates = std::move(candidates);
  return report;
}

}  // namespace paleo
