// PALEO: reverse engineering top-k database queries.
//
// This is the library's main entry point. Given a base relation R and
// a top-k input list L, PALEO finds SQL queries of the form
//
//   SELECT e, agg(expr) FROM R WHERE P1 AND P2 AND ...
//   GROUP BY e ORDER BY agg(expr) DESC LIMIT k
//
// whose result over R is (exactly or approximately) L.
//
// Typical use:
//
//   Paleo paleo(&table, PaleoOptions{});
//   auto report = paleo.Run(input_list);
//   if (report.ok() && report->found()) {
//     std::cout << report->valid[0].query.ToSql(table.schema());
//   }
//
// Construction builds the B+ tree entity index and the statistics
// catalog once; Run(const RunRequest&) executes the three-step
// pipeline of Figure 2 (find predicates -> find ranking criteria ->
// validate candidate queries) for one input list. The RunRequest
// carries everything that varies per request — the input, an optional
// sample spec (Section 6.4), budget, thread pool, per-request options
// override, and observability sinks (a MetricsRegistry and a trace
// switch) — so one canonical entry point serves sequential, sampled,
// and concurrent callers alike. The older Run/RunOnSample/
// RunConcurrent signatures remain as thin wrappers.

#ifndef PALEO_PALEO_PALEO_H_
#define PALEO_PALEO_PALEO_H_

#include <memory>
#include <vector>

#include "common/run_budget.h"
#include "common/status.h"
#include "engine/executor.h"
#include "engine/topk_list.h"
#include "index/dimension_index.h"
#include "index/entity_index.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "paleo/candidate_query.h"
#include "paleo/pipeline_metrics.h"
#include "paleo/options.h"
#include "paleo/predicate_miner.h"
#include "paleo/ranking_finder.h"
#include "paleo/sampler.h"
#include "paleo/validator.h"
#include "stats/catalog.h"
#include "storage/table.h"

namespace paleo {

class ThreadPool;

/// \brief Wall-clock cost of the three pipeline steps (Figure 7).
struct StepTimings {
  double find_predicates_ms = 0.0;
  double find_ranking_ms = 0.0;
  double validation_ms = 0.0;
  double total_ms() const {
    return find_predicates_ms + find_ranking_ms + validation_ms;
  }
};

/// \brief Full account of one reverse-engineering run.
struct ReverseEngineerReport {
  /// Valid queries in discovery order (first entry is the paper's
  /// "first valid query").
  std::vector<ValidQuery> valid;
  bool found() const { return !valid.empty(); }

  /// Candidate counts per pipeline stage.
  int64_t candidate_predicates = 0;
  std::vector<int> predicates_by_size;  // index = |P|
  int64_t tuple_sets = 0;
  int64_t candidate_queries = 0;

  /// Validation effort. executed_queries counts committed executions
  /// and is identical under sequential and parallel validation;
  /// speculative_executions counts parallel-only discarded look-ahead
  /// work (always 0 sequentially).
  int64_t executed_queries = 0;
  int64_t speculative_executions = 0;
  int64_t skip_events = 0;
  /// Executions the threshold monitor refuted mid-scan (a subset of
  /// executed_queries; 0 with options.threshold_pruning off) and the
  /// base-table rows those aborts plus shared-aggregate cache hits
  /// skipped. Side observations only: the valid set is identical with
  /// pruning/sharing on or off.
  int64_t executions_aborted_early = 0;
  int64_t rows_saved = 0;

  /// R' shape.
  int64_t rprime_rows = 0;
  size_t rprime_bytes = 0;

  StepTimings timings;
  RankingSearchInfo ranking_info;

  /// Why the run stopped. kCompleted means the pipeline ran to
  /// exhaustion (the only possible value without a RunBudget); any
  /// other value means the budget ran out and `valid` holds only what
  /// was confirmed before that.
  TerminationReason termination = TerminationReason::kCompleted;

  /// When the budget ran out mid-validation: the best candidates (in
  /// suitability order, capped) that never got executed against R.
  /// They are PALEO's ranked best guesses at the answer — unvalidated,
  /// but actionable.
  std::vector<CandidateQuery> near_misses;

  /// Graceful-degradation events observed during the run: executor
  /// scalar fallbacks (selection-allocation failure or cache memory
  /// pressure) plus atom-cache shrinks. 0 for a fully healthy run.
  /// Degraded runs produce byte-identical results — only reuse and
  /// wall-clock suffer. Mirrored into paleo_degraded_runs_total.
  int64_t degraded_events = 0;

  /// The scored candidate list (retained when
  /// PaleoOptions-independent `keep_candidates` argument is set).
  std::vector<CandidateQuery> candidates;

  /// The run's span tree (set when RunRequest::collect_trace; shared
  /// so the report stays copyable). Root span "run" with children
  /// "find_predicates" / "find_ranking" / "validate" (and "deepen"
  /// when the progressive-deepening pass ran); per-candidate
  /// "execute" / "commit" spans hang under the validation spans.
  std::shared_ptr<obs::Trace> trace;
};

/// \brief Everything that varies per reverse-engineering request.
///
/// All pointers are non-owning and must outlive the Run() call. Only
/// `input` is required; the zero-initialised remainder reproduces the
/// classic Run(input) behaviour with a private per-call executor.
struct RunRequest {
  /// The top-k list L to reverse engineer. Required.
  const TopKList* input = nullptr;

  /// Sample spec (Section 6.4): when `sample_rows` is set the pipeline
  /// runs on that sample of R's rows (sorted global row ids, e.g. from
  /// Sampler) with relaxed coverage — CoverageRatioForSample(
  /// sample_fraction) unless `coverage_ratio_override` > 0 — and the
  /// probabilistic suitability model (assume_complete = false).
  const std::vector<RowId>* sample_rows = nullptr;
  double sample_fraction = 1.0;
  double coverage_ratio_override = -1.0;

  /// Retain the scored candidate list in the report.
  bool keep_candidates = false;

  /// Caller-side resource limits layered on top of the options'
  /// deadline_ms / max_validation_executions knobs; the tighter limit
  /// wins. Budget exhaustion is not an error (see the report's
  /// `termination` / `near_misses`).
  const RunBudget* budget = nullptr;

  /// Enables parallel candidate validation when the effective options'
  /// num_threads > 1.
  ThreadPool* pool = nullptr;

  /// Replaces the instance options for this request — e.g. a
  /// per-request deadline_ms — while still using the indexes built at
  /// construction (a request cannot enable use_dimension_index if the
  /// instance was built without it). This is the only supported way to
  /// vary options per request; the instance options are immutable.
  const PaleoOptions* options_override = nullptr;

  /// Executor to run candidate queries through. nullptr (the default)
  /// gives the request a private stack-local executor, which is what
  /// makes Run() safe to call concurrently; passing one shares its
  /// accumulated Stats across runs (the legacy wrappers pass the
  /// member executor) at the cost of that thread safety.
  Executor* executor = nullptr;

  /// Observability sinks. `metrics` (not owned) receives the
  /// paleo_* counters and histograms (see paleo/pipeline_metrics.h);
  /// `collect_trace` builds the report's span tree. Both default off,
  /// costing one branch per would-be event.
  obs::MetricsRegistry* metrics = nullptr;
  bool collect_trace = false;
};

/// \brief The PALEO system bound to one base relation.
///
/// Thread safety: once built, everything the pipeline reads (table,
/// entity index, catalog, dimension index, the instance options) is
/// immutable, so any number of threads may call Run(const RunRequest&)
/// on one instance simultaneously as long as each request leaves
/// RunRequest::executor null (the default) — each call then gets its
/// own Executor and leaves the instance untouched. This is the entry
/// point the DiscoveryService serves requests through. The legacy
/// Run/RunOnSample wrappers share the member executor and are
/// single-threaded, as before.
class Paleo {
 public:
  /// `base` must outlive this object. Builds the entity index and the
  /// statistics catalog (the "computed upfront" structures).
  Paleo(const Table* base, PaleoOptions options);

  /// Binds to PREBUILT upfront structures instead of building them —
  /// the table catalog's ingestion path, where index and catalog are
  /// extended incrementally from the previous snapshot. Behaves
  /// exactly like the building constructor given equal structures.
  /// `base` must outlive this object; `dimension_index` may be null
  /// only when options.use_dimension_index is off.
  Paleo(const Table* base, PaleoOptions options, EntityIndex index,
        StatsCatalog catalog,
        std::unique_ptr<DimensionIndex> dimension_index);

  const Table& base() const { return *base_; }
  const PaleoOptions& options() const { return options_; }
  const EntityIndex& index() const { return index_; }
  const StatsCatalog& catalog() const { return catalog_; }
  /// Null unless options().use_dimension_index.
  const DimensionIndex* dimension_index() const {
    return dimension_index_.get();
  }
  Executor* executor() { return &executor_; }

  /// The canonical entry point: reverse engineers `*request.input`
  /// against the full R' (Sections 3-5, 7) or the request's sample
  /// (Section 6.4), under the request's budget/options/observability.
  /// Thread-safe when request.executor is null (the default).
  StatusOr<ReverseEngineerReport> Run(const RunRequest& request) const;

  /// DEPRECATED: thin wrapper over Run(const RunRequest&) kept for
  /// source compatibility; shares the member executor, so it is
  /// single-threaded. Prefer the RunRequest form.
  StatusOr<ReverseEngineerReport> Run(const TopKList& input,
                                      bool keep_candidates = false,
                                      const RunBudget* budget = nullptr);

  /// DEPRECATED: thin wrapper over Run(const RunRequest&) with the
  /// request's sample fields filled in; shares the member executor.
  StatusOr<ReverseEngineerReport> RunOnSample(
      const TopKList& input, const std::vector<RowId>& sample_rows,
      double sample_fraction, bool keep_candidates = false,
      double coverage_ratio_override = -1.0,
      const RunBudget* budget = nullptr);

  /// DEPRECATED: thin wrapper over Run(const RunRequest&) with a null
  /// request executor — i.e. plain Run(), which is already
  /// thread-safe. Prefer the RunRequest form.
  StatusOr<ReverseEngineerReport> RunConcurrent(
      const TopKList& input, const RunBudget* budget = nullptr,
      ThreadPool* pool = nullptr,
      const PaleoOptions* options_override = nullptr) const;

 private:
  StatusOr<ReverseEngineerReport> RunImpl(const RunRequest& request,
                                          const PaleoOptions& options,
                                          Executor* executor,
                                          const PipelineMetrics& metrics,
                                          obs::Trace* trace) const;

  const Table* base_;
  const PaleoOptions options_;
  EntityIndex index_;
  StatsCatalog catalog_;
  // Built only when options_.use_dimension_index.
  std::unique_ptr<DimensionIndex> dimension_index_;
  Executor executor_;
};

}  // namespace paleo

#endif  // PALEO_PALEO_PALEO_H_
