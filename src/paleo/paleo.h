// PALEO: reverse engineering top-k database queries.
//
// This is the library's main entry point. Given a base relation R and
// a top-k input list L, PALEO finds SQL queries of the form
//
//   SELECT e, agg(expr) FROM R WHERE P1 AND P2 AND ...
//   GROUP BY e ORDER BY agg(expr) DESC LIMIT k
//
// whose result over R is (exactly or approximately) L.
//
// Typical use:
//
//   Paleo paleo(&table, PaleoOptions{});
//   auto report = paleo.Run(input_list);
//   if (report.ok() && report->found()) {
//     std::cout << report->valid[0].query.ToSql(table.schema());
//   }
//
// Construction builds the B+ tree entity index and the statistics
// catalog once; Run() executes the three-step pipeline of Figure 2
// (find predicates -> find ranking criteria -> validate candidate
// queries) for one input list. RunOnSample() works on a sample of R'
// (Section 6.4) with relaxed coverage and the probabilistic
// suitability model.

#ifndef PALEO_PALEO_PALEO_H_
#define PALEO_PALEO_PALEO_H_

#include <memory>
#include <vector>

#include "common/run_budget.h"
#include "common/status.h"
#include "engine/executor.h"
#include "engine/topk_list.h"
#include "index/dimension_index.h"
#include "index/entity_index.h"
#include "paleo/candidate_query.h"
#include "paleo/options.h"
#include "paleo/predicate_miner.h"
#include "paleo/ranking_finder.h"
#include "paleo/sampler.h"
#include "paleo/validator.h"
#include "stats/catalog.h"
#include "storage/table.h"

namespace paleo {

class ThreadPool;

/// \brief Wall-clock cost of the three pipeline steps (Figure 7).
struct StepTimings {
  double find_predicates_ms = 0.0;
  double find_ranking_ms = 0.0;
  double validation_ms = 0.0;
  double total_ms() const {
    return find_predicates_ms + find_ranking_ms + validation_ms;
  }
};

/// \brief Full account of one reverse-engineering run.
struct ReverseEngineerReport {
  /// Valid queries in discovery order (first entry is the paper's
  /// "first valid query").
  std::vector<ValidQuery> valid;
  bool found() const { return !valid.empty(); }

  /// Candidate counts per pipeline stage.
  int64_t candidate_predicates = 0;
  std::vector<int> predicates_by_size;  // index = |P|
  int64_t tuple_sets = 0;
  int64_t candidate_queries = 0;

  /// Validation effort. executed_queries counts committed executions
  /// and is identical under sequential and parallel validation;
  /// speculative_executions counts parallel-only discarded look-ahead
  /// work (always 0 sequentially).
  int64_t executed_queries = 0;
  int64_t speculative_executions = 0;
  int64_t skip_events = 0;

  /// R' shape.
  int64_t rprime_rows = 0;
  size_t rprime_bytes = 0;

  StepTimings timings;
  RankingSearchInfo ranking_info;

  /// Why the run stopped. kCompleted means the pipeline ran to
  /// exhaustion (the only possible value without a RunBudget); any
  /// other value means the budget ran out and `valid` holds only what
  /// was confirmed before that.
  TerminationReason termination = TerminationReason::kCompleted;

  /// When the budget ran out mid-validation: the best candidates (in
  /// suitability order, capped) that never got executed against R.
  /// They are PALEO's ranked best guesses at the answer — unvalidated,
  /// but actionable.
  std::vector<CandidateQuery> near_misses;

  /// The scored candidate list (retained when
  /// PaleoOptions-independent `keep_candidates` argument is set).
  std::vector<CandidateQuery> candidates;
};

/// \brief The PALEO system bound to one base relation.
///
/// Thread safety: construction and the mutating accessors
/// (mutable_options, executor, Run, RunOnSample) are single-threaded.
/// Once built, the shared read structures (table, entity index,
/// catalog, dimension index) are immutable, so any number of threads
/// may call RunConcurrent() on one instance simultaneously — each call
/// gets its own Executor and leaves the instance untouched. This is
/// the entry point the DiscoveryService serves requests through.
class Paleo {
 public:
  /// `base` must outlive this object. Builds the entity index and the
  /// statistics catalog (the "computed upfront" structures).
  Paleo(const Table* base, PaleoOptions options);

  const Table& base() const { return *base_; }
  const PaleoOptions& options() const { return options_; }
  PaleoOptions* mutable_options() { return &options_; }
  const EntityIndex& index() const { return index_; }
  const StatsCatalog& catalog() const { return catalog_; }
  Executor* executor() { return &executor_; }

  /// Reverse engineers `input` against the full R' (Sections 3-5, 7).
  ///
  /// `budget` (optional, not owned, must outlive the call) adds
  /// caller-side resource limits — e.g. a CancellationToken tripped by
  /// a serving thread — on top of the options' deadline_ms /
  /// max_validation_executions knobs; the tighter limit wins. Budget
  /// exhaustion is not an error: the report carries a non-kCompleted
  /// termination reason, every query validated in time, and the top
  /// unvalidated candidates as near_misses.
  StatusOr<ReverseEngineerReport> Run(const TopKList& input,
                                      bool keep_candidates = false,
                                      const RunBudget* budget = nullptr);

  /// Reverse engineers `input` on the given sample of R's rows
  /// (sorted global row ids, e.g. from Sampler). The coverage ratio
  /// follows CoverageRatioForSample(sample_fraction) unless the
  /// options override it with a positive `coverage_ratio_override`.
  StatusOr<ReverseEngineerReport> RunOnSample(
      const TopKList& input, const std::vector<RowId>& sample_rows,
      double sample_fraction, bool keep_candidates = false,
      double coverage_ratio_override = -1.0,
      const RunBudget* budget = nullptr);

  /// Thread-safe Run(): identical pipeline and results, but every
  /// piece of mutable state (the executor and its counters) is local
  /// to the call, so concurrent invocations on one shared instance
  /// never interfere. `pool` (optional, not owned) enables parallel
  /// candidate validation when the effective options' num_threads > 1.
  /// `options_override` (optional, not owned) replaces the instance
  /// options for this request — e.g. a per-request deadline_ms — while
  /// still using the indexes built at construction (a request cannot
  /// enable use_dimension_index if the instance was built without it).
  StatusOr<ReverseEngineerReport> RunConcurrent(
      const TopKList& input, const RunBudget* budget = nullptr,
      ThreadPool* pool = nullptr,
      const PaleoOptions* options_override = nullptr) const;

 private:
  StatusOr<ReverseEngineerReport> RunImpl(
      const TopKList& input, const std::vector<RowId>* sample_rows,
      double coverage_ratio, bool assume_complete, bool keep_candidates,
      const RunBudget* external_budget, const PaleoOptions& options,
      Executor* executor, ThreadPool* pool) const;

  const Table* base_;
  PaleoOptions options_;
  EntityIndex index_;
  StatsCatalog catalog_;
  // Built only when options_.use_dimension_index.
  std::unique_ptr<DimensionIndex> dimension_index_;
  Executor executor_;
};

}  // namespace paleo

#endif  // PALEO_PALEO_PALEO_H_
