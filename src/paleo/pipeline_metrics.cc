#include "paleo/pipeline_metrics.h"

namespace paleo {

PipelineMetrics PipelineMetrics::Bind(obs::MetricsRegistry* registry) {
  PipelineMetrics m;
  if (registry == nullptr) return m;
  m.runs_total = registry->FindOrCreateCounter(
      "paleo_runs_total", "Reverse-engineering runs started.");
  m.runs_found = registry->FindOrCreateCounter(
      "paleo_runs_found_total", "Runs that validated at least one query.");
  m.run_ms = registry->FindOrCreateHistogram(
      "paleo_run_ms", "End-to-end run latency in milliseconds.");
  m.step_find_predicates_ms = registry->FindOrCreateHistogram(
      "paleo_step_ms", "Per-step pipeline latency in milliseconds.",
      "step=\"find_predicates\"");
  m.step_find_ranking_ms = registry->FindOrCreateHistogram(
      "paleo_step_ms", "Per-step pipeline latency in milliseconds.",
      "step=\"find_ranking\"");
  m.step_validation_ms = registry->FindOrCreateHistogram(
      "paleo_step_ms", "Per-step pipeline latency in milliseconds.",
      "step=\"validation\"");
  m.candidate_predicates = registry->FindOrCreateCounter(
      "paleo_candidate_predicates_total",
      "Candidate predicates mined (Algorithm 1).");
  m.candidate_queries = registry->FindOrCreateCounter(
      "paleo_candidate_queries_total", "Candidate queries assembled.");
  m.candidates_executed = registry->FindOrCreateCounter(
      "paleo_validation_candidates_total",
      "Validation candidates, by outcome.", "outcome=\"executed\"");
  m.candidates_speculative = registry->FindOrCreateCounter(
      "paleo_validation_candidates_total",
      "Validation candidates, by outcome.", "outcome=\"speculative\"");
  m.candidates_skipped = registry->FindOrCreateCounter(
      "paleo_validation_candidates_total",
      "Validation candidates, by outcome.", "outcome=\"skipped\"");
  m.validation_passes = registry->FindOrCreateCounter(
      "paleo_validation_passes_total",
      "Passes over the candidate list (Algorithm 3 rounds).");
  m.near_misses = registry->FindOrCreateCounter(
      "paleo_near_misses_total",
      "Unvalidated best-guess candidates surfaced on budget exhaustion.");
  m.executor_queries = registry->FindOrCreateCounter(
      "paleo_executor_queries_total", "Queries executed by the engine.");
  m.executor_rows_scanned = registry->FindOrCreateCounter(
      "paleo_executor_rows_scanned_total",
      "Rows visited by the executor's scan and group-by loops.");
  m.executor_index_assisted = registry->FindOrCreateCounter(
      "paleo_executor_index_assisted_total",
      "Executions answered from dimension-index postings.");
  m.chunks_skipped = registry->FindOrCreateCounter(
      "paleo_chunks_skipped_total",
      "Chunks skipped by zone-map refutation (no row can match).");
  m.morsels = registry->FindOrCreateCounter(
      "paleo_morsels_total",
      "Chunk-granular scan morsels processed (skipped chunks excluded).");
  m.scan_parallelism = registry->FindOrCreateHistogram(
      "paleo_scan_parallelism",
      "Morsel workers per full scan (1 = sequential).");
  m.cache_hits = registry->FindOrCreateCounter(
      "paleo_cache_hits_total", "Atom-selection cache hits.");
  m.cache_misses = registry->FindOrCreateCounter(
      "paleo_cache_misses_total", "Atom-selection cache misses.");
  m.cache_evictions = registry->FindOrCreateCounter(
      "paleo_cache_evictions_total",
      "Atom-selection cache LRU evictions (byte budget exceeded).");
  m.cache_resident_bytes = registry->FindOrCreateGauge(
      "paleo_cache_resident_bytes",
      "Selection-bitmap bytes currently retained by the atom cache.");
  m.conjunction_cache_hits = registry->FindOrCreateCounter(
      "paleo_conjunction_cache_hits_total",
      "Conjunction-tier cache hits (whole-conjunction bitmaps and "
      "per-group partial aggregates served without a scan).");
  m.conjunction_cache_misses = registry->FindOrCreateCounter(
      "paleo_conjunction_cache_misses_total",
      "Conjunction-tier cache misses (the chunk was scanned and the "
      "result inserted for reuse).");
  m.validations_refuted_early = registry->FindOrCreateCounter(
      "paleo_validations_refuted_early_total",
      "Candidate executions aborted mid-scan because threshold bounds "
      "proved the result cannot equal the target list.");
  m.rows_saved_by_threshold = registry->FindOrCreateCounter(
      "paleo_rows_saved_by_threshold_total",
      "Rows never scanned thanks to threshold-refuted executions.");
  m.degraded_runs = registry->FindOrCreateCounter(
      "paleo_degraded_runs_total",
      "Runs that degraded gracefully (scalar fallback or atom-cache "
      "shrink under memory pressure) instead of failing.");
  return m;
}

}  // namespace paleo
