// Resolved metric handles for one reverse-engineering run.
//
// The pipeline does not talk to the MetricsRegistry directly: Bind()
// resolves every instrument once per run (a handful of mutex-guarded
// name lookups, idempotent, shared across runs on the same registry)
// and the stages report events through the nullable handles — exactly
// one branch per event when no registry is attached (all handles null),
// a relaxed atomic op when one is.
//
// Thread-safety: Bind() is safe to call from any thread (the registry
// lookups are internally synchronized); the resolved handles point at
// atomic instruments, so reporting through a bound struct is safe from
// multiple threads.
//
// Metric naming scheme (documented in DESIGN.md §9):
//   paleo_runs_total                      runs started, by outcome attrs
//   paleo_runs_found_total                runs that validated >= 1 query
//   paleo_run_ms                          end-to-end run latency
//   paleo_step_ms{step=...}               per-step latency (Figure 7)
//   paleo_candidate_predicates_total      mined candidate predicates
//   paleo_candidate_queries_total         assembled candidate queries
//   paleo_validation_candidates_total{outcome=executed|speculative|skipped}
//   paleo_validation_passes_total         validation passes (Alg. 3 rounds)
//   paleo_near_misses_total               unvalidated best guesses surfaced
//   paleo_executor_queries_total          candidate-query executions
//   paleo_executor_rows_scanned_total     rows visited by the executor
//   paleo_executor_index_assisted_total   executions answered from postings
//   paleo_chunks_skipped_total            chunks refuted by zone maps
//   paleo_morsels_total                   chunk morsels actually scanned
//   paleo_scan_parallelism                morsel workers per full scan
//   paleo_cache_hits_total                atom-selection cache hits
//   paleo_cache_misses_total              atom-selection cache misses
//   paleo_cache_evictions_total           LRU evictions (byte budget)
//   paleo_cache_resident_bytes            bitmap bytes currently retained
//   paleo_conjunction_cache_hits_total    conjunction-tier cache hits
//                                         (bitmaps + grouped partials)
//   paleo_conjunction_cache_misses_total  conjunction-tier cache misses
//   paleo_validations_refuted_early_total executions aborted mid-scan by
//                                         threshold refutation
//   paleo_rows_saved_by_threshold_total   rows never scanned thanks to
//                                         threshold refutation
//   paleo_degraded_runs_total             runs that degraded gracefully
//                                         (scalar fallback / cache shrink)
//
// Suffix conventions (enforced by tools/paleo_lint.py): *_total is a
// Counter, *_ms is a Histogram, *_bytes is a Gauge.

#ifndef PALEO_PALEO_PIPELINE_METRICS_H_
#define PALEO_PALEO_PIPELINE_METRICS_H_

#include "obs/metrics.h"

namespace paleo {

/// \brief All-null by default; Bind() fills it from a registry.
struct PipelineMetrics {
  obs::Counter* runs_total = nullptr;
  obs::Counter* runs_found = nullptr;
  obs::Histogram* run_ms = nullptr;
  obs::Histogram* step_find_predicates_ms = nullptr;
  obs::Histogram* step_find_ranking_ms = nullptr;
  obs::Histogram* step_validation_ms = nullptr;
  obs::Counter* candidate_predicates = nullptr;
  obs::Counter* candidate_queries = nullptr;
  obs::Counter* candidates_executed = nullptr;
  obs::Counter* candidates_speculative = nullptr;
  obs::Counter* candidates_skipped = nullptr;
  obs::Counter* validation_passes = nullptr;
  obs::Counter* near_misses = nullptr;
  obs::Counter* executor_queries = nullptr;
  obs::Counter* executor_rows_scanned = nullptr;
  obs::Counter* executor_index_assisted = nullptr;
  obs::Counter* chunks_skipped = nullptr;
  obs::Counter* morsels = nullptr;
  obs::Histogram* scan_parallelism = nullptr;
  obs::Counter* cache_hits = nullptr;
  obs::Counter* cache_misses = nullptr;
  obs::Counter* cache_evictions = nullptr;
  obs::Gauge* cache_resident_bytes = nullptr;
  obs::Counter* conjunction_cache_hits = nullptr;
  obs::Counter* conjunction_cache_misses = nullptr;
  obs::Counter* validations_refuted_early = nullptr;
  obs::Counter* rows_saved_by_threshold = nullptr;
  obs::Counter* degraded_runs = nullptr;

  /// Resolves every handle against `registry`; a null registry returns
  /// the all-null (disabled) bundle.
  static PipelineMetrics Bind(obs::MetricsRegistry* registry);
};

}  // namespace paleo

#endif  // PALEO_PALEO_PIPELINE_METRICS_H_
