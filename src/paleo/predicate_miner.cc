#include "paleo/predicate_miner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

namespace paleo {

namespace {

/// Working representation during the level-wise search.
struct LevelEntry {
  Predicate predicate;
  TupleSet rows;
  int max_column;  // largest column index among the atoms
  int covered;
};

/// Coverage bitmap of a tuple set.
std::vector<uint64_t> CoverageBitmap(const TupleSet& rows,
                                     const std::vector<uint32_t>& row_entity,
                                     int num_entities) {
  std::vector<uint64_t> bits((static_cast<size_t>(num_entities) + 63) / 64,
                             0);
  for (RowId r : rows) {
    uint32_t e = row_entity[r];
    bits[e >> 6] |= (uint64_t{1} << (e & 63));
  }
  return bits;
}

int Popcount(const std::vector<uint64_t>& bits) {
  int n = 0;
  for (uint64_t w : bits) n += __builtin_popcountll(w);
  return n;
}

}  // namespace

StatusOr<MiningResult> PredicateMiner::Mine(const RunBudget* budget) const {
  if (options_.coverage_ratio <= 0.0 || options_.coverage_ratio > 1.0) {
    return Status::InvalidArgument("coverage_ratio must be in (0, 1]");
  }
  if (options_.max_predicate_size < 1) {
    return Status::InvalidArgument("max_predicate_size must be >= 1");
  }
  // Budget poll for the mining loops. Once the gate trips, every loop
  // below unwinds and the partial result is assembled as usual with a
  // non-kCompleted termination reason.
  BudgetGate gate(budget, /*stride=*/1024);
  const Table& slice = rprime_.table();
  const Schema& schema = slice.schema();
  const std::vector<uint32_t>& row_entity = rprime_.row_entity();
  const int m = rprime_.num_entities();
  const int required =
      std::max(1, static_cast<int>(std::ceil(options_.coverage_ratio *
                                             static_cast<double>(m))));

  MiningResult result;
  result.predicates_by_size.assign(
      static_cast<size_t>(options_.max_predicate_size) + 1, 0);

  // ---- Level 1: atomic predicates ----
  std::vector<LevelEntry> level1;
  for (int col_idx : schema.dimension_indices()) {
    if (gate.exhausted()) break;
    const Column& col = slice.column(col_idx);
    // Bucket local rows by value. Keys are normalized to uint64 (dict
    // code, int64 bits, or double bits).
    std::unordered_map<uint64_t, TupleSet> buckets;
    const size_t n = slice.num_rows();
    for (size_t r = 0; r < n; ++r) {
      if (gate.Tick() != TerminationReason::kCompleted) break;
      uint64_t key = 0;
      switch (col.type()) {
        case DataType::kString:
          key = col.CodeAt(static_cast<RowId>(r));
          break;
        case DataType::kInt64:
          key = static_cast<uint64_t>(col.Int64At(static_cast<RowId>(r)));
          break;
        case DataType::kDouble: {
          double v = col.DoubleAt(static_cast<RowId>(r));
          __builtin_memcpy(&key, &v, sizeof(key));
          break;
        }
      }
      buckets[key].push_back(static_cast<RowId>(r));
    }
    // A column interrupted mid-bucketing would yield predicates with
    // incomplete tuple sets — wrong, not merely partial — so its work
    // is discarded wholesale.
    if (gate.exhausted()) break;
    // Deterministic order: sort bucket keys.
    std::vector<uint64_t> keys;
    keys.reserve(buckets.size());
    for (const auto& [key, rows] : buckets) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    std::vector<uint64_t> scratch;
    for (uint64_t key : keys) {
      if (gate.Tick() != TerminationReason::kCompleted) break;
      TupleSet& rows = buckets[key];
      int covered = CountCoveredEntities(rows, row_entity, m, &scratch);
      if (covered < required) continue;
      Value v;
      switch (col.type()) {
        case DataType::kString:
          v = Value::String(col.dict()->Get(static_cast<uint32_t>(key)));
          break;
        case DataType::kInt64:
          v = Value::Int64(static_cast<int64_t>(key));
          break;
        case DataType::kDouble: {
          double d;
          __builtin_memcpy(&d, &key, sizeof(d));
          v = Value::Double(d);
          break;
        }
      }
      LevelEntry entry;
      entry.predicate = Predicate::Atom(col_idx, std::move(v));
      entry.rows = std::move(rows);
      entry.max_column = col_idx;
      entry.covered = covered;
      level1.push_back(std::move(entry));
    }
  }

  // ---- Range atoms (extension; see PaleoOptions) ----
  // For each numeric dimension column, the tightest interval whose rows
  // cover the required number of entities, found with the classic
  // smallest-covering-range sweep: sort (value, entity) points, advance
  // the right end until covered, then shrink the left end.
  if (options_.mine_range_predicates) {
    for (int col_idx : schema.dimension_indices()) {
      if (gate.exhausted()) break;
      const Column& col = slice.column(col_idx);
      if (!IsNumeric(col.type())) continue;
      const size_t n = slice.num_rows();
      if (n == 0) continue;
      struct Point {
        double v;
        uint32_t entity;
        RowId row;
      };
      std::vector<Point> points;
      points.reserve(n);
      for (size_t r = 0; r < n; ++r) {
        points.push_back(Point{col.NumericAt(static_cast<RowId>(r)),
                               row_entity[r], static_cast<RowId>(r)});
      }
      std::sort(points.begin(), points.end(),
                [](const Point& a, const Point& b) { return a.v < b.v; });

      std::vector<int> per_entity(static_cast<size_t>(m), 0);
      int covered = 0;
      size_t left = 0;
      double best_width = std::numeric_limits<double>::infinity();
      double best_lo = 0, best_hi = 0;
      bool found = false;
      for (size_t right = 0; right < points.size(); ++right) {
        if (gate.Tick() != TerminationReason::kCompleted) break;
        if (per_entity[points[right].entity]++ == 0) ++covered;
        while (covered >= required) {
          double width = points[right].v - points[left].v;
          if (width < best_width) {
            best_width = width;
            best_lo = points[left].v;
            best_hi = points[right].v;
            found = true;
          }
          if (--per_entity[points[left].entity] == 0) --covered;
          ++left;
        }
      }
      // An interrupted sweep may have missed a tighter interval;
      // discard rather than emit a possibly-suboptimal range.
      if (gate.exhausted() || !found) continue;

      TupleSet rows;
      for (const Point& p : points) {
        if (p.v >= best_lo && p.v <= best_hi) rows.push_back(p.row);
      }
      std::sort(rows.begin(), rows.end());
      std::vector<uint64_t> scratch;
      int covered_final =
          CountCoveredEntities(rows, row_entity, m, &scratch);
      if (covered_final < required) continue;  // defensive

      Value lo = col.type() == DataType::kInt64
                     ? Value::Int64(static_cast<int64_t>(best_lo))
                     : Value::Double(best_lo);
      Value hi = col.type() == DataType::kInt64
                     ? Value::Int64(static_cast<int64_t>(best_hi))
                     : Value::Double(best_hi);
      LevelEntry entry;
      entry.predicate = Predicate(
          {AtomicPredicate::Range(col_idx, std::move(lo), std::move(hi))});
      entry.rows = std::move(rows);
      entry.max_column = col_idx;
      entry.covered = covered_final;
      level1.push_back(std::move(entry));
    }
  }

  // ---- Levels 2..max: column-increasing extension ----
  std::vector<std::vector<LevelEntry>> levels;
  levels.push_back(std::move(level1));
  for (int size = 2;
       size <= options_.max_predicate_size && !gate.exhausted(); ++size) {
    const std::vector<LevelEntry>& prev = levels.back();
    std::vector<LevelEntry> next;
    std::vector<uint64_t> scratch;
    for (const LevelEntry& base : prev) {
      if (gate.exhausted()) break;
      for (const LevelEntry& atom : levels[0]) {
        // Each extension is an intersection of two complete tuple
        // sets, so stopping between extensions loses candidates but
        // never emits a wrong one.
        if (gate.Tick() != TerminationReason::kCompleted) break;
        // Strictly increasing column order: every conjunction is
        // generated exactly once and same-column conflicts are
        // impossible.
        if (atom.max_column <= base.max_column) continue;
        TupleSet rows = IntersectSorted(base.rows, atom.rows);
        if (static_cast<int>(rows.size()) < required) continue;
        int covered = CountCoveredEntities(rows, row_entity, m, &scratch);
        if (covered < required) continue;
        auto extended =
            base.predicate.And(atom.predicate.atoms().front());
        if (!extended.ok()) continue;  // unreachable by construction
        LevelEntry entry;
        entry.predicate = std::move(extended).value();
        entry.rows = std::move(rows);
        entry.max_column = atom.max_column;
        entry.covered = covered;
        next.push_back(std::move(entry));
      }
    }
    if (next.empty()) break;
    levels.push_back(std::move(next));
  }

  // The empty conjunction (all rows) as an explicit candidate, so
  // filterless queries are recoverable. It never participates in the
  // level-wise extension (that would just duplicate the atomic level).
  std::vector<LevelEntry> extra_entries;
  if (options_.include_empty_predicate) {
    LevelEntry everything;
    everything.rows.resize(slice.num_rows());
    for (size_t r = 0; r < slice.num_rows(); ++r) {
      everything.rows[r] = static_cast<RowId>(r);
    }
    std::vector<uint64_t> scratch;
    everything.covered =
        CountCoveredEntities(everything.rows, row_entity, m, &scratch);
    everything.max_column = -1;
    if (everything.covered >= required) {
      extra_entries.push_back(std::move(everything));
    }
  }
  levels.push_back(std::move(extra_entries));

  // ---- Assemble: group predicates by identical tuple sets ----
  std::unordered_map<uint64_t, std::vector<int>> groups_by_hash;
  for (auto& level : levels) {
    for (LevelEntry& entry : level) {
      int pred_id = static_cast<int>(result.predicates.size());
      int size = entry.predicate.size();
      if (size < static_cast<int>(result.predicates_by_size.size())) {
        ++result.predicates_by_size[static_cast<size_t>(size)];
      }
      uint64_t hash = HashTupleSet(entry.rows);
      int group_id = -1;
      for (int candidate_group : groups_by_hash[hash]) {
        if (result.groups[static_cast<size_t>(candidate_group)].rows ==
            entry.rows) {
          group_id = candidate_group;
          break;
        }
      }
      if (group_id < 0) {
        group_id = static_cast<int>(result.groups.size());
        PredicateGroup group;
        group.coverage = CoverageBitmap(entry.rows, row_entity, m);
        group.covered_entities = Popcount(group.coverage);
        group.rows = std::move(entry.rows);
        result.groups.push_back(std::move(group));
        groups_by_hash[hash].push_back(group_id);
      }
      result.groups[static_cast<size_t>(group_id)].predicate_ids.push_back(
          pred_id);
      MinedPredicate mined;
      mined.predicate = std::move(entry.predicate);
      mined.group_id = group_id;
      mined.covered_entities = entry.covered;
      result.predicates.push_back(std::move(mined));
    }
  }
  result.termination = gate.reason();
  return result;
}

}  // namespace paleo
