// Candidate predicate mining (paper Section 4, Algorithm 1).
//
// Apriori-style level-wise search over R': level 1 enumerates atomic
// equality predicates (one per dimension-column value that covers
// enough input entities), level k extends level k-1 conjunctions with
// atoms on strictly greater column indices (each conjunction is built
// exactly once), intersecting tuple-id sets and pruning by the
// anti-monotone coverage criterion. Unlike classic apriori, a predicate
// is dropped the moment it misses the coverage bar — there is no
// support counting pass.
//
// Coverage: with a complete R' a candidate must cover every input
// entity (Definition 1); under sampling the bar is relaxed to
// options.coverage_ratio (Section 6.4).
//
// Thread-safety: pure functions over a const R'; concurrent calls with
// distinct output vectors are safe.

#ifndef PALEO_PALEO_PREDICATE_MINER_H_
#define PALEO_PALEO_PREDICATE_MINER_H_

#include <cstdint>
#include <vector>

#include "common/run_budget.h"
#include "common/status.h"
#include "engine/predicate.h"
#include "paleo/options.h"
#include "paleo/rprime.h"
#include "paleo/tuple_set.h"

namespace paleo {

/// \brief One mined candidate predicate with its tuple set handle.
struct MinedPredicate {
  Predicate predicate;
  /// Index into MiningResult::groups (predicates with identical tuple
  /// sets share a group).
  int group_id = -1;
  /// Distinct input entities covered by the predicate's tuple set.
  int covered_entities = 0;
};

/// \brief Distinct tuple set shared by one or more candidate
/// predicates (paper Section 4.1).
struct PredicateGroup {
  TupleSet rows;  // sorted local row ids into R'
  std::vector<int> predicate_ids;
  int covered_entities = 0;
  /// Coverage bitmap: bit e set iff input entity e has a row in
  /// `rows`. ceil(m / 64) words.
  std::vector<uint64_t> coverage;
};

/// \brief Output of the mining phase.
struct MiningResult {
  std::vector<MinedPredicate> predicates;
  std::vector<PredicateGroup> groups;
  /// predicates_by_size[s] = number of candidate predicates with s
  /// atoms (index 0 unused).
  std::vector<int> predicates_by_size;
  /// kCompleted when the level-wise search ran to exhaustion;
  /// otherwise the search stopped early and `predicates` holds only
  /// what was mined before the budget ran out.
  TerminationReason termination = TerminationReason::kCompleted;
};

/// \brief Algorithm 1 implementation.
class PredicateMiner {
 public:
  PredicateMiner(const RPrime& rprime, const PaleoOptions& options)
      : rprime_(rprime), options_(options) {}

  /// Runs the level-wise search. Correct and complete with respect to
  /// R' (property (i) of the paper): every returned predicate is a
  /// candidate, and every candidate up to max_predicate_size is
  /// returned. When `budget` is set, the search polls it at bounded
  /// intervals and degrades gracefully: on exhaustion the result
  /// carries the predicates mined so far and a non-kCompleted
  /// termination reason instead of an error.
  StatusOr<MiningResult> Mine(const RunBudget* budget = nullptr) const;

 private:
  const RPrime& rprime_;
  const PaleoOptions& options_;
};

}  // namespace paleo

#endif  // PALEO_PALEO_PREDICATE_MINER_H_
