#include "paleo/prob_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace paleo {

double ProbModel::TupleExistsProbability(const Predicate& predicate) const {
  double p = 1.0;
  for (const AtomicPredicate& atom : predicate.atoms()) {
    int64_t distinct = catalog_->column_stats(atom.column).distinct_count;
    if (distinct > 0) p /= static_cast<double>(distinct);
  }
  return p;
}

double ProbModel::FalsePositiveProbability(const Predicate& predicate,
                                           const PredicateGroup& group) const {
  const int m = rprime_->num_entities();
  double p_match;
  if (use_observed_match_rate_) {
    // Sampled tuples of the covered entities, as the denominator of the
    // observed match rate.
    int64_t covered_seen = 0;
    for (int e = 0; e < m; ++e) {
      bool covered =
          (group.coverage[static_cast<size_t>(e) >> 6] >>
           (static_cast<size_t>(e) & 63)) &
          1;
      if (covered) {
        covered_seen += rprime_->entity_row_counts()[static_cast<size_t>(e)];
      }
    }
    p_match = covered_seen > 0 ? static_cast<double>(group.rows.size()) /
                                     static_cast<double>(covered_seen)
                               : TupleExistsProbability(predicate);
    p_match = std::clamp(p_match, 1e-12, 1.0);
  } else {
    p_match = TupleExistsProbability(predicate);
  }
  double prod = 1.0;
  for (int e = 0; e < m; ++e) {
    bool covered =
        (group.coverage[static_cast<size_t>(e) >> 6] >>
         (static_cast<size_t>(e) & 63)) &
        1;
    if (covered) continue;
    int64_t unseen =
        rprime_->entity_total_counts()[static_cast<size_t>(e)] -
        rprime_->entity_row_counts()[static_cast<size_t>(e)];
    unseen = std::max<int64_t>(unseen, 0);
    // Chance that none of the unseen tuples of e matches the predicate
    // (in which case e truly breaks the predicate).
    double p_wont_see =
        std::pow(1.0 - p_match, static_cast<double>(unseen));
    prod *= (1.0 - p_wont_see);
  }
  return 1.0 - prod;
}

double ProbModel::Suitability(double p_false_positive, double distance) {
  double s = (1.0 - std::clamp(p_false_positive, 0.0, 1.0)) *
             (1.0 - std::clamp(distance, 0.0, 1.0));
  return std::clamp(s, 0.0, 1.0);
}

namespace {

/// log(n!) via lgamma for stable hypergeometric computation.
double LogFactorial(int64_t n) {
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double LogChoose(int64_t n, int64_t k) {
  if (k < 0 || k > n) return -std::numeric_limits<double>::infinity();
  return LogFactorial(n) - LogFactorial(k) - LogFactorial(n - k);
}

}  // namespace

double ProbModel::HypergeometricPmf(int64_t K, int64_t N, int64_t n,
                                    int64_t k) {
  if (N < 0 || K < 0 || K > N || n < 0 || n > N) return 0.0;
  if (k < std::max<int64_t>(0, n + K - N) || k > std::min(n, K)) return 0.0;
  double log_p =
      LogChoose(K, k) + LogChoose(N - K, n - k) - LogChoose(N, n);
  return std::exp(log_p);
}

double ProbModel::ProbAtLeastOneSampled(int64_t K, int64_t N, int64_t n) {
  if (K <= 0 || n <= 0) return 0.0;
  if (n > N) return 1.0;
  // 1 - P[zero marked items in the sample].
  return 1.0 - HypergeometricPmf(K, N, n, 0);
}

double ProbModel::ProbAllEntitiesCovered(int64_t K, int64_t N, int64_t n,
                                         int m) {
  return std::pow(ProbAtLeastOneSampled(K, N, n),
                  static_cast<double>(m));
}

}  // namespace paleo
