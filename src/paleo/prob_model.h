// Probabilistic assessment of candidate predicates and queries under
// changed or sampled data (paper Section 6).
//
// A candidate predicate mined from an incomplete R'' may be a false
// positive: some input entity may truly have no matching tuple. The
// model estimates that risk from (a) the chance that a random tuple
// matches the predicate, derived from the dimension columns' distinct
// counts, and (b) how many tuples of each entity were not seen. The
// resulting probability combines with the ranking-criterion distance
// into the suitability score that orders candidate query validation
// (Section 6.3).
//
// Thread-safety: pure functions of their arguments; safe to call
// concurrently.

#ifndef PALEO_PALEO_PROB_MODEL_H_
#define PALEO_PALEO_PROB_MODEL_H_

#include <cstdint>
#include <vector>

#include "engine/predicate.h"
#include "paleo/predicate_miner.h"
#include "paleo/rprime.h"
#include "stats/catalog.h"

namespace paleo {

/// \brief Section 6 probability model.
class ProbModel {
 public:
  /// `catalog` provides dimension distinct counts (|Ai|); `rprime`
  /// provides per-entity seen/total tuple counts.
  ProbModel(const StatsCatalog& catalog, const RPrime& rprime)
      : catalog_(&catalog), rprime_(&rprime) {}

  /// P[tuple exists] = prod_i 1/|Ai| over the predicate's columns: the
  /// chance that one unseen tuple of an entity happens to match the
  /// predicate.
  double TupleExistsProbability(const Predicate& predicate) const;

  /// P[false positive] = 1 - prod_{uncovered entities j}
  /// (1 - (1 - p_match)^unseen(e_j)). Entities covered by the
  /// predicate's tuple set contribute nothing; with a complete R' the
  /// probability is therefore 0 for every candidate.
  ///
  /// p_match is the chance that one unseen tuple of an uncovered entity
  /// matches the predicate. The paper uses P[tuple exists] =
  /// prod 1/|Ai|, which assumes attribute values are uniform and
  /// independent within an entity's tuples; under correlated tuples
  /// (the augmented/clone scenario it is designed for!) that grossly
  /// underestimates p_match and condemns every partially covered
  /// predicate. By default this implementation instead uses the
  /// predicate's *observed* per-tuple match rate over the sampled
  /// tuples of covered entities (|I_P| / their sampled tuple count),
  /// the empirical estimator of the same quantity; construct with
  /// use_observed_match_rate = false for the paper's formula.
  double FalsePositiveProbability(const Predicate& predicate,
                                  const PredicateGroup& group) const;

  bool use_observed_match_rate() const { return use_observed_match_rate_; }
  void set_use_observed_match_rate(bool v) { use_observed_match_rate_ = v; }

  /// s(Qc) = (1 - P[false positive]) * (1 - d) (Section 6.3).
  static double Suitability(double p_false_positive, double distance);

  /// Estimated fraction of R matching the predicate (catalog value
  /// frequencies under independence); the suitability tie-breaker.
  double PredicateSelectivity(const Predicate& predicate) const {
    return catalog_->PredicateSelectivity(predicate);
  }

  // ---- Sampling analysis helpers (Section 6.4) ----

  /// Hypergeometric pmf: probability of drawing exactly `k` marked
  /// items when sampling `n` of `N` items of which `K` are marked.
  static double HypergeometricPmf(int64_t K, int64_t N, int64_t n,
                                  int64_t k);

  /// Probability that at least one of `K` marked items appears in a
  /// sample of `n` out of `N`.
  static double ProbAtLeastOneSampled(int64_t K, int64_t N, int64_t n);

  /// Probability that every one of `m` independent entities, each with
  /// `K` matching tuples among its `N` tuples and a per-entity sample
  /// of `n`, contributes at least one matching tuple.
  static double ProbAllEntitiesCovered(int64_t K, int64_t N, int64_t n,
                                       int m);

 private:
  const StatsCatalog* catalog_;
  const RPrime* rprime_;
  bool use_observed_match_rate_ = true;
};

}  // namespace paleo

#endif  // PALEO_PALEO_PROB_MODEL_H_
