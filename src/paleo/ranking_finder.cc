#include "paleo/ranking_finder.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "common/random.h"
#include "stats/distance.h"

namespace paleo {

namespace {

/// One stage of the Figure 4 walk: an aggregate plus the technique
/// used to pre-select candidate columns.
enum class Technique { kTopEntities, kHistogram, kRPrimeFallback };

struct Stage {
  AggFn agg;
  Technique technique;
  bool two_column = false;  // sum(A+B) / sum(A*B) stage
};

}  // namespace

StatusOr<std::vector<GroupRanking>> RankingFinder::Find(
    const std::vector<PredicateGroup>& groups, const TopKList& input,
    bool assume_complete, RankingSearchInfo* info, bool exhaustive,
    const RunBudget* budget) const {
  RankingSearchInfo local_info;
  if (info == nullptr) info = &local_info;
  *info = RankingSearchInfo();
  // Polled between criterion evaluations (each evaluation scans a
  // whole tuple set, so a small stride keeps the reaction prompt).
  BudgetGate gate(budget, /*stride=*/8);

  const Table& slice = rprime_.table();
  const Schema& schema = slice.schema();
  const std::vector<int>& measures = schema.measure_indices();
  const int m = rprime_.num_entities();
  const size_t k = input.size();

  std::vector<GroupRanking> rankings(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    rankings[g].group_id = static_cast<int>(g);
  }
  if (measures.empty() || input.empty()) return rankings;

  // The input's sort direction: DESC unless the values are strictly
  // non-decreasing with at least one increase (an ORDER BY ... ASC
  // list). Criteria are ranked in the detected direction.
  std::vector<double> raw_values = input.Values();
  const bool ascending =
      std::is_sorted(raw_values.begin(), raw_values.end()) &&
      !std::is_sorted(raw_values.rbegin(), raw_values.rend());

  // Input values in list order (for rank-aligned distances) and sorted
  // (for the histogram heuristic and min/max checks).
  const std::vector<double> input_values_in_order = input.Values();
  std::vector<double> input_values_sorted = std::move(raw_values);
  std::sort(input_values_sorted.begin(), input_values_sorted.end(),
            std::greater<double>());
  double input_max = input_values_sorted.front();
  double input_min = input_values_sorted.back();
  std::unordered_set<double> distinct_input(input_values_sorted.begin(),
                                            input_values_sorted.end());

  // Base-dictionary codes of the input entities (for top-entity
  // intersection); kInvalidCode for entities absent from R.
  const StringDictionary& entity_dict = *slice.entity_column().dict();
  std::vector<uint32_t> input_entity_codes;
  input_entity_codes.reserve(rprime_.entity_names().size());
  for (const std::string& name : rprime_.entity_names()) {
    input_entity_codes.push_back(entity_dict.Lookup(name));
  }

  // ---- Candidate column pre-selection (catalog-based) ----

  // Algorithm 2: min/max/distinct checks, then top-entity intersection.
  auto top_entity_columns = [&]() {
    std::vector<int> out;
    if (catalog_ == nullptr) return out;
    for (int c : measures) {
      const ColumnStats& stats = catalog_->column_stats(c);
      if (stats.max < input_max) continue;
      if (stats.min > input_min) continue;
      if (stats.distinct_count <
          static_cast<int64_t>(distinct_input.size()))
        continue;
      if (catalog_->top_entities(c).CountIntersection(input_entity_codes) >
          0) {
        out.push_back(c);
      }
    }
    return out;
  };

  // Section 5.2: rank columns by the L1 distance between values sampled
  // from their histograms and the input values; keep the best fraction.
  auto histogram_columns = [&]() {
    std::vector<int> out;
    if (catalog_ == nullptr) return out;
    Rng rng(options_.seed);
    int sample_n = options_.histogram_sample_size > 0
                       ? options_.histogram_sample_size
                       : static_cast<int>(k);
    std::vector<std::pair<double, int>> scored;
    for (int c : measures) {
      const Histogram& hist = catalog_->histogram(c);
      if (hist.total_count() == 0) continue;
      std::vector<double> sample = hist.Sample(&rng, sample_n);
      std::sort(sample.begin(), sample.end(), std::greater<double>());
      scored.emplace_back(L1Distance(sample, input_values_sorted), c);
    }
    std::sort(scored.begin(), scored.end());
    size_t keep = static_cast<size_t>(
        std::ceil(options_.histogram_keep_fraction *
                  static_cast<double>(measures.size())));
    keep = std::min(keep, scored.size());
    for (size_t i = 0; i < keep; ++i) out.push_back(scored[i].second);
    std::sort(out.begin(), out.end());
    return out;
  };

  // Fallback column set: all measures passing the simple checks. The
  // min/max/distinct filters are sound for max/avg/none criteria but
  // not for sums (aggregated values exceed single-tuple ranges), so
  // sums skip them.
  auto fallback_columns = [&](AggFn agg) {
    std::vector<int> out;
    bool filter = agg == AggFn::kMax || agg == AggFn::kAvg ||
                  agg == AggFn::kMin || agg == AggFn::kNone;
    for (int c : measures) {
      if (filter && catalog_ != nullptr) {
        const ColumnStats& stats = catalog_->column_stats(c);
        if (agg != AggFn::kMin && stats.max < input_max) continue;
        if (agg != AggFn::kMin && stats.min > input_min) continue;
        if (stats.distinct_count <
            static_cast<int64_t>(distinct_input.size()))
          continue;
      }
      out.push_back(c);
    }
    return out;
  };

  // ---- Criterion evaluation over one tuple set ----

  // Scaling for sum criteria under sampling (Section 6.2): per entity,
  // scale the sampled sum by total/seen tuples of the entity.
  std::vector<double> sum_scale(static_cast<size_t>(m), 1.0);
  if (!assume_complete) {
    for (int e = 0; e < m; ++e) {
      int64_t seen = rprime_.entity_row_counts()[static_cast<size_t>(e)];
      int64_t total = rprime_.entity_total_counts()[static_cast<size_t>(e)];
      if (seen > 0 && total > seen) {
        sum_scale[static_cast<size_t>(e)] =
            static_cast<double>(total) / static_cast<double>(seen);
      }
    }
  }

  const std::vector<uint32_t>& row_entity = rprime_.row_entity();

  // Evaluates (expr, agg) over a tuple set; returns the candidate if it
  // qualifies (exact in complete mode, scored otherwise).
  auto evaluate = [&](const TupleSet& rows, const RankExpr& expr, AggFn agg)
      -> std::pair<bool, RankingCandidate> {
    ++info->tuple_set_evaluations;
    RankingCandidate cand;
    cand.expr = expr;
    cand.agg = agg;

    if (agg == AggFn::kNone) {
      // Rank individual tuples.
      std::vector<std::pair<double, RowId>> scored;
      scored.reserve(rows.size());
      for (RowId r : rows) scored.emplace_back(expr.Eval(slice, r), r);
      std::sort(scored.begin(), scored.end(), [&](const auto& a,
                                                  const auto& b) {
        if (a.first != b.first)
          return ascending ? a.first < b.first : a.first > b.first;
        const std::string& na =
            rprime_.entity_names()[row_entity[a.second]];
        const std::string& nb =
            rprime_.entity_names()[row_entity[b.second]];
        if (na != nb) return na < nb;
        return a.second < b.second;
      });
      if (scored.size() > k) scored.resize(k);
      TopKList ranked;
      for (const auto& [v, r] : scored) {
        ranked.Append(rprime_.entity_names()[row_entity[r]], v);
      }
      cand.exact = ranked.InstanceEquals(input, options_.rel_eps);
      // Unlike grouped criteria (whose values are entity-aligned), row
      // ranking has no entity alignment built in: a wrong tuple set can
      // produce L-like VALUES from the wrong entities. Blend the value
      // distance with Fagin's footrule over the entity sequences so
      // such impostors score poorly.
      std::vector<double> top_values = ranked.Values();
      double value_distance =
          NormalizedL1(top_values, input_values_in_order);
      double rank_distance =
          NormalizedFootrule(ranked.Entities(), input.Entities());
      cand.distance = (value_distance + rank_distance) / 2.0;
      bool keep = assume_complete ? cand.exact : true;
      return {keep, cand};
    }

    // Grouped aggregation per input entity.
    std::vector<AggState> states(static_cast<size_t>(m));
    for (RowId r : rows) {
      states[row_entity[r]].Add(expr.Eval(slice, r));
    }
    std::vector<double> per_entity(static_cast<size_t>(m), 0.0);
    std::vector<std::pair<double, int>> ranked_entities;
    for (int e = 0; e < m; ++e) {
      const AggState& st = states[static_cast<size_t>(e)];
      if (st.count == 0) continue;
      double v = st.Finish(agg);
      if (agg == AggFn::kSum) v *= sum_scale[static_cast<size_t>(e)];
      per_entity[static_cast<size_t>(e)] = v;
      ranked_entities.emplace_back(v, e);
    }
    std::sort(ranked_entities.begin(), ranked_entities.end(),
              [&](const auto& a, const auto& b) {
                if (a.first != b.first)
                  return ascending ? a.first < b.first : a.first > b.first;
                return rprime_.entity_names()[static_cast<size_t>(a.second)] <
                       rprime_.entity_names()[static_cast<size_t>(b.second)];
              });
    TopKList ranked;
    for (const auto& [v, e] : ranked_entities) {
      ranked.Append(rprime_.entity_names()[static_cast<size_t>(e)], v);
    }
    cand.exact = ranked.InstanceEquals(input, options_.rel_eps);
    // Entity-aligned distance: uncovered entities keep value 0 and pay
    // their full input value.
    cand.distance = NormalizedL1(per_entity, rprime_.entity_values());
    bool keep = assume_complete ? cand.exact : true;
    return {keep, cand};
  };

  // Builds a scored candidate from already-aggregated per-entity
  // values (entities with count 0 are uncovered and rank nowhere).
  auto score_entity_values = [&](const std::vector<double>& per_entity,
                                 const std::vector<int64_t>& counts,
                                 const RankExpr& expr, AggFn agg)
      -> std::pair<bool, RankingCandidate> {
    ++info->tuple_set_evaluations;
    RankingCandidate cand;
    cand.expr = expr;
    cand.agg = agg;
    std::vector<std::pair<double, int>> ranked_entities;
    for (int e = 0; e < m; ++e) {
      if (counts[static_cast<size_t>(e)] == 0) continue;
      ranked_entities.emplace_back(per_entity[static_cast<size_t>(e)], e);
    }
    std::sort(ranked_entities.begin(), ranked_entities.end(),
              [&](const auto& a, const auto& b) {
                if (a.first != b.first)
                  return ascending ? a.first < b.first : a.first > b.first;
                return rprime_.entity_names()[static_cast<size_t>(a.second)] <
                       rprime_.entity_names()[static_cast<size_t>(b.second)];
              });
    TopKList ranked;
    for (const auto& [v, e] : ranked_entities) {
      ranked.Append(rprime_.entity_names()[static_cast<size_t>(e)], v);
    }
    cand.exact = ranked.InstanceEquals(input, options_.rel_eps);
    cand.distance = NormalizedL1(per_entity, rprime_.entity_values());
    bool keep = assume_complete ? cand.exact : true;
    return {keep, cand};
  };

  // Runs one stage over all groups; returns true if any exact
  // candidate was produced (early-stop signal in complete mode).
  auto run_stage = [&](const Stage& stage, const std::vector<int>& columns)
      -> bool {
    bool any_exact = false;
    for (size_t g = 0; g < groups.size(); ++g) {
      if (gate.exhausted()) break;
      const TupleSet& rows = groups[g].rows;
      auto already_have = [&](const RankExpr& expr) {
        for (const RankingCandidate& existing : rankings[g].candidates) {
          if (existing.expr == expr && existing.agg == stage.agg)
            return true;
        }
        return false;
      };
      auto emit = [&](std::pair<bool, RankingCandidate> scored) {
        if (scored.first) {
          any_exact |= scored.second.exact;
          rankings[g].candidates.push_back(std::move(scored.second));
        }
      };
      if (stage.two_column) {
        // Materialize the tuple set column-wise once: contiguous value
        // arrays make the per-pair product passes pure array math, and
        // per-entity counts/sums come out of the same pass. sum(A+B)
        // pairs then combine sums in O(m) without touching the rows;
        // sum(A*B) pairs scan the materialized arrays (products do not
        // decompose).
        const size_t n_rows = rows.size();
        std::vector<int64_t> counts(static_cast<size_t>(m), 0);
        std::vector<uint32_t> row_e(n_rows);
        std::vector<std::vector<double>> vals(
            measures.size(), std::vector<double>(n_rows));
        std::vector<std::vector<double>> col_sums(
            measures.size(), std::vector<double>(static_cast<size_t>(m)));
        for (size_t ri = 0; ri < n_rows; ++ri) {
          uint32_t e = row_entity[rows[ri]];
          row_e[ri] = e;
          ++counts[e];
        }
        for (size_t ci = 0; ci < measures.size(); ++ci) {
          const Column& col = slice.column(measures[ci]);
          std::vector<double>& v = vals[ci];
          std::vector<double>& s = col_sums[ci];
          for (size_t ri = 0; ri < n_rows; ++ri) {
            double x = col.NumericAt(rows[ri]);
            v[ri] = x;
            s[row_e[ri]] += x;
          }
        }
        std::vector<double> per_entity(static_cast<size_t>(m));
        for (size_t i = 0; i < measures.size() && !gate.exhausted(); ++i) {
          for (size_t j = i + 1; j < measures.size(); ++j) {
            if (gate.Tick() != TerminationReason::kCompleted) break;
            if (options_.enable_sum_of_two) {
              RankExpr expr = RankExpr::Add(measures[i], measures[j]);
              if (!already_have(expr)) {
                for (int e = 0; e < m; ++e) {
                  size_t eu = static_cast<size_t>(e);
                  per_entity[eu] =
                      (col_sums[i][eu] + col_sums[j][eu]) * sum_scale[eu];
                }
                emit(score_entity_values(per_entity, counts, expr,
                                         AggFn::kSum));
              }
            }
            if (options_.enable_product_of_two) {
              RankExpr expr = RankExpr::Mul(measures[i], measures[j]);
              if (!already_have(expr)) {
                std::fill(per_entity.begin(), per_entity.end(), 0.0);
                const std::vector<double>& va = vals[i];
                const std::vector<double>& vb = vals[j];
                for (size_t ri = 0; ri < n_rows; ++ri) {
                  per_entity[row_e[ri]] += va[ri] * vb[ri];
                }
                for (int e = 0; e < m; ++e) {
                  per_entity[static_cast<size_t>(e)] *=
                      sum_scale[static_cast<size_t>(e)];
                }
                emit(score_entity_values(per_entity, counts, expr,
                                         AggFn::kSum));
              }
            }
          }
        }
      } else {
        for (int c : columns) {
          if (gate.Tick() != TerminationReason::kCompleted) break;
          RankExpr expr = RankExpr::Column(c);
          if (!already_have(expr)) emit(evaluate(rows, expr, stage.agg));
        }
      }
    }
    return any_exact;
  };

  // ---- Figure 4 pre-order walk ----
  std::vector<AggFn> single_aggs = options_.single_column_aggs;
  if (options_.enable_min_count) {
    single_aggs.push_back(AggFn::kMin);
    single_aggs.push_back(AggFn::kCount);
  }
  bool two_column_pending =
      options_.enable_sum_of_two || options_.enable_product_of_two;

  std::vector<Stage> plan;
  for (AggFn agg : single_aggs) {
    if (agg == AggFn::kNone && two_column_pending) {
      plan.push_back({AggFn::kSum, Technique::kRPrimeFallback, true});
      two_column_pending = false;
    }
    if (agg == AggFn::kMax || agg == AggFn::kAvg) {
      plan.push_back({agg, Technique::kTopEntities, false});
      plan.push_back({agg, Technique::kHistogram, false});
    }
    plan.push_back({agg, Technique::kRPrimeFallback, false});
  }
  if (two_column_pending) {
    plan.push_back({AggFn::kSum, Technique::kRPrimeFallback, true});
  }

  // Lazily computed candidate column sets.
  std::vector<int> top_cols, hist_cols;
  bool top_cols_ready = false, hist_cols_ready = false;

  for (const Stage& stage : plan) {
    if (gate.exhausted()) break;
    std::vector<int> columns;
    switch (stage.technique) {
      case Technique::kTopEntities:
        if (!top_cols_ready) {
          top_cols = top_entity_columns();
          top_cols_ready = true;
        }
        if (top_cols.empty()) continue;
        info->used_top_entities = true;
        info->top_entity_candidate_columns =
            static_cast<int>(top_cols.size());
        columns = top_cols;
        break;
      case Technique::kHistogram:
        if (!hist_cols_ready) {
          hist_cols = histogram_columns();
          hist_cols_ready = true;
        }
        if (hist_cols.empty()) continue;
        info->used_histograms = true;
        info->histogram_candidate_columns =
            static_cast<int>(hist_cols.size());
        columns = hist_cols;
        break;
      case Technique::kRPrimeFallback:
        info->used_fallback = true;
        if (!stage.two_column) columns = fallback_columns(stage.agg);
        break;
    }
    bool any_exact = run_stage(stage, columns);
    // Early exit only in complete mode: the first technique producing a
    // valid criterion terminates the walk (Figure 4's shaded subtree).
    if (assume_complete && !exhaustive && any_exact) break;
  }

  // Scored mode keeps only the most plausible criteria per tuple set;
  // otherwise every group carries every criterion and the candidate
  // list explodes with near-duplicates (see PaleoOptions).
  if (!assume_complete && options_.max_criteria_per_group > 0) {
    size_t cap = static_cast<size_t>(options_.max_criteria_per_group);
    for (GroupRanking& gr : rankings) {
      if (gr.candidates.size() <= cap) continue;
      std::stable_sort(gr.candidates.begin(), gr.candidates.end(),
                       [](const RankingCandidate& a,
                          const RankingCandidate& b) {
                         return a.distance < b.distance;
                       });
      gr.candidates.resize(cap);
    }
  }
  info->termination = gate.reason();
  return rankings;
}

}  // namespace paleo
