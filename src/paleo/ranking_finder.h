// Ranking criteria identification (paper Section 5) with the sampled
// approximations of Section 6.2.
//
// Search order follows Figure 4's pre-order walk: for max(A) first try
// the per-column top-entity lists, then histogram sampling, then
// direct validation over R'; same for avg(A); the sum family and
// no-aggregation criteria are validated over R' directly (the stats
// shortcuts do not apply to them — top entities under sum depend on
// the predicate, and histograms would need convolutions).
//
// With a complete R' a criterion qualifies only if its ranked result
// over the tuple set is *identical* to L (Definition 2), and the walk
// stops at the first technique producing valid criteria. Under
// sampling every criterion is scored by the normalized L1 distance
// between its (approximated) per-entity values and L's values; sums
// are scaled per entity by total/seen tuple counts (Section 6.2).
//
// Thread-safety: reads const inputs (R', stats, histograms) and writes
// only its own outputs; concurrent calls over the same inputs are safe.

#ifndef PALEO_PALEO_RANKING_FINDER_H_
#define PALEO_PALEO_RANKING_FINDER_H_

#include <vector>

#include "common/run_budget.h"
#include "common/status.h"
#include "engine/rank_expr.h"
#include "engine/topk_list.h"
#include "paleo/options.h"
#include "paleo/predicate_miner.h"
#include "paleo/rprime.h"
#include "stats/catalog.h"

namespace paleo {

/// \brief One candidate ranking criterion for a tuple set.
struct RankingCandidate {
  RankExpr expr;
  AggFn agg = AggFn::kMax;
  /// Normalized L1 distance to the input values (0 = exact).
  double distance = 0.0;
  /// Result over the tuple set is instance-identical to L.
  bool exact = false;
};

/// \brief Candidate ranking criteria of one predicate group.
struct GroupRanking {
  int group_id = -1;
  std::vector<RankingCandidate> candidates;
};

/// \brief Which techniques of the Figure 4 walk ran (Figure 7 /
/// ablation accounting).
struct RankingSearchInfo {
  bool used_top_entities = false;
  bool used_histograms = false;
  bool used_fallback = false;
  int top_entity_candidate_columns = 0;
  int histogram_candidate_columns = 0;
  /// Criteria evaluations performed over R' tuple sets.
  int64_t tuple_set_evaluations = 0;
  /// kCompleted when the Figure 4 walk finished; otherwise the search
  /// stopped early on a RunBudget and the rankings are partial.
  TerminationReason termination = TerminationReason::kCompleted;
};

/// \brief Figure 4 search driver.
class RankingFinder {
 public:
  /// `catalog` may be null, in which case the stats-guided shortcuts
  /// are skipped and everything is validated over R' (the ablation
  /// baseline).
  RankingFinder(const RPrime& rprime, const StatsCatalog* catalog,
                const PaleoOptions& options)
      : rprime_(rprime), catalog_(catalog), options_(options) {}

  /// Finds candidate ranking criteria for every predicate group.
  /// `assume_complete` selects exact matching (true) vs. distance
  /// scoring with sum approximation (false). Groups that end up with
  /// no candidates are returned with an empty list (the caller drops
  /// their predicates, Section 5.3).
  ///
  /// With `exhaustive`, the walk does not stop at the first technique
  /// producing exact criteria. The facade uses this as a second pass
  /// when no candidate from the cheap walk validates against R: a
  /// coincidental exact match on R' (e.g. max == avg over one-row
  /// tuple sets) can otherwise shadow the true criterion.
  ///
  /// When `budget` is set, the walk polls it between criterion
  /// evaluations and stops early on exhaustion, returning the criteria
  /// found so far (each individually complete) with
  /// info->termination recording the reason.
  StatusOr<std::vector<GroupRanking>> Find(
      const std::vector<PredicateGroup>& groups, const TopKList& input,
      bool assume_complete, RankingSearchInfo* info = nullptr,
      bool exhaustive = false, const RunBudget* budget = nullptr) const;

 private:
  const RPrime& rprime_;
  const StatsCatalog* catalog_;
  const PaleoOptions& options_;
};

}  // namespace paleo

#endif  // PALEO_PALEO_RANKING_FINDER_H_
