#include "paleo/rprime.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace paleo {

StatusOr<RPrime> RPrime::Build(const Table& base, const EntityIndex& index,
                               const TopKList& input,
                               const std::vector<RowId>* base_row_ids) {
  if (input.empty()) {
    return Status::InvalidArgument("input list is empty");
  }
  RPrime rp;

  // Distinct entities in input order, with their (first) values.
  std::unordered_map<std::string, uint32_t> entity_idx;
  for (const TopKEntry& e : input.entries()) {
    if (entity_idx.emplace(e.entity, rp.entity_names_.size()).second) {
      rp.entity_names_.push_back(e.entity);
      rp.entity_values_.push_back(e.value);
    }
  }

  // Optional sample restriction, as a sorted set for O(log n) probes.
  const std::vector<RowId>* sample = base_row_ids;
  auto in_sample = [&](RowId global) {
    if (sample == nullptr) return true;
    return std::binary_search(sample->begin(), sample->end(), global);
  };

  std::vector<std::pair<RowId, uint32_t>> rows;  // (global row, entity idx)
  rp.entity_row_counts_.assign(rp.entity_names_.size(), 0);
  rp.entity_total_counts_.assign(rp.entity_names_.size(), 0);
  for (uint32_t e = 0; e < rp.entity_names_.size(); ++e) {
    const std::vector<RowId>& posting = index.Lookup(rp.entity_names_[e]);
    if (posting.empty()) {
      rp.missing_entities_.push_back(rp.entity_names_[e]);
      continue;
    }
    rp.entity_total_counts_[e] = static_cast<int64_t>(posting.size());
    for (RowId global : posting) {
      if (!in_sample(global)) continue;
      rows.emplace_back(global, e);
      ++rp.entity_row_counts_[e];
    }
  }
  std::sort(rows.begin(), rows.end());

  rp.global_rows_.reserve(rows.size());
  rp.row_entity_.reserve(rows.size());
  for (const auto& [global, e] : rows) {
    rp.global_rows_.push_back(global);
    rp.row_entity_.push_back(e);
  }
  rp.table_ = base.Gather(rp.global_rows_);
  return rp;
}

}  // namespace paleo
