// R': the in-memory, column-oriented slice of R holding all (sampled)
// tuples of the input list's entities (paper Section 3.1).
//
// Thread-safety: built single-threaded, then treated as immutable; the
// validator's worker threads share one const R' without locking.

#ifndef PALEO_PALEO_RPRIME_H_
#define PALEO_PALEO_RPRIME_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/topk_list.h"
#include "index/entity_index.h"
#include "storage/table.h"

namespace paleo {

/// \brief The working slice R' (or its sample R'').
///
/// Rows are re-numbered 0..n-1 (local RowIds) and each row carries the
/// index of its entity within the input list (0..m-1), which makes the
/// miner's coverage checks O(1) bit operations.
class RPrime {
 public:
  /// Materializes R' via the entity index: all rows of all distinct
  /// entities of L. `base_row_ids` can restrict to a sample (global row
  /// ids into `base`); pass nullptr for the full slice.
  ///
  /// Entities of L absent from R are recorded in missing_entities()
  /// (possible under the changed-data scenario of Section 6).
  static StatusOr<RPrime> Build(const Table& base, const EntityIndex& index,
                                const TopKList& input,
                                const std::vector<RowId>* base_row_ids =
                                    nullptr);

  /// The columnar slice; its schema equals the base relation's and its
  /// string columns share the base dictionaries.
  const Table& table() const { return table_; }
  size_t num_rows() const { return table_.num_rows(); }

  /// Number of distinct entities in the input list.
  int num_entities() const { return static_cast<int>(entity_names_.size()); }
  /// Input-list entity names, in list order (distinct).
  const std::vector<std::string>& entity_names() const {
    return entity_names_;
  }
  /// Input-list values aligned with entity_names() (first occurrence
  /// for duplicated entities in no-aggregation lists).
  const std::vector<double>& entity_values() const { return entity_values_; }

  /// Local entity index (0..m-1) of each local row.
  const std::vector<uint32_t>& row_entity() const { return row_entity_; }

  /// Tuples present in this slice per entity (aligned with
  /// entity_names()).
  const std::vector<int64_t>& entity_row_counts() const {
    return entity_row_counts_;
  }
  /// Tuples of each entity in the FULL base relation (from the entity
  /// index). entity_total_counts()[i] - entity_row_counts()[i] is the
  /// paper's unseen(e_i).
  const std::vector<int64_t>& entity_total_counts() const {
    return entity_total_counts_;
  }

  /// Entities of L with no tuple in the base relation.
  const std::vector<std::string>& missing_entities() const {
    return missing_entities_;
  }

  /// Global (base-relation) row id of a local row.
  RowId GlobalRow(RowId local) const { return global_rows_[local]; }

 private:
  Table table_{Schema()};
  std::vector<uint32_t> row_entity_;
  std::vector<RowId> global_rows_;
  std::vector<std::string> entity_names_;
  std::vector<double> entity_values_;
  std::vector<int64_t> entity_row_counts_;
  std::vector<int64_t> entity_total_counts_;
  std::vector<std::string> missing_entities_;
};

}  // namespace paleo

#endif  // PALEO_PALEO_RPRIME_H_
