#include "paleo/sampler.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace paleo {

StatusOr<std::vector<RowId>> Sampler::ByEntity(
    const EntityIndex& index, const std::vector<std::string>& entities,
    double entity_fraction, uint64_t seed) {
  if (entity_fraction <= 0.0 || entity_fraction > 1.0) {
    return Status::InvalidArgument("entity_fraction must be in (0, 1]");
  }
  Rng rng(seed);
  uint32_t n = static_cast<uint32_t>(entities.size());
  if (n == 0) return std::vector<RowId>{};
  uint32_t count = std::max<uint32_t>(
      1, static_cast<uint32_t>(
             std::ceil(entity_fraction * static_cast<double>(n))));
  std::vector<uint32_t> chosen = rng.SampleWithoutReplacement(n, count);
  std::vector<RowId> rows;
  for (uint32_t idx : chosen) {
    const std::vector<RowId>& posting =
        index.Lookup(entities[static_cast<size_t>(idx)]);
    rows.insert(rows.end(), posting.begin(), posting.end());
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

StatusOr<std::vector<RowId>> Sampler::UniformPerEntity(
    const EntityIndex& index, const std::vector<std::string>& entities,
    double fraction, uint64_t seed) {
  if (fraction <= 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("fraction must be in (0, 1]");
  }
  Rng rng(seed);
  std::vector<RowId> rows;
  for (const std::string& entity : entities) {
    const std::vector<RowId>& posting = index.Lookup(entity);
    if (posting.empty()) continue;
    uint32_t n = static_cast<uint32_t>(posting.size());
    uint32_t count = std::max<uint32_t>(
        1, static_cast<uint32_t>(
               std::ceil(fraction * static_cast<double>(n))));
    count = std::min(count, n);
    std::vector<uint32_t> chosen = rng.SampleWithoutReplacement(n, count);
    for (uint32_t idx : chosen) rows.push_back(posting[idx]);
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

}  // namespace paleo
