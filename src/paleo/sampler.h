// Sampling of R' (paper Section 6.4): by-entity sampling (all tuples
// of a random subset of the input entities — no false negatives, many
// false positives) and uniform per-entity sampling (a percentage of
// each entity's tuples — fewer false positives, possible false
// negatives, mitigated by the relaxed coverage ratio).
//
// Thread-safety: pure functions from (const R', seed) to a new sampled
// R'; safe to call concurrently.

#ifndef PALEO_PALEO_SAMPLER_H_
#define PALEO_PALEO_SAMPLER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "index/entity_index.h"

namespace paleo {

/// \brief Deterministic samplers over the entity index's posting
/// lists. Both return sorted global row ids suitable for
/// RPrime::Build's base_row_ids argument.
class Sampler {
 public:
  /// All tuples of ceil(entity_fraction * |entities|) entities chosen
  /// uniformly without replacement (at least one entity).
  static StatusOr<std::vector<RowId>> ByEntity(
      const EntityIndex& index, const std::vector<std::string>& entities,
      double entity_fraction, uint64_t seed);

  /// ceil(fraction * |tuples|) tuples of every entity, chosen
  /// uniformly without replacement within the entity (at least one
  /// tuple per present entity).
  static StatusOr<std::vector<RowId>> UniformPerEntity(
      const EntityIndex& index, const std::vector<std::string>& entities,
      double fraction, uint64_t seed);
};

}  // namespace paleo

#endif  // PALEO_PALEO_SAMPLER_H_
