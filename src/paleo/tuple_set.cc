#include "paleo/tuple_set.h"

#include <algorithm>

namespace paleo {

namespace {

/// Galloping (exponential) search intersection for when one side is
/// much smaller than the other.
TupleSet IntersectGalloping(const TupleSet& small, const TupleSet& large) {
  TupleSet out;
  out.reserve(small.size());
  auto it = large.begin();
  for (RowId v : small) {
    // Exponential probe from the current position.
    size_t step = 1;
    auto probe = it;
    while (probe != large.end() && *probe < v) {
      it = probe + 1;
      if (static_cast<size_t>(large.end() - probe) <= step) {
        probe = large.end();
        break;
      }
      probe += static_cast<ptrdiff_t>(step);
      step *= 2;
    }
    it = std::lower_bound(it, probe, v);
    if (it != large.end() && *it == v) {
      out.push_back(v);
      ++it;
    }
  }
  return out;
}

}  // namespace

TupleSet IntersectSorted(const TupleSet& a, const TupleSet& b) {
  if (a.empty() || b.empty()) return {};
  // Gallop when sizes are strongly skewed; linear merge otherwise.
  if (a.size() * 16 < b.size()) return IntersectGalloping(a, b);
  if (b.size() * 16 < a.size()) return IntersectGalloping(b, a);
  TupleSet out;
  out.reserve(std::min(a.size(), b.size()));
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out.push_back(a[i]);
      ++i;
      ++j;
    }
  }
  return out;
}

int CountCoveredEntities(const TupleSet& set,
                         const std::vector<uint32_t>& row_entity,
                         int num_entities, std::vector<uint64_t>* scratch) {
  size_t words = (static_cast<size_t>(num_entities) + 63) / 64;
  scratch->assign(words, 0);
  for (RowId row : set) {
    uint32_t e = row_entity[row];
    (*scratch)[e >> 6] |= (uint64_t{1} << (e & 63));
  }
  int covered = 0;
  for (uint64_t w : *scratch) covered += __builtin_popcountll(w);
  return covered;
}

uint64_t HashTupleSet(const TupleSet& set) {
  uint64_t h = 1469598103934665603ULL ^ set.size();
  for (RowId v : set) {
    h ^= v;
    h *= 1099511628211ULL;
    h ^= h >> 29;
  }
  return h;
}

}  // namespace paleo
