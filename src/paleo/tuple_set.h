// Tuple-id sets I_P: the sorted local-row-id lists selected by each
// candidate predicate over R' (paper Sections 4, 4.1). Predicates with
// identical tuple sets share data characteristics and are grouped so
// each distinct set is examined once.
//
// Thread-safety: plain value types; pure grouping functions over const
// inputs are safe to call concurrently.

#ifndef PALEO_PALEO_TUPLE_SET_H_
#define PALEO_PALEO_TUPLE_SET_H_

#include <cstdint>
#include <vector>

#include "storage/column.h"

namespace paleo {

/// Sorted, duplicate-free vector of local row ids into R'.
using TupleSet = std::vector<RowId>;

/// Intersection of two sorted tuple sets (linear merge with galloping
/// for skewed sizes).
TupleSet IntersectSorted(const TupleSet& a, const TupleSet& b);

/// Number of distinct entities (by local entity index) covered by the
/// rows of `set`. `row_entity` maps local row -> entity index,
/// `num_entities` bounds the indices; `scratch` must hold
/// ceil(num_entities / 64) words and is cleared on entry.
int CountCoveredEntities(const TupleSet& set,
                         const std::vector<uint32_t>& row_entity,
                         int num_entities, std::vector<uint64_t>* scratch);

/// FNV-style hash of a tuple set (for grouping identical sets).
uint64_t HashTupleSet(const TupleSet& set);

}  // namespace paleo

#endif  // PALEO_PALEO_TUPLE_SET_H_
