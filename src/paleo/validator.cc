#include "paleo/validator.h"

#include <algorithm>
#include <future>
#include <memory>
#include <numeric>
#include <utility>

#include "common/fault_points.h"
#include "common/thread_pool.h"
#include "engine/threshold_monitor.h"
#include "stats/distance.h"

namespace paleo {

namespace {

/// Maps an exhausted budget to its reason; used after the budget check
/// or the executor reported interruption. Falls back to kCancelled
/// when the budget itself no longer reports exhaustion (only possible
/// with an externally reset token).
TerminationReason ExhaustionReason(const RunBudget* budget,
                                   int64_t executions_used) {
  if (budget == nullptr) return TerminationReason::kCancelled;
  TerminationReason reason = budget->Check(executions_used);
  return reason == TerminationReason::kCompleted
             ? TerminationReason::kCancelled
             : reason;
}

}  // namespace

std::unique_ptr<ThresholdMonitor> Validator::MakeMonitor(
    const std::vector<CandidateQuery>& candidates,
    const TopKList& input) const {
  if (!options_.threshold_pruning ||
      options_.match_mode != MatchMode::kExact || candidates.empty()) {
    return nullptr;
  }
  auto monitor = std::make_unique<ThresholdMonitor>(
      base_, input, candidates.front().query.order, options_.rel_eps);
  if (!monitor->active()) return nullptr;
  return monitor;
}

bool Validator::Accepts(const TopKList& result, const TopKList& input) const {
  if (options_.match_mode == MatchMode::kExact) {
    return result.InstanceEquals(input, options_.rel_eps);
  }
  // Partial match (Section 3.3): entity-set similarity plus bounded
  // value distance.
  if (result.empty()) return false;
  double entity_sim = result.EntityJaccard(input);
  if (entity_sim < options_.partial_min_entity_jaccard) return false;
  std::vector<double> rv = result.Values();
  std::vector<double> iv = input.Values();
  double value_dist = NormalizedL1(rv, iv);
  return value_dist <= options_.partial_max_value_distance;
}

StatusOr<ValidationOutcome> Validator::RankedValidation(
    const std::vector<CandidateQuery>& candidates, const TopKList& input,
    const RunBudget* budget, int64_t prior_executions) const {
  ValidationOutcome outcome;
  outcome.passes = 1;
  obs::Inc(metrics_.validation_passes);
  const std::unique_ptr<ThresholdMonitor> monitor =
      MakeMonitor(candidates, input);
  const ExecContext exec_ctx{.budget = budget,
                             .cache = cache_,
                             .pool = pool_,
                             .scan_threads = options_.scan_threads,
                             .threshold = monitor.get(),
                             .share_aggregates = options_.share_aggregates};
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (options_.max_query_executions > 0 &&
        outcome.executions >= options_.max_query_executions) {
      break;
    }
    if (outcome.termination == TerminationReason::kCompleted &&
        budget != nullptr &&
        budget->Exhausted(prior_executions + outcome.executions)) {
      outcome.termination =
          ExhaustionReason(budget, prior_executions + outcome.executions);
    }
    if (outcome.termination != TerminationReason::kCompleted) {
      // Budget gone: record the rest as unvalidated instead of
      // executing them.
      outcome.unvalidated.push_back(i);
      continue;
    }
    obs::ScopedSpan span(trace_.trace, "execute", trace_.parent);
    auto result = executor_->Execute(base_, candidates[i].query, exec_ctx);
    if (!result.ok()) {
      if (result.status().IsQueryRefuted()) {
        // The threshold monitor proved mid-scan that this candidate
        // cannot reproduce L: an executed-and-rejected candidate that
        // stopped early. Counted as an execution so budgets and the
        // paper's execution metric are identical with pruning off.
        ++outcome.executions;
        ++outcome.refuted_early;
        obs::Inc(metrics_.candidates_executed);
        obs::Inc(metrics_.validations_refuted_early);
        span.AddAttr("candidate", static_cast<int64_t>(i));
        span.AddAttr("refuted_early", int64_t{1});
        continue;
      }
      if (result.status().IsCancelled()) {
        // The deadline passed (or the token tripped) mid-scan; the
        // partial execution does not count.
        outcome.termination = ExhaustionReason(
            budget, prior_executions + outcome.executions);
        outcome.unvalidated.push_back(i);
        span.AddAttr("interrupted", int64_t{1});
        continue;
      }
      return result.status();
    }
    ++outcome.executions;
    obs::Inc(metrics_.candidates_executed);
    const bool accepted = Accepts(*result, input);
    span.AddAttr("candidate", static_cast<int64_t>(i));
    span.AddAttr("accepted", static_cast<int64_t>(accepted));
    if (accepted) {
      outcome.valid.push_back(
          ValidQuery{candidates[i].query, outcome.executions});
      if (options_.stop_at_first_valid) break;
    }
  }
  return outcome;
}

StatusOr<ValidationOutcome> Validator::SmartValidation(
    const std::vector<CandidateQuery>& candidates, const TopKList& input,
    const RunBudget* budget, int64_t prior_executions) const {
  ValidationOutcome outcome;
  const double tau = options_.smart_jaccard_threshold;

  // Work queue of candidate indices; skipped candidates form the queue
  // of the next pass (Algorithm 3's tail recursion, made iterative).
  std::vector<size_t> queue(candidates.size());
  for (size_t i = 0; i < queue.size(); ++i) queue[i] = i;

  auto budget_left = [&]() {
    return options_.max_query_executions <= 0 ||
           outcome.executions < options_.max_query_executions;
  };
  // Governed check: trips the outcome's termination once the RunBudget
  // is exhausted (checked before each execution; cheap otherwise).
  auto governed_left = [&]() {
    if (outcome.termination != TerminationReason::kCompleted) return false;
    if (budget != nullptr &&
        budget->Exhausted(prior_executions + outcome.executions)) {
      outcome.termination =
          ExhaustionReason(budget, prior_executions + outcome.executions);
      return false;
    }
    return true;
  };
  // Executes candidates[idx]; kStop means the run should wind down
  // (budget exhausted mid-scan). Errors propagate via `failure`.
  Status failure = Status::OK();
  // Phase 1 executions feed Qfm detection (EntityJaccard over the full
  // result list), so they run UNPRUNED; phase 2 results only need the
  // accept/reject verdict, so they carry the threshold monitor. The
  // execution schedule — and with it executions, skip_events, passes,
  // and the valid set — is therefore identical with pruning on or off.
  const std::unique_ptr<ThresholdMonitor> monitor =
      MakeMonitor(candidates, input);
  const ExecContext unpruned_ctx{
      .budget = budget,
      .cache = cache_,
      .pool = pool_,
      .scan_threads = options_.scan_threads,
      .share_aggregates = options_.share_aggregates};
  const ExecContext pruned_ctx{
      .budget = budget,
      .cache = cache_,
      .pool = pool_,
      .scan_threads = options_.scan_threads,
      .threshold = monitor.get(),
      .share_aggregates = options_.share_aggregates};
  enum class Exec { kOk, kRefuted, kStop };
  auto execute = [&](size_t idx, const ExecContext& exec_ctx,
                     TopKList* result) {
    obs::ScopedSpan span(trace_.trace, "execute", trace_.parent);
    span.AddAttr("candidate", static_cast<int64_t>(idx));
    auto executed = executor_->Execute(base_, candidates[idx].query, exec_ctx);
    if (!executed.ok()) {
      if (executed.status().IsQueryRefuted()) {
        // Executed-and-rejected, just cheaper: counts as an execution.
        ++outcome.executions;
        ++outcome.refuted_early;
        obs::Inc(metrics_.candidates_executed);
        obs::Inc(metrics_.validations_refuted_early);
        span.AddAttr("refuted_early", int64_t{1});
        return Exec::kRefuted;
      }
      if (executed.status().IsCancelled()) {
        outcome.termination = ExhaustionReason(
            budget, prior_executions + outcome.executions);
        span.AddAttr("interrupted", int64_t{1});
      } else {
        failure = executed.status();
      }
      return Exec::kStop;
    }
    ++outcome.executions;
    obs::Inc(metrics_.candidates_executed);
    *result = std::move(executed).value();
    return Exec::kOk;
  };

  while (!queue.empty()) {
    ++outcome.passes;
    obs::Inc(metrics_.validation_passes);
    std::vector<size_t> skipped;
    const CandidateQuery* first_match = nullptr;
    bool ranking_confirmed = false;

    size_t pos = 0;
    // Phase 1: execute in order until some result's entities overlap L
    // beyond tau — that candidate becomes Qfm.
    for (; pos < queue.size() && budget_left() && governed_left(); ++pos) {
      const CandidateQuery& cq = candidates[queue[pos]];
      TopKList result;
      const Exec e = execute(queue[pos], unpruned_ctx, &result);
      if (e == Exec::kStop) break;
      if (e == Exec::kRefuted) continue;  // no list: cannot become Qfm
      if (Accepts(result, input)) {
        outcome.valid.push_back(ValidQuery{cq.query, outcome.executions});
        if (options_.stop_at_first_valid) return outcome;
      }
      if (result.EntityJaccard(input) >= tau) {
        first_match = &cq;
        ranking_confirmed = result.ValueJaccard(input, 1e-6) > tau;
        ++pos;
        break;
      }
    }
    if (!failure.ok()) return failure;

    // Phase 2: execute the remainder, skipping candidates unrelated to
    // Qfm.
    for (; pos < queue.size() && budget_left() && governed_left(); ++pos) {
      const CandidateQuery& cq = candidates[queue[pos]];
      if (first_match != nullptr) {
        bool no_predicate_overlap =
            cq.query.predicate.OverlapWith(first_match->query.predicate) ==
            0;
        bool wrong_ranking =
            ranking_confirmed && !cq.query.SameRanking(first_match->query);
        if (no_predicate_overlap || wrong_ranking) {
          skipped.push_back(queue[pos]);
          ++outcome.skip_events;
          obs::Inc(metrics_.candidates_skipped);
          continue;
        }
      }
      TopKList result;
      const Exec e = execute(queue[pos], pruned_ctx, &result);
      if (e == Exec::kStop) break;
      if (e == Exec::kRefuted) continue;  // rejected without a full scan
      if (Accepts(result, input)) {
        outcome.valid.push_back(ValidQuery{cq.query, outcome.executions});
        if (options_.stop_at_first_valid) return outcome;
      }
    }
    if (!failure.ok()) return failure;

    if (outcome.termination != TerminationReason::kCompleted) {
      // Wind down: everything not yet executed this pass — the queue
      // tail plus this pass's skips — was never validated. Ascending
      // index order restores suitability order.
      outcome.unvalidated.assign(queue.begin() + static_cast<ptrdiff_t>(pos),
                                 queue.end());
      outcome.unvalidated.insert(outcome.unvalidated.end(), skipped.begin(),
                                 skipped.end());
      std::sort(outcome.unvalidated.begin(), outcome.unvalidated.end());
      return outcome;
    }
    if (!budget_left()) break;
    // Retry the skipped candidates; terminates because phase 1 always
    // executes at least the first queued candidate.
    queue = std::move(skipped);
  }
  return outcome;
}

namespace {

/// One candidate execution's outcome, carried through a pool future.
/// Default-constructed (ran == false) when the pool skipped the task
/// because the sibling-cancellation token had already tripped.
struct ExecResult {
  Status status = Status::OK();
  TopKList list;
  bool ran = false;
};

}  // namespace

StatusOr<ValidationOutcome> Validator::ParallelValidation(
    const std::vector<CandidateQuery>& candidates, const TopKList& input,
    bool smart, const RunBudget* budget, int64_t prior_executions) const {
  ValidationOutcome outcome;
  const double tau = options_.smart_jaccard_threshold;
  // In-flight window: one slot per configured validation thread. The
  // window is also the speculation depth — results past the commit
  // point may be discarded, so oversizing it wastes executions without
  // adding concurrency.
  const size_t window =
      static_cast<size_t>(std::max(2, options_.num_threads));

  // Trips when validation stops needing its outstanding executions:
  // first valid query found (stop_at_first_valid), budget exhausted, or
  // a hard execution error. Queued siblings are then skipped by the
  // pool; in-flight ones abort at their next mid-scan budget poll.
  CancellationToken stop;
  // Per-task budget: the request's deadline plus the sibling token.
  // The request's own cancellation token is polled by the commit loop
  // (which then trips `stop`), so a request cancel reaches in-flight
  // scans with at most one commit of latency.
  RunBudget task_budget;
  if (budget != nullptr) task_budget = *budget;
  task_budget.set_max_executions(0);  // cap is enforced at commit
  task_budget.set_cancellation_token(&stop);
  // Scan morsels of the speculative executions share the validation
  // pool; WaitHelping keeps the nesting deadlock-free.
  //
  // Pruning mirrors the sequential schedule: parallel-ranked tasks
  // always prune; parallel-smart tasks prune only once Qfm is known at
  // LAUNCH time (launches happen on this commit thread, so the qfm
  // snapshot is race-free). A task launched before Qfm committed may
  // run unpruned where the sequential phase 2 would have pruned it —
  // both count one execution and reject, so the committed outcome is
  // unchanged; only refuted_early / rows_saved side counters differ.
  const std::unique_ptr<ThresholdMonitor> monitor =
      MakeMonitor(candidates, input);
  const ExecContext task_ctx{.budget = &task_budget,
                             .cache = cache_,
                             .pool = pool_,
                             .scan_threads = options_.scan_threads,
                             .share_aggregates = options_.share_aggregates};
  const ExecContext pruned_task_ctx{
      .budget = &task_budget,
      .cache = cache_,
      .pool = pool_,
      .scan_threads = options_.scan_threads,
      .threshold = monitor.get(),
      .share_aggregates = options_.share_aggregates};

  struct Slot {
    enum class State { kPending, kLaunched, kSkipped };
    State state = State::kPending;
    std::future<ExecResult> future;
  };

  auto budget_left = [&]() {
    return options_.max_query_executions <= 0 ||
           outcome.executions < options_.max_query_executions;
  };

  std::vector<size_t> queue(candidates.size());
  std::iota(queue.begin(), queue.end(), size_t{0});

  while (!queue.empty()) {
    ++outcome.passes;
    obs::Inc(metrics_.validation_passes);
    std::vector<Slot> slots(queue.size());
    std::vector<size_t> skipped;
    const CandidateQuery* qfm = nullptr;
    bool ranking_confirmed = false;
    size_t commit_pos = 0;
    size_t launch_pos = 0;
    size_t inflight = 0;

    // Algorithm 3's skip rule, decidable only once Qfm is known.
    auto should_skip = [&](const CandidateQuery& cq) {
      if (!smart || qfm == nullptr) return false;
      bool no_predicate_overlap =
          cq.query.predicate.OverlapWith(qfm->query.predicate) == 0;
      bool wrong_ranking =
          ranking_confirmed && !cq.query.SameRanking(qfm->query);
      return no_predicate_overlap || wrong_ranking;
    };

    // Joins every outstanding execution (they finish promptly: queued
    // ones are skipped via `stop`, running ones abort at the next
    // budget poll). Required before returning — tasks reference
    // stack-local state.
    auto drain = [&]() {
      for (size_t i = commit_pos; i < slots.size(); ++i) {
        if (slots[i].state == Slot::State::kLaunched &&
            slots[i].future.valid()) {
          pool_->WaitHelping(slots[i].future);
          ExecResult r = slots[i].future.get();
          // A refuted speculative execution did real (if early-stopped)
          // work, exactly like an ok one whose result is discarded.
          if (r.ran && (r.status.ok() || r.status.IsQueryRefuted())) {
            ++outcome.speculative_executions;
            obs::Inc(metrics_.candidates_speculative);
          }
        }
      }
    };

    // Budget exhausted: everything uncommitted — the queue tail plus
    // this pass's skips — was never validated, exactly as in the
    // sequential wind-down. Ascending order restores suitability order.
    auto wind_down = [&]() {
      stop.Cancel();
      drain();
      outcome.unvalidated.assign(
          queue.begin() + static_cast<ptrdiff_t>(commit_pos), queue.end());
      outcome.unvalidated.insert(outcome.unvalidated.end(), skipped.begin(),
                                 skipped.end());
      std::sort(outcome.unvalidated.begin(), outcome.unvalidated.end());
    };

    while (commit_pos < queue.size()) {
      // The sequential paths stop executing once the paper's silent
      // per-pass cap is hit; mirror that before any further work.
      if (!budget_left()) {
        stop.Cancel();
        drain();
        return outcome;
      }
      if (outcome.termination == TerminationReason::kCompleted &&
          budget != nullptr &&
          budget->Exhausted(prior_executions + outcome.executions)) {
        outcome.termination = ExhaustionReason(
            budget, prior_executions + outcome.executions);
      }
      if (outcome.termination != TerminationReason::kCompleted) {
        wind_down();
        return outcome;
      }

      // Launch ahead in rank order, up to the window. Skip decisions
      // taken here are final only when Qfm is already known (launch_pos
      // is always past the Qfm commit then); otherwise the candidate is
      // launched speculatively and re-judged at commit.
      while (inflight < window && launch_pos < queue.size()) {
        if (options_.max_query_executions > 0 &&
            outcome.executions + static_cast<int64_t>(inflight) >=
                options_.max_query_executions) {
          break;  // speculating past the cap is pure waste
        }
        const CandidateQuery* cq = &candidates[queue[launch_pos]];
        if (should_skip(*cq)) {
          slots[launch_pos].state = Slot::State::kSkipped;
          ++launch_pos;
          continue;
        }
        // Qfm snapshot at launch (see the ctx comment above): smart
        // candidates launched before Qfm run unpruned, like the
        // sequential phase 1.
        const ExecContext* ctx =
            (!smart || qfm != nullptr) ? &pruned_task_ctx : &task_ctx;
        slots[launch_pos].future = pool_->Submit(
            [this, cq, ctx]() -> ExecResult {
              ExecResult r;
              r.ran = true;
              auto executed = executor_->Execute(base_, cq->query, *ctx);
              if (!executed.ok()) {
                r.status = executed.status();
              } else {
                r.list = std::move(executed).value();
              }
              return r;
            },
            /*priority=*/1, &stop);
        slots[launch_pos].state = Slot::State::kLaunched;
        ++inflight;
        ++launch_pos;
      }

      Slot& slot = slots[commit_pos];
      if (slot.state == Slot::State::kSkipped) {
        skipped.push_back(queue[commit_pos]);
        ++outcome.skip_events;
        obs::Inc(metrics_.candidates_skipped);
        ++commit_pos;
        continue;
      }
      // Span recorded from this (single) commit thread only; it times
      // the wait-for-result plus the commit decision.
      obs::ScopedSpan span(trace_.trace, "commit", trace_.parent);
      span.AddAttr("candidate", static_cast<int64_t>(queue[commit_pos]));
      pool_->WaitHelping(slot.future);
      ExecResult result = slot.future.get();
      --inflight;
      const CandidateQuery& cq = candidates[queue[commit_pos]];

      // Re-judge the skip rule now that every earlier result has
      // committed: a speculative execution the sequential scheduler
      // would have skipped is discarded and retried next pass.
      if (should_skip(cq)) {
        // Refuted counts like ok here: real (if early-stopped) work
        // whose result is discarded (same rule as drain()).
        if (result.ran &&
            (result.status.ok() || result.status.IsQueryRefuted())) {
          ++outcome.speculative_executions;
          obs::Inc(metrics_.candidates_speculative);
          span.AddAttr("speculative", int64_t{1});
        }
        skipped.push_back(queue[commit_pos]);
        ++outcome.skip_events;
        obs::Inc(metrics_.candidates_skipped);
        ++commit_pos;
        continue;
      }
      if (!result.ran || !result.status.ok()) {
        if (result.ran && result.status.IsQueryRefuted()) {
          // Mirrors the sequential refuted branch: an executed-and-
          // rejected candidate that stopped early. Committed in rank
          // order here, so budgets and Qfm discovery see the same
          // schedule as with pruning off.
          ++outcome.executions;
          ++outcome.refuted_early;
          obs::Inc(metrics_.candidates_executed);
          obs::Inc(metrics_.validations_refuted_early);
          span.AddAttr("refuted_early", int64_t{1});
          ++commit_pos;
          continue;
        }
        if (!result.ran || result.status.IsCancelled()) {
          // Deadline (or an externally tripped token) hit mid-scan.
          outcome.termination = ExhaustionReason(
              budget, prior_executions + outcome.executions);
          wind_down();
          return outcome;
        }
        stop.Cancel();
        drain();
        return result.status;
      }
      ++outcome.executions;
      obs::Inc(metrics_.candidates_executed);
      const bool accepted = Accepts(result.list, input);
      span.AddAttr("accepted", static_cast<int64_t>(accepted));
      if (accepted) {
        outcome.valid.push_back(ValidQuery{cq.query, outcome.executions});
        if (options_.stop_at_first_valid) {
          // The paper's early termination: the first validated query
          // cancels its outstanding lower-rank siblings.
          stop.Cancel();
          drain();
          return outcome;
        }
      }
      if (smart && qfm == nullptr &&
          result.list.EntityJaccard(input) >= tau) {
        qfm = &cq;
        ranking_confirmed = result.list.ValueJaccard(input, 1e-6) > tau;
      }
      ++commit_pos;
    }

    if (!budget_left()) break;
    queue = std::move(skipped);
  }
  return outcome;
}

StatusOr<ValidationOutcome> Validator::Validate(
    const std::vector<CandidateQuery>& candidates, const TopKList& input,
    const RunBudget* budget, int64_t prior_executions) const {
  // Chaos hook: an injected Cancelled here exercises the wind-down
  // path from the validation boundary; any other code fails the run.
  FaultResult fault = PALEO_FAULT_POINT("validator.validate.begin");
  if (fault.error()) return fault.status;
  const bool parallel =
      pool_ != nullptr && options_.num_threads > 1 && candidates.size() > 1;
  switch (options_.validation_strategy) {
    case ValidationStrategy::kRanked:
      if (parallel) {
        return ParallelValidation(candidates, input, /*smart=*/false,
                                  budget, prior_executions);
      }
      return RankedValidation(candidates, input, budget, prior_executions);
    case ValidationStrategy::kSmart:
      if (parallel) {
        return ParallelValidation(candidates, input, /*smart=*/true,
                                  budget, prior_executions);
      }
      return SmartValidation(candidates, input, budget, prior_executions);
  }
  return Status::Internal("unknown validation strategy");
}

}  // namespace paleo
