#include "paleo/validator.h"

#include <algorithm>

#include "stats/distance.h"

namespace paleo {

bool Validator::Accepts(const TopKList& result, const TopKList& input) const {
  if (options_.match_mode == MatchMode::kExact) {
    return result.InstanceEquals(input, options_.rel_eps);
  }
  // Partial match (Section 3.3): entity-set similarity plus bounded
  // value distance.
  if (result.empty()) return false;
  double entity_sim = result.EntityJaccard(input);
  if (entity_sim < options_.partial_min_entity_jaccard) return false;
  std::vector<double> rv = result.Values();
  std::vector<double> iv = input.Values();
  double value_dist = NormalizedL1(rv, iv);
  return value_dist <= options_.partial_max_value_distance;
}

StatusOr<ValidationOutcome> Validator::RankedValidation(
    const std::vector<CandidateQuery>& candidates,
    const TopKList& input) const {
  ValidationOutcome outcome;
  outcome.passes = 1;
  for (const CandidateQuery& cq : candidates) {
    if (options_.max_query_executions > 0 &&
        outcome.executions >= options_.max_query_executions) {
      break;
    }
    PALEO_ASSIGN_OR_RETURN(TopKList result,
                           executor_->Execute(base_, cq.query));
    ++outcome.executions;
    if (Accepts(result, input)) {
      outcome.valid.push_back(ValidQuery{cq.query, outcome.executions});
      if (options_.stop_at_first_valid) break;
    }
  }
  return outcome;
}

StatusOr<ValidationOutcome> Validator::SmartValidation(
    const std::vector<CandidateQuery>& candidates,
    const TopKList& input) const {
  ValidationOutcome outcome;
  const double tau = options_.smart_jaccard_threshold;

  // Work queue of candidate indices; skipped candidates form the queue
  // of the next pass (Algorithm 3's tail recursion, made iterative).
  std::vector<size_t> queue(candidates.size());
  for (size_t i = 0; i < queue.size(); ++i) queue[i] = i;

  auto budget_left = [&]() {
    return options_.max_query_executions <= 0 ||
           outcome.executions < options_.max_query_executions;
  };

  while (!queue.empty()) {
    ++outcome.passes;
    std::vector<size_t> skipped;
    const CandidateQuery* first_match = nullptr;
    bool ranking_confirmed = false;

    size_t pos = 0;
    // Phase 1: execute in order until some result's entities overlap L
    // beyond tau — that candidate becomes Qfm.
    for (; pos < queue.size() && budget_left(); ++pos) {
      const CandidateQuery& cq = candidates[queue[pos]];
      PALEO_ASSIGN_OR_RETURN(TopKList result,
                             executor_->Execute(base_, cq.query));
      ++outcome.executions;
      if (Accepts(result, input)) {
        outcome.valid.push_back(ValidQuery{cq.query, outcome.executions});
        if (options_.stop_at_first_valid) return outcome;
      }
      if (result.EntityJaccard(input) >= tau) {
        first_match = &cq;
        ranking_confirmed = result.ValueJaccard(input, 1e-6) > tau;
        ++pos;
        break;
      }
    }

    // Phase 2: execute the remainder, skipping candidates unrelated to
    // Qfm.
    for (; pos < queue.size() && budget_left(); ++pos) {
      const CandidateQuery& cq = candidates[queue[pos]];
      if (first_match != nullptr) {
        bool no_predicate_overlap =
            cq.query.predicate.OverlapWith(first_match->query.predicate) ==
            0;
        bool wrong_ranking =
            ranking_confirmed && !cq.query.SameRanking(first_match->query);
        if (no_predicate_overlap || wrong_ranking) {
          skipped.push_back(queue[pos]);
          ++outcome.skip_events;
          continue;
        }
      }
      PALEO_ASSIGN_OR_RETURN(TopKList result,
                             executor_->Execute(base_, cq.query));
      ++outcome.executions;
      if (Accepts(result, input)) {
        outcome.valid.push_back(ValidQuery{cq.query, outcome.executions});
        if (options_.stop_at_first_valid) return outcome;
      }
    }

    if (!budget_left()) break;
    // Retry the skipped candidates; terminates because phase 1 always
    // executes at least the first queued candidate.
    queue = std::move(skipped);
  }
  return outcome;
}

StatusOr<ValidationOutcome> Validator::Validate(
    const std::vector<CandidateQuery>& candidates,
    const TopKList& input) const {
  switch (options_.validation_strategy) {
    case ValidationStrategy::kRanked:
      return RankedValidation(candidates, input);
    case ValidationStrategy::kSmart:
      return SmartValidation(candidates, input);
  }
  return Status::Internal("unknown validation strategy");
}

}  // namespace paleo
