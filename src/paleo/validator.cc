#include "paleo/validator.h"

#include <algorithm>

#include "stats/distance.h"

namespace paleo {

namespace {

/// Maps an exhausted budget to its reason; used after the budget check
/// or the executor reported interruption. Falls back to kCancelled
/// when the budget itself no longer reports exhaustion (only possible
/// with an externally reset token).
TerminationReason ExhaustionReason(const RunBudget* budget,
                                   int64_t executions_used) {
  if (budget == nullptr) return TerminationReason::kCancelled;
  TerminationReason reason = budget->Check(executions_used);
  return reason == TerminationReason::kCompleted
             ? TerminationReason::kCancelled
             : reason;
}

}  // namespace

bool Validator::Accepts(const TopKList& result, const TopKList& input) const {
  if (options_.match_mode == MatchMode::kExact) {
    return result.InstanceEquals(input, options_.rel_eps);
  }
  // Partial match (Section 3.3): entity-set similarity plus bounded
  // value distance.
  if (result.empty()) return false;
  double entity_sim = result.EntityJaccard(input);
  if (entity_sim < options_.partial_min_entity_jaccard) return false;
  std::vector<double> rv = result.Values();
  std::vector<double> iv = input.Values();
  double value_dist = NormalizedL1(rv, iv);
  return value_dist <= options_.partial_max_value_distance;
}

StatusOr<ValidationOutcome> Validator::RankedValidation(
    const std::vector<CandidateQuery>& candidates, const TopKList& input,
    const RunBudget* budget, int64_t prior_executions) const {
  ValidationOutcome outcome;
  outcome.passes = 1;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (options_.max_query_executions > 0 &&
        outcome.executions >= options_.max_query_executions) {
      break;
    }
    if (outcome.termination == TerminationReason::kCompleted &&
        budget != nullptr &&
        budget->Exhausted(prior_executions + outcome.executions)) {
      outcome.termination =
          ExhaustionReason(budget, prior_executions + outcome.executions);
    }
    if (outcome.termination != TerminationReason::kCompleted) {
      // Budget gone: record the rest as unvalidated instead of
      // executing them.
      outcome.unvalidated.push_back(i);
      continue;
    }
    auto result = executor_->Execute(base_, candidates[i].query, budget);
    if (!result.ok()) {
      if (result.status().IsCancelled()) {
        // The deadline passed (or the token tripped) mid-scan; the
        // partial execution does not count.
        outcome.termination = ExhaustionReason(
            budget, prior_executions + outcome.executions);
        outcome.unvalidated.push_back(i);
        continue;
      }
      return result.status();
    }
    ++outcome.executions;
    if (Accepts(*result, input)) {
      outcome.valid.push_back(
          ValidQuery{candidates[i].query, outcome.executions});
      if (options_.stop_at_first_valid) break;
    }
  }
  return outcome;
}

StatusOr<ValidationOutcome> Validator::SmartValidation(
    const std::vector<CandidateQuery>& candidates, const TopKList& input,
    const RunBudget* budget, int64_t prior_executions) const {
  ValidationOutcome outcome;
  const double tau = options_.smart_jaccard_threshold;

  // Work queue of candidate indices; skipped candidates form the queue
  // of the next pass (Algorithm 3's tail recursion, made iterative).
  std::vector<size_t> queue(candidates.size());
  for (size_t i = 0; i < queue.size(); ++i) queue[i] = i;

  auto budget_left = [&]() {
    return options_.max_query_executions <= 0 ||
           outcome.executions < options_.max_query_executions;
  };
  // Governed check: trips the outcome's termination once the RunBudget
  // is exhausted (checked before each execution; cheap otherwise).
  auto governed_left = [&]() {
    if (outcome.termination != TerminationReason::kCompleted) return false;
    if (budget != nullptr &&
        budget->Exhausted(prior_executions + outcome.executions)) {
      outcome.termination =
          ExhaustionReason(budget, prior_executions + outcome.executions);
      return false;
    }
    return true;
  };
  // Executes candidates[idx]; returns false when the run should wind
  // down (budget exhausted mid-scan). Errors propagate via `failure`.
  Status failure = Status::OK();
  auto execute = [&](size_t idx, TopKList* result) {
    auto executed = executor_->Execute(base_, candidates[idx].query, budget);
    if (!executed.ok()) {
      if (executed.status().IsCancelled()) {
        outcome.termination = ExhaustionReason(
            budget, prior_executions + outcome.executions);
      } else {
        failure = executed.status();
      }
      return false;
    }
    ++outcome.executions;
    *result = std::move(executed).value();
    return true;
  };

  while (!queue.empty()) {
    ++outcome.passes;
    std::vector<size_t> skipped;
    const CandidateQuery* first_match = nullptr;
    bool ranking_confirmed = false;

    size_t pos = 0;
    // Phase 1: execute in order until some result's entities overlap L
    // beyond tau — that candidate becomes Qfm.
    for (; pos < queue.size() && budget_left() && governed_left(); ++pos) {
      const CandidateQuery& cq = candidates[queue[pos]];
      TopKList result;
      if (!execute(queue[pos], &result)) break;
      if (Accepts(result, input)) {
        outcome.valid.push_back(ValidQuery{cq.query, outcome.executions});
        if (options_.stop_at_first_valid) return outcome;
      }
      if (result.EntityJaccard(input) >= tau) {
        first_match = &cq;
        ranking_confirmed = result.ValueJaccard(input, 1e-6) > tau;
        ++pos;
        break;
      }
    }
    if (!failure.ok()) return failure;

    // Phase 2: execute the remainder, skipping candidates unrelated to
    // Qfm.
    for (; pos < queue.size() && budget_left() && governed_left(); ++pos) {
      const CandidateQuery& cq = candidates[queue[pos]];
      if (first_match != nullptr) {
        bool no_predicate_overlap =
            cq.query.predicate.OverlapWith(first_match->query.predicate) ==
            0;
        bool wrong_ranking =
            ranking_confirmed && !cq.query.SameRanking(first_match->query);
        if (no_predicate_overlap || wrong_ranking) {
          skipped.push_back(queue[pos]);
          ++outcome.skip_events;
          continue;
        }
      }
      TopKList result;
      if (!execute(queue[pos], &result)) break;
      if (Accepts(result, input)) {
        outcome.valid.push_back(ValidQuery{cq.query, outcome.executions});
        if (options_.stop_at_first_valid) return outcome;
      }
    }
    if (!failure.ok()) return failure;

    if (outcome.termination != TerminationReason::kCompleted) {
      // Wind down: everything not yet executed this pass — the queue
      // tail plus this pass's skips — was never validated. Ascending
      // index order restores suitability order.
      outcome.unvalidated.assign(queue.begin() + static_cast<ptrdiff_t>(pos),
                                 queue.end());
      outcome.unvalidated.insert(outcome.unvalidated.end(), skipped.begin(),
                                 skipped.end());
      std::sort(outcome.unvalidated.begin(), outcome.unvalidated.end());
      return outcome;
    }
    if (!budget_left()) break;
    // Retry the skipped candidates; terminates because phase 1 always
    // executes at least the first queued candidate.
    queue = std::move(skipped);
  }
  return outcome;
}

StatusOr<ValidationOutcome> Validator::Validate(
    const std::vector<CandidateQuery>& candidates, const TopKList& input,
    const RunBudget* budget, int64_t prior_executions) const {
  switch (options_.validation_strategy) {
    case ValidationStrategy::kRanked:
      return RankedValidation(candidates, input, budget, prior_executions);
    case ValidationStrategy::kSmart:
      return SmartValidation(candidates, input, budget, prior_executions);
  }
  return Status::Internal("unknown validation strategy");
}

}  // namespace paleo
