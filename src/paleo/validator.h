// Candidate query validation against the base relation (Sections 3.2
// and 7).
//
// RankedValidation executes candidates in suitability order until a
// valid query appears. SmartValidation is the paper's Algorithm 3: it
// additionally learns from the first execution whose entity overlap
// with L crosses the Jaccard threshold ("first match query" Qfm) and
// skips candidates that share no predicate atoms with Qfm — and, once
// the ranking criterion is confirmed by value overlap, candidates with
// a different criterion. Skipped candidates are retried in later
// passes, so no valid query is ever lost.
//
// Both strategies are resource-governed: with a RunBudget they poll
// the deadline/cancellation before every execution (and the executor
// polls mid-scan), count executions against the budget's cap, and on
// exhaustion wind down gracefully — the outcome keeps every query
// validated so far, records the termination reason, and lists the
// candidates that never got executed so the caller can surface them
// as near misses.
//
// With a ThreadPool and options.num_threads > 1, candidate executions
// fan out across the pool: up to num_threads run concurrently while
// results COMMIT strictly in suitability-rank order, which keeps the
// paper's semantics bit-for-bit — Qfm is still the first committed
// result crossing the Jaccard threshold, skip decisions replay the
// sequential smart schedule (a speculative execution the sequential
// scheduler would have skipped is discarded and retried next pass),
// and the first validated query cancels outstanding lower-rank
// siblings through a CancellationToken wired into their executions.
// The valid set, execution count, skip events, and pass count are
// identical to the sequential run; only wall clock and the
// speculative_executions side counter differ.

#ifndef PALEO_PALEO_VALIDATOR_H_
#define PALEO_PALEO_VALIDATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/run_budget.h"
#include "common/status.h"
#include "engine/executor.h"
#include "obs/trace.h"
#include "paleo/candidate_query.h"
#include "paleo/options.h"
#include "paleo/pipeline_metrics.h"

namespace paleo {

class AtomSelectionCache;
class ThreadPool;
class ThresholdMonitor;

/// \brief One validated (accepted) query.
struct ValidQuery {
  TopKQuery query;
  /// Executions performed up to and including this query's validation.
  int64_t executions_at_discovery = 0;
};

/// \brief Outcome of a validation run.
struct ValidationOutcome {
  std::vector<ValidQuery> valid;
  int64_t executions = 0;
  /// Candidates skipped at least once by the smart strategy.
  int64_t skip_events = 0;
  /// Passes over the candidate list (smart strategy; 1 for ranked).
  int passes = 0;
  /// kCompleted when every candidate was considered; otherwise the
  /// RunBudget ran out and `unvalidated` lists the indices (into the
  /// input candidate vector, ascending = suitability order) that were
  /// never executed.
  TerminationReason termination = TerminationReason::kCompleted;
  std::vector<size_t> unvalidated;
  /// Parallel validation only: executions whose results were discarded
  /// because the rank-order commit decided the sequential scheduler
  /// would have skipped (or never reached) them. Not counted in
  /// `executions`.
  int64_t speculative_executions = 0;
  /// Executions the threshold monitor aborted mid-scan (counted in
  /// `executions` too: a refuted candidate is an executed-and-rejected
  /// candidate that happened to stop early).
  int64_t refuted_early = 0;
  bool found() const { return !valid.empty(); }
};

/// \brief Executes candidate queries against R and accepts matches.
class Validator {
 public:
  /// `pool` (optional, not owned) enables parallel validation when
  /// options.num_threads > 1; nullptr keeps every path sequential.
  ///
  /// `metrics` (nullable handles) and `trace` (null trace = off) report
  /// per-candidate outcomes. Sequential validation records one
  /// "execute" span per execution; parallel validation records one
  /// "commit" span per committed candidate, from the single-threaded
  /// commit loop only (a Trace is not thread-safe, so pool workers
  /// never touch it).
  /// `cache` (optional, not owned, internally synchronized) is the
  /// run's shared AtomSelectionCache: every candidate execution —
  /// sequential or across pool workers — passes it to the executor so
  /// candidates sharing predicate atoms reuse each other's selection
  /// bitmaps instead of rescanning R.
  Validator(const Table& base, Executor* executor,
            const PaleoOptions& options, ThreadPool* pool = nullptr,
            PipelineMetrics metrics = {}, obs::TraceContext trace = {},
            AtomSelectionCache* cache = nullptr)
      : base_(base),
        executor_(executor),
        options_(options),
        pool_(pool),
        metrics_(metrics),
        trace_(trace),
        cache_(cache) {}

  /// Exact instance-equivalence or partial-match acceptance, per
  /// options.match_mode.
  bool Accepts(const TopKList& result, const TopKList& input) const;

  /// Sequential execution in the given (suitability) order.
  /// `prior_executions` is the pipeline-wide execution count before
  /// this call, charged against the budget's execution cap.
  StatusOr<ValidationOutcome> RankedValidation(
      const std::vector<CandidateQuery>& candidates, const TopKList& input,
      const RunBudget* budget = nullptr,
      int64_t prior_executions = 0) const;

  /// Algorithm 3.
  StatusOr<ValidationOutcome> SmartValidation(
      const std::vector<CandidateQuery>& candidates, const TopKList& input,
      const RunBudget* budget = nullptr,
      int64_t prior_executions = 0) const;

  /// Dispatches on options.validation_strategy, and onto the parallel
  /// rank-order-commit implementation when a pool is attached and
  /// options.num_threads > 1.
  StatusOr<ValidationOutcome> Validate(
      const std::vector<CandidateQuery>& candidates, const TopKList& input,
      const RunBudget* budget = nullptr,
      int64_t prior_executions = 0) const;

 private:
  /// Windowed parallel validation; `smart` replays Algorithm 3's skip
  /// schedule, false gives parallel ranked validation.
  StatusOr<ValidationOutcome> ParallelValidation(
      const std::vector<CandidateQuery>& candidates, const TopKList& input,
      bool smart, const RunBudget* budget, int64_t prior_executions) const;

  /// The run's ThresholdMonitor (engine/threshold_monitor.h), or
  /// nullptr when pruning is off, the match mode is not exact (a
  /// refuted scan has no result list to partial-score), there are no
  /// candidates, or the monitor deactivated itself (unsorted /
  /// unresolvable input). All candidates of one run share one sort
  /// order (BuildCandidateQueries stamps it), so one monitor serves
  /// every execution; the executor re-checks applicability per query.
  std::unique_ptr<ThresholdMonitor> MakeMonitor(
      const std::vector<CandidateQuery>& candidates,
      const TopKList& input) const;

  const Table& base_;
  Executor* executor_;
  const PaleoOptions& options_;
  ThreadPool* pool_ = nullptr;
  PipelineMetrics metrics_;
  obs::TraceContext trace_;
  AtomSelectionCache* cache_ = nullptr;
};

}  // namespace paleo

#endif  // PALEO_PALEO_VALIDATOR_H_
