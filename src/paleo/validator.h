// Candidate query validation against the base relation (Sections 3.2
// and 7).
//
// RankedValidation executes candidates in suitability order until a
// valid query appears. SmartValidation is the paper's Algorithm 3: it
// additionally learns from the first execution whose entity overlap
// with L crosses the Jaccard threshold ("first match query" Qfm) and
// skips candidates that share no predicate atoms with Qfm — and, once
// the ranking criterion is confirmed by value overlap, candidates with
// a different criterion. Skipped candidates are retried in later
// passes, so no valid query is ever lost.
//
// Both strategies are resource-governed: with a RunBudget they poll
// the deadline/cancellation before every execution (and the executor
// polls mid-scan), count executions against the budget's cap, and on
// exhaustion wind down gracefully — the outcome keeps every query
// validated so far, records the termination reason, and lists the
// candidates that never got executed so the caller can surface them
// as near misses.

#ifndef PALEO_PALEO_VALIDATOR_H_
#define PALEO_PALEO_VALIDATOR_H_

#include <cstdint>
#include <vector>

#include "common/run_budget.h"
#include "common/status.h"
#include "engine/executor.h"
#include "paleo/candidate_query.h"
#include "paleo/options.h"

namespace paleo {

/// \brief One validated (accepted) query.
struct ValidQuery {
  TopKQuery query;
  /// Executions performed up to and including this query's validation.
  int64_t executions_at_discovery = 0;
};

/// \brief Outcome of a validation run.
struct ValidationOutcome {
  std::vector<ValidQuery> valid;
  int64_t executions = 0;
  /// Candidates skipped at least once by the smart strategy.
  int64_t skip_events = 0;
  /// Passes over the candidate list (smart strategy; 1 for ranked).
  int passes = 0;
  /// kCompleted when every candidate was considered; otherwise the
  /// RunBudget ran out and `unvalidated` lists the indices (into the
  /// input candidate vector, ascending = suitability order) that were
  /// never executed.
  TerminationReason termination = TerminationReason::kCompleted;
  std::vector<size_t> unvalidated;
  bool found() const { return !valid.empty(); }
};

/// \brief Executes candidate queries against R and accepts matches.
class Validator {
 public:
  Validator(const Table& base, Executor* executor,
            const PaleoOptions& options)
      : base_(base), executor_(executor), options_(options) {}

  /// Exact instance-equivalence or partial-match acceptance, per
  /// options.match_mode.
  bool Accepts(const TopKList& result, const TopKList& input) const;

  /// Sequential execution in the given (suitability) order.
  /// `prior_executions` is the pipeline-wide execution count before
  /// this call, charged against the budget's execution cap.
  StatusOr<ValidationOutcome> RankedValidation(
      const std::vector<CandidateQuery>& candidates, const TopKList& input,
      const RunBudget* budget = nullptr,
      int64_t prior_executions = 0) const;

  /// Algorithm 3.
  StatusOr<ValidationOutcome> SmartValidation(
      const std::vector<CandidateQuery>& candidates, const TopKList& input,
      const RunBudget* budget = nullptr,
      int64_t prior_executions = 0) const;

  /// Dispatches on options.validation_strategy.
  StatusOr<ValidationOutcome> Validate(
      const std::vector<CandidateQuery>& candidates, const TopKList& input,
      const RunBudget* budget = nullptr,
      int64_t prior_executions = 0) const;

 private:
  const Table& base_;
  Executor* executor_;
  const PaleoOptions& options_;
};

}  // namespace paleo

#endif  // PALEO_PALEO_VALIDATOR_H_
