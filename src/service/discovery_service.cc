#include "service/discovery_service.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "common/fault_points.h"
#include "common/random.h"

namespace paleo {

bool IsRetryableTransient(const Status& status) {
  // Transient resource conditions only: an I/O hiccup or a momentary
  // resource shortage can be outlived by a later attempt. kCancelled
  // and kDeadlineExceeded are budget wind-downs (retrying would fight
  // the client), and everything else is a deterministic hard error.
  return status.code() == StatusCode::kIoError ||
         status.code() == StatusCode::kResourceExhausted;
}

DiscoveryService::DiscoveryService(std::shared_ptr<TableCatalog> catalog,
                                   DiscoveryServiceOptions service_options)
    : catalog_(std::move(catalog)),
      paleo_options_(catalog_->options()),
      service_options_(service_options),
      queue_(service_options.queue_capacity),
      service_metrics_(BindServiceMetrics()),
      pool_(service_options.num_workers > 0
                ? service_options.num_workers
                : ThreadPool::DefaultNumThreads()) {
  // Fault injections anywhere in the process are mirrored into this
  // service's registry while it is alive (detached in the destructor).
  FaultPoints::AttachMetric(service_metrics_.faults_injected);
  if (service_options_.watchdog_stall_ms > 0) {
    watchdog_ = std::thread([this]() { WatchdogLoop(); });
  }
}

DiscoveryService::ServiceMetrics DiscoveryService::BindServiceMetrics() {
  ServiceMetrics m;
  m.submitted = metrics_.FindOrCreateCounter(
      "paleo_service_submitted_total", "Admission attempts.");
  m.shed = metrics_.FindOrCreateCounter(
      "paleo_service_shed_total",
      "Requests rejected at admission (queue full).");
  m.done = metrics_.FindOrCreateCounter(
      "paleo_service_sessions_total", "Terminal sessions, by state.",
      "state=\"done\"");
  m.failed = metrics_.FindOrCreateCounter(
      "paleo_service_sessions_total", "Terminal sessions, by state.",
      "state=\"failed\"");
  m.cancelled = metrics_.FindOrCreateCounter(
      "paleo_service_sessions_total", "Terminal sessions, by state.",
      "state=\"cancelled\"");
  m.expired = metrics_.FindOrCreateCounter(
      "paleo_service_sessions_total", "Terminal sessions, by state.",
      "state=\"expired\"");
  m.queue_depth = metrics_.FindOrCreateGauge(
      "paleo_service_queue_depth",
      "Sessions admitted and not yet started.");
  m.queue_wait_ms = metrics_.FindOrCreateHistogram(
      "paleo_service_queue_wait_ms",
      "Milliseconds between admission and dispatch.");
  m.run_ms = metrics_.FindOrCreateHistogram(
      "paleo_service_run_ms",
      "Milliseconds a dispatched session spent running.");
  m.retries = metrics_.FindOrCreateCounter(
      "paleo_retries_total",
      "Run attempts re-dispatched after a retryable transient failure.");
  m.watchdog_kicks = metrics_.FindOrCreateCounter(
      "paleo_watchdog_kicks_total",
      "Wedged sessions cancelled by the stall watchdog.");
  m.faults_injected = metrics_.FindOrCreateCounter(
      "paleo_faults_injected_total",
      "Faults fired by armed fault points (tests/chaos only; 0 in "
      "production).");
  return m;
}

DiscoveryService::~DiscoveryService() {
  // Stop mirroring fault injections into a registry that is about to
  // die, and retire the watchdog before sessions start tearing down.
  FaultPoints::DetachMetric(service_metrics_.faults_injected);
  if (watchdog_.joinable()) {
    {
      MutexLock lock(watchdog_mutex_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.NotifyAll();
    watchdog_.join();
  }
  // The shutdown flag is published under live_mutex_ so that it orders
  // against Submit's insertion into live_: a submitter that wins the
  // race into live_ is cancelled by CancelAll below, and one that
  // loses observes the flag and cancels its own session — either way
  // no session admitted concurrently with teardown escapes
  // cancellation (the documented destruction contract).
  {
    MutexLock lock(live_mutex_);
    // relaxed: live_mutex_ provides the ordering the admission race
    // needs (see the contract above); the flag itself is advisory for
    // the lock-free early-out in Submit.
    shutdown_.store(true, std::memory_order_relaxed);
  }
  // Trip every live session so queued ones finalize without running
  // and mid-flight ones wind down at their next budget poll; then let
  // the pool (destroyed first, as the last member) drain the dispatch
  // jobs that assign the terminal states.
  CancelAll();
  queue_.Close();
}

StatusOr<std::shared_ptr<Session>> DiscoveryService::Submit(
    TopKList input) {
  ServiceRequest request;
  request.input = std::move(input);
  return Submit(std::move(request));
}

StatusOr<std::shared_ptr<Session>> DiscoveryService::Submit(
    TopKList input, PaleoOptions request_options) {
  ServiceRequest request;
  request.input = std::move(input);
  request.options = std::move(request_options);
  return Submit(std::move(request));
}

StatusOr<std::shared_ptr<Session>> DiscoveryService::Submit(
    ServiceRequest request) {
  // relaxed: submitted_ is a pure tally; the shutdown_ early-out is
  // advisory — the authoritative re-check happens under live_mutex_
  // after admission, below.
  submitted_.fetch_add(1, std::memory_order_relaxed);
  obs::Inc(service_metrics_.submitted);
  if (shutdown_.load(std::memory_order_relaxed)) {
    return Status::Cancelled("discovery service is shutting down");
  }
  // Chaos hook: an injected error here models admission-side failures
  // (queue allocation, bookkeeping I/O) before a session exists.
  FaultResult fault = PALEO_FAULT_POINT("service.submit.enqueue");
  if (fault.error()) return fault.status;
  PaleoOptions effective_options =
      request.options.has_value() ? *std::move(request.options)
                                  : paleo_options_;
  request.options.reset();
  // The deadline moves out of the pipeline options and into the
  // session budget, anchored at admission: a request that waits in the
  // queue burns its own deadline, not the worker's time.
  int64_t deadline_ms = effective_options.deadline_ms > 0
                            ? effective_options.deadline_ms
                            : service_options_.default_deadline_ms;
  effective_options.deadline_ms = 0;
  // Pin the catalog's current snapshot for this session's lifetime:
  // its run sees exactly this table version, however many ingest
  // batches publish in the meantime.
  auto session =
      // relaxed: id ticket — concurrent submits need distinct ids only.
      std::make_shared<Session>(next_id_.fetch_add(1, std::memory_order_relaxed),
                                std::move(request),
                                std::move(effective_options),
                                catalog_->Current());
  if (deadline_ms > 0) {
    session->mutable_budget()->SetDeadlineAfterMillis(deadline_ms);
  }
  if (!queue_.TryPush(session)) {
    // relaxed: pure tally.
    shed_.fetch_add(1, std::memory_order_relaxed);
    obs::Inc(service_metrics_.shed);
    return Status::ResourceExhausted(
        "admission queue full (" + std::to_string(queue_.capacity()) +
        " requests pending); retry-after-ms=" +
        std::to_string(RetryAfterHintMs()));
  }
  obs::Add(service_metrics_.queue_depth, 1);
  {
    MutexLock lock(live_mutex_);
    live_.push_back(session);
    // relaxed: live_mutex_ (held here and in ~DiscoveryService) orders
    // this load against the teardown store; see the destructor.
    if (shutdown_.load(std::memory_order_relaxed)) {
      // Teardown already swept live_ (or is about to close the queue):
      // this session would otherwise be dispatched un-cancelled while
      // the service is being destroyed. See ~DiscoveryService.
      session->Cancel();
    }
  }
  // One dispatch job per admitted session, FIFO at priority 0 (below
  // validation subtasks, so running requests finish first).
  pool_.Submit([this]() { Dispatch(); }, /*priority=*/0);
  return session;
}

void DiscoveryService::Dispatch() {
  std::shared_ptr<Session> session = queue_.Pop();
  if (session == nullptr) return;
  obs::Add(service_metrics_.queue_depth, -1);

  // The counter for the session's terminal state is published BEFORE
  // Finish* makes that state visible: a client returning from Wait()
  // must always find itself already counted in stats().
  TerminationReason pre_check = session->budget().Check(0);
  if (pre_check != TerminationReason::kCompleted) {
    // Cancelled or expired while still queued: terminal without a run.
    CountTerminal(Session::TerminalStateForUnrun(pre_check));
    session->FinishWithoutRunning(pre_check);
  } else {
    session->MarkRunning();
    obs::Observe(service_metrics_.queue_wait_ms, session->queue_wait_ms());
    RunRequest run_request;
    run_request.input = &session->input();
    run_request.keep_candidates = session->keep_candidates();
    run_request.budget = &session->budget();
    run_request.pool = &pool_;
    run_request.options_override = &session->options();
    run_request.metrics = &metrics_;
    run_request.collect_trace = session->collect_trace();
    const auto run_started = std::chrono::steady_clock::now();
    auto attempt_run = [&]() -> StatusOr<ReverseEngineerReport> {
      // Chaos hook: an injected error here models a run attempt lost
      // to infrastructure (not pipeline logic) and exercises the retry
      // path below; injected delays wedge the worker for the watchdog.
      FaultResult fault = PALEO_FAULT_POINT("service.dispatch.run");
      if (fault.error()) return fault.status;
      return session->snapshot().engine().Run(run_request);
    };
    auto result = attempt_run();
    if (!result.ok() && IsRetryableTransient(result.status()) &&
        service_options_.max_retries > 0) {
      // Bounded exponential backoff with seeded jitter. The budget is
      // re-checked before every attempt so cancellation and deadlines
      // always beat another retry; jitter is forked per session id to
      // keep replays deterministic while decorrelating workers.
      Rng jitter_rng(service_options_.seed ^
                     (static_cast<uint64_t>(session->id()) *
                      0x9E3779B97F4A7C15ULL));
      int attempt = 0;
      while (!result.ok() && IsRetryableTransient(result.status()) &&
             attempt < service_options_.max_retries &&
             session->budget().Check(0) == TerminationReason::kCompleted) {
        ++attempt;
        // relaxed: pure tally.
        retries_.fetch_add(1, std::memory_order_relaxed);
        obs::Inc(service_metrics_.retries);
        int64_t base = std::max<int64_t>(service_options_.retry_backoff_ms, 1);
        for (int doubling = 1;
             doubling < attempt &&
             base < service_options_.retry_backoff_max_ms;
             ++doubling) {
          base *= 2;
        }
        base = std::min(base,
                        std::max<int64_t>(service_options_.retry_backoff_max_ms,
                                          1));
        const int64_t sleep_ms =
            base / 2 + jitter_rng.UniformInt(0, base - base / 2);
        std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
        result = attempt_run();
      }
    }
    // Like CountTerminal, the latency sample is published before
    // Finish makes the terminal state visible (a client returning
    // from Wait() always finds it recorded), so it is measured here
    // rather than read back from the session.
    obs::Observe(service_metrics_.run_ms,
                 std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - run_started)
                     .count());
    CountTerminal(Session::TerminalStateFor(result));
    session->Finish(std::move(result));
  }

  // Drop this session (and any other already-collected ones) from the
  // live list; CancelAll only needs sessions that can still change.
  MutexLock lock(live_mutex_);
  live_.erase(std::remove_if(live_.begin(), live_.end(),
                             [&](const std::weak_ptr<Session>& weak) {
                               auto locked = weak.lock();
                               return locked == nullptr ||
                                      locked == session;
                             }),
              live_.end());
}

// relaxed: terminal-state counters are independent tallies sampled by
// stats(); nothing orders other memory through them.
void DiscoveryService::CountTerminal(SessionState state) {
  switch (state) {
    case SessionState::kDone:
      done_.fetch_add(1, std::memory_order_relaxed);
      obs::Inc(service_metrics_.done);
      break;
    case SessionState::kFailed:
      failed_.fetch_add(1, std::memory_order_relaxed);
      obs::Inc(service_metrics_.failed);
      break;
    case SessionState::kCancelled:
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      obs::Inc(service_metrics_.cancelled);
      break;
    case SessionState::kExpired:
      expired_.fetch_add(1, std::memory_order_relaxed);
      obs::Inc(service_metrics_.expired);
      break;
    default:
      break;  // unreachable: callers pass terminal states only
  }
}

void DiscoveryService::WatchdogLoop() {
  const auto poll = std::chrono::milliseconds(
      std::max<int64_t>(service_options_.watchdog_poll_ms, 1));
  while (true) {
    {
      MutexLock lock(watchdog_mutex_);
      if (watchdog_stop_) return;
      watchdog_cv_.WaitUntil(watchdog_mutex_,
                             std::chrono::steady_clock::now() + poll);
      if (watchdog_stop_) return;
    }
    // Snapshot under the lock, kick outside it: Cancel() is cheap but
    // there is no reason to hold live_mutex_ across session calls.
    std::vector<std::shared_ptr<Session>> running;
    {
      MutexLock lock(live_mutex_);
      running.reserve(live_.size());
      for (const std::weak_ptr<Session>& weak : live_) {
        if (auto session = weak.lock()) running.push_back(std::move(session));
      }
    }
    for (const std::shared_ptr<Session>& session : running) {
      // Already winding down (cancelled or expired): the dispatch path
      // owns its terminal state; kicking again would double-count.
      if (session->budget().Check(0) != TerminationReason::kCompleted) {
        continue;
      }
      if (session->RunningForMillis() >
          static_cast<double>(service_options_.watchdog_stall_ms)) {
        session->Cancel();
        // relaxed: pure tally.
        watchdog_kicks_.fetch_add(1, std::memory_order_relaxed);
        obs::Inc(service_metrics_.watchdog_kicks);
      }
    }
  }
}

int64_t DiscoveryService::RetryAfterHintMs() const {
  // Mean observed run latency (a prior of 25ms before any sample)
  // times the backlog a newly admitted request would sit behind,
  // spread over the workers draining it.
  double avg_run_ms = 25.0;
  if (service_metrics_.run_ms != nullptr &&
      service_metrics_.run_ms->count() > 0) {
    avg_run_ms = service_metrics_.run_ms->sum_ms() /
                 static_cast<double>(service_metrics_.run_ms->count());
  }
  const double backlog = static_cast<double>(queue_.size()) + 1.0;
  const double workers =
      static_cast<double>(std::max(pool_.num_threads(), 1));
  const double hint = avg_run_ms * backlog / workers;
  return std::clamp(static_cast<int64_t>(hint), int64_t{1}, int64_t{60000});
}

void DiscoveryService::CancelAll() {
  MutexLock lock(live_mutex_);
  for (const std::weak_ptr<Session>& weak : live_) {
    if (auto session = weak.lock()) session->Cancel();
  }
}

DiscoveryServiceStats DiscoveryService::stats() const {
  // relaxed: point-in-time sample of independent tallies; cross-counter
  // tearing is inherent to sampling and accepted.
  DiscoveryServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.done = done_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.watchdog_kicks = watchdog_kicks_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace paleo
