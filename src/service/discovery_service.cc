#include "service/discovery_service.h"

#include <algorithm>
#include <string>
#include <utility>

namespace paleo {

DiscoveryService::DiscoveryService(const Table* base,
                                   PaleoOptions paleo_options,
                                   DiscoveryServiceOptions service_options)
    : paleo_options_(std::move(paleo_options)),
      service_options_(service_options),
      paleo_(base, paleo_options_),
      queue_(service_options.queue_capacity),
      service_metrics_(BindServiceMetrics()),
      pool_(service_options.num_workers > 0
                ? service_options.num_workers
                : ThreadPool::DefaultNumThreads()) {}

DiscoveryService::ServiceMetrics DiscoveryService::BindServiceMetrics() {
  ServiceMetrics m;
  m.submitted = metrics_.FindOrCreateCounter(
      "paleo_service_submitted_total", "Admission attempts.");
  m.shed = metrics_.FindOrCreateCounter(
      "paleo_service_shed_total",
      "Requests rejected at admission (queue full).");
  m.done = metrics_.FindOrCreateCounter(
      "paleo_service_sessions_total", "Terminal sessions, by state.",
      "state=\"done\"");
  m.failed = metrics_.FindOrCreateCounter(
      "paleo_service_sessions_total", "Terminal sessions, by state.",
      "state=\"failed\"");
  m.cancelled = metrics_.FindOrCreateCounter(
      "paleo_service_sessions_total", "Terminal sessions, by state.",
      "state=\"cancelled\"");
  m.expired = metrics_.FindOrCreateCounter(
      "paleo_service_sessions_total", "Terminal sessions, by state.",
      "state=\"expired\"");
  m.queue_depth = metrics_.FindOrCreateGauge(
      "paleo_service_queue_depth",
      "Sessions admitted and not yet started.");
  m.queue_wait_ms = metrics_.FindOrCreateHistogram(
      "paleo_service_queue_wait_ms",
      "Milliseconds between admission and dispatch.");
  m.run_ms = metrics_.FindOrCreateHistogram(
      "paleo_service_run_ms",
      "Milliseconds a dispatched session spent running.");
  return m;
}

DiscoveryService::~DiscoveryService() {
  // The shutdown flag is published under live_mutex_ so that it orders
  // against Submit's insertion into live_: a submitter that wins the
  // race into live_ is cancelled by CancelAll below, and one that
  // loses observes the flag and cancels its own session — either way
  // no session admitted concurrently with teardown escapes
  // cancellation (the documented destruction contract).
  {
    MutexLock lock(live_mutex_);
    shutdown_.store(true, std::memory_order_relaxed);
  }
  // Trip every live session so queued ones finalize without running
  // and mid-flight ones wind down at their next budget poll; then let
  // the pool (destroyed first, as the last member) drain the dispatch
  // jobs that assign the terminal states.
  CancelAll();
  queue_.Close();
}

StatusOr<std::shared_ptr<Session>> DiscoveryService::Submit(
    TopKList input) {
  ServiceRequest request;
  request.input = std::move(input);
  return Submit(std::move(request));
}

StatusOr<std::shared_ptr<Session>> DiscoveryService::Submit(
    TopKList input, PaleoOptions request_options) {
  ServiceRequest request;
  request.input = std::move(input);
  request.options = std::move(request_options);
  return Submit(std::move(request));
}

StatusOr<std::shared_ptr<Session>> DiscoveryService::Submit(
    ServiceRequest request) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  obs::Inc(service_metrics_.submitted);
  if (shutdown_.load(std::memory_order_relaxed)) {
    return Status::Cancelled("discovery service is shutting down");
  }
  PaleoOptions effective_options =
      request.options.has_value() ? *std::move(request.options)
                                  : paleo_options_;
  request.options.reset();
  // The deadline moves out of the pipeline options and into the
  // session budget, anchored at admission: a request that waits in the
  // queue burns its own deadline, not the worker's time.
  int64_t deadline_ms = effective_options.deadline_ms > 0
                            ? effective_options.deadline_ms
                            : service_options_.default_deadline_ms;
  effective_options.deadline_ms = 0;
  auto session =
      std::make_shared<Session>(next_id_.fetch_add(1, std::memory_order_relaxed),
                                std::move(request),
                                std::move(effective_options));
  if (deadline_ms > 0) {
    session->mutable_budget()->SetDeadlineAfterMillis(deadline_ms);
  }
  if (!queue_.TryPush(session)) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    obs::Inc(service_metrics_.shed);
    return Status::ResourceExhausted(
        "admission queue full (" + std::to_string(queue_.capacity()) +
        " requests pending); retry after backoff");
  }
  obs::Add(service_metrics_.queue_depth, 1);
  {
    MutexLock lock(live_mutex_);
    live_.push_back(session);
    if (shutdown_.load(std::memory_order_relaxed)) {
      // Teardown already swept live_ (or is about to close the queue):
      // this session would otherwise be dispatched un-cancelled while
      // the service is being destroyed. See ~DiscoveryService.
      session->Cancel();
    }
  }
  // One dispatch job per admitted session, FIFO at priority 0 (below
  // validation subtasks, so running requests finish first).
  pool_.Submit([this]() { Dispatch(); }, /*priority=*/0);
  return session;
}

void DiscoveryService::Dispatch() {
  std::shared_ptr<Session> session = queue_.Pop();
  if (session == nullptr) return;
  obs::Add(service_metrics_.queue_depth, -1);

  // The counter for the session's terminal state is published BEFORE
  // Finish* makes that state visible: a client returning from Wait()
  // must always find itself already counted in stats().
  TerminationReason pre_check = session->budget().Check(0);
  if (pre_check != TerminationReason::kCompleted) {
    // Cancelled or expired while still queued: terminal without a run.
    CountTerminal(Session::TerminalStateForUnrun(pre_check));
    session->FinishWithoutRunning(pre_check);
  } else {
    session->MarkRunning();
    obs::Observe(service_metrics_.queue_wait_ms, session->queue_wait_ms());
    RunRequest run_request;
    run_request.input = &session->input();
    run_request.keep_candidates = session->keep_candidates();
    run_request.budget = &session->budget();
    run_request.pool = &pool_;
    run_request.options_override = &session->options();
    run_request.metrics = &metrics_;
    run_request.collect_trace = session->collect_trace();
    const auto run_started = std::chrono::steady_clock::now();
    auto result = paleo_.Run(run_request);
    // Like CountTerminal, the latency sample is published before
    // Finish makes the terminal state visible (a client returning
    // from Wait() always finds it recorded), so it is measured here
    // rather than read back from the session.
    obs::Observe(service_metrics_.run_ms,
                 std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - run_started)
                     .count());
    CountTerminal(Session::TerminalStateFor(result));
    session->Finish(std::move(result));
  }

  // Drop this session (and any other already-collected ones) from the
  // live list; CancelAll only needs sessions that can still change.
  MutexLock lock(live_mutex_);
  live_.erase(std::remove_if(live_.begin(), live_.end(),
                             [&](const std::weak_ptr<Session>& weak) {
                               auto locked = weak.lock();
                               return locked == nullptr ||
                                      locked == session;
                             }),
              live_.end());
}

void DiscoveryService::CountTerminal(SessionState state) {
  switch (state) {
    case SessionState::kDone:
      done_.fetch_add(1, std::memory_order_relaxed);
      obs::Inc(service_metrics_.done);
      break;
    case SessionState::kFailed:
      failed_.fetch_add(1, std::memory_order_relaxed);
      obs::Inc(service_metrics_.failed);
      break;
    case SessionState::kCancelled:
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      obs::Inc(service_metrics_.cancelled);
      break;
    case SessionState::kExpired:
      expired_.fetch_add(1, std::memory_order_relaxed);
      obs::Inc(service_metrics_.expired);
      break;
    default:
      break;  // unreachable: callers pass terminal states only
  }
}

void DiscoveryService::CancelAll() {
  MutexLock lock(live_mutex_);
  for (const std::weak_ptr<Session>& weak : live_) {
    if (auto session = weak.lock()) session->Cancel();
  }
}

DiscoveryServiceStats DiscoveryService::stats() const {
  DiscoveryServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.done = done_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace paleo
