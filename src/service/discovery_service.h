// Concurrent discovery service: PALEO as a servable engine.
//
// One DiscoveryService serves a live table through a TableCatalog: the
// catalog owns the chain of immutable snapshots (each one a frozen
// table version plus the structures PALEO computes upfront — entity
// B+ tree, statistics catalog, dimension indexes — and a ready
// engine), and every admission pins the snapshot current at Submit()
// time. A pinned session runs against exactly that version for its
// whole lifetime, byte-identical to a standalone run on a frozen
// copy, no matter how many ingest batches publish while it is queued
// or running. The service adds a work-stealing ThreadPool that runs
// both the admitted sessions and their intra-request parallel
// validation subtasks.
//
// Request lifecycle:
//   Submit() -> admission control: the bounded RequestQueue accepts
//     the session or sheds the request with Status::ResourceExhausted.
//     The per-request deadline is anchored HERE, so time spent queued
//     burns the same budget as time spent running; the catalog's
//     current snapshot is pinned HERE, so a session's view of the
//     table is fixed at admission.
//   dispatch -> a pool worker pops the oldest session; if its budget
//     is already exhausted (cancelled or expired while queued) the
//     session is finalized without running, otherwise the worker runs
//     Paleo::Run(RunRequest) governed by the session budget, with the
//     service's MetricsRegistry and (when requested) a trace attached.
//   Wait/Poll/Cancel -> on the Session handle, from any thread.
//
// Scheduling: session dispatch runs at pool priority 0, validation
// subtasks at priority 1, so admitted requests finish before new ones
// start and a session blocked on its own subtasks lends its thread to
// the pool (WaitHelping) — the scheduler cannot deadlock even with
// every worker occupied by sessions.

#ifndef PALEO_SERVICE_DISCOVERY_SERVICE_H_
#define PALEO_SERVICE_DISCOVERY_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "catalog/table_catalog.h"
#include "common/mutex.h"
#include "common/run_budget.h"
#include "common/thread_annotations.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/topk_list.h"
#include "obs/metrics.h"
#include "paleo/options.h"
#include "paleo/paleo.h"
#include "service/request_queue.h"
#include "service/session.h"

namespace paleo {

/// \brief Serving-side knobs, distinct from the pipeline's
/// PaleoOptions.
struct DiscoveryServiceOptions {
  /// Worker threads; requests run concurrently up to this many.
  /// 0 = hardware concurrency.
  int num_workers = 0;
  /// Admitted-but-unstarted sessions the queue holds before Submit
  /// sheds with ResourceExhausted.
  size_t queue_capacity = 64;
  /// Deadline applied to requests whose options leave deadline_ms at
  /// 0; 0 = unlimited. Anchored at admission.
  int64_t default_deadline_ms = 0;

  /// Re-run attempts (beyond the first) when a run fails with a
  /// retryable transient status (see IsRetryableTransient). Each retry
  /// re-checks the session budget first, so a deadline or cancellation
  /// always wins over another attempt.
  int max_retries = 2;
  /// Exponential backoff between attempts: attempt n sleeps roughly
  /// base << (n-1) ms, capped at retry_backoff_max_ms, with seeded
  /// jitter in [base/2, base] to decorrelate colliding retries.
  int64_t retry_backoff_ms = 5;
  int64_t retry_backoff_max_ms = 200;
  /// Seeds the per-session backoff jitter (forked by session id, so
  /// retries are replayable per request).
  uint64_t seed = 4242;

  /// Watchdog: a session running longer than this is considered
  /// wedged and its cancellation token is tripped, converting it to
  /// the normal graceful TerminationReason wind-down. 0 disables the
  /// watchdog (the default: healthy runs are bounded by deadlines).
  int64_t watchdog_stall_ms = 0;
  /// How often the watchdog sweeps live sessions.
  int64_t watchdog_poll_ms = 50;
};

/// \brief True for Status codes worth re-running a request for:
/// transient resource conditions (kIoError, kResourceExhausted) that a
/// later attempt can outlive. Hard errors (invalid input, internal
/// bugs) and budget wind-downs (kCancelled) are never retried.
bool IsRetryableTransient(const Status& status);

/// \brief Aggregate counters; a consistent-enough snapshot for
/// monitoring (individual counters are exact, cross-counter skew is
/// possible mid-flight).
struct DiscoveryServiceStats {
  int64_t submitted = 0;  // admission attempts
  int64_t shed = 0;       // rejected at admission (queue full)
  int64_t done = 0;
  int64_t failed = 0;
  int64_t cancelled = 0;
  int64_t expired = 0;
  int64_t retries = 0;         // transient-failure re-runs
  int64_t watchdog_kicks = 0;  // wedged sessions cancelled by watchdog
  int64_t Finished() const { return done + failed + cancelled + expired; }
};

/// \brief Multi-tenant front end over one live TableCatalog.
///
/// Thread-safe: Submit and the session handles may be used from any
/// number of client threads, concurrently with ingestion into the
/// catalog. Destruction cancels queued and running sessions, drains
/// the pool, and leaves every session in a terminal state (no Wait()
/// ever hangs across shutdown).
class DiscoveryService {
 public:
  /// Serves the catalog's snapshots; per-request pipeline defaults are
  /// the catalog's engine options. The catalog is shared (ingestion
  /// typically holds the other reference) and must stay alive for the
  /// service's lifetime — the shared_ptr here guarantees it.
  explicit DiscoveryService(std::shared_ptr<TableCatalog> catalog,
                            DiscoveryServiceOptions service_options = {});
  ~DiscoveryService();

  DiscoveryService(const DiscoveryService&) = delete;
  DiscoveryService& operator=(const DiscoveryService&) = delete;

  /// The canonical admission path: a ServiceRequest job (input,
  /// optional per-request options, keep_candidates, collect_trace).
  /// Sheds with ResourceExhausted when the admission queue is full,
  /// Cancelled after shutdown began.
  StatusOr<std::shared_ptr<Session>> Submit(ServiceRequest request);

  /// DEPRECATED: thin wrapper; admits `input` with the service's
  /// default pipeline options. Prefer the ServiceRequest form.
  StatusOr<std::shared_ptr<Session>> Submit(TopKList input);

  /// DEPRECATED: thin wrapper with per-request pipeline options
  /// (deadline_ms, num_threads, match mode, ... — the indexes stay
  /// the service's). Prefer the ServiceRequest form.
  StatusOr<std::shared_ptr<Session>> Submit(TopKList input,
                                            PaleoOptions request_options);

  /// Trips every live session's cancellation token (queued and
  /// running). Sessions still reach their terminal states through the
  /// normal dispatch path.
  void CancelAll();

  DiscoveryServiceStats stats() const;
  /// Sessions admitted and not yet started.
  size_t queue_depth() const { return queue_.size(); }
  int num_workers() const { return pool_.num_threads(); }
  /// The catalog this service serves (for schema access, the current
  /// snapshot, ingestion wiring).
  const TableCatalog& catalog() const { return *catalog_; }

  /// The service's metrics registry: service-level series
  /// (paleo_service_*) plus the pipeline/executor series every run
  /// reports into it. RenderText() gives the Prometheus-style dump the
  /// server CLI exports.
  const obs::MetricsRegistry& metrics() const { return metrics_; }

 private:
  /// Registry handles resolved once at construction.
  struct ServiceMetrics {
    obs::Counter* submitted = nullptr;
    obs::Counter* shed = nullptr;
    obs::Counter* done = nullptr;
    obs::Counter* failed = nullptr;
    obs::Counter* cancelled = nullptr;
    obs::Counter* expired = nullptr;
    obs::Gauge* queue_depth = nullptr;
    obs::Histogram* queue_wait_ms = nullptr;
    obs::Histogram* run_ms = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* watchdog_kicks = nullptr;
    obs::Counter* faults_injected = nullptr;
  };

  void Dispatch();  // runs on a pool worker: pop + run one session
  void CountTerminal(SessionState state);
  ServiceMetrics BindServiceMetrics();
  void WatchdogLoop();
  /// Load-aware shed hint: observed mean run latency scaled by the
  /// backlog ahead of a would-be request, clamped to [1ms, 60s].
  int64_t RetryAfterHintMs() const;

  // The snapshot chain served; sessions pin versions out of it.
  const std::shared_ptr<TableCatalog> catalog_;
  const PaleoOptions paleo_options_;  // = catalog_->options()
  const DiscoveryServiceOptions service_options_;
  RequestQueue queue_;
  obs::MetricsRegistry metrics_;
  const ServiceMetrics service_metrics_;

  // atomic: next_id_ is a ticket counter; shutdown_ is the teardown
  // flag whose ordering comes from live_mutex_ (see ~DiscoveryService);
  // the rest are independent event tallies sampled by stats().
  std::atomic<uint64_t> next_id_{1};
  // Set (under live_mutex_, see ~DiscoveryService) once teardown began;
  // also read lock-free for the cheap early-out in Submit.
  std::atomic<bool> shutdown_{false};
  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> shed_{0};
  std::atomic<int64_t> done_{0};
  std::atomic<int64_t> failed_{0};
  std::atomic<int64_t> cancelled_{0};
  std::atomic<int64_t> expired_{0};
  std::atomic<int64_t> retries_{0};
  std::atomic<int64_t> watchdog_kicks_{0};

  // Live sessions, for CancelAll; pruned on finish.
  Mutex live_mutex_;
  std::vector<std::weak_ptr<Session>> live_ GUARDED_BY(live_mutex_);

  // Stall watchdog (runs only when watchdog_stall_ms > 0). Stopped and
  // joined first in the destructor body, before sessions are torn down.
  Mutex watchdog_mutex_;
  CondVar watchdog_cv_;
  bool watchdog_stop_ GUARDED_BY(watchdog_mutex_) = false;
  std::thread watchdog_;

  // Last member: destroyed first, joining every dispatch and
  // validation task while the rest of the service is still alive.
  ThreadPool pool_;
};

}  // namespace paleo

#endif  // PALEO_SERVICE_DISCOVERY_SERVICE_H_
