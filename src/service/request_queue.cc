#include "service/request_queue.h"

#include <utility>

namespace paleo {

RequestQueue::RequestQueue(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

bool RequestQueue::TryPush(std::shared_ptr<Session> session) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || sessions_.size() >= capacity_) return false;
    sessions_.push_back(std::move(session));
  }
  ready_.notify_one();
  return true;
}

std::shared_ptr<Session> RequestQueue::Pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_.wait(lock, [this]() { return closed_ || !sessions_.empty(); });
  if (sessions_.empty()) return nullptr;
  std::shared_ptr<Session> session = std::move(sessions_.front());
  sessions_.pop_front();
  return session;
}

void RequestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  ready_.notify_all();
}

size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

}  // namespace paleo
