#include "service/request_queue.h"

#include <utility>

#include "common/fault_points.h"

namespace paleo {

RequestQueue::RequestQueue(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

bool RequestQueue::TryPush(std::shared_ptr<Session> session) {
  // Chaos hook: an injected error behaves exactly like a full queue —
  // the caller sheds the request through its normal path.
  if (PALEO_FAULT_POINT("request-queue.push").error()) return false;
  {
    MutexLock lock(mutex_);
    if (closed_ || sessions_.size() >= capacity_) return false;
    sessions_.push_back(std::move(session));
  }
  ready_.NotifyOne();
  return true;
}

std::shared_ptr<Session> RequestQueue::Pop() {
  MutexLock lock(mutex_);
  while (!closed_ && sessions_.empty()) {
    // Chaos hook: injected spurious wakeup — re-check the predicate.
    if (PALEO_FAULT_POINT("request-queue.pop.wait").spurious_wakeup()) {
      continue;
    }
    ready_.Wait(mutex_);
  }
  if (sessions_.empty()) return nullptr;
  std::shared_ptr<Session> session = std::move(sessions_.front());
  sessions_.pop_front();
  return session;
}

void RequestQueue::Close() {
  {
    MutexLock lock(mutex_);
    closed_ = true;
  }
  ready_.NotifyAll();
}

size_t RequestQueue::size() const {
  MutexLock lock(mutex_);
  return sessions_.size();
}

}  // namespace paleo
