// Bounded admission queue of the discovery service.
//
// Admission control is the service's first line of defense: the queue
// holds sessions that were accepted but not yet started, and TryPush
// refuses — load-shedding, surfaced to clients as
// Status::ResourceExhausted — once `capacity` requests are waiting.
// Rejecting at the door keeps queue wait (and therefore deadline burn)
// bounded for the requests that are admitted, instead of letting an
// unbounded backlog time every later request out.

#ifndef PALEO_SERVICE_REQUEST_QUEUE_H_
#define PALEO_SERVICE_REQUEST_QUEUE_H_

#include <cstddef>
#include <deque>
#include <memory>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace paleo {

class Session;

/// \brief Bounded MPMC FIFO of admitted-but-unstarted sessions.
/// All methods are thread-safe.
class RequestQueue {
 public:
  explicit RequestQueue(size_t capacity);

  /// Enqueues the session; false when the queue is at capacity or
  /// closed (the caller sheds the request).
  bool TryPush(std::shared_ptr<Session> session);

  /// Oldest queued session; blocks while the queue is open and empty.
  /// After Close(), drains the remaining sessions and then returns
  /// nullptr forever.
  std::shared_ptr<Session> Pop();

  /// Refuses further pushes and unblocks every waiting Pop. Sessions
  /// already queued are still delivered (so their terminal state can
  /// be assigned by the dispatcher).
  void Close();

  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable Mutex mutex_;
  CondVar ready_;
  std::deque<std::shared_ptr<Session>> sessions_ GUARDED_BY(mutex_);
  bool closed_ GUARDED_BY(mutex_) = false;
};

}  // namespace paleo

#endif  // PALEO_SERVICE_REQUEST_QUEUE_H_
