#include "service/session.h"

#include "common/fault_points.h"

namespace paleo {

const char* SessionStateToString(SessionState state) {
  switch (state) {
    case SessionState::kQueued:
      return "queued";
    case SessionState::kRunning:
      return "running";
    case SessionState::kDone:
      return "done";
    case SessionState::kFailed:
      return "failed";
    case SessionState::kCancelled:
      return "cancelled";
    case SessionState::kExpired:
      return "expired";
  }
  return "unknown";
}

bool IsTerminal(SessionState state) {
  return state == SessionState::kDone || state == SessionState::kFailed ||
         state == SessionState::kCancelled ||
         state == SessionState::kExpired;
}

Session::Session(Id id, ServiceRequest request, PaleoOptions options,
                 std::shared_ptr<const TableSnapshot> snapshot)
    : id_(id),
      request_(std::move(request)),
      options_(std::move(options)),
      snapshot_(std::move(snapshot)) {
  budget_.set_cancellation_token(&cancel_);
  if (request_.collect_trace) {
    // The object is not shared yet; the lock only satisfies the
    // thread-safety analysis (guarded members are written here).
    MutexLock lock(mutex_);
    trace_ = std::make_shared<obs::Trace>();
    session_span_ = trace_->StartSpan("session");
    trace_->AddAttr(session_span_, "id", static_cast<int64_t>(id_));
    trace_->AddAttr(session_span_, "snapshot_version",
                    static_cast<int64_t>(snapshot_->version()));
    queued_span_ = trace_->StartSpan("queued", session_span_);
  }
}

SessionState Session::Poll() const {
  MutexLock lock(mutex_);
  return state_;
}

SessionState Session::Wait() const {
  MutexLock lock(mutex_);
  while (!IsTerminal(state_)) {
    // Chaos hook: injected spurious wakeup — re-check the predicate.
    if (PALEO_FAULT_POINT("session.wait").spurious_wakeup()) continue;
    terminal_.Wait(mutex_);
  }
  return state_;
}

SessionState Session::WaitFor(std::chrono::milliseconds timeout) const {
  const Clock::time_point deadline = Clock::now() + timeout;
  MutexLock lock(mutex_);
  while (!IsTerminal(state_)) {
    if (!terminal_.WaitUntil(mutex_, deadline)) break;
  }
  return state_;
}

const ReverseEngineerReport* Session::report() const {
  MutexLock lock(mutex_);
  if (!result_.has_value() || !result_->ok()) return nullptr;
  return &result_->value();
}

Status Session::status() const {
  MutexLock lock(mutex_);
  if (!result_.has_value()) return Status::OK();
  return result_->status();
}

std::shared_ptr<const obs::Trace> Session::trace() const {
  MutexLock lock(mutex_);
  // Before the terminal state the dispatching worker may still be
  // appending spans; handing the tree out then would let the caller
  // read the arena mid-write (Trace is not thread-safe by design).
  if (!IsTerminal(state_)) return nullptr;
  return trace_;
}

double Session::queue_wait_ms() const {
  MutexLock lock(mutex_);
  return queue_wait_ms_;
}

double Session::run_ms() const {
  MutexLock lock(mutex_);
  return run_ms_;
}

double Session::RunningForMillis() const {
  MutexLock lock(mutex_);
  if (state_ != SessionState::kRunning) return 0.0;
  return std::chrono::duration<double, std::milli>(Clock::now() -
                                                   started_at_)
      .count();
}

void Session::MarkRunning() {
  MutexLock lock(mutex_);
  state_ = SessionState::kRunning;
  started_at_ = Clock::now();
  queue_wait_ms_ =
      std::chrono::duration<double, std::milli>(started_at_ - admitted_at_)
          .count();
  if (trace_ != nullptr) trace_->EndSpan(queued_span_);
}

void Session::FinishLocked(SessionState state,
                           StatusOr<ReverseEngineerReport> result) {
  state_ = state;
  result_.emplace(std::move(result));
  if (started_at_ != Clock::time_point{}) {
    run_ms_ =
        std::chrono::duration<double, std::milli>(Clock::now() - started_at_)
            .count();
  }
  if (trace_ != nullptr) {
    // A session finalized while still queued never ended its queued
    // span; EndSpan's first-end-wins makes this a no-op otherwise.
    trace_->EndSpan(queued_span_);
    if (result_->ok() && result_->value().trace != nullptr) {
      trace_->Adopt(*result_->value().trace, session_span_);
    }
    trace_->AddAttr(session_span_, "state", SessionStateToString(state));
    trace_->EndSpan(session_span_);
  }
}

SessionState Session::TerminalStateFor(
    const StatusOr<ReverseEngineerReport>& result) {
  if (!result.ok()) return SessionState::kFailed;
  switch (result->termination) {
    case TerminationReason::kCancelled:
      return SessionState::kCancelled;
    case TerminationReason::kDeadline:
      return SessionState::kExpired;
    default:
      // kCompleted and kExecutionBudget both delivered a usable
      // report; the termination reason inside it tells them apart.
      return SessionState::kDone;
  }
}

SessionState Session::TerminalStateForUnrun(TerminationReason reason) {
  return reason == TerminationReason::kDeadline ? SessionState::kExpired
                                                : SessionState::kCancelled;
}

void Session::Finish(StatusOr<ReverseEngineerReport> result) {
  {
    MutexLock lock(mutex_);
    FinishLocked(TerminalStateFor(result), std::move(result));
  }
  terminal_.NotifyAll();
}

void Session::FinishWithoutRunning(TerminationReason reason) {
  {
    MutexLock lock(mutex_);
    ReverseEngineerReport report;
    report.termination = reason;
    FinishLocked(TerminalStateForUnrun(reason), std::move(report));
  }
  terminal_.NotifyAll();
}

}  // namespace paleo
