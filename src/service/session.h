// One reverse-engineering request's lifecycle inside the discovery
// service.
//
// State machine (single writer: the dispatching worker; Cancel() from
// any thread only trips the cooperative token):
//
//   kQueued --> kRunning --> { kDone | kFailed | kCancelled | kExpired }
//       \------------------> { kCancelled | kExpired }   (never started)
//
// Exactly one terminal state is ever assigned; Wait() blocks until it
// is. Terminal states mirror how the run ended: kDone for a report
// that ran to completion or hit the execution budget (both carry
// results), kExpired when the deadline passed (queued too long or
// mid-run), kCancelled when the client's Cancel() won the race, and
// kFailed for a hard error. kExpired/kCancelled sessions still expose
// whatever degraded report the governed pipeline produced.

#ifndef PALEO_SERVICE_SESSION_H_
#define PALEO_SERVICE_SESSION_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "catalog/table_catalog.h"
#include "common/mutex.h"
#include "common/run_budget.h"
#include "common/thread_annotations.h"
#include "common/status.h"
#include "engine/topk_list.h"
#include "obs/trace.h"
#include "paleo/options.h"
#include "paleo/paleo.h"

namespace paleo {

/// \brief One discovery-service job: the service-layer mirror of
/// RunRequest. Owns its input (the session outlives the submitting
/// call); everything else is optional.
struct ServiceRequest {
  /// The top-k list to reverse engineer. Required.
  TopKList input;
  /// Per-request pipeline options (deadline_ms, num_threads, match
  /// mode, ... — the indexes stay the service's). Unset = the
  /// service's defaults.
  std::optional<PaleoOptions> options;
  /// Retain the scored candidate list in the session's report.
  bool keep_candidates = false;
  /// Build a span tree for this request: a "session" root with a
  /// "queued" child covering admission->dispatch, with the pipeline's
  /// "run" tree grafted under it. Available via Session::trace() once
  /// the session is terminal.
  bool collect_trace = false;
};

/// \brief Where a session is in its lifecycle.
enum class SessionState : int {
  kQueued = 0,
  kRunning = 1,
  kDone = 2,       // terminal: report available
  kFailed = 3,     // terminal: hard error, status available
  kCancelled = 4,  // terminal: client cancelled
  kExpired = 5,    // terminal: deadline passed
};

/// "queued", "running", "done", "failed", "cancelled", or "expired".
const char* SessionStateToString(SessionState state);

bool IsTerminal(SessionState state);

/// \brief One submitted request: input, effective options, budget,
/// synchronized outcome. Thread-safe throughout; created and finished
/// by the DiscoveryService, observed (Wait/Poll/Cancel) by any thread.
class Session {
 public:
  using Id = uint64_t;

  /// `options` are the request's effective pipeline options (the
  /// service already merged per-request overrides and moved the
  /// deadline into the budget, anchored at admission so queue wait
  /// counts against it). The remaining per-request flags travel in
  /// `request`. `snapshot` is the catalog snapshot pinned at admission
  /// — the frozen table version this session runs against, held alive
  /// for the session's whole lifetime no matter how far ingestion
  /// advances the catalog.
  Session(Id id, ServiceRequest request, PaleoOptions options,
          std::shared_ptr<const TableSnapshot> snapshot);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  Id id() const { return id_; }
  const TopKList& input() const { return request_.input; }
  const PaleoOptions& options() const { return options_; }
  bool keep_candidates() const { return request_.keep_candidates; }
  bool collect_trace() const { return request_.collect_trace; }
  /// The request budget the pipeline is governed by (deadline anchored
  /// at admission + this session's cancellation token).
  const RunBudget& budget() const { return budget_; }

  /// The snapshot pinned at admission. The run executes against this
  /// frozen version (snapshot isolation: results are byte-identical to
  /// a standalone run on it, regardless of concurrent ingestion).
  const TableSnapshot& snapshot() const { return *snapshot_; }
  /// Version of the pinned snapshot (see TableSnapshot::version).
  uint64_t snapshot_version() const { return snapshot_->version(); }

  /// Current state, non-blocking.
  SessionState Poll() const;

  /// Blocks until the session reaches a terminal state; returns it.
  SessionState Wait() const;

  /// Wait with a timeout; returns the state at expiry (possibly still
  /// non-terminal). Mostly for tests and impatient clients.
  SessionState WaitFor(std::chrono::milliseconds timeout) const;

  /// Trips the cooperative cancellation token. The run (queued or
  /// mid-flight) winds down at its next budget poll and the dispatcher
  /// assigns the terminal state; Cancel itself never blocks and is
  /// idempotent.
  void Cancel() { cancel_.Cancel(); }

  /// The report, when a terminal state carries one (kDone always;
  /// kCancelled/kExpired when the run got far enough to wind down
  /// gracefully). nullptr otherwise.
  const ReverseEngineerReport* report() const;

  /// OK unless the session failed (kFailed: the pipeline's error).
  Status status() const;

  /// The request's span tree: a "session" root whose "queued" child
  /// covers admission->dispatch and whose grafted "run" subtree is the
  /// pipeline's trace. Null unless the request asked for collect_trace,
  /// and null until the session is terminal — the dispatching worker is
  /// still writing spans before that, so the live tree is never handed
  /// out (callers Wait(), then read).
  std::shared_ptr<const obs::Trace> trace() const;

  /// Milliseconds spent queued before dispatch, and running. 0 until
  /// the respective phase completes.
  double queue_wait_ms() const;
  double run_ms() const;

  /// Milliseconds this session has been in kRunning so far; 0 in any
  /// other state. The service watchdog polls this to detect wedged
  /// work.
  double RunningForMillis() const;

  // ---- Service-internal transitions (single writer) ----

  /// The terminal state Finish() / FinishWithoutRunning() will assign
  /// for this outcome. Exposed so the service can publish its
  /// aggregate counters *before* the state becomes visible (a client
  /// returning from Wait() then always sees itself counted).
  static SessionState TerminalStateFor(
      const StatusOr<ReverseEngineerReport>& result);
  static SessionState TerminalStateForUnrun(TerminationReason reason);

  /// kQueued -> kRunning, stamping the queue-wait clock.
  void MarkRunning();
  /// Assigns the terminal state implied by `result` (see file
  /// comment) and wakes every waiter.
  void Finish(StatusOr<ReverseEngineerReport> result);
  /// Terminal state for a session that never ran (cancelled or expired
  /// while queued): synthesizes an empty degraded report.
  void FinishWithoutRunning(TerminationReason reason);

  /// The token the budget polls; the service wires it into the
  /// per-request RunBudget.
  CancellationToken* cancellation_token() { return &cancel_; }
  RunBudget* mutable_budget() { return &budget_; }

 private:
  using Clock = std::chrono::steady_clock;

  void FinishLocked(SessionState state,
                    StatusOr<ReverseEngineerReport> result)
      REQUIRES(mutex_);

  const Id id_;
  const ServiceRequest request_;
  const PaleoOptions options_;
  // The pin: keeps the admitted-against snapshot (and its engine)
  // alive until the session is destroyed.
  const std::shared_ptr<const TableSnapshot> snapshot_;
  CancellationToken cancel_;
  RunBudget budget_;

  mutable Mutex mutex_;
  mutable CondVar terminal_;
  SessionState state_ GUARDED_BY(mutex_) = SessionState::kQueued;
  std::optional<StatusOr<ReverseEngineerReport>> result_
      GUARDED_BY(mutex_);

  // Session-level span tree (collect_trace only). Written by the
  // submitting thread (construction) and the dispatching worker
  // (MarkRunning/Finish*, under mutex_); the queue handoff orders the
  // two, and trace() withholds the pointer until the session is
  // terminal, so the non-thread-safe Trace is never read mid-write.
  std::shared_ptr<obs::Trace> trace_ GUARDED_BY(mutex_);
  obs::Trace::SpanId session_span_ GUARDED_BY(mutex_) =
      obs::Trace::kNoSpan;
  obs::Trace::SpanId queued_span_ GUARDED_BY(mutex_) = obs::Trace::kNoSpan;

  const Clock::time_point admitted_at_ = Clock::now();
  Clock::time_point started_at_ GUARDED_BY(mutex_){};
  double queue_wait_ms_ GUARDED_BY(mutex_) = 0.0;
  double run_ms_ GUARDED_BY(mutex_) = 0.0;
};

}  // namespace paleo

#endif  // PALEO_SERVICE_SESSION_H_
