#include "stats/catalog.h"

#include <unordered_set>

namespace paleo {

StatsCatalog StatsCatalog::Build(const Table& table,
                                 const CatalogOptions& options) {
  StatsCatalog catalog;
  catalog.options_ = options;
  catalog.table_rows_ = static_cast<int64_t>(table.num_rows());
  const Schema& schema = table.schema();
  catalog.column_stats_.reserve(static_cast<size_t>(schema.num_fields()));
  catalog.histograms_.resize(static_cast<size_t>(schema.num_fields()));
  catalog.top_entities_.resize(static_cast<size_t>(schema.num_fields()));

  catalog.value_counts_.resize(static_cast<size_t>(schema.num_fields()));

  std::unordered_set<int> measures(schema.measure_indices().begin(),
                                   schema.measure_indices().end());
  std::unordered_set<int> dimensions(schema.dimension_indices().begin(),
                                     schema.dimension_indices().end());
  for (int c = 0; c < schema.num_fields(); ++c) {
    const Column& column = table.column(c);
    catalog.column_stats_.push_back(ColumnStats::Build(column));
    if (measures.count(c) > 0) {
      catalog.histograms_[static_cast<size_t>(c)] =
          Histogram::Build(column, options.histogram_cells);
      catalog.top_entities_[static_cast<size_t>(c)] =
          TopEntityList::Build(table, c, options.top_entities);
    }
    if (dimensions.count(c) > 0) {
      ValueCountMap& counts = catalog.value_counts_[static_cast<size_t>(c)];
      switch (column.type()) {
        case DataType::kString: {
          // Count codes first, then box once per distinct value.
          std::unordered_map<uint32_t, int64_t> by_code;
          for (uint32_t code : column.codes()) ++by_code[code];
          for (const auto& [code, n] : by_code) {
            counts.emplace(Value::String(column.dict()->Get(code)), n);
          }
          break;
        }
        case DataType::kInt64:
          for (int64_t v : column.ints()) ++counts[Value::Int64(v)];
          break;
        case DataType::kDouble:
          for (double v : column.doubles()) ++counts[Value::Double(v)];
          break;
      }
    }
  }
  return catalog;
}

int64_t StatsCatalog::ValueCount(int column, const Value& v) const {
  const ValueCountMap& counts = value_counts_[static_cast<size_t>(column)];
  auto it = counts.find(v);
  return it == counts.end() ? 0 : it->second;
}

double StatsCatalog::PredicateSelectivity(const Predicate& predicate) const {
  if (table_rows_ == 0) return 0.0;
  double selectivity = 1.0;
  for (const AtomicPredicate& atom : predicate.atoms()) {
    int64_t count = 0;
    if (atom.is_range() && atom.value.is_numeric() &&
        atom.high.is_numeric()) {
      // Sum the frequencies of the dimension values inside the range.
      double lo = atom.value.AsDouble();
      double hi = atom.high.AsDouble();
      for (const auto& [v, n] :
           value_counts_[static_cast<size_t>(atom.column)]) {
        if (!v.is_numeric()) continue;
        double x = v.AsDouble();
        if (x >= lo && x <= hi) count += n;
      }
    } else {
      count = ValueCount(atom.column, atom.value);
    }
    selectivity *=
        static_cast<double>(count) / static_cast<double>(table_rows_);
  }
  return selectivity;
}

}  // namespace paleo
