#include "stats/catalog.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

namespace paleo {

namespace {

/// Normalizes one cell to the 64-bit key space distinct counting uses:
/// dictionary code for strings, the value itself for int64, the bit
/// pattern for doubles (so -0.0 and 0.0 count like ColumnStats does).
uint64_t NormalizedKey(const Column& column, RowId row) {
  switch (column.type()) {
    case DataType::kString:
      return column.CodeAt(row);
    case DataType::kInt64:
      return static_cast<uint64_t>(column.Int64At(row));
    case DataType::kDouble: {
      double v = column.DoubleAt(row);
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(v));
      __builtin_memcpy(&bits, &v, sizeof(bits));
      return bits;
    }
  }
  return 0;
}

}  // namespace

StatsCatalog StatsCatalog::Build(const Table& table,
                                 const CatalogOptions& options) {
  StatsCatalog catalog;
  catalog.options_ = options;
  catalog.table_rows_ = static_cast<int64_t>(table.num_rows());
  const Schema& schema = table.schema();
  catalog.column_stats_.reserve(static_cast<size_t>(schema.num_fields()));
  catalog.histograms_.resize(static_cast<size_t>(schema.num_fields()));
  catalog.top_entities_.resize(static_cast<size_t>(schema.num_fields()));

  catalog.value_counts_.resize(static_cast<size_t>(schema.num_fields()));
  catalog.has_delta_state_ = options.keep_delta_state;
  if (options.keep_delta_state) {
    catalog.delta_.resize(static_cast<size_t>(schema.num_fields()));
  }

  std::unordered_set<int> measures(schema.measure_indices().begin(),
                                   schema.measure_indices().end());
  std::unordered_set<int> dimensions(schema.dimension_indices().begin(),
                                     schema.dimension_indices().end());
  for (int c = 0; c < schema.num_fields(); ++c) {
    const Column& column = table.column(c);
    catalog.column_stats_.push_back(ColumnStats::Build(column));
    if (measures.count(c) > 0) {
      catalog.histograms_[static_cast<size_t>(c)] =
          Histogram::Build(column, options.histogram_cells);
      std::vector<double> entity_max =
          TopEntityList::ComputeEntityMaxes(table, c);
      catalog.top_entities_[static_cast<size_t>(c)] =
          TopEntityList::FromEntityMaxes(entity_max, options.top_entities);
      if (options.keep_delta_state) {
        catalog.delta_[static_cast<size_t>(c)].entity_max =
            std::move(entity_max);
      }
    }
    if (dimensions.count(c) > 0) {
      ValueCountMap& counts = catalog.value_counts_[static_cast<size_t>(c)];
      switch (column.type()) {
        case DataType::kString: {
          // Count codes first, then box once per distinct value.
          std::unordered_map<uint32_t, int64_t> by_code;
          for (uint32_t code : column.codes()) ++by_code[code];
          for (const auto& [code, n] : by_code) {
            counts.emplace(Value::String(column.dict()->Get(code)), n);
          }
          break;
        }
        case DataType::kInt64:
          for (int64_t v : column.ints()) ++counts[Value::Int64(v)];
          break;
        case DataType::kDouble:
          for (double v : column.doubles()) ++counts[Value::Double(v)];
          break;
      }
    }
    if (options.keep_delta_state) {
      std::unordered_set<uint64_t>& seen =
          catalog.delta_[static_cast<size_t>(c)].seen;
      seen.reserve(static_cast<size_t>(
          catalog.column_stats_[static_cast<size_t>(c)].distinct_count));
      for (size_t r = 0; r < table.num_rows(); ++r) {
        seen.insert(NormalizedKey(column, static_cast<RowId>(r)));
      }
    }
  }
  return catalog;
}

StatusOr<StatsCatalog> StatsCatalog::BuildIncremental(
    const StatsCatalog& prev, const Table& table, int* full_rebuilds) {
  if (!prev.has_delta_state_) {
    return Status::InvalidArgument(
        "previous catalog was built without keep_delta_state; cannot "
        "extend it incrementally");
  }
  if (static_cast<int64_t>(table.num_rows()) < prev.table_rows_ ||
      table.num_columns() != static_cast<int>(prev.column_stats_.size())) {
    return Status::InvalidArgument(
        "table is not an append-extension of the previous catalog's "
        "relation");
  }
  StatsCatalog catalog = prev;
  const size_t old_rows = static_cast<size_t>(prev.table_rows_);
  const Schema& schema = table.schema();
  std::unordered_set<int> measures(schema.measure_indices().begin(),
                                   schema.measure_indices().end());
  std::unordered_set<int> dimensions(schema.dimension_indices().begin(),
                                     schema.dimension_indices().end());
  int rebuilds = 0;
  for (int c = 0; c < schema.num_fields(); ++c) {
    catalog.ExtendColumn(table, c, old_rows, measures.count(c) > 0,
                         dimensions.count(c) > 0,
                         &catalog.delta_[static_cast<size_t>(c)], &rebuilds);
  }
  catalog.table_rows_ = static_cast<int64_t>(table.num_rows());
  if (full_rebuilds != nullptr) *full_rebuilds = rebuilds;
  return catalog;
}

void StatsCatalog::ExtendColumn(const Table& table, int column,
                                size_t old_rows, bool is_measure,
                                bool is_dimension, ColumnDelta* delta,
                                int* full_rebuilds) {
  const Column& col = table.column(column);
  const size_t n = table.num_rows();
  ColumnStats& stats = column_stats_[static_cast<size_t>(column)];

  // Basic stats: min/max fold in directly, distinct counts come from
  // the maintained seen set (exact — the delta may repeat old values).
  bool first = stats.row_count == 0;
  for (size_t r = old_rows; r < n; ++r) {
    delta->seen.insert(NormalizedKey(col, static_cast<RowId>(r)));
    if (col.type() != DataType::kString) {
      double v = col.NumericAt(static_cast<RowId>(r));
      if (first) {
        stats.min = stats.max = v;
        first = false;
      } else {
        stats.min = std::min(stats.min, v);
        stats.max = std::max(stats.max, v);
      }
    }
  }
  stats.row_count = static_cast<int64_t>(n);
  stats.distinct_count = static_cast<int64_t>(delta->seen.size());

  if (is_measure) {
    // Histogram: extend in place while the delta stays inside the old
    // range (boundaries unchanged => identical to a full rebuild);
    // rebuild the one column otherwise.
    std::vector<double> values;
    values.reserve(n - old_rows);
    for (size_t r = old_rows; r < n; ++r) {
      values.push_back(col.NumericAt(static_cast<RowId>(r)));
    }
    Histogram& hist = histograms_[static_cast<size_t>(column)];
    if (!hist.Extend(values)) {
      hist = Histogram::Build(col, options_.histogram_cells);
      if (full_rebuilds != nullptr) ++*full_rebuilds;
    }
    // Top entities: fold the delta into the maintained per-entity
    // maxima (the dictionary may have grown), then reselect top-N.
    const Column& entities = table.entity_column();
    constexpr double kNegInf = -std::numeric_limits<double>::infinity();
    delta->entity_max.resize(entities.dict()->size(), kNegInf);
    for (size_t r = old_rows; r < n; ++r) {
      uint32_t code = entities.CodeAt(static_cast<RowId>(r));
      double v = col.NumericAt(static_cast<RowId>(r));
      if (v > delta->entity_max[code]) delta->entity_max[code] = v;
    }
    top_entities_[static_cast<size_t>(column)] =
        TopEntityList::FromEntityMaxes(delta->entity_max,
                                       options_.top_entities);
  }

  if (is_dimension) {
    ValueCountMap& counts = value_counts_[static_cast<size_t>(column)];
    for (size_t r = old_rows; r < n; ++r) {
      ++counts[col.GetValue(static_cast<RowId>(r))];
    }
  }
}

int64_t StatsCatalog::ValueCount(int column, const Value& v) const {
  const ValueCountMap& counts = value_counts_[static_cast<size_t>(column)];
  auto it = counts.find(v);
  return it == counts.end() ? 0 : it->second;
}

double StatsCatalog::PredicateSelectivity(const Predicate& predicate) const {
  if (table_rows_ == 0) return 0.0;
  double selectivity = 1.0;
  for (const AtomicPredicate& atom : predicate.atoms()) {
    int64_t count = 0;
    if (atom.is_range() && atom.value.is_numeric() &&
        atom.high.is_numeric()) {
      // Sum the frequencies of the dimension values inside the range.
      double lo = atom.value.AsDouble();
      double hi = atom.high.AsDouble();
      for (const auto& [v, n] :
           value_counts_[static_cast<size_t>(atom.column)]) {
        if (!v.is_numeric()) continue;
        double x = v.AsDouble();
        if (x >= lo && x <= hi) count += n;
      }
    } else {
      count = ValueCount(atom.column, atom.value);
    }
    selectivity *=
        static_cast<double>(count) / static_cast<double>(table_rows_);
  }
  return selectivity;
}

}  // namespace paleo
