// Statistics catalog over the base relation R.
//
// Built once per relation (the paper computes these "upfront from the
// base relation R") and consulted by the ranking-criteria finder
// (top-entity lists, histograms, min/max/distinct filters) and by the
// probabilistic model (dimension-column distinct counts).
//
// Immutable after Build(): all accessors are const (map lookups go
// through find(), never operator[]), so one catalog serves any number
// of concurrent reverse-engineering sessions without synchronization.

#ifndef PALEO_STATS_CATALOG_H_
#define PALEO_STATS_CATALOG_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "engine/predicate.h"
#include "stats/column_stats.h"
#include "stats/histogram.h"
#include "stats/top_entities.h"
#include "storage/table.h"

namespace paleo {

/// \brief Tuning knobs for catalog construction.
struct CatalogOptions {
  /// Cells per equi-width histogram (paper: 1000).
  int histogram_cells = 1000;
  /// Entities kept per top-entity list (paper: 1000).
  int top_entities = 1000;
  /// Retain the per-column delta state (seen-value sets, per-entity
  /// maxima) that BuildIncremental needs to extend this catalog
  /// EXACTLY from appended rows. Off by default: a catalog that never
  /// ingests should not pay the memory (roughly one 64-bit key per
  /// distinct value per column).
  bool keep_delta_state = false;
};

/// \brief Precomputed statistics for every column of a relation.
class StatsCatalog {
 public:
  /// Scans the table once per column.
  static StatsCatalog Build(const Table& table,
                            const CatalogOptions& options = CatalogOptions());

  /// Extends `prev` (which must have been built with keep_delta_state)
  /// to cover `table`, whose first prev.table_rows() rows are exactly
  /// the rows prev was built from and whose remainder is the appended
  /// delta. Every published quantity of the result equals
  /// Build(table, prev.options()) — distinct counts come from
  /// maintained seen-value sets, top-entity lists from maintained
  /// per-entity maxima, and histograms are extended in place when the
  /// delta stays inside the old [min, max] (falling back to a
  /// per-column rebuild when the range grew; `full_rebuilds`, when
  /// non-null, receives the number of such fallbacks). The result
  /// keeps delta state, so ingestion chains incrementally forever.
  /// InvalidArgument when prev carries no delta state or the row
  /// prefix does not match.
  static StatusOr<StatsCatalog> BuildIncremental(const StatsCatalog& prev,
                                                 const Table& table,
                                                 int* full_rebuilds = nullptr);

  /// True when this catalog retains the state BuildIncremental needs.
  bool has_delta_state() const { return has_delta_state_; }

  const CatalogOptions& options() const { return options_; }

  /// Per-column basic stats (all columns).
  const ColumnStats& column_stats(int column) const {
    return column_stats_[static_cast<size_t>(column)];
  }

  /// Histogram of a measure column; empty Histogram for non-measures.
  const Histogram& histogram(int column) const {
    return histograms_[static_cast<size_t>(column)];
  }

  /// Top-entity list of a measure column; empty list for non-measures.
  const TopEntityList& top_entities(int column) const {
    return top_entities_[static_cast<size_t>(column)];
  }

  /// Number of rows in the relation the catalog was built from.
  int64_t table_rows() const { return table_rows_; }

  /// Occurrences of `v` in a dimension column (0 if absent or not a
  /// dimension column).
  int64_t ValueCount(int column, const Value& v) const;

  /// Estimated fraction of R's rows matching the conjunction, under
  /// the usual attribute-independence assumption:
  /// prod_i count(v_i)/|R|. 1.0 for the empty predicate. Used to order
  /// equally suitable candidate queries — a candidate predicate that
  /// covers every input entity despite rare values is very unlikely to
  /// be a coincidence.
  double PredicateSelectivity(const Predicate& predicate) const;

 private:
  using ValueCountMap = std::unordered_map<Value, int64_t, ValueHasher>;

  /// Per-column ingredients carried across incremental builds
  /// (keep_delta_state only): exactly what the published summaries
  /// cannot recover. `seen` holds every value normalized to 64 bits
  /// (dictionary code / int64 / double bit pattern — the same key
  /// spaces ColumnStats::Build counts distinct over), `entity_max` the
  /// per-entity maxima of measure columns (code-indexed, -inf absent).
  struct ColumnDelta {
    std::unordered_set<uint64_t> seen;
    std::vector<double> entity_max;
  };

  /// Folds one column's delta rows into stats / histogram /
  /// top-entities / value-counts, using and maintaining `delta`.
  /// `full_rebuilds` is bumped when the histogram fallback fired.
  void ExtendColumn(const Table& table, int column, size_t old_rows,
                    bool is_measure, bool is_dimension, ColumnDelta* delta,
                    int* full_rebuilds);

  CatalogOptions options_;
  std::vector<ColumnStats> column_stats_;
  std::vector<Histogram> histograms_;
  std::vector<TopEntityList> top_entities_;
  std::vector<ValueCountMap> value_counts_;  // dimension columns only
  std::vector<ColumnDelta> delta_;           // keep_delta_state only
  bool has_delta_state_ = false;
  int64_t table_rows_ = 0;
};

}  // namespace paleo

#endif  // PALEO_STATS_CATALOG_H_
