#include "stats/column_stats.h"

#include <algorithm>
#include <unordered_set>

namespace paleo {

ColumnStats ColumnStats::Build(const Column& column) {
  ColumnStats s;
  s.row_count = static_cast<int64_t>(column.size());
  switch (column.type()) {
    case DataType::kString: {
      // Dictionary codes present in the column may be a subset of the
      // dictionary when the dictionary is shared (gathered tables), so
      // count codes actually used.
      std::unordered_set<uint32_t> seen(column.codes().begin(),
                                        column.codes().end());
      s.distinct_count = static_cast<int64_t>(seen.size());
      return s;
    }
    case DataType::kInt64: {
      std::unordered_set<int64_t> seen;
      bool first = true;
      for (int64_t v : column.ints()) {
        double d = static_cast<double>(v);
        if (first || d < s.min) s.min = d;
        if (first || d > s.max) s.max = d;
        first = false;
        seen.insert(v);
      }
      s.distinct_count = static_cast<int64_t>(seen.size());
      return s;
    }
    case DataType::kDouble: {
      std::unordered_set<uint64_t> seen;
      bool first = true;
      for (double v : column.doubles()) {
        if (first || v < s.min) s.min = v;
        if (first || v > s.max) s.max = v;
        first = false;
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        __builtin_memcpy(&bits, &v, sizeof(bits));
        seen.insert(bits);
      }
      s.distinct_count = static_cast<int64_t>(seen.size());
      return s;
    }
  }
  return s;
}

}  // namespace paleo
