// Simple descriptive column statistics (paper Section 5: "small data
// samples, histograms, or simple descriptive statistics computed
// upfront from the base relation R").

#ifndef PALEO_STATS_COLUMN_STATS_H_
#define PALEO_STATS_COLUMN_STATS_H_

#include <cstdint>

#include "storage/column.h"

namespace paleo {

/// \brief Min / max / distinct-count summary of one column.
struct ColumnStats {
  double min = 0.0;           // numeric columns only
  double max = 0.0;           // numeric columns only
  int64_t distinct_count = 0;
  int64_t row_count = 0;

  /// One pass; distinct counting is exact (hash set over value bit
  /// patterns for numerics, dictionary size for strings).
  static ColumnStats Build(const Column& column);
};

}  // namespace paleo

#endif  // PALEO_STATS_COLUMN_STATS_H_
