#include "stats/distance.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace paleo {

double L1Distance(const std::vector<double>& a,
                  const std::vector<double>& b) {
  double d = 0.0;
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) d += std::abs(a[i] - b[i]);
  for (size_t i = n; i < a.size(); ++i) d += std::abs(a[i]);
  for (size_t i = n; i < b.size(); ++i) d += std::abs(b[i]);
  return d;
}

double L2Distance(const std::vector<double>& a,
                  const std::vector<double>& b) {
  double d = 0.0;
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) d += (a[i] - b[i]) * (a[i] - b[i]);
  for (size_t i = n; i < a.size(); ++i) d += a[i] * a[i];
  for (size_t i = n; i < b.size(); ++i) d += b[i] * b[i];
  return std::sqrt(d);
}

double NormalizedL1(const std::vector<double>& a,
                    const std::vector<double>& b) {
  double mass = 0.0;
  for (double v : a) mass += std::abs(v);
  for (double v : b) mass += std::abs(v);
  if (mass == 0.0) return 0.0;
  double d = L1Distance(a, b) / mass;
  return std::min(d, 1.0);
}

double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b) {
  std::unordered_set<std::string> sa(a.begin(), a.end());
  std::unordered_set<std::string> sb(b.begin(), b.end());
  if (sa.empty() && sb.empty()) return 1.0;
  size_t inter = 0;
  for (const std::string& s : sa) inter += sb.count(s);
  return static_cast<double>(inter) /
         static_cast<double>(sa.size() + sb.size() - inter);
}

namespace {

std::unordered_map<std::string, int> PositionMap(
    const std::vector<std::string>& list) {
  std::unordered_map<std::string, int> pos;
  for (size_t i = 0; i < list.size(); ++i) {
    // First occurrence wins for duplicate entities.
    pos.emplace(list[i], static_cast<int>(i) + 1);
  }
  return pos;
}

}  // namespace

double FootruleTopK(const std::vector<std::string>& a,
                    const std::vector<std::string>& b) {
  auto pa = PositionMap(a);
  auto pb = PositionMap(b);
  // Fagin's location parameter: an absent element sits just past the
  // end of the list it is missing from.
  const int la = static_cast<int>(pa.size()) + 1;
  const int lb = static_cast<int>(pb.size()) + 1;
  double d = 0.0;
  for (const auto& [e, i] : pa) {
    auto it = pb.find(e);
    int j = it == pb.end() ? lb : it->second;
    d += std::abs(i - j);
  }
  for (const auto& [e, j] : pb) {
    if (pa.find(e) == pa.end()) d += std::abs(la - j);
  }
  return d;
}

double NormalizedFootrule(const std::vector<std::string>& a,
                          const std::vector<std::string>& b) {
  auto pa = PositionMap(a);
  auto pb = PositionMap(b);
  int ka = static_cast<int>(pa.size());
  int kb = static_cast<int>(pb.size());
  if (ka == 0 && kb == 0) return 0.0;
  // Maximum is attained by disjoint lists: every element of a pays
  // (kb + 1 - 0 .. ) — compute directly.
  double max_d = 0.0;
  for (int i = 1; i <= ka; ++i) max_d += std::abs(kb + 1 - i);
  for (int j = 1; j <= kb; ++j) max_d += std::abs(ka + 1 - j);
  if (max_d == 0.0) return 0.0;
  return FootruleTopK(a, b) / max_d;
}

double KendallTauTopK(const std::vector<std::string>& a,
                      const std::vector<std::string>& b, double p) {
  auto pa = PositionMap(a);
  auto pb = PositionMap(b);
  std::vector<std::string> domain;
  domain.reserve(pa.size() + pb.size());
  for (const auto& [e, _] : pa) domain.push_back(e);
  for (const auto& [e, _] : pb) {
    if (pa.find(e) == pa.end()) domain.push_back(e);
  }
  std::sort(domain.begin(), domain.end());

  double penalty = 0.0;
  for (size_t x = 0; x < domain.size(); ++x) {
    for (size_t y = x + 1; y < domain.size(); ++y) {
      auto ia = pa.find(domain[x]);
      auto ja = pa.find(domain[y]);
      auto ib = pb.find(domain[x]);
      auto jb = pb.find(domain[y]);
      bool x_in_a = ia != pa.end(), y_in_a = ja != pa.end();
      bool x_in_b = ib != pb.end(), y_in_b = jb != pb.end();
      if (x_in_a && y_in_a && x_in_b && y_in_b) {
        // Case 1: both pairs ranked in both lists.
        bool order_a = ia->second < ja->second;
        bool order_b = ib->second < jb->second;
        if (order_a != order_b) penalty += 1.0;
      } else if (x_in_a && y_in_a && (x_in_b != y_in_b)) {
        // Case 2 via list a: both in a, one in b. The one in b is
        // implicitly ranked above the missing one there.
        bool order_a = ia->second < ja->second;  // x above y in a
        bool order_b = x_in_b;                   // x above y in b iff x present
        if (order_a != order_b) penalty += 1.0;
      } else if (x_in_b && y_in_b && (x_in_a != y_in_a)) {
        bool order_b = ib->second < jb->second;
        bool order_a = x_in_a;
        if (order_a != order_b) penalty += 1.0;
      } else if ((x_in_a && !x_in_b && y_in_b && !y_in_a) ||
                 (x_in_b && !x_in_a && y_in_a && !y_in_b)) {
        // Case 3: x only in one list, y only in the other — the lists
        // disagree for sure.
        penalty += 1.0;
      } else {
        // Case 4: both elements confined to the same single list;
        // nothing is known about the other list's order.
        penalty += p;
      }
    }
  }
  return penalty;
}

double NormalizedKendallTau(const std::vector<std::string>& a,
                            const std::vector<std::string>& b, double p) {
  auto pa = PositionMap(a);
  auto pb = PositionMap(b);
  double ka = static_cast<double>(pa.size());
  double kb = static_cast<double>(pb.size());
  if (ka == 0 && kb == 0) return 0.0;
  // Disjoint lists: ka*kb cross pairs with penalty 1 plus within-list
  // pairs with penalty p.
  double max_penalty =
      ka * kb + p * (ka * (ka - 1) / 2.0 + kb * (kb - 1) / 2.0);
  if (max_penalty == 0.0) return 0.0;
  return KendallTauTopK(a, b, p) / max_penalty;
}

double EarthMoversDistance(const Histogram& a, const Histogram& b) {
  if (a.total_count() == 0 || b.total_count() == 0) return 0.0;
  // Both histograms describe piecewise-uniform densities; EMD in 1-D is
  // the integral of |CDF_a(x) - CDF_b(x)| dx. CDFs are piecewise linear
  // with breakpoints at the cell edges, so integrate interval by
  // interval over the merged breakpoint grid.
  auto cdf = [](const Histogram& h, double x) -> double {
    if (h.num_cells() == 0) return 0.0;
    if (x <= h.min()) return 0.0;
    if (x >= h.min() + h.cell_width() * h.num_cells()) return 1.0;
    int cell = std::min(static_cast<int>((x - h.min()) / h.cell_width()),
                        h.num_cells() - 1);
    double below = 0.0;
    for (int c = 0; c < cell; ++c) below += h.cell_count(c);
    double frac = (x - h.CellLow(cell)) / h.cell_width();
    below += frac * static_cast<double>(h.cell_count(cell));
    return below / static_cast<double>(h.total_count());
  };

  std::vector<double> edges;
  for (int c = 0; c <= a.num_cells(); ++c) edges.push_back(a.CellLow(c));
  for (int c = 0; c <= b.num_cells(); ++c) edges.push_back(b.CellLow(c));
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  double emd = 0.0;
  for (size_t i = 0; i + 1 < edges.size(); ++i) {
    double x0 = edges[i], x1 = edges[i + 1];
    double w = x1 - x0;
    if (w <= 0.0) continue;
    double d0 = cdf(a, x0) - cdf(b, x0);
    double d1 = cdf(a, x1) - cdf(b, x1);
    if (d0 * d1 >= 0.0) {
      emd += (std::abs(d0) + std::abs(d1)) / 2.0 * w;
    } else {
      // Linear difference crosses zero inside the interval.
      double t = w * std::abs(d0) / (std::abs(d0) + std::abs(d1));
      emd += std::abs(d0) * t / 2.0 + std::abs(d1) * (w - t) / 2.0;
    }
  }
  return emd;
}

}  // namespace paleo
