// Distance and similarity measures for ranked lists and value vectors.
//
// Used for (a) the histogram-based ranking-criteria heuristic (L1
// distance, Section 5.2), (b) the suitability model (normalized L1,
// Section 6.3), and (c) partial-match acceptance (Section 3.3), which
// the paper grounds in Fagin et al.'s top-k variants of Kendall's tau
// and Spearman's footrule, Jaccard distance, and L1/L2 on values.

#ifndef PALEO_STATS_DISTANCE_H_
#define PALEO_STATS_DISTANCE_H_

#include <string>
#include <vector>

#include "stats/histogram.h"

namespace paleo {

/// Sum of absolute differences over aligned prefixes; unmatched tail
/// elements (when sizes differ) each contribute their absolute value.
double L1Distance(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean distance with the same tail convention as L1Distance.
double L2Distance(const std::vector<double>& a, const std::vector<double>& b);

/// L1 distance scaled into [0, 1] by the total mass of both vectors
/// (0 = identical); used as `d` in the suitability s(Qc) = (1 - P[fp])
/// * (1 - d).
double NormalizedL1(const std::vector<double>& a,
                    const std::vector<double>& b);

/// Jaccard similarity |A ∩ B| / |A ∪ B| of two string sets (1.0 when
/// both are empty).
double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b);

/// Spearman's footrule distance between two top-k lists, in Fagin et
/// al.'s location-based variant: an element absent from the other list
/// is placed at position k+1. Returns the raw (unnormalized) sum.
double FootruleTopK(const std::vector<std::string>& a,
                    const std::vector<std::string>& b);

/// Fagin et al.'s Kendall tau with penalty parameter p for pairs where
/// both elements appear in only one list each (p = 0: optimistic,
/// p = 0.5: neutral). Raw (unnormalized) count.
double KendallTauTopK(const std::vector<std::string>& a,
                      const std::vector<std::string>& b, double p = 0.5);

/// Normalized footrule in [0, 1]: FootruleTopK divided by its maximum
/// (disjoint lists of the same length).
double NormalizedFootrule(const std::vector<std::string>& a,
                          const std::vector<std::string>& b);

/// Normalized Kendall tau in [0, 1].
double NormalizedKendallTau(const std::vector<std::string>& a,
                            const std::vector<std::string>& b,
                            double p = 0.5);

/// 1-D Earth Mover's Distance between two histograms over comparable
/// domains: the L1 distance between normalized CDFs scaled by the cell
/// width (exact for equal-width aligned histograms; an approximation
/// otherwise).
double EarthMoversDistance(const Histogram& a, const Histogram& b);

}  // namespace paleo

#endif  // PALEO_STATS_DISTANCE_H_
