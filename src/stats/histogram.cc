#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace paleo {

Histogram Histogram::Build(const Column& column, int num_cells) {
  std::vector<double> values;
  values.reserve(column.size());
  for (size_t i = 0; i < column.size(); ++i) {
    values.push_back(column.NumericAt(static_cast<RowId>(i)));
  }
  return BuildFromValues(values, num_cells);
}

Histogram Histogram::BuildFromValues(const std::vector<double>& values,
                                     int num_cells) {
  PALEO_CHECK(num_cells > 0);
  Histogram h;
  if (values.empty()) return h;
  double lo = values[0], hi = values[0];
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  h.min_ = lo;
  h.max_ = hi;
  // Degenerate single-value column: one cell of unit width.
  h.width_ = (hi > lo) ? (hi - lo) / static_cast<double>(num_cells) : 1.0;
  h.counts_.assign(static_cast<size_t>(num_cells), 0);
  for (double v : values) {
    ++h.counts_[static_cast<size_t>(h.CellFor(v))];
  }
  h.total_ = static_cast<int64_t>(values.size());
  h.cumulative_.resize(h.counts_.size());
  int64_t run = 0;
  for (size_t i = 0; i < h.counts_.size(); ++i) {
    run += h.counts_[i];
    h.cumulative_[i] = run;
  }
  return h;
}

bool Histogram::Extend(const std::vector<double>& values) {
  if (counts_.empty()) return false;
  for (double v : values) {
    if (v < min_ || v > max_) return false;
  }
  for (double v : values) {
    ++counts_[static_cast<size_t>(CellFor(v))];
  }
  total_ += static_cast<int64_t>(values.size());
  int64_t run = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    run += counts_[i];
    cumulative_[i] = run;
  }
  return true;
}

int Histogram::CellFor(double v) const {
  if (counts_.empty()) return 0;
  if (v <= min_) return 0;
  if (v >= max_) return num_cells() - 1;
  int cell = static_cast<int>((v - min_) / width_);
  return std::clamp(cell, 0, num_cells() - 1);
}

double Histogram::CellLow(int cell) const {
  return min_ + width_ * static_cast<double>(cell);
}

std::vector<double> Histogram::Sample(Rng* rng, int n) const {
  std::vector<double> out;
  if (total_ == 0 || counts_.empty()) return out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    int64_t target =
        static_cast<int64_t>(rng->Uniform(static_cast<uint64_t>(total_)));
    // First cell whose cumulative count exceeds target.
    auto it =
        std::upper_bound(cumulative_.begin(), cumulative_.end(), target);
    int cell = static_cast<int>(it - cumulative_.begin());
    cell = std::min(cell, num_cells() - 1);
    out.push_back(CellLow(cell) + rng->NextDouble() * width_);
  }
  return out;
}

std::vector<double> Histogram::TopValues(int n) const {
  std::vector<double> out;
  for (int cell = num_cells() - 1;
       cell >= 0 && static_cast<int>(out.size()) < n; --cell) {
    double mid = CellLow(cell) + width_ / 2.0;
    for (int64_t c = 0; c < counts_[static_cast<size_t>(cell)] &&
                        static_cast<int>(out.size()) < n;
         ++c) {
      out.push_back(mid);
    }
  }
  return out;
}

}  // namespace paleo
