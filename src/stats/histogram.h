// Equi-width histograms over numeric columns.
//
// The paper (Section 5.2) uses equi-width histograms with 1000 cells
// per numeric column of R, samples k values from each histogram, and
// ranks columns by the L1 distance between the sampled values and the
// input list's values.

#ifndef PALEO_STATS_HISTOGRAM_H_
#define PALEO_STATS_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "storage/column.h"

namespace paleo {

/// \brief Equi-width histogram of a numeric column.
class Histogram {
 public:
  /// Builds a histogram with `num_cells` equal-width cells spanning
  /// [min, max] of the data. An empty column yields an empty histogram.
  static Histogram Build(const Column& column, int num_cells = 1000);

  /// Builds from raw values (used by tests and by derived histograms).
  static Histogram BuildFromValues(const std::vector<double>& values,
                                   int num_cells = 1000);

  int num_cells() const { return static_cast<int>(counts_.size()); }
  int64_t total_count() const { return total_; }
  double min() const { return min_; }
  double max() const { return max_; }
  int64_t cell_count(int cell) const {
    return counts_[static_cast<size_t>(cell)];
  }

  /// Folds `values` into this histogram in place, keeping the existing
  /// cell boundaries. Succeeds only when the histogram is non-empty and
  /// every value lies inside [min, max] — the result is then identical
  /// to a full BuildFromValues over old+new values (the boundaries, and
  /// hence every CellFor, are unchanged). Returns false and leaves the
  /// histogram untouched otherwise; the caller rebuilds from scratch.
  /// This is the incremental-ingest path's per-column fast path.
  bool Extend(const std::vector<double>& values);

  /// Cell index for a value (values outside [min, max] clamp to the
  /// boundary cells).
  int CellFor(double v) const;

  /// Lower edge of a cell.
  double CellLow(int cell) const;
  /// Width of each cell.
  double cell_width() const { return width_; }

  /// Draws `n` values following the histogram's distribution: cell
  /// chosen proportionally to its count, value uniform within the cell.
  /// Deterministic given the Rng state. Empty histogram yields {}.
  std::vector<double> Sample(Rng* rng, int n) const;

  /// The `n` largest sampled-distribution representatives: walks cells
  /// from the top down, emitting each cell's midpoint `count` times
  /// until n values are produced. A deterministic alternative to
  /// Sample() for tests.
  std::vector<double> TopValues(int n) const;

 private:
  double min_ = 0.0;
  double max_ = 0.0;
  double width_ = 1.0;
  int64_t total_ = 0;
  std::vector<int64_t> counts_;
  std::vector<int64_t> cumulative_;  // prefix sums for O(log n) sampling
};

}  // namespace paleo

#endif  // PALEO_STATS_HISTOGRAM_H_
