#include "stats/top_entities.h"

#include <algorithm>
#include <limits>

namespace paleo {

TopEntityList TopEntityList::Build(const Table& table, int column,
                                   int top_n) {
  return FromEntityMaxes(ComputeEntityMaxes(table, column), top_n);
}

std::vector<double> TopEntityList::ComputeEntityMaxes(const Table& table,
                                                      int column) {
  const Column& col = table.column(column);
  const Column& entities = table.entity_column();
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  std::vector<double> best(entities.dict()->size(), kNegInf);
  for (size_t row = 0; row < table.num_rows(); ++row) {
    uint32_t code = entities.CodeAt(static_cast<RowId>(row));
    double v = col.NumericAt(static_cast<RowId>(row));
    if (v > best[code]) best[code] = v;
  }
  return best;
}

TopEntityList TopEntityList::FromEntityMaxes(
    const std::vector<double>& best, int top_n) {
  TopEntityList out;
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  const uint32_t num_entities = static_cast<uint32_t>(best.size());

  std::vector<uint32_t> order;
  order.reserve(num_entities);
  for (uint32_t code = 0; code < num_entities; ++code) {
    if (best[code] != kNegInf) order.push_back(code);
  }
  auto cmp = [&](uint32_t a, uint32_t b) {
    if (best[a] != best[b]) return best[a] > best[b];
    return a < b;
  };
  if (order.size() > static_cast<size_t>(top_n)) {
    std::partial_sort(order.begin(), order.begin() + top_n, order.end(), cmp);
    order.resize(static_cast<size_t>(top_n));
  } else {
    std::sort(order.begin(), order.end(), cmp);
  }

  out.entity_codes_ = order;
  out.values_.reserve(order.size());
  for (uint32_t code : order) out.values_.push_back(best[code]);
  out.member_.insert(order.begin(), order.end());
  return out;
}

int TopEntityList::CountIntersection(
    const std::vector<uint32_t>& codes) const {
  int n = 0;
  for (uint32_t code : codes) {
    if (member_.count(code) > 0) ++n;
  }
  return n;
}

}  // namespace paleo
