// Per-column top-entity lists (paper Section 5.1).
//
// For each numeric column of R the system stores the top-N entities
// when entities are ranked by their maximal value in that column
// ("We keep the 1,000 top entities for each numerical column",
// Section 8). Intersecting an input list's entities with a column's
// top entities is the cheapest signal that the column is the ranking
// criterion of a max query.

#ifndef PALEO_STATS_TOP_ENTITIES_H_
#define PALEO_STATS_TOP_ENTITIES_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "storage/table.h"

namespace paleo {

/// \brief Top-N entities of one numeric column, ranked by per-entity
/// maximum value.
class TopEntityList {
 public:
  /// One pass over the column: per-entity max, then top-N selection.
  /// Ties are broken by entity code ascending for determinism.
  static TopEntityList Build(const Table& table, int column, int top_n);

  /// Per-entity maxima of `column` over all rows, indexed by entity
  /// dictionary code; entities with no rows hold -infinity. The raw
  /// material Build() selects from — exposed so the table catalog can
  /// maintain it incrementally across ingested batches (the published
  /// top-N alone cannot be extended exactly: an entity outside it has
  /// an unknown true max).
  static std::vector<double> ComputeEntityMaxes(const Table& table,
                                                int column);

  /// Top-N selection over a precomputed per-entity max array, with the
  /// same ordering and tie-breaking as Build():
  /// Build(t, c, n) == FromEntityMaxes(ComputeEntityMaxes(t, c), n).
  static TopEntityList FromEntityMaxes(const std::vector<double>& entity_max,
                                       int top_n);

  /// Number of stored entities (<= top_n).
  size_t size() const { return entity_codes_.size(); }

  /// Stored entity dictionary codes, best first.
  const std::vector<uint32_t>& entity_codes() const { return entity_codes_; }
  /// Corresponding per-entity max values, best first.
  const std::vector<double>& values() const { return values_; }

  bool ContainsEntity(uint32_t code) const {
    return member_.count(code) > 0;
  }

  /// Number of the given codes present in this list (the intersection
  /// size of Algorithm 2, line 6).
  int CountIntersection(const std::vector<uint32_t>& codes) const;

 private:
  std::vector<uint32_t> entity_codes_;
  std::vector<double> values_;
  std::unordered_set<uint32_t> member_;
};

}  // namespace paleo

#endif  // PALEO_STATS_TOP_ENTITIES_H_
