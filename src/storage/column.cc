#include "storage/column.h"

#include "common/logging.h"

namespace paleo {

Column::Column(DataType type, std::shared_ptr<StringDictionary> dict)
    : type_(type), dict_(std::move(dict)) {
  if (type_ == DataType::kString && dict_ == nullptr) {
    dict_ = std::make_shared<StringDictionary>();
  }
}

size_t Column::size() const {
  switch (type_) {
    case DataType::kInt64:
      return ints_.size();
    case DataType::kDouble:
      return doubles_.size();
    case DataType::kString:
      return codes_.size();
  }
  return 0;
}

Status Column::Append(const Value& v) {
  switch (type_) {
    case DataType::kInt64:
      if (!v.is_int64())
        return Status::TypeError("cannot append " +
                                 std::string(DataTypeToString(v.type())) +
                                 " to INT64 column");
      ints_.push_back(v.int64());
      return Status::OK();
    case DataType::kDouble:
      if (!v.is_numeric())
        return Status::TypeError("cannot append STRING to DOUBLE column");
      doubles_.push_back(v.AsDouble());
      return Status::OK();
    case DataType::kString:
      if (!v.is_string())
        return Status::TypeError("cannot append " +
                                 std::string(DataTypeToString(v.type())) +
                                 " to STRING column");
      codes_.push_back(dict_->GetOrAdd(v.str()));
      return Status::OK();
  }
  return Status::Internal("unreachable column type");
}

void Column::AppendInt64(int64_t v) {
  PALEO_DCHECK(type_ == DataType::kInt64);
  ints_.push_back(v);
}

void Column::AppendDouble(double v) {
  PALEO_DCHECK(type_ == DataType::kDouble);
  doubles_.push_back(v);
}

void Column::AppendString(std::string_view v) {
  PALEO_DCHECK(type_ == DataType::kString);
  codes_.push_back(dict_->GetOrAdd(v));
}

void Column::AppendCode(uint32_t code) {
  PALEO_DCHECK(type_ == DataType::kString);
  PALEO_DCHECK(code < dict_->size());
  codes_.push_back(code);
}

Value Column::GetValue(RowId row) const {
  switch (type_) {
    case DataType::kInt64:
      return Value::Int64(ints_[row]);
    case DataType::kDouble:
      return Value::Double(doubles_[row]);
    case DataType::kString:
      return Value::String(dict_->Get(codes_[row]));
  }
  return Value();
}

Column Column::Gather(const std::vector<RowId>& rows) const {
  Column out(type_, dict_);
  switch (type_) {
    case DataType::kInt64:
      out.ints_.reserve(rows.size());
      for (RowId r : rows) out.ints_.push_back(ints_[r]);
      break;
    case DataType::kDouble:
      out.doubles_.reserve(rows.size());
      for (RowId r : rows) out.doubles_.push_back(doubles_[r]);
      break;
    case DataType::kString:
      out.codes_.reserve(rows.size());
      for (RowId r : rows) out.codes_.push_back(codes_[r]);
      break;
  }
  return out;
}

Column Column::DeepCopy() const {
  Column out(type_, dict_ == nullptr
                        ? nullptr
                        : std::make_shared<StringDictionary>(*dict_));
  out.ints_ = ints_;
  out.doubles_ = doubles_;
  out.codes_ = codes_;
  return out;
}

size_t Column::MemoryUsage() const {
  return ints_.capacity() * sizeof(int64_t) +
         doubles_.capacity() * sizeof(double) +
         codes_.capacity() * sizeof(uint32_t);
}

}  // namespace paleo
