// Typed column vectors.
//
// A Column owns a flat array of one physical type. String columns hold
// uint32 codes plus a shared StringDictionary. Hot paths (mining,
// aggregation) read the typed arrays directly; Value-based accessors
// exist for boundaries and tests.

#ifndef PALEO_STORAGE_COLUMN_H_
#define PALEO_STORAGE_COLUMN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "storage/dictionary.h"
#include "types/value.h"

namespace paleo {

/// Row identifier within a Table. 32 bits bound tables to ~4.3B rows,
/// far beyond the scales this system targets, and halve tuple-set
/// memory versus 64-bit ids.
using RowId = uint32_t;

/// \brief One typed column of a Table.
class Column {
 public:
  /// Creates an empty column of the given type. String columns get a
  /// fresh dictionary unless one is supplied.
  explicit Column(DataType type,
                  std::shared_ptr<StringDictionary> dict = nullptr);

  DataType type() const { return type_; }
  size_t size() const;

  /// Appends a value; returns TypeError on mismatch. Int64 values are
  /// accepted into Double columns (widened), nothing else is coerced.
  Status Append(const Value& v);

  /// Typed appends (no checking beyond asserts; hot path for builders).
  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string_view v);
  void AppendCode(uint32_t code);

  /// Typed in-place writers. Preconditions: matching type, row < size().
  void SetInt64(RowId row, int64_t v) { ints_[row] = v; }
  void SetDouble(RowId row, double v) { doubles_[row] = v; }
  void SetCode(RowId row, uint32_t code) { codes_[row] = code; }

  /// Typed readers. Preconditions: matching type, row < size().
  int64_t Int64At(RowId row) const { return ints_[row]; }
  double DoubleAt(RowId row) const { return doubles_[row]; }
  uint32_t CodeAt(RowId row) const { return codes_[row]; }
  const std::string& StringAt(RowId row) const {
    return dict_->Get(codes_[row]);
  }

  /// Numeric value widened to double. Precondition: numeric column.
  double NumericAt(RowId row) const {
    return type_ == DataType::kInt64 ? static_cast<double>(ints_[row])
                                     : doubles_[row];
  }

  /// Boxed read (any type).
  Value GetValue(RowId row) const;

  /// Raw arrays for scan loops.
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<uint32_t>& codes() const { return codes_; }

  const std::shared_ptr<StringDictionary>& dict() const { return dict_; }

  /// New column containing rows[0], rows[1], ... in order; string
  /// columns share this column's dictionary.
  Column Gather(const std::vector<RowId>& rows) const;

  /// New column with identical contents; string columns get their OWN
  /// copy of the dictionary (codes preserved), so the clone can
  /// register new strings without mutating a dictionary shared with
  /// concurrent readers of this column.
  Column DeepCopy() const;

  /// Approximate heap footprint in bytes (excludes shared dictionary).
  size_t MemoryUsage() const;

 private:
  DataType type_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<uint32_t> codes_;
  std::shared_ptr<StringDictionary> dict_;
};

}  // namespace paleo

#endif  // PALEO_STORAGE_COLUMN_H_
