#include "storage/dictionary.h"

namespace paleo {

uint32_t StringDictionary::GetOrAdd(std::string_view s) {
  auto it = code_by_string_.find(std::string(s));
  if (it != code_by_string_.end()) return it->second;
  uint32_t code = size();
  strings_.emplace_back(s);
  code_by_string_.emplace(strings_.back(), code);
  return code;
}

uint32_t StringDictionary::Lookup(std::string_view s) const {
  auto it = code_by_string_.find(std::string(s));
  return it == code_by_string_.end() ? kInvalidCode : it->second;
}

size_t StringDictionary::MemoryUsage() const {
  size_t bytes = 0;
  for (const std::string& s : strings_) {
    bytes += sizeof(std::string) + s.capacity();
    // Hash map entry: key string + code + bucket overhead (estimate).
    bytes += sizeof(std::string) + s.capacity() + sizeof(uint32_t) + 16;
  }
  return bytes;
}

}  // namespace paleo
