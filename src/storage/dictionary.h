// Dictionary encoding for string columns.
//
// Every string column stores 32-bit codes into a per-column
// StringDictionary. Gathered tables (e.g. the in-memory slice R')
// share the parent's dictionary via shared_ptr, so predicate constants
// can be compared code-to-code without touching string data.

#ifndef PALEO_STORAGE_DICTIONARY_H_
#define PALEO_STORAGE_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace paleo {

/// \brief Append-only mapping between strings and dense uint32 codes.
class StringDictionary {
 public:
  static constexpr uint32_t kInvalidCode = UINT32_MAX;

  StringDictionary() = default;

  /// Returns the code for `s`, inserting it if new.
  uint32_t GetOrAdd(std::string_view s);

  /// Returns the code for `s`, or kInvalidCode if absent.
  uint32_t Lookup(std::string_view s) const;

  /// Precondition: code < size().
  const std::string& Get(uint32_t code) const { return strings_[code]; }

  uint32_t size() const { return static_cast<uint32_t>(strings_.size()); }

  /// Approximate heap footprint in bytes (for memory reporting).
  size_t MemoryUsage() const;

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, uint32_t> code_by_string_;
};

}  // namespace paleo

#endif  // PALEO_STORAGE_DICTIONARY_H_
