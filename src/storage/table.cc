#include "storage/table.h"

#include <algorithm>
#include <atomic>

#include "common/string_util.h"

namespace paleo {

uint64_t Table::NextEpoch() {
  // Starts at 1 so 0 can serve as "no table" in cache keys.
  // relaxed: a ticket counter — concurrent constructors only need
  // distinct values, not any ordering between them.
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

size_t Table::ClampChunkRows(size_t chunk_rows) {
  if (chunk_rows < 64) return 64;
  return chunk_rows - chunk_rows % 64;
}

Table::Table(Schema schema, size_t chunk_rows)
    : schema_(std::move(schema)),
      epoch_(NextEpoch()),
      chunk_rows_(ClampChunkRows(chunk_rows)) {
  columns_.reserve(static_cast<size_t>(schema_.num_fields()));
  for (const Field& f : schema_.fields()) {
    columns_.emplace_back(f.type);
  }
}

void Table::FoldRowIntoChunks(RowId row) {
  if (chunks_.empty() || chunks_.back().num_rows() == chunk_rows_) {
    Chunk c;
    c.begin_row = row;
    c.end_row = row;
    c.zones.resize(columns_.size());
    chunks_.push_back(std::move(c));
  }
  Chunk& open = chunks_.back();
  open.end_row = row + 1;
  for (size_t i = 0; i < columns_.size(); ++i) {
    open.zones[i].UpdateFrom(columns_[i], row);
  }
}

void Table::RebuildChunks() {
  chunks_.clear();
  RowId n = static_cast<RowId>(num_rows_);
  for (RowId begin = 0; begin < n; begin += static_cast<RowId>(chunk_rows_)) {
    Chunk c;
    c.begin_row = begin;
    c.end_row = std::min<RowId>(n, begin + static_cast<RowId>(chunk_rows_));
    c.zones.reserve(columns_.size());
    for (const Column& col : columns_) {
      c.zones.push_back(ComputeZone(col, c.begin_row, c.end_row));
    }
    chunks_.push_back(std::move(c));
  }
}

void Table::SetChunkRows(size_t chunk_rows) {
  const size_t clamped = ClampChunkRows(chunk_rows);
  if (clamped == chunk_rows_) return;  // layout unchanged: keep epoch
  chunk_rows_ = clamped;
  RebuildChunks();
  // Chunk indices now name different row ranges: re-stamp so
  // (epoch, chunk, atom)-keyed cache entries cannot be served.
  epoch_ = NextEpoch();
}

Status Table::AppendRow(const std::vector<Value>& row) {
  return AppendRows(std::span<const std::vector<Value>>(&row, 1));
}

Status Table::AppendRows(std::span<const std::vector<Value>> rows) {
  // Validate every cell of every row before mutating any column so a
  // failed batch leaves the table unchanged.
  for (const std::vector<Value>& row : rows) {
    if (static_cast<int>(row.size()) != schema_.num_fields()) {
      return Status::InvalidArgument(
          "row has " + std::to_string(row.size()) + " values, schema has " +
          std::to_string(schema_.num_fields()) + " fields");
    }
    for (int i = 0; i < schema_.num_fields(); ++i) {
      const Value& v = row[static_cast<size_t>(i)];
      DataType t = schema_.field(i).type;
      bool ok = (t == DataType::kInt64 && v.is_int64()) ||
                (t == DataType::kDouble && v.is_numeric()) ||
                (t == DataType::kString && v.is_string());
      if (!ok) {
        return Status::TypeError("value " + v.ToString() + " does not fit " +
                                 schema_.field(i).name + " (" +
                                 DataTypeToString(t) + ")");
      }
    }
  }
  for (const std::vector<Value>& row : rows) {
    for (int i = 0; i < schema_.num_fields(); ++i) {
      PALEO_RETURN_NOT_OK(columns_[static_cast<size_t>(i)].Append(
          row[static_cast<size_t>(i)]));
    }
    // Zone maps fold in the PHYSICAL value just appended (read back
    // from the column, so int64->double widening is already applied),
    // sealing/opening chunks at chunk_rows_ boundaries.
    FoldRowIntoChunks(static_cast<RowId>(num_rows_));
    ++num_rows_;
  }
  // One epoch bump per batch: the whole point of the batched entry
  // point (AppendRow via the single-row span bumps once as before).
  if (!rows.empty()) epoch_ = NextEpoch();
  return Status::OK();
}

Table Table::DeepCopy() const {
  Table out(schema_, chunk_rows_);
  out.columns_.clear();
  out.columns_.reserve(columns_.size());
  for (const Column& c : columns_) {
    out.columns_.push_back(c.DeepCopy());
  }
  out.num_rows_ = num_rows_;
  out.chunks_ = chunks_;
  // Identical contents: keep the epoch so epoch-keyed caches stay warm
  // across the copy; the first mutation re-stamps it.
  out.epoch_ = epoch_;
  return out;
}

Status Table::CheckConsistent() {
  if (columns_.empty()) {
    num_rows_ = 0;
    return Status::OK();
  }
  size_t n = columns_[0].size();
  for (size_t i = 1; i < columns_.size(); ++i) {
    if (columns_[i].size() != n) {
      return Status::Internal(
          "column " + schema_.field(static_cast<int>(i)).name + " has " +
          std::to_string(columns_[i].size()) + " rows, expected " +
          std::to_string(n));
    }
  }
  num_rows_ = n;
  // Direct column writes happened before this call; re-stamp so caches
  // keyed on the previous epoch cannot serve the old contents, and
  // rebuild zone maps so they reflect whatever was written.
  RebuildChunks();
  epoch_ = NextEpoch();
  return Status::OK();
}

Table Table::Gather(const std::vector<RowId>& rows) const {
  Table out(schema_, chunk_rows_);
  out.columns_.clear();
  out.columns_.reserve(columns_.size());
  for (const Column& c : columns_) {
    out.columns_.push_back(c.Gather(rows));
  }
  out.num_rows_ = rows.size();
  out.RebuildChunks();
  return out;
}

size_t Table::MemoryUsage() const {
  size_t bytes = 0;
  for (const Column& c : columns_) {
    bytes += c.MemoryUsage();
    if (c.dict() != nullptr) bytes += c.dict()->MemoryUsage();
  }
  for (const Chunk& c : chunks_) {
    bytes += sizeof(Chunk) + c.zones.size() * sizeof(ZoneMap);
  }
  return bytes;
}

std::string Table::ToString(size_t max_rows) const {
  size_t n = std::min(max_rows, num_rows_);
  std::vector<std::vector<std::string>> cells;
  std::vector<std::string> header;
  for (const Field& f : schema_.fields()) header.push_back(f.name);
  cells.push_back(header);
  for (size_t r = 0; r < n; ++r) {
    std::vector<std::string> row;
    for (int c = 0; c < num_columns(); ++c) {
      row.push_back(GetValue(static_cast<RowId>(r), c).ToString());
    }
    cells.push_back(std::move(row));
  }
  std::vector<size_t> widths(header.size(), 0);
  for (const auto& row : cells) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (size_t r = 0; r < cells.size(); ++r) {
    for (size_t c = 0; c < cells[r].size(); ++c) {
      if (c > 0) out += "  ";
      out += cells[r][c];
      out.append(widths[c] - cells[r][c].size(), ' ');
    }
    out += '\n';
    if (r == 0) {
      for (size_t c = 0; c < widths.size(); ++c) {
        if (c > 0) out += "  ";
        out.append(widths[c], '-');
      }
      out += '\n';
    }
  }
  if (n < num_rows_) {
    out += "... (" + WithThousands(static_cast<int64_t>(num_rows_ - n)) +
           " more rows)\n";
  }
  return out;
}

}  // namespace paleo
