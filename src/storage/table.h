// Columnar table: the representation of both the base relation R and
// the in-memory slice R'.

#ifndef PALEO_STORAGE_TABLE_H_
#define PALEO_STORAGE_TABLE_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/column.h"
#include "storage/zone_map.h"
#include "types/schema.h"
#include "types/value.h"

namespace paleo {

/// \brief Append-oriented columnar table.
///
/// Rows are appended through AppendRow (checked, Value-based) or by
/// writing the typed columns directly via mutable_column (generators'
/// hot path, followed by a CheckConsistent() call).
///
/// Rows are logically partitioned into fixed-size chunks of
/// `chunk_rows()` rows (the last chunk may be shorter); each chunk
/// carries per-column min/max zone maps (storage/zone_map.h). Column
/// arrays stay contiguous — chunks are scan granules, not physical
/// segments — so direct-array readers are unaffected. AppendRows
/// maintains zone maps incrementally (sealing a full chunk and opening
/// the next one as it crosses a boundary); CheckConsistent rebuilds
/// them after direct column writes; DeepCopy preserves them.
///
/// Thread contract: appends are single-threaded; once loading is done
/// the table is read-only in every PALEO path, and all read accessors
/// are const with no hidden mutable state, so one table (and the
/// dictionaries it shares with Gather()ed slices) may be read
/// concurrently by any number of threads.
class Table {
 public:
  /// Default chunk size: 64Ki rows. Large enough that per-chunk
  /// bookkeeping vanishes, small enough that SF-1 TPC-H (~6M rows)
  /// yields ~92 morsels for the parallel scan.
  static constexpr size_t kDefaultChunkRows = 64 * 1024;

  explicit Table(Schema schema, size_t chunk_rows = kDefaultChunkRows);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  int num_columns() const { return schema_.num_fields(); }

  const Column& column(int i) const { return columns_[static_cast<size_t>(i)]; }
  Column* mutable_column(int i) { return &columns_[static_cast<size_t>(i)]; }

  /// Appends one row; all columns must receive a type-compatible value.
  Status AppendRow(const std::vector<Value>& row);

  /// Appends a batch of rows. Every cell of every row is validated
  /// before any column is mutated, so a failed batch leaves the table
  /// unchanged — and the epoch is re-stamped exactly ONCE per batch,
  /// not once per row, so epoch-keyed caches (the executor's
  /// AtomSelectionCache) lose at most one generation per ingested
  /// batch.
  Status AppendRows(std::span<const std::vector<Value>> rows);

  /// Deep copy: clones the columns AND their string dictionaries, so
  /// the copy can keep appending (registering new strings) without
  /// mutating dictionaries shared with this table's concurrent
  /// readers. Dictionary codes are preserved, and since the contents
  /// are identical the copy keeps this table's epoch — epoch-keyed
  /// derivations stay valid until the copy is first mutated (which
  /// re-stamps it). This is the ingestion path's copy-on-write step;
  /// plain copy construction shares dictionaries (Gather semantics)
  /// and is only safe for tables that will never append.
  Table DeepCopy() const;

  /// Called after direct column writes; verifies equal column lengths
  /// and updates num_rows().
  Status CheckConsistent();

  /// Boxed cell read.
  Value GetValue(RowId row, int col) const {
    return columns_[static_cast<size_t>(col)].GetValue(row);
  }

  /// The entity column (dictionary-coded string column).
  const Column& entity_column() const {
    return columns_[static_cast<size_t>(schema_.entity_index())];
  }

  /// Dictionary code of the entity of `row`.
  uint32_t EntityCodeAt(RowId row) const {
    return entity_column().CodeAt(row);
  }

  /// Number of distinct entities present (== entity dictionary size as
  /// generators never register unused names).
  uint32_t NumEntities() const { return entity_column().dict()->size(); }

  /// Identity-and-version stamp for caches keyed on table contents
  /// (the executor's AtomSelectionCache). Every Table instance gets a
  /// process-unique epoch at construction, and every mutation entry
  /// point (AppendRow, CheckConsistent after direct column writes)
  /// re-stamps it — so no two distinct (table, contents) pairs ever
  /// share an epoch, and cached derivations of stale contents can
  /// never be served. Reading the epoch is thread-safe under the same
  /// contract as every other accessor (table no longer being mutated).
  uint64_t epoch() const { return epoch_; }

  /// New table with the given rows, in order; shares dictionaries.
  Table Gather(const std::vector<RowId>& rows) const;

  /// Chunk layout. `chunk_rows()` is the nominal rows-per-chunk; the
  /// chunk list tiles [0, num_rows) in order (empty for an empty
  /// table). Zone maps inside each chunk are maintained by every
  /// mutation entry point, so they are always in sync with the column
  /// contents whenever the epoch is (same contract).
  size_t chunk_rows() const { return chunk_rows_; }
  size_t num_chunks() const { return chunks_.size(); }
  const Chunk& chunk(size_t i) const { return chunks_[i]; }
  const std::vector<Chunk>& chunks() const { return chunks_; }

  /// Re-partitions the table into chunks of `chunk_rows` rows (values
  /// are clamped to a multiple of 64 >= 64 so chunk boundaries align
  /// with SelectionBitmap words) and rebuilds all zone maps. The epoch
  /// is re-stamped: chunk-keyed caches (the executor's atom cache keys
  /// on (epoch, chunk, atom)) must not survive a re-chunking, as chunk
  /// indices now name different row ranges. A no-op — no rebuild, no
  /// epoch bump — when the clamped value equals the current layout.
  void SetChunkRows(size_t chunk_rows);

  /// Approximate heap footprint in bytes, including dictionaries.
  size_t MemoryUsage() const;

  /// Renders the first `max_rows` rows as an aligned text table (for
  /// examples and debugging).
  std::string ToString(size_t max_rows = 10) const;

 private:
  /// Draws the next process-unique epoch value.
  static uint64_t NextEpoch();

  /// Clamps a requested chunk size to a positive multiple of 64 (the
  /// SelectionBitmap word width), so per-chunk bitmaps never share a
  /// word across a chunk boundary.
  static size_t ClampChunkRows(size_t chunk_rows);

  /// Discards and recomputes the chunk list + zone maps from the
  /// current column contents (used after bulk/direct column writes).
  void RebuildChunks();

  /// Folds row `row` (already appended to every column) into the open
  /// chunk, sealing/opening chunks at boundaries.
  void FoldRowIntoChunks(RowId row);

  Schema schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
  uint64_t epoch_ = 0;
  size_t chunk_rows_ = kDefaultChunkRows;
  std::vector<Chunk> chunks_;
};

}  // namespace paleo

#endif  // PALEO_STORAGE_TABLE_H_
