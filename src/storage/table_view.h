// TableView: the read-only scan surface the execution engine is
// written against.
//
// The engine (src/engine/executor.*) never reaches into Table's
// internals directly — it scans through this view, so future storage
// changes (compression, mmap segments, physically split chunks) only
// have to keep this surface stable.
//
// ## Scan contract
//
//  - A view is a non-owning handle; the underlying Table must outlive
//    it and must not be mutated while any scan through the view is in
//    flight (the same read-only contract as Table itself).
//  - `chunks()` partitions [0, num_rows) into contiguous, ordered,
//    non-empty row ranges; every chunk except the last spans exactly
//    `chunk_rows()` rows, and chunk boundaries are 64-row aligned
//    (except the table's tail), so per-chunk selection bitmaps never
//    share a word across chunks.
//  - `chunk(i).zones[col]` summarizes the column's physical values in
//    that row range and is always in sync with the data whenever the
//    table's epoch is. An `empty` zone never justifies a skip.
//  - Column data for chunk rows is read through the Column accessors /
//    raw arrays at ABSOLUTE row ids (chunk.begin_row + local offset);
//    a chunk does not re-base row numbering.
//  - `epoch()` keys any cache derived through the view; entries must be
//    invalidated (by key mismatch) whenever it changes.

#ifndef PALEO_STORAGE_TABLE_VIEW_H_
#define PALEO_STORAGE_TABLE_VIEW_H_

#include <cstddef>

#include "storage/table.h"
#include "storage/zone_map.h"

namespace paleo {

/// \brief Forward iterator over a table's chunks (scan granules).
class ChunkIterator {
 public:
  ChunkIterator(const Table* table, size_t index)
      : table_(table), index_(index) {}

  const Chunk& operator*() const { return table_->chunk(index_); }
  const Chunk* operator->() const { return &table_->chunk(index_); }
  ChunkIterator& operator++() {
    ++index_;
    return *this;
  }
  size_t index() const { return index_; }

  friend bool operator==(const ChunkIterator& a, const ChunkIterator& b) {
    return a.table_ == b.table_ && a.index_ == b.index_;
  }
  friend bool operator!=(const ChunkIterator& a, const ChunkIterator& b) {
    return !(a == b);
  }

 private:
  const Table* table_;
  size_t index_;
};

/// \brief Non-owning, read-only view of a Table for scan code.
class TableView {
 public:
  explicit TableView(const Table& table) : table_(&table) {}

  const Schema& schema() const { return table_->schema(); }
  size_t num_rows() const { return table_->num_rows(); }
  int num_columns() const { return table_->num_columns(); }
  const Column& column(int i) const { return table_->column(i); }
  const Column& entity_column() const { return table_->entity_column(); }
  uint32_t NumEntities() const { return table_->NumEntities(); }
  uint64_t epoch() const { return table_->epoch(); }

  size_t chunk_rows() const { return table_->chunk_rows(); }
  size_t num_chunks() const { return table_->num_chunks(); }
  const Chunk& chunk(size_t i) const { return table_->chunk(i); }

  ChunkIterator begin() const { return ChunkIterator(table_, 0); }
  ChunkIterator end() const {
    return ChunkIterator(table_, table_->num_chunks());
  }

 private:
  const Table* table_;
};

}  // namespace paleo

#endif  // PALEO_STORAGE_TABLE_VIEW_H_
