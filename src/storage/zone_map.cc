#include "storage/zone_map.h"

namespace paleo {

ZoneMap ComputeZone(const Column& col, RowId begin, RowId end) {
  ZoneMap z;
  switch (col.type()) {
    case DataType::kInt64: {
      const int64_t* v = col.ints().data();
      for (RowId r = begin; r < end; ++r) z.UpdateInt64(v[r]);
      break;
    }
    case DataType::kDouble: {
      const double* v = col.doubles().data();
      for (RowId r = begin; r < end; ++r) z.UpdateDouble(v[r]);
      break;
    }
    case DataType::kString: {
      const uint32_t* v = col.codes().data();
      for (RowId r = begin; r < end; ++r) z.UpdateCode(v[r]);
      break;
    }
  }
  return z;
}

}  // namespace paleo
