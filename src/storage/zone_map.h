// Per-chunk zone maps: min/max summaries that let predicate atoms
// refute whole chunks without touching row data.
//
// A Table partitions its rows into fixed-size chunks (storage/table.h);
// every chunk carries one ZoneMap per column. Zone maps summarize the
// PHYSICAL column representation — int64 values, double values, or
// dictionary codes. Dictionary codes are insertion-ordered (not
// value-ordered), so a string column's [code_min, code_max] range is
// only meaningful for EQUALITY refutation ("code c not in range"),
// never for string range predicates.
//
// NaN handling: NaN doubles are excluded from the min/max. That is
// sound for skipping because every predicate comparison against NaN is
// false — a row holding NaN can never satisfy an equality or range
// atom, so a chunk summary that ignores it refutes nothing it
// shouldn't. A chunk whose rows are all NaN keeps `empty == true`, and
// empty zones never refute (conservative).

#ifndef PALEO_STORAGE_ZONE_MAP_H_
#define PALEO_STORAGE_ZONE_MAP_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "storage/column.h"

namespace paleo {

/// \brief Min/max summary of one column's values within one chunk.
///
/// Exactly one of the three typed ranges is populated, matching the
/// column's physical type; the others stay at their defaults. `empty`
/// means "no summarizable values seen" and MUST be treated as
/// "cannot refute" by consumers.
struct ZoneMap {
  bool empty = true;
  int64_t int_min = 0;
  int64_t int_max = 0;
  double double_min = 0.0;
  double double_max = 0.0;
  uint32_t code_min = 0;
  uint32_t code_max = 0;

  void UpdateInt64(int64_t v) {
    if (empty) {
      int_min = int_max = v;
      empty = false;
    } else {
      int_min = std::min(int_min, v);
      int_max = std::max(int_max, v);
    }
  }

  void UpdateDouble(double v) {
    if (v != v) return;  // NaN: excluded (see file comment).
    if (empty) {
      double_min = double_max = v;
      empty = false;
    } else {
      double_min = std::min(double_min, v);
      double_max = std::max(double_max, v);
    }
  }

  void UpdateCode(uint32_t c) {
    if (empty) {
      code_min = code_max = c;
      empty = false;
    } else {
      code_min = std::min(code_min, c);
      code_max = std::max(code_max, c);
    }
  }

  /// Folds one value of `col` into this zone, dispatching on the
  /// column's physical type.
  void UpdateFrom(const Column& col, RowId row) {
    switch (col.type()) {
      case DataType::kInt64:
        UpdateInt64(col.Int64At(row));
        break;
      case DataType::kDouble:
        UpdateDouble(col.DoubleAt(row));
        break;
      case DataType::kString:
        UpdateCode(col.CodeAt(row));
        break;
    }
  }

  friend bool operator==(const ZoneMap& a, const ZoneMap& b) {
    if (a.empty != b.empty) return false;
    if (a.empty) return true;
    return a.int_min == b.int_min && a.int_max == b.int_max &&
           a.double_min == b.double_min && a.double_max == b.double_max &&
           a.code_min == b.code_min && a.code_max == b.code_max;
  }
};

/// Zone map of `col` rows [begin, end) computed in one pass.
ZoneMap ComputeZone(const Column& col, RowId begin, RowId end);

/// \brief One chunk of a Table: a contiguous row range plus per-column
/// zone maps.
///
/// Chunks are a LOGICAL overlay — column arrays stay contiguous across
/// chunk boundaries, so raw-array readers (stats, kernels, binary I/O)
/// are unaffected; chunks exist to give scans a skip/parallelize
/// granule. Invariants (maintained by Table):
///   - begin_row < end_row (no empty chunks are ever materialized),
///   - chunks tile [0, num_rows) in order with no gaps,
///   - all chunks except the last span exactly chunk_rows() rows,
///   - zones.size() == table.num_columns().
struct Chunk {
  RowId begin_row = 0;
  RowId end_row = 0;
  std::vector<ZoneMap> zones;

  size_t num_rows() const { return end_row - begin_row; }
};

}  // namespace paleo

#endif  // PALEO_STORAGE_ZONE_MAP_H_
