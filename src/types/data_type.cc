#include "types/data_type.h"

namespace paleo {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

bool IsNumeric(DataType type) {
  return type == DataType::kInt64 || type == DataType::kDouble;
}

}  // namespace paleo
