// Physical data types of table columns.

#ifndef PALEO_TYPES_DATA_TYPE_H_
#define PALEO_TYPES_DATA_TYPE_H_

#include <string>

namespace paleo {

/// \brief Physical column types. Strings are dictionary-encoded in
/// storage; Int64 and Double are stored as flat arrays.
enum class DataType : int {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
};

/// "INT64", "DOUBLE", or "STRING".
const char* DataTypeToString(DataType type);

/// True for kInt64 and kDouble — the types eligible as ranking criteria.
bool IsNumeric(DataType type);

}  // namespace paleo

#endif  // PALEO_TYPES_DATA_TYPE_H_
