#include "types/schema.h"

#include <unordered_set>

#include "common/string_util.h"

namespace paleo {

const char* FieldRoleToString(FieldRole role) {
  switch (role) {
    case FieldRole::kEntity:
      return "ENTITY";
    case FieldRole::kDimension:
      return "DIMENSION";
    case FieldRole::kMeasure:
      return "MEASURE";
    case FieldRole::kKey:
      return "KEY";
  }
  return "UNKNOWN";
}

StatusOr<Schema> Schema::Make(std::vector<Field> fields) {
  Schema schema;
  std::unordered_set<std::string> names;
  int entity_count = 0;
  for (size_t i = 0; i < fields.size(); ++i) {
    const Field& f = fields[i];
    if (f.name.empty()) {
      return Status::InvalidArgument("field " + std::to_string(i) +
                                     " has an empty name");
    }
    if (!names.insert(f.name).second) {
      return Status::InvalidArgument("duplicate field name: " + f.name);
    }
    if (f.role == FieldRole::kMeasure && !IsNumeric(f.type)) {
      return Status::InvalidArgument("measure column " + f.name +
                                     " must be numeric");
    }
    if (f.role == FieldRole::kEntity) ++entity_count;
  }
  if (entity_count != 1) {
    return Status::InvalidArgument(
        "schema must have exactly one entity column, got " +
        std::to_string(entity_count));
  }
  schema.fields_ = std::move(fields);
  for (int i = 0; i < schema.num_fields(); ++i) {
    const Field& f = schema.fields_[static_cast<size_t>(i)];
    schema.index_by_name_.emplace(f.name, i);
    switch (f.role) {
      case FieldRole::kEntity:
        schema.entity_index_ = i;
        break;
      case FieldRole::kDimension:
        schema.dimension_indices_.push_back(i);
        break;
      case FieldRole::kMeasure:
        schema.measure_indices_.push_back(i);
        break;
      case FieldRole::kKey:
        break;
    }
  }
  return schema;
}

int Schema::FieldIndex(const std::string& name) const {
  auto it = index_by_name_.find(name);
  return it == index_by_name_.end() ? -1 : it->second;
}

StatusOr<int> Schema::GetFieldIndex(const std::string& name) const {
  int idx = FieldIndex(name);
  if (idx < 0) return Status::NotFound("no field named " + name);
  return idx;
}

int Schema::num_textual_columns() const {
  int n = 0;
  for (const Field& f : fields_) {
    if (f.type == DataType::kString && f.role != FieldRole::kEntity) ++n;
  }
  return n;
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(fields_.size());
  for (const Field& f : fields_) {
    parts.push_back(f.name + ":" + DataTypeToString(f.type) + "/" +
                    FieldRoleToString(f.role));
  }
  return "Schema(" + Join(parts, ", ") + ")";
}

}  // namespace paleo
