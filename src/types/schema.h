// Relation schema: ordered fields with names, physical types, and
// semantic roles.
//
// Roles matter to PALEO: equality predicates are mined over dimension
// columns, ranking criteria are searched among measure columns, and key
// columns are excluded from both (mirroring the paper's distinction
// between textual columns, "non-key numerical columns", and keys).

#ifndef PALEO_TYPES_SCHEMA_H_
#define PALEO_TYPES_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "types/data_type.h"

namespace paleo {

/// \brief Semantic role of a column in the reverse-engineering task.
enum class FieldRole : int {
  /// The entity column Ae (exactly one per schema).
  kEntity = 0,
  /// Categorical column eligible for equality predicates. Usually
  /// textual, but low-cardinality numerics (e.g. d_year) also qualify.
  kDimension = 1,
  /// Numeric column eligible as a ranking criterion.
  kMeasure = 2,
  /// Key or other column excluded from predicates and ranking.
  kKey = 3,
};

const char* FieldRoleToString(FieldRole role);

/// \brief One column: name, physical type, semantic role.
struct Field {
  std::string name;
  DataType type = DataType::kString;
  FieldRole role = FieldRole::kDimension;

  Field() = default;
  Field(std::string name_in, DataType type_in, FieldRole role_in)
      : name(std::move(name_in)), type(type_in), role(role_in) {}

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type && role == other.role;
  }
};

/// \brief Immutable ordered collection of fields with name lookup.
class Schema {
 public:
  Schema() = default;

  /// Validates: non-empty unique names, exactly one entity column,
  /// measures numeric, dimensions/entity of any type.
  static StatusOr<Schema> Make(std::vector<Field> fields);

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const { return fields_[static_cast<size_t>(i)]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field with this name, or -1.
  int FieldIndex(const std::string& name) const;
  /// Status-returning lookup.
  StatusOr<int> GetFieldIndex(const std::string& name) const;

  /// Index of the unique entity column.
  int entity_index() const { return entity_index_; }

  /// Indices of all dimension columns (predicate-eligible), in schema
  /// order.
  const std::vector<int>& dimension_indices() const {
    return dimension_indices_;
  }
  /// Indices of all measure columns (ranking-eligible), in schema order.
  const std::vector<int>& measure_indices() const { return measure_indices_; }

  /// Counts used by Table 5 of the paper.
  int num_textual_columns() const;
  int num_measure_columns() const {
    return static_cast<int>(measure_indices_.size());
  }

  std::string ToString() const;

  bool operator==(const Schema& other) const {
    return fields_ == other.fields_;
  }

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, int> index_by_name_;
  int entity_index_ = -1;
  std::vector<int> dimension_indices_;
  std::vector<int> measure_indices_;
};

}  // namespace paleo

#endif  // PALEO_TYPES_SCHEMA_H_
