#include "types/value.h"

#include <cstring>

#include "common/string_util.h"

namespace paleo {

namespace {

uint64_t HashBytes(const void* data, size_t len, uint64_t seed) {
  // FNV-1a 64-bit with a seed mixed in; adequate for hash tables.
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 1469598103934665603ULL ^ seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kInt64:
      return std::to_string(int64());
    case DataType::kDouble:
      return FormatDouble(dbl());
    case DataType::kString:
      return str();
  }
  return "";
}

std::string Value::ToSql() const {
  if (is_string()) return SqlQuote(str());
  return ToString();
}

bool Value::operator<(const Value& other) const {
  if (rep_.index() != other.rep_.index())
    return rep_.index() < other.rep_.index();
  return rep_ < other.rep_;
}

uint64_t Value::Hash() const {
  switch (type()) {
    case DataType::kInt64: {
      int64_t v = int64();
      return HashBytes(&v, sizeof(v), 0x11);
    }
    case DataType::kDouble: {
      double v = dbl();
      return HashBytes(&v, sizeof(v), 0x22);
    }
    case DataType::kString:
      return HashBytes(str().data(), str().size(), 0x33);
  }
  return 0;
}

}  // namespace paleo
