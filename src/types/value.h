// Runtime value: a small tagged union used at API boundaries (predicate
// constants, query results, generated cells). Bulk data paths operate on
// typed column arrays instead, so Value never appears in inner loops.

#ifndef PALEO_TYPES_VALUE_H_
#define PALEO_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "types/data_type.h"

namespace paleo {

/// \brief Dynamically typed cell value (int64, double, or string).
class Value {
 public:
  Value() : rep_(int64_t{0}) {}
  explicit Value(int64_t v) : rep_(v) {}
  explicit Value(double v) : rep_(v) {}
  explicit Value(std::string v) : rep_(std::move(v)) {}
  explicit Value(const char* v) : rep_(std::string(v)) {}

  static Value Int64(int64_t v) { return Value(v); }
  static Value Double(double v) { return Value(v); }
  static Value String(std::string v) { return Value(std::move(v)); }

  DataType type() const {
    switch (rep_.index()) {
      case 0:
        return DataType::kInt64;
      case 1:
        return DataType::kDouble;
      default:
        return DataType::kString;
    }
  }

  bool is_int64() const { return std::holds_alternative<int64_t>(rep_); }
  bool is_double() const { return std::holds_alternative<double>(rep_); }
  bool is_string() const { return std::holds_alternative<std::string>(rep_); }
  bool is_numeric() const { return !is_string(); }

  /// Preconditions: matching type.
  int64_t int64() const { return std::get<int64_t>(rep_); }
  double dbl() const { return std::get<double>(rep_); }
  const std::string& str() const { return std::get<std::string>(rep_); }

  /// Numeric value widened to double. Precondition: is_numeric().
  double AsDouble() const {
    return is_int64() ? static_cast<double>(int64()) : dbl();
  }

  /// Value rendered for display ("CA", "42", "3.5").
  std::string ToString() const;
  /// Value rendered as a SQL literal ("'CA'", "42", "3.5").
  std::string ToSql() const;

  /// Exact equality: same type and same payload. Int64(2) != Double(2.0).
  bool operator==(const Value& other) const { return rep_ == other.rep_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Ordering within a type (used for deterministic output); compares
  /// type tag first across types.
  bool operator<(const Value& other) const;

  /// 64-bit hash suitable for unordered containers.
  uint64_t Hash() const;

 private:
  std::variant<int64_t, double, std::string> rep_;
};

struct ValueHasher {
  size_t operator()(const Value& v) const {
    return static_cast<size_t>(v.Hash());
  }
};

}  // namespace paleo

#endif  // PALEO_TYPES_VALUE_H_
