#include "workload/workload.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/random.h"

namespace paleo {

const char* QueryFamilyToString(QueryFamily family) {
  switch (family) {
    case QueryFamily::kMaxA:
      return "max(A)";
    case QueryFamily::kAvgA:
      return "avg(A)";
    case QueryFamily::kSumA:
      return "sum(A)";
    case QueryFamily::kSumAB:
      return "sum(A+B)";
    case QueryFamily::kMulAB:
      return "sum(A*B)";
    case QueryFamily::kNone:
      return "none";
  }
  return "?";
}

namespace {

/// Builds the ranking part of a query for a family over randomly
/// chosen measure columns.
void FillRanking(QueryFamily family, const std::vector<int>& measures,
                 Rng* rng, TopKQuery* query) {
  int a = measures[static_cast<size_t>(rng->Uniform(measures.size()))];
  int b = a;
  while (measures.size() > 1 && b == a) {
    b = measures[static_cast<size_t>(rng->Uniform(measures.size()))];
  }
  switch (family) {
    case QueryFamily::kMaxA:
      query->expr = RankExpr::Column(a);
      query->agg = AggFn::kMax;
      break;
    case QueryFamily::kAvgA:
      query->expr = RankExpr::Column(a);
      query->agg = AggFn::kAvg;
      break;
    case QueryFamily::kSumA:
      query->expr = RankExpr::Column(a);
      query->agg = AggFn::kSum;
      break;
    case QueryFamily::kSumAB:
      query->expr = RankExpr::Add(a, b);
      query->agg = AggFn::kSum;
      break;
    case QueryFamily::kMulAB:
      query->expr = RankExpr::Mul(a, b);
      query->agg = AggFn::kSum;
      break;
    case QueryFamily::kNone:
      query->expr = RankExpr::Column(a);
      query->agg = AggFn::kNone;
      break;
  }
}

}  // namespace

StatusOr<std::vector<WorkloadQuery>> WorkloadGen::Generate(
    const Table& table, const WorkloadOptions& options) {
  if (table.num_rows() == 0) {
    return Status::InvalidArgument("cannot generate workload on empty table");
  }
  const Schema& schema = table.schema();
  const std::vector<int>& dims = schema.dimension_indices();
  const std::vector<int>& measures = schema.measure_indices();
  if (dims.empty() || measures.empty()) {
    return Status::InvalidArgument(
        "workload needs dimension and measure columns");
  }

  Executor executor;
  Rng rng(options.seed);
  std::vector<WorkloadQuery> out;
  std::unordered_set<uint64_t> seen_queries;

  // Per-dimension value frequencies, for the per-atom selectivity bound.
  std::vector<std::unordered_map<Value, int64_t, ValueHasher>> value_counts(
      static_cast<size_t>(schema.num_fields()));
  for (int d : dims) {
    auto& counts = value_counts[static_cast<size_t>(d)];
    for (size_t r = 0; r < table.num_rows(); ++r) {
      ++counts[table.GetValue(static_cast<RowId>(r), d)];
    }
  }
  const double n_rows = static_cast<double>(table.num_rows());
  auto atom_selectivity = [&](const AtomicPredicate& atom) {
    const auto& counts = value_counts[static_cast<size_t>(atom.column)];
    auto it = counts.find(atom.value);
    return it == counts.end() ? 0.0
                              : static_cast<double>(it->second) / n_rows;
  };

  for (QueryFamily family : options.families) {
    for (int pred_size : options.predicate_sizes) {
      if (pred_size > static_cast<int>(dims.size())) continue;
      for (int k : options.ks) {
        int produced = 0;
        for (int attempt = 0;
             attempt < options.max_attempts &&
             produced < options.queries_per_config;
             ++attempt) {
          // Anchor the predicate on a random row's dimension values.
          RowId anchor = static_cast<RowId>(
              rng.Uniform(static_cast<uint64_t>(table.num_rows())));
          std::vector<uint32_t> cols = rng.SampleWithoutReplacement(
              static_cast<uint32_t>(dims.size()),
              static_cast<uint32_t>(pred_size));
          std::vector<AtomicPredicate> atoms;
          atoms.reserve(cols.size());
          bool atoms_ok = true;
          for (uint32_t ci : cols) {
            int col = dims[ci];
            AtomicPredicate atom(col, table.GetValue(anchor, col));
            atoms_ok &= atom_selectivity(atom) <= options.max_atom_selectivity;
            atoms.push_back(std::move(atom));
          }
          if (!atoms_ok) continue;
          TopKQuery query;
          query.predicate = Predicate(std::move(atoms));
          query.k = k;
          FillRanking(family, measures, &rng, &query);
          if (!seen_queries.insert(query.Hash()).second) continue;

          size_t matches =
              executor.CountMatching(table, query.predicate, ExecContext{});
          double selectivity = static_cast<double>(matches) /
                               static_cast<double>(table.num_rows());
          if (selectivity > options.max_selectivity) continue;

          PALEO_ASSIGN_OR_RETURN(
              TopKList list, executor.Execute(table, query, ExecContext{}));
          if (static_cast<int>(list.size()) != k) continue;

          WorkloadQuery wq;
          wq.name = std::string(QueryFamilyToString(family)) + "/|P|=" +
                    std::to_string(pred_size) + "/k=" + std::to_string(k) +
                    "/#" + std::to_string(produced);
          wq.family = family;
          wq.query = std::move(query);
          wq.list = std::move(list);
          wq.selectivity = selectivity;
          out.push_back(std::move(wq));
          ++produced;
        }
      }
    }
  }
  return out;
}

StatusOr<std::vector<WorkloadQuery>> WorkloadGen::PaperExamples(
    const Table& table, bool ssb, int k) {
  const Schema& schema = table.schema();
  Executor executor;
  auto col = [&](const char* name) -> StatusOr<int> {
    return schema.GetFieldIndex(name);
  };

  struct Spec {
    std::string name;
    QueryFamily family;
    std::vector<std::pair<const char*, Value>> atoms;
    const char* col_a;
    const char* col_b;  // nullptr for single-column
  };
  std::vector<Spec> specs;
  if (!ssb) {
    specs.push_back({"TPCH/T6-1 max(o_totalprice)", QueryFamily::kMaxA,
                     {{"p_type", Value::String("MEDIUM POLISHED STEEL")},
                      {"s_region", Value::String("AMERICA")}},
                     "o_totalprice",
                     nullptr});
    specs.push_back(
        {"TPCH/T6-2 sum(ps_supplycost+ps_availqty)", QueryFamily::kSumAB,
         {{"s_nation", Value::String("JAPAN")},
          {"p_container", Value::String("JUMBO BAG")},
          {"l_shipmode", Value::String("TRUCK")}},
         "ps_supplycost",
         "ps_availqty"});
  } else {
    specs.push_back({"SSB/T6-3 avg(lo_revenue)", QueryFamily::kAvgA,
                     {{"s_nation", Value::String("UNITED STATES")},
                      {"p_category", Value::String("MFGR#14")}},
                     "lo_revenue",
                     nullptr});
    specs.push_back(
        {"SSB/T6-4 sum(lo_extendedprice*lo_discount)", QueryFamily::kMulAB,
         {{"p_brand1", Value::String("MFGR#2221")},
          {"s_region", Value::String("ASIA")},
          {"d_year", Value::Int64(1995)}},
         "lo_extendedprice",
         "lo_discount"});
  }

  std::vector<WorkloadQuery> out;
  for (Spec& spec : specs) {
    std::vector<AtomicPredicate> atoms;
    for (auto& [name, value] : spec.atoms) {
      PALEO_ASSIGN_OR_RETURN(int idx, col(name));
      atoms.emplace_back(idx, std::move(value));
    }
    TopKQuery query;
    query.predicate = Predicate(std::move(atoms));
    query.k = k;
    PALEO_ASSIGN_OR_RETURN(int a, col(spec.col_a));
    switch (spec.family) {
      case QueryFamily::kMaxA:
        query.expr = RankExpr::Column(a);
        query.agg = AggFn::kMax;
        break;
      case QueryFamily::kAvgA:
        query.expr = RankExpr::Column(a);
        query.agg = AggFn::kAvg;
        break;
      case QueryFamily::kSumAB: {
        PALEO_ASSIGN_OR_RETURN(int b, col(spec.col_b));
        query.expr = RankExpr::Add(a, b);
        query.agg = AggFn::kSum;
        break;
      }
      case QueryFamily::kMulAB: {
        PALEO_ASSIGN_OR_RETURN(int b, col(spec.col_b));
        query.expr = RankExpr::Mul(a, b);
        query.agg = AggFn::kSum;
        break;
      }
      default:
        return Status::Internal("unexpected family in paper examples");
    }
    size_t matches =
        executor.CountMatching(table, query.predicate, ExecContext{});
    PALEO_ASSIGN_OR_RETURN(TopKList list,
                           executor.Execute(table, query, ExecContext{}));

    WorkloadQuery wq;
    wq.name = std::move(spec.name);
    wq.family = spec.family;
    wq.query = std::move(query);
    wq.list = std::move(list);
    wq.selectivity = static_cast<double>(matches) /
                     static_cast<double>(table.num_rows());
    out.push_back(std::move(wq));
  }
  return out;
}

}  // namespace paleo
