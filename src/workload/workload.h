// Experiment workload: top-k template queries over the generated
// relations plus the input lists they produce.
//
// The paper adapts the 13 TPC-H / 22 SSB benchmark queries into the
// supported query types (max(A), avg(A), sum(A), sum(A+B), sum(A*B),
// no aggregation), varying predicate size |P| in {1,2,3} and k in
// {5,10,20,50,100}. This module generates such realizable instances
// against any relation: predicates are anchored on the dimension
// values of actual rows (so they are never empty) and each query is
// executed once to produce its input list L, accepting only queries
// whose list has exactly k entries. The four example queries of
// Table 6 are available verbatim via PaperExamples().

#ifndef PALEO_WORKLOAD_WORKLOAD_H_
#define PALEO_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/executor.h"
#include "engine/query.h"
#include "engine/topk_list.h"
#include "storage/table.h"

namespace paleo {

/// \brief Supported query shapes (paper Section 8, "Queries").
enum class QueryFamily : int {
  kMaxA = 0,   // max(A)
  kAvgA = 1,   // avg(A)
  kSumA = 2,   // sum(A)
  kSumAB = 3,  // sum(A + B)
  kMulAB = 4,  // sum(A * B)
  kNone = 5,   // no aggregation
};

const char* QueryFamilyToString(QueryFamily family);

/// \brief One workload instance: the (hidden) generating query, the
/// input list it produces over R, and its predicate selectivity.
struct WorkloadQuery {
  std::string name;
  QueryFamily family = QueryFamily::kMaxA;
  TopKQuery query;
  TopKList list;
  double selectivity = 0.0;
};

/// \brief Generation parameters.
struct WorkloadOptions {
  std::vector<QueryFamily> families = {QueryFamily::kMaxA,
                                       QueryFamily::kSumAB};
  std::vector<int> predicate_sizes = {1, 2, 3};
  std::vector<int> ks = {10};
  /// Queries generated per (family, |P|, k) cell.
  int queries_per_config = 3;
  /// Attempts per query before giving up on a cell.
  int max_attempts = 400;
  /// Reject predicates selecting more than this fraction of R. The
  /// paper's benchmark-derived queries are selective (Table 6:
  /// 3e-5 .. 2e-3); the default keeps generated predicates meaningful
  /// (no near-vacuous flag-column conjunctions).
  double max_selectivity = 0.05;
  /// Reject atoms whose value alone selects more than this fraction of
  /// R. Benchmark predicates constrain real dimensions (nation 1/25,
  /// region 1/5, year 1/7, brand 1/1000, ...); this bound keeps binary
  /// flag columns out of hidden queries while leaving them in PALEO's
  /// search space.
  double max_atom_selectivity = 0.25;
  uint64_t seed = 2024;
};

/// \brief Workload generator bound to one relation.
class WorkloadGen {
 public:
  /// Generates realizable instances for every cell of the options
  /// grid. Cells where generation repeatedly fails (e.g. k larger than
  /// any predicate's entity yield) contribute fewer (possibly zero)
  /// queries; that is reported, not an error.
  static StatusOr<std::vector<WorkloadQuery>> Generate(
      const Table& table, const WorkloadOptions& options);

  /// The Table 6 example queries, adapted to this repo's denormalized
  /// schemas (r_name/n_name map to s_region/s_nation). `ssb` selects
  /// the SSB pair; otherwise the TPC-H pair. The returned lists may be
  /// shorter than k at small scale factors (the paper runs SF 1); the
  /// selectivity is always measured.
  static StatusOr<std::vector<WorkloadQuery>> PaperExamples(
      const Table& table, bool ssb, int k = 5);
};

}  // namespace paleo

#endif  // PALEO_WORKLOAD_WORKLOAD_H_
