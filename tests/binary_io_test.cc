// Tests for the binary relation format: round trips, CRC integrity,
// and corruption handling.

#include <gtest/gtest.h>

#include <cstdio>

#include "datagen/tpch_gen.h"
#include "datagen/traffic_gen.h"
#include "io/binary_io.h"

namespace paleo {
namespace {

void ExpectTablesEqual(const Table& a, const Table& b) {
  ASSERT_EQ(a.schema(), b.schema());
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (int c = 0; c < a.num_columns(); ++c) {
      ASSERT_EQ(a.GetValue(static_cast<RowId>(r), c),
                b.GetValue(static_cast<RowId>(r), c))
          << "row " << r << " col " << c;
    }
  }
}

TEST(Crc32Test, KnownVectors) {
  // Standard check value for "123456789".
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0x00000000u);
  EXPECT_EQ(Crc32("a", 1), 0xE8B7BE43u);
}

TEST(BinaryIoTest, RoundTripsSmallTable) {
  auto table = TrafficGen::PaperExample();
  ASSERT_TRUE(table.ok());
  std::string bytes = BinaryIo::Serialize(*table);
  auto parsed = BinaryIo::Deserialize(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectTablesEqual(*table, *parsed);
}

TEST(BinaryIoTest, RoundTripsWideGeneratedTable) {
  TpchGenOptions gen;
  gen.scale_factor = 0.001;
  auto table = TpchGen::Generate(gen);
  ASSERT_TRUE(table.ok());
  std::string bytes = BinaryIo::Serialize(*table);
  auto parsed = BinaryIo::Deserialize(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectTablesEqual(*table, *parsed);
  // Binary payload is far more compact than CSV for the same table.
  EXPECT_LT(bytes.size(),
            static_cast<size_t>(table->num_rows()) * 57 * 12);
}

TEST(BinaryIoTest, RejectsBadMagic) {
  EXPECT_TRUE(BinaryIo::Deserialize("").status().IsIoError());
  EXPECT_TRUE(BinaryIo::Deserialize("NOPE....").status().IsIoError());
}

TEST(BinaryIoTest, RejectsCorruptionAnywhere) {
  auto table = TrafficGen::PaperExample();
  ASSERT_TRUE(table.ok());
  std::string bytes = BinaryIo::Serialize(*table);
  // Flip one byte at assorted offsets: every corruption must be caught
  // (by CRC), never produce a wrong table.
  for (size_t offset : {size_t{5}, size_t{20}, bytes.size() / 2,
                        bytes.size() - 6}) {
    std::string corrupted = bytes;
    corrupted[offset] = static_cast<char>(corrupted[offset] ^ 0x5A);
    auto result = BinaryIo::Deserialize(corrupted);
    EXPECT_FALSE(result.ok()) << "offset " << offset;
  }
}

TEST(BinaryIoTest, RejectsTruncation) {
  auto table = TrafficGen::PaperExample();
  ASSERT_TRUE(table.ok());
  std::string bytes = BinaryIo::Serialize(*table);
  for (size_t keep : {size_t{4}, size_t{10}, bytes.size() / 2,
                      bytes.size() - 1}) {
    auto result = BinaryIo::Deserialize(bytes.substr(0, keep));
    EXPECT_FALSE(result.ok()) << "kept " << keep;
  }
}

TEST(BinaryIoTest, FileRoundTrip) {
  auto table = TrafficGen::PaperExample();
  ASSERT_TRUE(table.ok());
  std::string path = ::testing::TempDir() + "/paleo_binary_test.palb";
  ASSERT_TRUE(BinaryIo::WriteFile(*table, path).ok());
  auto loaded = BinaryIo::ReadFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectTablesEqual(*table, *loaded);
  std::remove(path.c_str());
}

TEST(BinaryIoTest, ReadMissingFileIsIoError) {
  EXPECT_TRUE(BinaryIo::ReadFile("/nonexistent/x.palb").status().IsIoError());
}

TEST(BinaryIoTest, EmptyTableRoundTrips) {
  auto schema = Schema::Make({
      {"e", DataType::kString, FieldRole::kEntity},
      {"v", DataType::kInt64, FieldRole::kMeasure},
  });
  Table empty(*schema);
  auto parsed = BinaryIo::Deserialize(BinaryIo::Serialize(empty));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_rows(), 0u);
  EXPECT_EQ(parsed->schema(), *schema);
}

}  // namespace
}  // namespace paleo
