// Property-based and unit tests for the B+ tree.
//
// The reference oracle is std::map: after every batch of random
// operations the tree must agree with the map on content and order,
// and VerifyInvariants() must pass (occupancy bounds, sorted keys,
// linked leaves, uniform depth, routing bounds).

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "index/bplus_tree.h"

namespace paleo {
namespace {

TEST(BPlusTreeTest, EmptyTree) {
  BPlusTree<int, int> tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.height(), 1);
  EXPECT_EQ(tree.Find(1), nullptr);
  EXPECT_FALSE(tree.Erase(1));
  EXPECT_FALSE(tree.Begin().Valid());
  tree.VerifyInvariants();
}

TEST(BPlusTreeTest, InsertAndFind) {
  BPlusTree<int, std::string> tree;
  EXPECT_TRUE(tree.Insert(2, "two"));
  EXPECT_TRUE(tree.Insert(1, "one"));
  EXPECT_TRUE(tree.Insert(3, "three"));
  EXPECT_FALSE(tree.Insert(2, "dup"));  // duplicate rejected
  EXPECT_EQ(tree.size(), 3u);
  ASSERT_NE(tree.Find(2), nullptr);
  EXPECT_EQ(*tree.Find(2), "two");
  EXPECT_EQ(tree.Find(4), nullptr);
  tree.VerifyInvariants();
}

TEST(BPlusTreeTest, IterationIsSorted) {
  BPlusTree<int, int, 4> tree;
  for (int v : {5, 3, 9, 1, 7, 2, 8, 4, 6, 0}) tree.Insert(v, v * 10);
  std::vector<int> keys;
  for (auto it = tree.Begin(); it.Valid(); it.Next()) {
    keys.push_back(it.key());
    EXPECT_EQ(it.value(), it.key() * 10);
  }
  EXPECT_EQ(keys, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
  tree.VerifyInvariants();
}

TEST(BPlusTreeTest, SplitsGrowHeight) {
  BPlusTree<int, int, 4> tree;
  for (int i = 0; i < 100; ++i) tree.Insert(i, i);
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_GT(tree.height(), 2);
  tree.VerifyInvariants();
  for (int i = 0; i < 100; ++i) {
    ASSERT_NE(tree.Find(i), nullptr) << i;
  }
}

TEST(BPlusTreeTest, LowerBoundAndScan) {
  BPlusTree<int, int, 4> tree;
  for (int i = 0; i < 50; i += 2) tree.Insert(i, i);  // evens 0..48
  auto it = tree.LowerBound(31);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 32);
  it = tree.LowerBound(100);
  EXPECT_FALSE(it.Valid());

  std::vector<int> scanned;
  tree.Scan(10, 20, [&](int k, int v) {
    EXPECT_EQ(k, v);
    scanned.push_back(k);
    return true;
  });
  EXPECT_EQ(scanned, (std::vector<int>{10, 12, 14, 16, 18, 20}));

  // Early termination.
  scanned.clear();
  tree.Scan(0, 48, [&](int k, int) {
    scanned.push_back(k);
    return scanned.size() < 3;
  });
  EXPECT_EQ(scanned.size(), 3u);
}

TEST(BPlusTreeTest, EraseFromLeafRoot) {
  BPlusTree<int, int> tree;
  tree.Insert(1, 10);
  tree.Insert(2, 20);
  EXPECT_TRUE(tree.Erase(1));
  EXPECT_FALSE(tree.Erase(1));
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.Find(1), nullptr);
  ASSERT_NE(tree.Find(2), nullptr);
  tree.VerifyInvariants();
}

TEST(BPlusTreeTest, EraseEverythingShrinksToEmpty) {
  BPlusTree<int, int, 4> tree;
  for (int i = 0; i < 200; ++i) tree.Insert(i, i);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(tree.Erase(i)) << i;
    tree.VerifyInvariants();
  }
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.height(), 1);
}

TEST(BPlusTreeTest, EraseReverseOrder) {
  BPlusTree<int, int, 4> tree;
  for (int i = 0; i < 200; ++i) tree.Insert(i, i);
  for (int i = 199; i >= 0; --i) {
    ASSERT_TRUE(tree.Erase(i)) << i;
    tree.VerifyInvariants();
  }
  EXPECT_TRUE(tree.empty());
}

TEST(BPlusTreeTest, StringKeys) {
  BPlusTree<std::string, int, 8> tree;
  std::vector<std::string> names = {"delta", "alpha", "echo", "charlie",
                                    "bravo"};
  for (size_t i = 0; i < names.size(); ++i) {
    tree.Insert(names[i], static_cast<int>(i));
  }
  std::vector<std::string> sorted;
  for (auto it = tree.Begin(); it.Valid(); it.Next()) sorted.push_back(it.key());
  EXPECT_EQ(sorted, (std::vector<std::string>{"alpha", "bravo", "charlie",
                                              "delta", "echo"}));
  tree.VerifyInvariants();
}

TEST(BPlusTreeTest, MoveConstructionTransfersContent) {
  BPlusTree<int, int, 4> tree;
  for (int i = 0; i < 50; ++i) tree.Insert(i, i);
  BPlusTree<int, int, 4> moved(std::move(tree));
  EXPECT_EQ(moved.size(), 50u);
  ASSERT_NE(moved.Find(17), nullptr);
  moved.VerifyInvariants();
}

// ---- Property tests: random operation mixes vs. std::map ----

struct FuzzParams {
  uint64_t seed;
  int operations;
  int key_range;
  double erase_fraction;
};

class BPlusTreeFuzzTest : public ::testing::TestWithParam<FuzzParams> {};

TEST_P(BPlusTreeFuzzTest, AgreesWithStdMap) {
  const FuzzParams params = GetParam();
  Rng rng(params.seed);
  BPlusTree<int, int, 6> tree;
  std::map<int, int> oracle;

  for (int op = 0; op < params.operations; ++op) {
    int key = static_cast<int>(
        rng.Uniform(static_cast<uint64_t>(params.key_range)));
    if (rng.NextDouble() < params.erase_fraction) {
      bool tree_erased = tree.Erase(key);
      bool oracle_erased = oracle.erase(key) > 0;
      ASSERT_EQ(tree_erased, oracle_erased) << "op " << op;
    } else {
      int value = static_cast<int>(rng.Uniform(1000));
      bool tree_inserted = tree.Insert(key, value);
      bool oracle_inserted = oracle.emplace(key, value).second;
      ASSERT_EQ(tree_inserted, oracle_inserted) << "op " << op;
    }
    if (op % 64 == 0) tree.VerifyInvariants();
  }
  tree.VerifyInvariants();

  // Full content equality, in order.
  ASSERT_EQ(tree.size(), oracle.size());
  auto it = tree.Begin();
  for (const auto& [k, v] : oracle) {
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.key(), k);
    EXPECT_EQ(it.value(), v);
    it.Next();
  }
  EXPECT_FALSE(it.Valid());

  // Point lookups for present and absent keys.
  for (int key = 0; key < params.key_range; ++key) {
    auto oracle_it = oracle.find(key);
    int* found = tree.Find(key);
    if (oracle_it == oracle.end()) {
      EXPECT_EQ(found, nullptr);
    } else {
      ASSERT_NE(found, nullptr);
      EXPECT_EQ(*found, oracle_it->second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomMixes, BPlusTreeFuzzTest,
    ::testing::Values(FuzzParams{1, 500, 100, 0.0},
                      FuzzParams{2, 2000, 200, 0.3},
                      FuzzParams{3, 2000, 50, 0.5},
                      FuzzParams{4, 4000, 1000, 0.45},
                      FuzzParams{5, 1000, 10, 0.5},
                      FuzzParams{6, 3000, 300, 0.65}));

}  // namespace
}  // namespace paleo
