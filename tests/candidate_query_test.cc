// Tests for candidate query assembly and suitability ordering.

#include <gtest/gtest.h>

#include "datagen/traffic_gen.h"
#include "paleo/candidate_query.h"
#include "paleo/predicate_miner.h"
#include "paleo/ranking_finder.h"

namespace paleo {
namespace {

struct Fixture {
  Table table;
  EntityIndex index;
  StatsCatalog catalog;
  RPrime rprime;
  MiningResult mining;
  std::vector<GroupRanking> rankings;
  TopKList list;

  static Fixture Make(bool complete, double coverage = 1.0) {
    auto t = TrafficGen::PaperExample();
    EXPECT_TRUE(t.ok());
    Table table = *std::move(t);
    EntityIndex index = EntityIndex::Build(table);
    StatsCatalog catalog = StatsCatalog::Build(table);
    TopKList list;
    list.Append("Lara Ellis", 784);
    list.Append("Jane O'Neal", 699);
    list.Append("John Smith", 654);
    list.Append("Richard Fox", 596);
    list.Append("Jack Stiles", 586);
    auto rp = RPrime::Build(table, index, list);
    EXPECT_TRUE(rp.ok());
    RPrime rprime = *std::move(rp);
    PaleoOptions options;
    options.coverage_ratio = coverage;
    PredicateMiner miner(rprime, options);
    auto mining = miner.Mine();
    EXPECT_TRUE(mining.ok());
    RankingFinder finder(rprime, &catalog, options);
    auto rankings = finder.Find(mining->groups, list, complete);
    EXPECT_TRUE(rankings.ok());
    return Fixture{std::move(table),   std::move(index),
                   std::move(catalog), std::move(rprime),
                   *std::move(mining), *std::move(rankings),
                   std::move(list)};
  }
};

TEST(CandidateQueryTest, CrossProductOfPredicatesAndCriteria) {
  Fixture f = Fixture::Make(/*complete=*/true);
  ProbModel model(f.catalog, f.rprime);
  std::vector<CandidateQuery> candidates =
      BuildCandidateQueries(f.mining, f.rankings, model, 5);
  ASSERT_FALSE(candidates.empty());

  size_t expected = 0;
  for (const GroupRanking& gr : f.rankings) {
    expected += gr.candidates.size() *
                f.mining.groups[static_cast<size_t>(gr.group_id)]
                    .predicate_ids.size();
  }
  EXPECT_EQ(candidates.size(), expected);
  for (const CandidateQuery& cq : candidates) {
    EXPECT_EQ(cq.query.k, 5);
    EXPECT_EQ(cq.query.order, SortOrder::kDesc);
    EXPECT_GE(cq.suitability, 0.0);
    EXPECT_LE(cq.suitability, 1.0);
  }
}

TEST(CandidateQueryTest, SortedBySuitabilityDescending) {
  Fixture f = Fixture::Make(/*complete=*/false, /*coverage=*/0.2);
  ProbModel model(f.catalog, f.rprime);
  std::vector<CandidateQuery> candidates =
      BuildCandidateQueries(f.mining, f.rankings, model, 5);
  ASSERT_GT(candidates.size(), 1u);
  for (size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_GE(candidates[i - 1].suitability, candidates[i].suitability);
  }
}

TEST(CandidateQueryTest, FullCoverageCandidatesRankAboveFalsePositives) {
  // With relaxed coverage, predicates that miss entities get
  // p_false_positive = 1 over the complete R' and must sort last.
  Fixture f = Fixture::Make(/*complete=*/false, /*coverage=*/0.2);
  ProbModel model(f.catalog, f.rprime);
  std::vector<CandidateQuery> candidates =
      BuildCandidateQueries(f.mining, f.rankings, model, 5);
  ASSERT_GT(candidates.size(), 1u);
  EXPECT_EQ(candidates.front().p_false_positive, 0.0);
  bool has_certain_fp = false;
  for (const CandidateQuery& cq : candidates) {
    has_certain_fp |= (cq.p_false_positive == 1.0);
  }
  ASSERT_TRUE(has_certain_fp);
  EXPECT_EQ(candidates.back().suitability, 0.0);
}

TEST(CandidateQueryTest, DeterministicOrdering) {
  Fixture f1 = Fixture::Make(false, 0.2);
  Fixture f2 = Fixture::Make(false, 0.2);
  ProbModel m1(f1.catalog, f1.rprime);
  ProbModel m2(f2.catalog, f2.rprime);
  auto a = BuildCandidateQueries(f1.mining, f1.rankings, m1, 5);
  auto b = BuildCandidateQueries(f2.mining, f2.rankings, m2, 5);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].query == b[i].query) << i;
  }
}

TEST(CandidateQueryTest, GroupsWithoutCriteriaContributeNothing) {
  Fixture f = Fixture::Make(true);
  ProbModel model(f.catalog, f.rprime);
  std::vector<GroupRanking> empty_rankings = f.rankings;
  for (GroupRanking& gr : empty_rankings) gr.candidates.clear();
  auto candidates =
      BuildCandidateQueries(f.mining, empty_rankings, model, 5);
  EXPECT_TRUE(candidates.empty());
}

}  // namespace
}  // namespace paleo
