// TableCatalog / Ingestor unit tests: publication ordering, snapshot
// pinning and last-release teardown, incremental-vs-full build
// equality, and the all-or-nothing ingest contract under injected
// faults.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "catalog/ingestor.h"
#include "catalog/table_catalog.h"
#include "common/fault_points.h"
#include "datagen/traffic_gen.h"
#include "obs/metrics.h"
#include "paleo/paleo.h"

namespace paleo {
namespace {

class CatalogTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto table = TrafficGen::PaperExample();
    ASSERT_TRUE(table.ok());
    table_ = new Table(std::move(*table));
  }
  static void TearDownTestSuite() {
    delete table_;
    table_ = nullptr;
  }

  void SetUp() override { FaultPoints::DisarmAll(); }
  void TearDown() override { FaultPoints::DisarmAll(); }

  static const Table& table() { return *table_; }

  /// The paper's Table 2 input list — the engine-level probe every
  /// version of the relation that still contains the original rows
  /// must answer identically.
  static TopKList PaperInput() {
    TopKList input;
    input.Append("Lara Ellis", 784);
    input.Append("Jane O'Neal", 699);
    input.Append("John Smith", 654);
    input.Append("Richard Fox", 596);
    input.Append("Jack Stiles", 586);
    return input;
  }

  static std::shared_ptr<TableCatalog> MakeCatalog(
      obs::MetricsRegistry* metrics = nullptr) {
    return std::make_shared<TableCatalog>(Table(table()), PaleoOptions{},
                                          metrics);
  }

  /// One row of the fixture table boxed for re-ingestion.
  static std::vector<Value> RowAt(RowId r) {
    std::vector<Value> row;
    row.reserve(static_cast<size_t>(table().num_columns()));
    for (int c = 0; c < table().num_columns(); ++c) {
      row.push_back(table().GetValue(r, c));
    }
    return row;
  }

  /// A batch of `n` fixture rows starting at `first` (wrapping).
  static std::vector<std::vector<Value>> Batch(size_t first, size_t n) {
    std::vector<std::vector<Value>> rows;
    for (size_t i = 0; i < n; ++i) {
      rows.push_back(RowAt(static_cast<RowId>(
          (first + i) % table().num_rows())));
    }
    return rows;
  }

  /// Byte-level equality of everything the engine consumes from a
  /// stats catalog: per-column basic stats, histogram cells, and
  /// top-entity lists.
  static void ExpectStatsEqual(const StatsCatalog& a, const StatsCatalog& b,
                               int num_columns) {
    ASSERT_EQ(a.table_rows(), b.table_rows());
    for (int c = 0; c < num_columns; ++c) {
      const ColumnStats& sa = a.column_stats(c);
      const ColumnStats& sb = b.column_stats(c);
      EXPECT_EQ(sa.min, sb.min) << "column " << c;
      EXPECT_EQ(sa.max, sb.max) << "column " << c;
      EXPECT_EQ(sa.distinct_count, sb.distinct_count) << "column " << c;
      EXPECT_EQ(sa.row_count, sb.row_count) << "column " << c;

      const Histogram& ha = a.histogram(c);
      const Histogram& hb = b.histogram(c);
      ASSERT_EQ(ha.num_cells(), hb.num_cells()) << "column " << c;
      EXPECT_EQ(ha.min(), hb.min()) << "column " << c;
      EXPECT_EQ(ha.max(), hb.max()) << "column " << c;
      EXPECT_EQ(ha.total_count(), hb.total_count()) << "column " << c;
      for (int cell = 0; cell < ha.num_cells(); ++cell) {
        ASSERT_EQ(ha.cell_count(cell), hb.cell_count(cell))
            << "column " << c << " cell " << cell;
      }

      const TopEntityList& ta = a.top_entities(c);
      const TopEntityList& tb = b.top_entities(c);
      ASSERT_EQ(ta.size(), tb.size()) << "column " << c;
      EXPECT_EQ(ta.entity_codes(), tb.entity_codes()) << "column " << c;
      EXPECT_EQ(ta.values(), tb.values()) << "column " << c;
    }
  }

 private:
  static Table* table_;
};

Table* CatalogTest::table_ = nullptr;

TEST_F(CatalogTest, ConstructPublishesVersionOne) {
  auto catalog = MakeCatalog();
  auto snapshot = catalog->Current();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->version(), 1u);
  EXPECT_EQ(catalog->CurrentVersion(), 1u);
  EXPECT_EQ(snapshot->num_rows(), table().num_rows());
  EXPECT_EQ(snapshot->epoch(), snapshot->table().epoch());

  // The snapshot's engine answers exactly like a standalone Paleo
  // over the same frozen table.
  Paleo standalone(&table(), PaleoOptions{});
  TopKList input = PaperInput();
  RunRequest request;
  request.input = &input;
  auto expected = standalone.Run(request);
  auto got = snapshot->engine().Run(request);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(expected->found());
  ASSERT_TRUE(got->found());
  EXPECT_TRUE(got->valid[0].query == expected->valid[0].query);
  EXPECT_EQ(got->executed_queries, expected->executed_queries);
}

TEST_F(CatalogTest, IngestPublishesMonotonicVersionsAndOldPinsSurvive) {
  auto catalog = MakeCatalog();
  Ingestor ingestor(catalog.get());

  // Pin v1 before any ingest.
  auto v1 = catalog->Current();
  const size_t v1_rows = v1->num_rows();

  uint64_t last_version = 1;
  size_t expected_rows = v1_rows;
  for (int batch = 0; batch < 3; ++batch) {
    auto rows = Batch(static_cast<size_t>(batch), 2 + static_cast<size_t>(batch));
    ASSERT_TRUE(ingestor.Append(rows).ok());
    expected_rows += rows.size();
    // Publication is immediate: the very next Current() observes the
    // new version with the appended rows (release store / acquire
    // load pairing).
    auto now = catalog->Current();
    EXPECT_GT(now->version(), last_version);
    last_version = now->version();
    EXPECT_EQ(now->num_rows(), expected_rows);
    EXPECT_NE(now->epoch(), v1->epoch());
  }
  auto stats = ingestor.stats();
  EXPECT_EQ(stats.batches, 3u);
  EXPECT_EQ(stats.rows, expected_rows - v1_rows);
  EXPECT_EQ(stats.incremental_builds, 3u);
  EXPECT_EQ(stats.failed_batches, 0u);

  // The pinned v1 is untouched: same row count, and its engine still
  // answers as the original frozen table did.
  EXPECT_EQ(v1->num_rows(), v1_rows);
  Paleo standalone(&table(), PaleoOptions{});
  TopKList input = PaperInput();
  RunRequest request;
  request.input = &input;
  auto expected = standalone.Run(request);
  auto got = v1->engine().Run(request);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->executed_queries, expected->executed_queries);
  EXPECT_TRUE(got->valid[0].query == expected->valid[0].query);
}

TEST_F(CatalogTest, IncrementalMatchesFullRebuild) {
  auto incremental_catalog = MakeCatalog();
  auto full_catalog = MakeCatalog();
  Ingestor incremental(incremental_catalog.get());
  IngestorOptions full_options;
  full_options.incremental = false;
  Ingestor full(full_catalog.get(), full_options);

  // Batch 1: rows inside the existing value ranges (pure fast path).
  // Batch 2: a row whose measures exceed every existing max — the
  // histograms cannot be extended in place and must fall back to
  // per-column rebuilds, still yielding byte-identical summaries.
  std::vector<std::vector<std::vector<Value>>> batches;
  batches.push_back(Batch(0, 4));
  auto outlier = RowAt(0);
  const int minutes_col = table().schema().FieldIndex("minutes");
  ASSERT_GE(minutes_col, 0);
  outlier[static_cast<size_t>(minutes_col)] = Value::Int64(1000000);
  batches.push_back({outlier});

  for (const auto& rows : batches) {
    ASSERT_TRUE(incremental.Append(rows).ok());
    ASSERT_TRUE(full.Append(rows).ok());
  }
  auto istats = incremental.stats();
  auto fstats = full.stats();
  EXPECT_EQ(istats.incremental_builds, 2u);
  EXPECT_GE(istats.full_rebuilds, 1u);  // range growth fell back
  EXPECT_EQ(fstats.incremental_builds, 0u);

  auto a = incremental_catalog->Current();
  auto b = full_catalog->Current();
  ASSERT_EQ(a->num_rows(), b->num_rows());
  ExpectStatsEqual(a->engine().catalog(), b->engine().catalog(),
                   table().num_columns());

  // And the engines agree end to end.
  TopKList input = PaperInput();
  RunRequest request;
  request.input = &input;
  auto ra = a->engine().Run(request);
  auto rb = b->engine().Run(request);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->found(), rb->found());
  EXPECT_EQ(ra->executed_queries, rb->executed_queries);
  EXPECT_EQ(ra->valid.size(), rb->valid.size());
  if (ra->found() && rb->found()) {
    EXPECT_TRUE(ra->valid[0].query == rb->valid[0].query);
  }
}

TEST_F(CatalogTest, LastReleaseTeardownRetiresSnapshot) {
  obs::MetricsRegistry registry;
  {
    auto catalog = MakeCatalog(&registry);
    Ingestor ingestor(catalog.get());

    auto pin = catalog->Current();
    std::weak_ptr<const TableSnapshot> watch = pin;
    ASSERT_TRUE(ingestor.Append(Batch(0, 3)).ok());

    // v1 is retired from the catalog but alive through our pin.
    EXPECT_EQ(registry.gauge("paleo_snapshot_live")->value(), 2);
    EXPECT_EQ(registry.counter("paleo_snapshot_retired_total")->value(), 0);
    EXPECT_EQ(registry.gauge("paleo_snapshot_version")->value(), 2);

    pin.reset();
    EXPECT_TRUE(watch.expired());
    EXPECT_EQ(registry.gauge("paleo_snapshot_live")->value(), 1);
    EXPECT_EQ(registry.counter("paleo_snapshot_retired_total")->value(), 1);
    EXPECT_EQ(registry.counter("paleo_ingest_batches_total")->value(), 1);
    EXPECT_EQ(registry.counter("paleo_ingest_rows_total")->value(), 3);
  }
  // Catalog destruction releases the published snapshot too.
  EXPECT_EQ(registry.gauge("paleo_snapshot_live")->value(), 0);
  EXPECT_EQ(registry.counter("paleo_snapshot_retired_total")->value(), 2);
}

TEST_F(CatalogTest, IngestFaultAbortLeavesCatalogUnchanged) {
  for (const char* site : {"catalog.ingest.validate", "catalog.ingest.build",
                           "catalog.ingest.publish"}) {
    FaultPoints::DisarmAll();
    auto catalog = MakeCatalog();
    Ingestor ingestor(catalog.get());
    auto before = catalog->Current();

    FaultSpec spec;
    spec.action = FaultAction::kStatusError;
    spec.code = StatusCode::kInternal;
    spec.message = std::string("injected: ") + site;
    spec.at_hit = 1;
    FaultPoints::Arm(site, spec);

    Status status = ingestor.Append(Batch(0, 2));
    ASSERT_FALSE(status.ok()) << site;
    EXPECT_EQ(status.code(), StatusCode::kInternal) << site;
    // The published snapshot is exactly the one from before the
    // failed batch — same object, same version, same rows.
    EXPECT_EQ(catalog->Current().get(), before.get()) << site;
    EXPECT_EQ(ingestor.stats().failed_batches, 1u) << site;

    // The fault was one-shot; the same batch now lands.
    ASSERT_TRUE(ingestor.Append(Batch(0, 2)).ok()) << site;
    EXPECT_GT(catalog->CurrentVersion(), before->version()) << site;
    EXPECT_EQ(catalog->Current()->num_rows(), before->num_rows() + 2)
        << site;
  }
}

TEST_F(CatalogTest, AllocFailureFallsBackToFullRebuildSameResults) {
  auto faulted_catalog = MakeCatalog();
  auto clean_catalog = MakeCatalog();
  Ingestor faulted(faulted_catalog.get());
  Ingestor clean(clean_catalog.get());

  FaultSpec spec;
  spec.action = FaultAction::kAllocFailure;
  spec.at_hit = 1;
  FaultPoints::Arm("catalog.ingest.incremental-alloc", spec);

  ASSERT_TRUE(faulted.Append(Batch(0, 3)).ok());
  FaultPoints::DisarmAll();
  ASSERT_TRUE(clean.Append(Batch(0, 3)).ok());

  // The faulted batch degraded to full rebuilds...
  EXPECT_EQ(faulted.stats().incremental_builds, 0u);
  EXPECT_GE(faulted.stats().full_rebuilds, 1u);
  EXPECT_EQ(faulted.stats().failed_batches, 0u);
  EXPECT_EQ(clean.stats().incremental_builds, 1u);
  // ...with byte-identical published state.
  auto a = faulted_catalog->Current();
  auto b = clean_catalog->Current();
  ASSERT_EQ(a->num_rows(), b->num_rows());
  ExpectStatsEqual(a->engine().catalog(), b->engine().catalog(),
                   table().num_columns());
}

TEST_F(CatalogTest, TypeErrorBatchLeavesCatalogUnchanged) {
  auto catalog = MakeCatalog();
  Ingestor ingestor(catalog.get());
  auto before = catalog->Current();

  auto rows = Batch(0, 2);
  rows[1][rows[1].size() - 1] = Value::String("not a number");
  Status status = ingestor.Append(rows);
  ASSERT_TRUE(status.IsTypeError());
  EXPECT_EQ(catalog->Current().get(), before.get());
  EXPECT_EQ(catalog->CurrentVersion(), 1u);
  EXPECT_EQ(ingestor.stats().failed_batches, 1u);
  EXPECT_EQ(ingestor.stats().rows, 0u);
}

TEST_F(CatalogTest, IngestorCollectsSpanTreePerBatch) {
  auto catalog = MakeCatalog();
  IngestorOptions options;
  options.collect_trace = true;
  Ingestor ingestor(catalog.get(), options);
  EXPECT_EQ(ingestor.last_trace(), nullptr);

  ASSERT_TRUE(ingestor.Append(Batch(0, 2)).ok());
  auto trace = ingestor.last_trace();
  ASSERT_NE(trace, nullptr);
  const obs::Span* ingest = trace->FindSpan("ingest");
  ASSERT_NE(ingest, nullptr);
  for (const char* stage : {"copy", "append", "stats", "index", "publish"}) {
    EXPECT_NE(trace->FindSpan(stage), nullptr) << stage;
  }
}

}  // namespace
}  // namespace paleo
