// Chaos suite: randomized fault storms over the serving stack.
//
// Every iteration derives a deterministic seed from PALEO_CHAOS_SEED
// (env; defaults below and printed at startup), arms a random subset of
// the process's fault points with random specs — injected Status
// errors, artificial delays, spurious wakeups, simulated allocation
// failures — and drives a DiscoveryService with concurrent Submit /
// Wait / Poll / Cancel / CancelAll / destruction. The invariants:
//
//   * every admitted session reaches a terminal state (no hang),
//   * nothing crashes (run under ASan and TSan in CI's chaos lane),
//   * service stats and the metrics registry stay consistent,
//   * every session that completes (kDone) reports results
//     byte-identical to the unfaulted sequential baseline, even when
//     the run degraded (scalar fallback, cache shrink) or was retried.
//
// Replay: a failure prints the base seed and iteration; rerun with
// PALEO_CHAOS_SEED=<seed> to reproduce the same fault pattern.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "catalog/ingestor.h"
#include "catalog/table_catalog.h"
#include "common/fault_points.h"
#include "common/random.h"
#include "datagen/tpch_gen.h"
#include "io/table_io.h"
#include "paleo/paleo.h"
#include "service/discovery_service.h"
#include "service/session.h"
#include "workload/workload.h"

namespace paleo {
namespace {

uint64_t ChaosSeed() {
  if (const char* env = std::getenv("PALEO_CHAOS_SEED")) {
    char* end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') return static_cast<uint64_t>(v);
  }
  return 20260808ULL;
}

struct Baseline {
  TopKQuery first_valid;
  size_t num_valid = 0;
  int64_t executed_queries = 0;
  int64_t skip_events = 0;
};

class ChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    seed_ = ChaosSeed();
    std::printf("chaos: PALEO_CHAOS_SEED=%llu (export to replay)\n",
                static_cast<unsigned long long>(seed_));

    TpchGenOptions gen;
    gen.scale_factor = 0.003;
    auto table = TpchGen::Generate(gen);
    ASSERT_TRUE(table.ok());
    table_ = new Table(std::move(*table));

    WorkloadOptions wl;
    wl.families = {QueryFamily::kMaxA, QueryFamily::kSumAB};
    wl.predicate_sizes = {1, 2};
    wl.ks = {5, 10};
    wl.queries_per_config = 2;
    auto workload = WorkloadGen::Generate(*table_, wl);
    ASSERT_TRUE(workload.ok());
    ASSERT_GE(workload->size(), 4u);
    workload_ = new std::vector<WorkloadQuery>(std::move(*workload));

    // The unfaulted single-threaded reference every completed chaos
    // session must reproduce byte-identically.
    FaultPoints::DisarmAll();
    Paleo paleo(table_, PaleoOptions{});
    baselines_ = new std::vector<Baseline>();
    for (const WorkloadQuery& wq : *workload_) {
      auto report = paleo.Run(wq.list);
      ASSERT_TRUE(report.ok()) << wq.name;
      ASSERT_TRUE(report->found()) << wq.name;
      Baseline b;
      b.first_valid = report->valid[0].query;
      b.num_valid = report->valid.size();
      b.executed_queries = report->executed_queries;
      b.skip_events = report->skip_events;
      baselines_->push_back(b);
    }
  }

  static void TearDownTestSuite() {
    delete baselines_;
    baselines_ = nullptr;
    delete workload_;
    workload_ = nullptr;
    delete table_;
    table_ = nullptr;
  }

  void SetUp() override { FaultPoints::DisarmAll(); }
  void TearDown() override { FaultPoints::DisarmAll(); }

  static uint64_t seed() { return seed_; }
  static const Table& table() { return *table_; }

  /// A catalog over a copy of the fixture table (plain copy shares
  /// dictionaries — safe because ingestion deep-copies before
  /// appending). Storms that never ingest serve version 1, which IS
  /// the fixture table, so the static baselines hold unchanged.
  static std::shared_ptr<TableCatalog> MakeCatalog(
      PaleoOptions options = {}) {
    return std::make_shared<TableCatalog>(Table(table()),
                                          std::move(options));
  }

  /// One row of the fixture table boxed for re-ingestion.
  static std::vector<Value> RowAt(RowId r) {
    std::vector<Value> row;
    row.reserve(static_cast<size_t>(table().num_columns()));
    for (int c = 0; c < table().num_columns(); ++c) {
      row.push_back(table().GetValue(r, c));
    }
    return row;
  }

  static const std::vector<WorkloadQuery>& workload() { return *workload_; }
  static const std::vector<Baseline>& baselines() { return *baselines_; }

  static void ExpectMatchesBaseline(const Session& session, size_t wi,
                                    const std::string& context) {
    const ReverseEngineerReport* report = session.report();
    ASSERT_NE(report, nullptr) << context;
    const Baseline& b = baselines()[wi];
    ASSERT_TRUE(report->found()) << context;
    EXPECT_EQ(report->valid.size(), b.num_valid) << context;
    EXPECT_TRUE(report->valid[0].query == b.first_valid) << context;
    EXPECT_EQ(report->executed_queries, b.executed_queries) << context;
    EXPECT_EQ(report->skip_events, b.skip_events) << context;
  }

  /// Arms a random subset of the serving stack's fault points with
  /// specs drawn from `rng`. Delays stay small (microseconds to low
  /// milliseconds) so storms perturb interleavings without stalling
  /// the suite.
  static void ArmRandomStorm(Rng* rng) {
    auto maybe_arm = [&](const char* name, FaultSpec spec, double p) {
      if (!rng->Bernoulli(p)) return;
      spec.seed = rng->Next();
      FaultPoints::Arm(name, spec);
    };
    const StatusCode kCodes[] = {
        StatusCode::kIoError, StatusCode::kResourceExhausted,
        StatusCode::kInternal, StatusCode::kCancelled};
    auto error_spec = [&]() {
      FaultSpec spec;
      spec.action = FaultAction::kStatusError;
      spec.code = kCodes[rng->Uniform(4)];
      spec.probability = rng->UniformDouble(0.05, 0.4);
      spec.max_fires = rng->UniformInt(1, 8);
      return spec;
    };
    auto delay_spec = [&]() {
      FaultSpec spec;
      spec.action = FaultAction::kDelay;
      spec.delay_micros = rng->UniformInt(100, 2000);
      spec.probability = rng->UniformDouble(0.05, 0.3);
      return spec;
    };
    auto spurious_spec = [&]() {
      FaultSpec spec;
      spec.action = FaultAction::kSpuriousWakeup;
      spec.probability = rng->UniformDouble(0.1, 0.5);
      return spec;
    };
    auto alloc_spec = [&]() {
      FaultSpec spec;
      spec.action = FaultAction::kAllocFailure;
      spec.probability = rng->UniformDouble(0.2, 1.0);
      return spec;
    };
    maybe_arm("service.submit.enqueue", error_spec(), 0.4);
    maybe_arm("service.dispatch.run", error_spec(), 0.4);
    maybe_arm("service.dispatch.run", delay_spec(), 0.2);
    maybe_arm("request-queue.push", error_spec(), 0.3);
    maybe_arm("request-queue.pop.wait", spurious_spec(), 0.4);
    maybe_arm("session.wait", spurious_spec(), 0.4);
    maybe_arm("thread-pool.submit.push", delay_spec(), 0.3);
    maybe_arm("thread-pool.worker.wait", spurious_spec(), 0.4);
    maybe_arm("validator.validate.begin", error_spec(), 0.3);
    maybe_arm("executor.execute.scan", error_spec(), 0.3);
    maybe_arm("executor.selection.alloc", alloc_spec(), 0.4);
    maybe_arm("atom-cache.insert.alloc", alloc_spec(), 0.4);
    // Ingestion-side sites: no-ops in storms that never ingest, load-
    // bearing in the ingest storm below.
    maybe_arm("catalog.ingest.validate", error_spec(), 0.3);
    maybe_arm("catalog.ingest.incremental-alloc", alloc_spec(), 0.4);
    maybe_arm("catalog.ingest.build", error_spec(), 0.3);
    maybe_arm("catalog.ingest.publish", error_spec(), 0.2);
    maybe_arm("catalog.ingest.publish", delay_spec(), 0.3);
  }

  /// One storm iteration. When `destroy_mid_flight`, the service is
  /// destroyed while sessions are queued or running — shutdown must
  /// still leave every admitted session terminal.
  static void RunStormIteration(uint64_t iter_seed, int iteration,
                                bool destroy_mid_flight) {
    const std::string context = "iteration " + std::to_string(iteration) +
                                " (seed " + std::to_string(iter_seed) +
                                ")";
    Rng rng(iter_seed);
    ArmRandomStorm(&rng);

    DiscoveryServiceOptions service_options;
    service_options.num_workers = static_cast<int>(rng.UniformInt(1, 3));
    service_options.queue_capacity =
        static_cast<size_t>(rng.UniformInt(4, 32));
    service_options.max_retries = static_cast<int>(rng.UniformInt(0, 3));
    service_options.retry_backoff_ms = 1;
    service_options.retry_backoff_max_ms = 4;
    service_options.seed = iter_seed;
    if (rng.Bernoulli(0.3)) {
      service_options.watchdog_stall_ms = 250;
      service_options.watchdog_poll_ms = 5;
    }
    auto service = std::make_unique<DiscoveryService>(
        MakeCatalog(), service_options);

    constexpr int kClients = 2;
    const int per_client = static_cast<int>(rng.UniformInt(1, 2));
    std::atomic<int> rejected{0};
    std::atomic<int> attempts{0};
    Mutex admitted_mutex;
    std::vector<std::pair<std::shared_ptr<Session>, size_t>> admitted;
    std::vector<std::thread> clients;
    const bool cancel_all_mid_storm = rng.Bernoulli(0.3);
    std::vector<uint64_t> client_seeds;
    for (int c = 0; c < kClients; ++c) client_seeds.push_back(rng.Next());
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        Rng client_rng(client_seeds[static_cast<size_t>(c)]);
        for (int r = 0; r < per_client; ++r) {
          const size_t wi = static_cast<size_t>(client_rng.Uniform(
              static_cast<uint64_t>(workload().size())));
          attempts.fetch_add(1);
          auto session = service->Submit(workload()[wi].list);
          if (!session.ok()) {
            rejected.fetch_add(1);
            continue;
          }
          if (client_rng.Bernoulli(0.25)) {
            std::this_thread::sleep_for(std::chrono::microseconds(
                client_rng.UniformInt(0, 500)));
            (*session)->Cancel();
          }
          if (client_rng.Bernoulli(0.3)) {
            (void)(*session)->Poll();
            (void)(*session)->WaitFor(std::chrono::milliseconds(1));
          }
          MutexLock lock(admitted_mutex);
          admitted.emplace_back(*session, wi);
        }
      });
    }
    if (cancel_all_mid_storm) service->CancelAll();
    for (std::thread& t : clients) t.join();

    const int64_t injected_before_teardown = FaultPoints::TotalInjected();
    if (destroy_mid_flight) {
      service.reset();  // shutdown races queued and running sessions
    }
    int done = 0;
    for (auto& [session, wi] : admitted) {
      SessionState state = session->WaitFor(std::chrono::seconds(60));
      ASSERT_TRUE(IsTerminal(state))
          << context << ": session stuck in "
          << SessionStateToString(state);
      if (state == SessionState::kDone) {
        ++done;
        ExpectMatchesBaseline(*session, wi, context);
      }
    }
    if (!destroy_mid_flight) {
      auto stats = service->stats();
      EXPECT_EQ(stats.submitted, attempts.load()) << context;
      EXPECT_EQ(static_cast<int>(admitted.size()) + rejected.load(),
                attempts.load())
          << context;
      EXPECT_EQ(stats.Finished(),
                static_cast<int64_t>(admitted.size()))
          << context;
      EXPECT_EQ(stats.done, done) << context;
      // Metrics mirror the stats exactly, and every injection that
      // fired while this service was attached is in its registry.
      const obs::MetricsRegistry& registry = service->metrics();
      EXPECT_EQ(registry.counter("paleo_service_submitted_total")->value(),
                stats.submitted)
          << context;
      EXPECT_EQ(registry
                    .counter("paleo_service_sessions_total",
                             "state=\"done\"")
                    ->value(),
                stats.done)
          << context;
      EXPECT_EQ(registry.counter("paleo_retries_total")->value(),
                stats.retries)
          << context;
      EXPECT_GE(registry.counter("paleo_faults_injected_total")->value(),
                0)
          << context;
      service.reset();
    }
    EXPECT_GE(FaultPoints::TotalInjected(), injected_before_teardown);
    FaultPoints::DisarmAll();
  }

 private:
  static uint64_t seed_;
  static Table* table_;
  static std::vector<WorkloadQuery>* workload_;
  static std::vector<Baseline>* baselines_;
};

uint64_t ChaosTest::seed_ = 0;
Table* ChaosTest::table_ = nullptr;
std::vector<WorkloadQuery>* ChaosTest::workload_ = nullptr;
std::vector<Baseline>* ChaosTest::baselines_ = nullptr;

TEST_F(ChaosTest, FaultStormSessionsAlwaysReachTerminalState) {
  constexpr int kIterations = 140;
  for (int iteration = 0; iteration < kIterations; ++iteration) {
    uint64_t state = seed() + static_cast<uint64_t>(iteration);
    RunStormIteration(SplitMix64(&state), iteration,
                      /*destroy_mid_flight=*/false);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST_F(ChaosTest, ShutdownStormNeverHangsOrLeaksSessions) {
  constexpr int kIterations = 60;
  for (int iteration = 0; iteration < kIterations; ++iteration) {
    uint64_t state = seed() + 1000003ULL + static_cast<uint64_t>(iteration);
    RunStormIteration(SplitMix64(&state), iteration,
                      /*destroy_mid_flight=*/true);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST_F(ChaosTest, RetryRecoversTransientDispatchFault) {
  DiscoveryServiceOptions service_options;
  service_options.num_workers = 1;
  service_options.max_retries = 2;
  service_options.retry_backoff_ms = 1;
  service_options.retry_backoff_max_ms = 4;
  DiscoveryService service(MakeCatalog(), service_options);

  FaultSpec spec;
  spec.action = FaultAction::kStatusError;
  spec.code = StatusCode::kIoError;
  spec.message = "injected: transient dispatch I/O failure";
  spec.at_hit = 1;
  spec.max_fires = 1;
  FaultPoints::Arm("service.dispatch.run", spec);

  auto session = service.Submit(workload()[0].list);
  ASSERT_TRUE(session.ok());
  ASSERT_EQ((*session)->Wait(), SessionState::kDone)
      << (*session)->status().ToString();
  ExpectMatchesBaseline(**session, 0, "retry recovery");
  auto stats = service.stats();
  EXPECT_GE(stats.retries, 1);
  EXPECT_EQ(service.metrics().counter("paleo_retries_total")->value(),
            stats.retries);
}

TEST_F(ChaosTest, NonRetryableDispatchFaultFailsWithoutRetry) {
  DiscoveryServiceOptions service_options;
  service_options.num_workers = 1;
  service_options.max_retries = 3;
  DiscoveryService service(MakeCatalog(), service_options);

  FaultSpec spec;
  spec.action = FaultAction::kStatusError;
  spec.code = StatusCode::kInternal;  // deterministic: never retried
  spec.at_hit = 1;
  FaultPoints::Arm("service.dispatch.run", spec);

  auto session = service.Submit(workload()[0].list);
  ASSERT_TRUE(session.ok());
  EXPECT_EQ((*session)->Wait(), SessionState::kFailed);
  EXPECT_EQ(service.stats().retries, 0);
}

TEST_F(ChaosTest, MemoryPressureDegradesToScalarNotFailure) {
  // The dimension index answers covered predicates without touching
  // the vectorized selection or atom-cache paths, so it would hide the
  // allocation sites this test starves. Results are identical either
  // way (options_behavior_test pins that), so the baseline still holds.
  PaleoOptions engine_options;
  engine_options.use_dimension_index = false;
  DiscoveryService service(MakeCatalog(engine_options),
                           DiscoveryServiceOptions{});
  FaultSpec alloc;
  alloc.action = FaultAction::kAllocFailure;
  alloc.probability = 1.0;
  alloc.seed = 17;
  FaultPoints::Arm("atom-cache.insert.alloc", alloc);
  FaultPoints::Arm("executor.selection.alloc", alloc);

  auto session = service.Submit(workload()[0].list);
  ASSERT_TRUE(session.ok());
  ASSERT_EQ((*session)->Wait(), SessionState::kDone)
      << (*session)->status().ToString();
  // Degraded, not failed — and byte-identical to the healthy baseline.
  ExpectMatchesBaseline(**session, 0, "memory pressure");
  const ReverseEngineerReport* report = (*session)->report();
  ASSERT_NE(report, nullptr);
  EXPECT_GT(report->degraded_events, 0);
  const obs::MetricsRegistry& registry = service.metrics();
  EXPECT_GE(registry.counter("paleo_degraded_runs_total")->value(), 1);
  EXPECT_GT(registry.counter("paleo_faults_injected_total")->value(), 0);
}

TEST_F(ChaosTest, WatchdogCancelsWedgedRun) {
  DiscoveryServiceOptions service_options;
  service_options.num_workers = 1;
  service_options.watchdog_stall_ms = 50;
  service_options.watchdog_poll_ms = 5;
  DiscoveryService service(MakeCatalog(), service_options);

  // Every candidate execution stalls 200ms, far past the 50ms stall
  // limit: the watchdog must kick the run onto the graceful
  // cancellation path — not kill it, not leave it hung. Workload item
  // 2 takes multiple executions, so a budget check always lands
  // between the wedge and completion.
  FaultSpec wedge;
  wedge.action = FaultAction::kDelay;
  wedge.delay_micros = 200000;
  wedge.probability = 1.0;
  wedge.seed = 3;
  FaultPoints::Arm("executor.execute.scan", wedge);

  auto session = service.Submit(workload()[2].list);
  ASSERT_TRUE(session.ok());
  SessionState state = (*session)->WaitFor(std::chrono::seconds(60));
  ASSERT_TRUE(IsTerminal(state)) << SessionStateToString(state);
  EXPECT_EQ(state, SessionState::kCancelled);
  const ReverseEngineerReport* report = (*session)->report();
  if (report != nullptr) {
    EXPECT_EQ(report->termination, TerminationReason::kCancelled);
  }
  auto stats = service.stats();
  EXPECT_GE(stats.watchdog_kicks, 1);
  EXPECT_EQ(
      service.metrics().counter("paleo_watchdog_kicks_total")->value(),
      stats.watchdog_kicks);
}

TEST_F(ChaosTest, InjectedSubmitFaultSurfacesToClient) {
  DiscoveryService service(MakeCatalog(), DiscoveryServiceOptions{});
  FaultSpec spec;
  spec.action = FaultAction::kStatusError;
  spec.code = StatusCode::kInternal;
  spec.message = "injected: admission bookkeeping lost";
  spec.at_hit = 1;
  FaultPoints::Arm("service.submit.enqueue", spec);

  auto first = service.Submit(workload()[0].list);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kInternal);
  EXPECT_NE(first.status().message().find("admission bookkeeping"),
            std::string::npos);
  // The fault fired once; the service is healthy again.
  auto second = service.Submit(workload()[0].list);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ((*second)->Wait(), SessionState::kDone);
}

TEST_F(ChaosTest, IngestStormUnderFaultsPreservesSnapshotIsolation) {
  // Catalog fault sites armed, an ingest thread hammering batches
  // (some of which the injected faults abort), clients submitting
  // concurrently. Invariants: no hang, no crash, every completed
  // session's report is byte-identical to a fresh standalone run on
  // the snapshot it pinned — whatever version that happened to be.
  constexpr int kIterations = 12;
  for (int iteration = 0; iteration < kIterations; ++iteration) {
    uint64_t state = seed() + 2000029ULL + static_cast<uint64_t>(iteration);
    const uint64_t iter_seed = SplitMix64(&state);
    const std::string context =
        "ingest storm iteration " + std::to_string(iteration) + " (seed " +
        std::to_string(iter_seed) + ")";
    Rng rng(iter_seed);
    ArmRandomStorm(&rng);

    auto catalog = MakeCatalog();
    DiscoveryServiceOptions service_options;
    service_options.num_workers = 2;
    service_options.queue_capacity = 32;
    DiscoveryService service(catalog, service_options);
    Ingestor ingestor(catalog.get());

    std::atomic<bool> stop{false};
    const uint64_t ingest_seed = rng.Next();
    std::thread writer([&] {
      Rng ingest_rng(ingest_seed);
      while (!stop.load(std::memory_order_relaxed)) {
        std::vector<std::vector<Value>> batch;
        const int n = static_cast<int>(ingest_rng.UniformInt(1, 16));
        for (int i = 0; i < n; ++i) {
          batch.push_back(RowAt(static_cast<RowId>(ingest_rng.Uniform(
              static_cast<uint64_t>(table().num_rows())))));
        }
        // Injected catalog.ingest.* faults abort some batches; the
        // published snapshot must be unaffected either way.
        (void)ingestor.Append(batch);
      }
    });

    std::vector<std::pair<std::shared_ptr<Session>, size_t>> admitted;
    for (int r = 0; r < 6; ++r) {
      const size_t wi = static_cast<size_t>(
          rng.Uniform(static_cast<uint64_t>(workload().size())));
      auto session = service.Submit(workload()[wi].list);
      if (session.ok()) admitted.emplace_back(*session, wi);
    }
    // Wait phase holds no assertions: the writer must be joined before
    // any early return, and the reference runs below must execute with
    // the storm disarmed (they share the engine's fault sites).
    std::vector<SessionState> states;
    states.reserve(admitted.size());
    for (auto& [session, wi] : admitted) {
      states.push_back(session->WaitFor(std::chrono::seconds(60)));
    }
    stop.store(true, std::memory_order_relaxed);
    writer.join();
    FaultPoints::DisarmAll();
    for (size_t i = 0; i < admitted.size(); ++i) {
      auto& [session, wi] = admitted[i];
      ASSERT_TRUE(IsTerminal(states[i]))
          << context << ": stuck in " << SessionStateToString(states[i]);
      if (states[i] != SessionState::kDone) continue;
      // Snapshot isolation: identical to a fresh single-threaded run
      // on the pinned version (v1 == the fixture baseline; later
      // versions are their own reference).
      RunRequest reference;
      reference.input = &session->input();
      auto expected = session->snapshot().engine().Run(reference);
      ASSERT_TRUE(expected.ok()) << context;
      const ReverseEngineerReport* report = session->report();
      ASSERT_NE(report, nullptr) << context;
      EXPECT_EQ(report->valid.size(), expected->valid.size()) << context;
      if (!report->valid.empty() && !expected->valid.empty()) {
        EXPECT_TRUE(report->valid[0].query == expected->valid[0].query)
            << context;
      }
      EXPECT_EQ(report->executed_queries, expected->executed_queries)
          << context;
      EXPECT_EQ(report->skip_events, expected->skip_events) << context;
      if (session->snapshot_version() == 1) {
        ExpectMatchesBaseline(*session, wi, context);
      }
    }
    // The chain stayed coherent: the published snapshot's rows grew by
    // exactly the successfully ingested rows.
    auto ingest_stats = ingestor.stats();
    EXPECT_EQ(catalog->Current()->num_rows(),
              table().num_rows() + ingest_stats.rows)
        << context;
    EXPECT_GE(catalog->CurrentVersion(), 1u) << context;
    FaultPoints::DisarmAll();
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST_F(ChaosTest, TableIoFaultSurfacesAsStatus) {
  const std::string path = ::testing::TempDir() + "/chaos_relation.csv";
  {
    std::ofstream out(path);
    out << TableIo::ToCsv(table());
  }
  FaultSpec spec;
  spec.action = FaultAction::kStatusError;
  spec.code = StatusCode::kIoError;
  spec.message = "injected: open() lost the file";
  spec.at_hit = 1;
  FaultPoints::Arm("table-io.read.open", spec);
  auto faulted = TableIo::ReadCsvFile(path);
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.status().code(), StatusCode::kIoError);
  // Disarmed (fault exhausted), the same read succeeds.
  auto clean = TableIo::ReadCsvFile(path);
  EXPECT_TRUE(clean.ok()) << clean.status().ToString();
}

}  // namespace
}  // namespace paleo
